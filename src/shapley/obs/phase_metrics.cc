#include "shapley/obs/phase_metrics.h"

namespace shapley::obs {

namespace {

constexpr const char* kFamily = "shapley_phase_duration_ms";
constexpr const char* kHelp =
    "Span durations from traced requests, by phase (the per-request trace "
    "tree and this family are the same measurements)";

/// Every phase name the stack emits: the serving layers (decode → route →
/// cache → engine → encode), the exact engines' decomposition (compile /
/// delta / accumulate) and the sampler's per-checkpoint rounds.
constexpr const char* kKnownPhases[] = {
    "backend", "decode",  "route",      "cache", "engine",
    "compile", "delta",   "accumulate", "round", "encode",
};

Histogram* PhaseHistogram(MetricsRegistry* registry, const std::string& phase) {
  return registry->GetHistogram(kFamily, kHelp, LatencyBucketsMs(),
                                {{"phase", phase}});
}

}  // namespace

void RegisterPhaseMetrics(MetricsRegistry* registry) {
  for (const char* phase : kKnownPhases) PhaseHistogram(registry, phase);
}

void ObserveTracePhases(MetricsRegistry* registry, const TraceSpan& root) {
  PhaseHistogram(registry, root.name)->Observe(root.ms);
  for (const TraceSpan& child : root.children) {
    ObserveTracePhases(registry, child);
  }
}

}  // namespace shapley::obs
