#ifndef SHAPLEY_OBS_FLIGHT_H_
#define SHAPLEY_OBS_FLIGHT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace shapley::obs {

/// One per-request digest — the always-on answer to "what just happened"
/// when a tail-latency incident arrives with no trace requested. Small on
/// purpose: no body, no values, just the routing/serving identity and the
/// cost figures an operator triages by.
struct FlightDigest {
  /// Milliseconds since the recorder's epoch (its construction) — a
  /// RELATIVE offset, so digests order and difference without any wall
  /// clock. Filled by FlightRecorder::Record; callers leave it 0.
  double t_ms = 0.0;
  std::string target;          ///< Endpoint ("/v1/compute", "/v1/batch").
  uint64_t shard_key_hash = 0; ///< StableHash64 of the canonical shard key.
  std::string engine;          ///< Serving engine (router: backend id).
  std::string mode;            ///< SvcMode wire name ("" when undecodable).
  std::string strategy;        ///< "exact" | sampling strategy | "".
  int status = 0;              ///< HTTP status of the answer.
  uint64_t latency_us = 0;     ///< Wall time, request arrival → response.
  uint64_t samples = 0;        ///< Permutations drawn (0 for exact).
  uint64_t cache_hits = 0;     ///< Memo hits backing a sampled answer.
  std::string trace_id;        ///< Hex trace id; "" when untraced.
};

/// A fixed-size SHARDED ring buffer of FlightDigests, recorded
/// unconditionally on every served request. Designed for the always-on hot
/// path: one relaxed fetch_add picks the slot (global order), the shard
/// index is seq % shards so concurrent writers land on DIFFERENT mutexes,
/// and each shard's lock covers exactly one slot assignment — no
/// allocation beyond the digest's own strings, no global lock, no I/O.
///
/// Conservation contract (pinned by tests/obs/flight_test.cc): after N
/// Record calls, total_recorded() == N, Snapshot() holds exactly
/// min(N, capacity()) digests with STRICTLY increasing sequence numbers,
/// and dropped() == N - resident — a digest is either resident or
/// accounted as overwritten, never torn and never lost.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a multiple of `shards` so every shard
  /// owns the same number of slots (keeps the seq → slot map exact).
  explicit FlightRecorder(size_t capacity = 1024, size_t shards = 8);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps digest.t_ms (relative to the recorder's epoch) and writes it
  /// into the ring, overwriting the digest `capacity` sequence numbers
  /// older. Thread-safe; wait-free except for one uncontended-by-design
  /// per-shard mutex.
  void Record(FlightDigest digest);

  /// The resident digests, oldest → newest (global sequence order). Each
  /// entry is a consistent, untorn copy.
  struct Entry {
    uint64_t seq = 0;
    FlightDigest digest;
  };
  std::vector<Entry> Snapshot() const;

  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Digests overwritten before any snapshot saw them had to be: recorded
  /// minus resident.
  uint64_t dropped() const {
    const uint64_t total = total_recorded();
    return total > capacity_ ? total - capacity_ : 0;
  }
  size_t capacity() const { return capacity_; }

  /// Milliseconds since the recorder's epoch (the "now" of a snapshot).
  double UptimeMs() const;

 private:
  struct Slot {
    /// Sequence number + 1 of the digest held (0 = empty). Written last
    /// under the shard mutex, so a snapshot never sees a half-written
    /// digest with a valid seq.
    uint64_t seq_plus_1 = 0;
    FlightDigest digest;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Slot> slots;
  };

  size_t capacity_;
  size_t num_shards_;
  size_t per_shard_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_seq_{0};
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_FLIGHT_H_
