#include "shapley/obs/stats_json.h"

namespace shapley::obs {

using net::Json;

net::Json ServiceStatsJson(const ServiceStats& stats) {
  Json json;
  json.Set("requests_submitted",
           Json::Number(uint64_t{stats.requests_submitted}));
  json.Set("requests_completed",
           Json::Number(uint64_t{stats.requests_completed}));
  json.Set("requests_failed", Json::Number(uint64_t{stats.requests_failed}));
  json.Set("requests_inflight",
           Json::Number(uint64_t{stats.requests_inflight}));
  json.Set("verdict_cache_hits",
           Json::Number(uint64_t{stats.verdict_cache_hits}));
  json.Set("verdict_cache_misses",
           Json::Number(uint64_t{stats.verdict_cache_misses}));
  json.Set("pool_threads", Json::Number(uint64_t{stats.pool_threads}));
  json.Set("pool_tasks_executed",
           Json::Number(uint64_t{stats.pool_tasks_executed}));
  json.Set("cache_entries", Json::Number(uint64_t{stats.cache_entries}));
  json.Set("cache_bytes", Json::Number(uint64_t{stats.cache_bytes}));
  json.Set("cache_hits", Json::Number(uint64_t{stats.cache_hits}));
  json.Set("cache_misses", Json::Number(uint64_t{stats.cache_misses}));
  json.Set("cache_evictions", Json::Number(uint64_t{stats.cache_evictions}));
  return json;
}

net::Json ServerCountersJson(const net::ServerCounters& counters) {
  Json json;
  json.Set("connections_accepted",
           Json::Number(uint64_t{counters.connections_accepted}));
  json.Set("connections_rejected",
           Json::Number(uint64_t{counters.connections_rejected}));
  json.Set("connections_live",
           Json::Number(uint64_t{counters.connections_live}));
  json.Set("requests_served",
           Json::Number(uint64_t{counters.requests_served}));
  return json;
}

net::Json ExecStatsJson(const ExecStats& stats) {
  Json json;
  json.Set("instances", Json::Number(uint64_t{stats.instances}));
  json.Set("facts", Json::Number(uint64_t{stats.facts}));
  json.Set("threads", Json::Number(uint64_t{stats.threads}));
  json.Set("tasks", Json::Number(uint64_t{stats.tasks}));
  json.Set("oracle_calls", Json::Number(uint64_t{stats.oracle_calls}));
  json.Set("cache_hits", Json::Number(uint64_t{stats.cache_hits}));
  json.Set("cache_misses", Json::Number(uint64_t{stats.cache_misses}));
  json.Set("cache_bytes", Json::Number(uint64_t{stats.cache_bytes}));
  json.Set("verdict_cache_hits",
           Json::Number(uint64_t{stats.verdict_cache_hits}));
  json.Set("wall_ms", Json::Number(stats.wall_ms));
  return json;
}

bool StatsConserved(const ServiceStats& stats) {
  return StatsConservationError(stats) == 0;
}

long long StatsConservationError(const ServiceStats& stats) {
  return static_cast<long long>(stats.requests_submitted) -
         static_cast<long long>(stats.requests_completed +
                                stats.requests_failed +
                                stats.requests_inflight);
}

}  // namespace shapley::obs
