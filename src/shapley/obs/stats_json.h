#ifndef SHAPLEY_OBS_STATS_JSON_H_
#define SHAPLEY_OBS_STATS_JSON_H_

#include "shapley/exec/batch_runner.h"
#include "shapley/net/json.h"
#include "shapley/net/server.h"
#include "shapley/service/shapley_service.h"

namespace shapley::obs {

/// The ONE serialization path for every stats struct in the stack. Before
/// this header, `/v1/stats` (backend), the router's fleet-sum stats and
/// `ExecStats::ToJson` each hand-built their JSON — three places to drift
/// apart. Now all of them emit through these functions, and the key order
/// below is CANONICAL: a test asserts the rendered bytes, so reordering a
/// field is a deliberate wire change, not an accident.

/// Keys, in order: requests_submitted, requests_completed, requests_failed,
/// requests_inflight, verdict_cache_hits, verdict_cache_misses,
/// pool_threads, pool_tasks_executed, cache_entries, cache_bytes,
/// cache_hits, cache_misses, cache_evictions.
net::Json ServiceStatsJson(const ServiceStats& stats);

/// Keys, in order: connections_accepted, connections_rejected,
/// connections_live, requests_served.
net::Json ServerCountersJson(const net::ServerCounters& counters);

/// Keys, in order: instances, facts, threads, tasks, oracle_calls,
/// cache_hits, cache_misses, cache_bytes, verdict_cache_hits, wall_ms.
net::Json ExecStatsJson(const ExecStats& stats);

/// The conservation invariant every ServiceStats snapshot must satisfy at
/// quiescence: submitted == completed + failed + inflight (each request is
/// in exactly one of the three terminal-or-pending states). A LIVE snapshot
/// may transiently violate it — the counters are read one atomic at a time
/// while requests move between states — so assert it only after a drain;
/// /metrics exposes the signed error as a gauge for the same reason.
bool StatsConserved(const ServiceStats& stats);

/// submitted - (completed + failed + inflight), as a signed value.
long long StatsConservationError(const ServiceStats& stats);

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_STATS_JSON_H_
