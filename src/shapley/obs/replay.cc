#include "shapley/obs/replay.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "shapley/net/client.h"
#include "shapley/net/json.h"

namespace shapley::obs {

using net::Json;

namespace {

/// Drops the run-volatile members from EVERY object level, not just the
/// top one: "stats" and "trace" (the span tree times engine internals,
/// different on every run), plus the relative-timestamp and latency
/// members the /v1/debug/* endpoints carry ("t_ms", "uptime_ms",
/// "latency_us", "latency_ms") — within one run those are stable offsets,
/// across runs they differ, so canonical comparison strips them. A shallow
/// strip would leave volatile children behind and break bit-identical
/// replay comparison.
Json StripVolatileMembers(const Json& json) {
  if (const Json::Object* members = json.IfObject()) {
    Json canonical;
    for (const auto& [key, value] : *members) {
      if (key == "stats" || key == "trace" || key == "t_ms" ||
          key == "uptime_ms" || key == "latency_us" || key == "latency_ms") {
        continue;
      }
      canonical.Set(key, StripVolatileMembers(value));
    }
    return canonical;
  }
  if (const Json::Array* elements = json.IfArray()) {
    Json canonical = Json::Arr();
    for (const Json& element : *elements) {
      canonical.Push(StripVolatileMembers(element));
    }
    return canonical;
  }
  return json;
}

}  // namespace

std::string CanonicalResponseBody(const std::string& raw) {
  std::optional<Json> json = Json::Parse(raw);
  if (!json.has_value() || !json->is_object()) return raw;
  return StripVolatileMembers(*json).Dump();
}

std::string CanonicalBatchBody(const std::vector<std::string>& lines) {
  std::vector<std::pair<uint64_t, std::string>> tagged;
  tagged.reserve(lines.size());
  for (const std::string& line : lines) {
    uint64_t id = 0;
    if (std::optional<Json> json = Json::Parse(line)) {
      if (const Json* tag = json->Find("id")) {
        id = tag->IfUint64().value_or(0);
      }
    }
    tagged.emplace_back(id, CanonicalResponseBody(line));
  }
  std::sort(tagged.begin(), tagged.end());
  std::string out;
  for (size_t i = 0; i < tagged.size(); ++i) {
    if (i > 0) out += "\n";
    out += tagged[i].second;
  }
  return out;
}

ReplayResult Replay(const std::vector<LogEntry>& log, const std::string& host,
                    uint16_t port, const ReplayOptions& options) {
  ReplayResult result;
  result.responses.reserve(log.size());
  net::ShapleyClient client(host, port);
  const auto start = std::chrono::steady_clock::now();
  for (const LogEntry& entry : log) {
    if (options.speed > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          entry.t_ms / options.speed));
      std::this_thread::sleep_until(due);
    }
    ++result.requests_sent;
    try {
      if (entry.target == "/v1/batch") {
        std::vector<std::string> lines;
        client.RawBatch(entry.body, [&lines](const std::string& line) {
          lines.push_back(line);
        });
        result.responses.push_back(CanonicalBatchBody(lines));
      } else {
        int status = 0;
        std::string body = client.RawCompute(entry.body, &status);
        result.responses.push_back(CanonicalResponseBody(body));
      }
    } catch (const std::exception&) {
      ++result.transport_errors;
      result.responses.emplace_back();
    }
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace shapley::obs
