#ifndef SHAPLEY_OBS_REPLAY_H_
#define SHAPLEY_OBS_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "shapley/obs/reqlog.h"

namespace shapley::obs {

/// Replay of a captured request log against a live server — the harness
/// that turns load benches into reproducible workloads. The serving stack
/// is deterministic in (request bytes, seed) — PR 5 made sampling a pure
/// function of (seed, instance) across processes — so replaying a capture
/// against a fresh process must reproduce every response bit-for-bit once
/// run-volatile fields (queue/exec timings, trace spans) are stripped;
/// bench_replay and the reqlog tests assert exactly that.

struct ReplayOptions {
  /// Pacing. 0 = max speed (fire each request the moment the previous one
  /// finishes); otherwise a multiplier on the capture's own clock — 1.0
  /// replays at original speed (each entry waits until its captured t_ms),
  /// 2.0 twice as fast.
  double speed = 0.0;
};

struct ReplayResult {
  /// Canonical response text per log entry, in log order: the response
  /// body with volatile members dropped (see CanonicalResponseBody); batch
  /// responses are the id-sorted canonical lines joined by '\n', so the
  /// text is independent of the server's completion order. Empty string
  /// for an entry that failed at the transport.
  std::vector<std::string> responses;
  size_t requests_sent = 0;
  size_t transport_errors = 0;  ///< Entries with no response at all.
  double wall_ms = 0.0;
};

/// Canonical comparison form of one /v1/compute response body: parsed,
/// run-volatile members ("stats" timings, "trace" span trees, and the
/// "t_ms"/"uptime_ms"/"latency_us"/"latency_ms" offsets the /v1/debug/*
/// endpoints carry) dropped RECURSIVELY at every object depth (the trace
/// block nests spans within spans), re-dumped. Unparsable input is
/// returned verbatim (a non-JSON body should fail a comparison loudly, not
/// vanish).
std::string CanonicalResponseBody(const std::string& raw);

/// Canonical form of a /v1/batch response: each ndjson line canonicalized
/// (as above), lines sorted by their "id" tag, joined by '\n' — a pure
/// function of the answers, independent of completion order.
std::string CanonicalBatchBody(const std::vector<std::string>& lines);

/// Fires every entry of `log` at host:port over one keep-alive connection,
/// in log order, paced per `options`. Transport failures are counted, not
/// thrown — a replay reports, the caller judges.
ReplayResult Replay(const std::vector<LogEntry>& log, const std::string& host,
                    uint16_t port, const ReplayOptions& options = {});

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_REPLAY_H_
