#include "shapley/obs/flight.h"

#include <algorithm>
#include <utility>

namespace shapley::obs {

FlightRecorder::FlightRecorder(size_t capacity, size_t shards)
    : num_shards_(std::max<size_t>(1, shards)),
      epoch_(std::chrono::steady_clock::now()) {
  if (capacity < num_shards_) capacity = num_shards_;
  per_shard_ = (capacity + num_shards_ - 1) / num_shards_;
  capacity_ = per_shard_ * num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].slots.resize(per_shard_);
  }
}

double FlightRecorder::UptimeMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void FlightRecorder::Record(FlightDigest digest) {
  digest.t_ms = UptimeMs();
  // The global counter fixes the digest's identity BEFORE any lock:
  // concurrent writers get distinct sequence numbers, distinct slots, and
  // (for seq dense in [n, n + shards)) distinct shard mutexes.
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[seq % num_shards_];
  Slot& slot = shard.slots[(seq / num_shards_) % per_shard_];
  std::lock_guard<std::mutex> lock(shard.mutex);
  slot.digest = std::move(digest);
  slot.seq_plus_1 = seq + 1;
}

std::vector<FlightRecorder::Entry> FlightRecorder::Snapshot() const {
  std::vector<Entry> entries;
  entries.reserve(capacity_);
  for (size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Slot& slot : shard.slots) {
      if (slot.seq_plus_1 == 0) continue;
      entries.push_back(Entry{slot.seq_plus_1 - 1, slot.digest});
    }
  }
  // Global sequence order, oldest → newest. Slots snapshotted shard by
  // shard can include a digest overwritten between shard locks AND its
  // overwriter; both are real recorded digests, so both stay.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  return entries;
}

}  // namespace shapley::obs
