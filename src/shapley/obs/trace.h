#ifndef SHAPLEY_OBS_TRACE_H_
#define SHAPLEY_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <vector>

namespace shapley::obs {

/// Per-request tracing: a request that opts in (SvcRequest::trace, or
/// `"trace": true` on the wire) carries a RequestTrace through the stack;
/// each layer appends the spans it owns — the server measures decode and
/// encode, the service measures route / cache / engine — and the finished
/// list rides back as an opt-in `"trace"` block in the response JSON.
/// Span durations also feed the request-latency histograms, so the trace
/// block and /metrics agree by construction.
///
/// Spans are flat, not nested: each is a (name, milliseconds) pair
/// measured by the layer that owns it, appended in completion order.
/// This header stays dependency-light on purpose — service/request.h
/// embeds RequestTrace in every SvcResponse.

struct TraceSpan {
  std::string name;  // decode | route | cache | engine | encode | ...
  double ms = 0.0;
};

struct RequestTrace {
  std::vector<TraceSpan> spans;

  void Add(const std::string& name, double ms) { spans.push_back({name, ms}); }
  /// Total traced time; spans are disjoint by construction (each layer
  /// times its own exclusive section) so the sum is meaningful.
  double TotalMs() const;
  const TraceSpan* Find(const std::string& name) const;
};

/// Steady-clock stopwatch for one span. Usage:
///   SpanTimer t;
///   ... work ...
///   trace->Add("engine", t.ElapsedMs());
class SpanTimer {
 public:
  SpanTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_TRACE_H_
