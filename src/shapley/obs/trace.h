#ifndef SHAPLEY_OBS_TRACE_H_
#define SHAPLEY_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shapley::obs {

/// Per-request tracing: a request that opts in (SvcRequest::trace, or a
/// `"trace"` field on the wire) is profiled into ONE hierarchical span
/// tree, cluster-wide. The router opens the root and one child hop span
/// per backend attempt (failover included, tagged with the upstream
/// identity); each backend records decode → route(cache) → engine →
/// encode under its own root; the engine span decomposes further by
/// instrumentation hooks in the deep paths (FGMC compile / per-fact delta
/// / rational accumulation, per-checkpoint sampling rounds); and the
/// router grafts each backend subtree under its hop span, so the wire
/// `"trace"` block of a routed request is a single coherent tree.
///
/// The glue is a TraceContext — a 128-bit trace id plus the parent span
/// id, seeded DETERMINISTICALLY from the request bytes — carried on the
/// wire as an optional request field, so every process working on one
/// request agrees on its identity without clock sync or coordination.
///
/// Tracing is strictly opt-in: a disabled-trace request allocates no
/// recorder and takes no trace lock anywhere on the hot path (enforced by
/// bench_trace_overhead). This header stays dependency-light on purpose —
/// service/request.h embeds RequestTrace in every SvcResponse.

/// Cluster-wide identity of one traced request. The 128-bit trace id is
/// derived from the request bytes (FNV-1a over two independent bases), so
/// the router and an out-of-band debugger derive the SAME id from the
/// same capture — trace ids are reproducible, like everything else in the
/// serving stack. parent_span names the span the receiving process must
/// nest under; 0 means "you are the root".
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t parent_span = 0;

  /// A context is "set" when the trace id is non-zero (Derive never
  /// returns zero: it folds in a non-zero offset basis).
  bool valid() const { return (trace_hi | trace_lo) != 0; }

  /// Deterministic 128-bit id from the raw request bytes.
  static TraceContext Derive(std::string_view request_bytes);

  /// 32 lowercase hex chars (hi then lo).
  std::string TraceIdHex() const;
};

/// 16 lowercase hex chars, zero-padded.
std::string HexU64(uint64_t value);
/// Strict inverse of HexU64: exactly 16 lowercase hex chars.
std::optional<uint64_t> ParseHexU64(std::string_view text);
/// Strict inverse of TraceIdHex: exactly 32 lowercase hex chars.
std::optional<std::pair<uint64_t, uint64_t>> ParseTraceIdHex(
    std::string_view text);

/// One node of the span tree. start_ms is the offset from the PARENT
/// span's start (the root's is 0), so well-formedness is a local check —
/// child.start_ms >= 0 and child.start_ms + child.ms <= parent.ms — and
/// grafting a remote subtree under a hop span only touches the grafted
/// root's offset, never the clocks of two processes.
struct TraceSpan {
  std::string name;  // decode | route | cache | engine | compile | ...
  double start_ms = 0.0;
  double ms = 0.0;
  /// Small typed payload per span (backend identity on hop spans,
  /// samples/retired counts on sampling rounds, cache hit/miss deltas on
  /// the engine span). Order is preserved onto the wire.
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<TraceSpan> children;

  const std::string* FindAttr(const std::string& key) const;
};

/// Every child of every span nests within its parent's [0, ms] window.
bool WellNested(const TraceSpan& span);

struct RequestTrace {
  TraceContext context;
  TraceSpan root;

  /// Total traced wall time — the root span's duration.
  double TotalMs() const { return root.ms; }
  /// Depth-first search (pre-order) for the first span named `name`.
  const TraceSpan* Find(const std::string& name) const;
};

/// Steady-clock stopwatch for one ad-hoc measurement.
class SpanTimer {
 public:
  SpanTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Builds one span tree while a request executes. Allocated ONLY for
/// traced requests (the hot path carries a null pointer); every method is
/// mutex-guarded so the layers of one request — which may hand the request
/// between threads at queue boundaries — can share a recorder, but the
/// Begin/End discipline itself is a stack: spans recorded by whichever
/// thread currently owns the request, innermost-open first.
///
/// The epoch constructor backdates the root: a server that measures decode
/// BEFORE it knows the request wants tracing constructs the recorder with
/// the pre-decode timestamp and attaches the decode measurement with
/// AddClosed, and the offsets come out as if the recorder had existed all
/// along.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::string root_name, TraceContext context = {});
  TraceRecorder(std::string root_name, TraceContext context,
                std::chrono::steady_clock::time_point epoch);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a child of the innermost open span.
  void Begin(const std::string& name);
  /// Attaches an attribute to the innermost open span.
  void Attr(const std::string& key, std::string value);
  /// Closes the innermost open span (no-op on the root — Finish owns it).
  void End();
  /// Closes the innermost open span and grafts `subtree` (a remote
  /// process's finished tree) inside it: the subtree keeps its own
  /// internal offsets, and its start inside the closing span is the
  /// symmetric network-delay estimate max(0, (span_ms - subtree_ms) / 2) —
  /// no cross-process clock comparison anywhere.
  void EndGraft(TraceSpan subtree);
  /// Adds an already-measured child (start relative to the innermost open
  /// span's start) without touching the open stack.
  void AddClosed(const std::string& name, double start_ms, double ms);

  /// Closes everything still open (root included), normalizes containment
  /// bottom-up (a parent grows to cover a grafted child rather than
  /// truncating it) and returns the finished tree. The recorder must not
  /// be used afterwards.
  RequestTrace Finish();

  const TraceContext& context() const { return context_; }

 private:
  struct Open {
    TraceSpan span;
    double start_abs = 0.0;  // Milliseconds since epoch_.
  };

  double NowMs() const;
  void CloseTop(TraceSpan* graft);  // mutex_ held.

  mutable std::mutex mutex_;
  TraceContext context_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Open> open_;  // open_[0] is the root, back() is innermost.
};

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_TRACE_H_
