#include "shapley/obs/reqlog.h"

#include <sstream>
#include <stdexcept>

#include "shapley/net/json.h"

namespace shapley::obs {

using net::Json;

RequestLogWriter::RequestLogWriter(const std::string& path)
    : out_(path, std::ios::out | std::ios::trunc),
      epoch_(std::chrono::steady_clock::now()) {
  if (!out_) {
    throw std::runtime_error("RequestLogWriter: cannot open " + path);
  }
}

void RequestLogWriter::Append(const std::string& target,
                              const std::string& body) {
  const double t_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count();
  // The body crosses as a JSON STRING (escaped), so the log line re-parses
  // to the exact original bytes — whitespace, key order and all.
  Json line;
  line.Set("t_ms", Json::Number(t_ms));
  line.Set("target", Json::Str(target));
  line.Set("body", Json::Str(body));
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line.Dump() << "\n";
  ++entries_;
}

size_t RequestLogWriter::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

void RequestLogWriter::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

std::optional<std::vector<LogEntry>> ReadRequestLog(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseRequestLog(text.str(), error);
}

std::optional<std::vector<LogEntry>> ParseRequestLog(const std::string& text,
                                                     std::string* error) {
  std::vector<LogEntry> entries;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;  // Tolerate a trailing newline only.
    std::string parse_error;
    std::optional<Json> json = Json::Parse(line, &parse_error);
    if (!json.has_value()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      }
      return std::nullopt;
    }
    const Json* t_ms = json->Find("t_ms");
    const Json* target = json->Find("target");
    const Json* body = json->Find("body");
    const std::optional<double> t = t_ms != nullptr ? t_ms->IfDouble()
                                                    : std::nullopt;
    const std::string* target_text =
        target != nullptr ? target->IfString() : nullptr;
    const std::string* body_text = body != nullptr ? body->IfString() : nullptr;
    if (!t.has_value() || target_text == nullptr || body_text == nullptr) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": expected {t_ms, target, body}";
      }
      return std::nullopt;
    }
    LogEntry entry;
    entry.t_ms = *t;
    entry.target = *target_text;
    entry.body = *body_text;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace shapley::obs
