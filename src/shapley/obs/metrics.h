#ifndef SHAPLEY_OBS_METRICS_H_
#define SHAPLEY_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace shapley::obs {

/// A lock-cheap metrics registry with Prometheus text-format exposition —
/// the observability backbone of the serving stack (net/server.h answers
/// GET /metrics from one of these, for both a backend and the shard
/// router).
///
/// Cost model: instrument REGISTRATION (GetCounter/GetGauge/GetHistogram)
/// takes the registry mutex and scans; every later update on the returned
/// handle is one (or, for a histogram, two) relaxed atomic adds. Hot paths
/// either cache the handle or pay one short mutex-guarded lookup per
/// request — both are invisible next to a single oracle call.
///
/// Series identity is (family name, label set). A family's kind (counter |
/// gauge | histogram), help text and bucket layout are fixed by its first
/// registration; a later Get* with the same name but a different kind or
/// bucket layout throws std::logic_error — two subsystems silently
/// exporting incompatible series under one name is a bug, not a merge.
///
/// Exposition is DETERMINISTIC: families render in first-registration
/// order, series within a family in registration order, so a scrape is a
/// pure function of the registration/update history (the scrape tests
/// assert byte-level properties on it).

/// Label set of one series, e.g. {{"engine", "lifted"}, {"mode",
/// "all-values"}}. Order is preserved into the exposition verbatim; use
/// one consistent order per family (the registry treats differently-
/// ordered but equal sets as distinct series — don't do that).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event tally. Set() exists for MIRRORING an externally-owned
/// atomic counter (ServiceStats, router tallies) into the exposition from
/// a scrape-time collector — never mix Inc() and Set() on one series.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time measurement (cache bytes, inflight requests, health 0/1).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: one atomic counter per bucket, an atomic total
/// count and a CAS-add double sum — Observe() never takes a lock. Bucket
/// upper bounds are set at registration and render cumulatively with the
/// implicit +Inf bucket, Prometheus-style.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing (validated by the
  /// registry). An implicit +Inf bucket is always appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Latency bucket layout shared by every *_latency_ms family in the stack
/// (sub-millisecond cache hits through multi-second exact sweeps).
const std::vector<double>& LatencyBucketsMs();

/// Small-integer layout for queue-depth style histograms.
const std::vector<double>& DepthBuckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument handles are valid for the registry's lifetime and safe to
  /// update from any thread. Registering the exact same (name, labels)
  /// again returns the SAME instrument; a kind/bucket mismatch throws
  /// std::logic_error, an invalid metric/label name std::invalid_argument.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& upper_bounds,
                          const Labels& labels = {});

  /// Scrape-time hook: every collector runs (in registration order) at the
  /// start of RenderPrometheus(), mirroring externally-owned counters
  /// (ServiceStats snapshots, router tallies, transport counters) into
  /// their registry instruments. Collectors must not register instruments
  /// lazily from other threads while a scrape runs — register up front.
  void AddCollector(std::function<void()> collect);

  /// The Prometheus text exposition (format 0.0.4): runs collectors, then
  /// renders every family as "# HELP", "# TYPE" and its series lines —
  /// histograms as cumulative _bucket{le="..."} series plus _sum/_count.
  /// Label values are escaped (backslash, quote, newline).
  std::string RenderPrometheus();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<double> upper_bounds;  // kHistogram only.
    std::vector<std::unique_ptr<Series>> series;
  };

  Family* GetFamily(const std::string& name, const std::string& help,
                    Kind kind, const std::vector<double>& upper_bounds);
  Series* GetSeries(Family* family, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  // Registration order.
  std::vector<std::function<void()>> collectors_;
};

/// "name{k1=\"v1\",k2=\"v2\"}" with escaped values — the exact series text
/// the exposition emits (exposed for tests and for series-disjointness
/// checks across scrapes).
std::string SeriesText(const std::string& name, const Labels& labels);

/// Escapes a label value for exposition: backslash, double quote and
/// newline become \\, \" and \n.
std::string EscapeLabelValue(const std::string& value);

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_METRICS_H_
