#ifndef SHAPLEY_OBS_HEAVY_H_
#define SHAPLEY_OBS_HEAVY_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "shapley/net/json.h"

namespace shapley::obs {

/// One tracked key of a Space-Saving sketch. `count` OVERESTIMATES the
/// key's true frequency by at most `error` (the count of whatever entry it
/// evicted on admission), so truth ∈ [count - error, count] — the standard
/// Space-Saving guarantee.
struct HeavyHitter {
  std::string key;
  uint64_t count = 0;
  uint64_t error = 0;

  bool operator==(const HeavyHitter& other) const {
    return key == other.key && count == other.count && error == other.error;
  }
};

/// The MERGEABLE summary of one sketch: what crosses the wire on
/// GET /v1/debug/hot and what the router folds into its fleet view.
/// Hitters are canonically ordered — count DESCENDING, key ASCENDING on
/// ties — so two summaries of equal state serialize byte-identically.
struct HeavySummary {
  size_t k = 0;              ///< Sketch capacity (max hitters tracked).
  uint64_t total = 0;        ///< Total weight recorded.
  uint64_t evictions = 0;    ///< Admissions that displaced a tracked key.
  std::vector<HeavyHitter> hitters;
};

/// Deterministic Space-Saving top-K sketch (Metwally et al.): at most K
/// tracked keys; a hit increments its key; a miss with room inserts
/// (weight, error 0); a miss at capacity evicts the minimum-count entry
/// (ties broken by key ASCENDING — fully deterministic, no arrival-order
/// dependence among equals) and inserts the new key with count
/// min + weight and error min. Every operation is O(K) worst case under
/// one mutex — K is small (32 by default) and the scan is branch-light,
/// so the always-on cost is a sub-microsecond constant.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t k = 32);

  SpaceSaving(const SpaceSaving&) = delete;
  SpaceSaving& operator=(const SpaceSaving&) = delete;

  void Record(const std::string& key, uint64_t weight = 1);

  /// Canonical snapshot (count desc, key asc).
  HeavySummary Summary() const;

  size_t k() const { return k_; }
  uint64_t total() const;
  uint64_t evictions() const;
  size_t keys_tracked() const;

 private:
  const size_t k_;
  mutable std::mutex mutex_;
  std::vector<HeavyHitter> entries_;  ///< Unordered; ≤ k_ of them.
  uint64_t total_ = 0;
  uint64_t evictions_ = 0;
};

/// Merges two summaries into one of capacity max(a.k, b.k): counts and
/// errors of shared keys ADD (each side's overestimate bound carries
/// through), one-sided keys pass verbatim, then the union truncates to
/// capacity in canonical order. For ≤ k distinct keys across both sides
/// the merge is EXACT and associative (pinned by tests/obs/heavy_test.cc);
/// past capacity, truncation keeps the top-K view and `total`/`evictions`
/// still add exactly — the documented mergeable-summary contract the
/// router's fleet-wide /v1/debug/hot relies on.
HeavySummary MergeHeavySummaries(const HeavySummary& a,
                                 const HeavySummary& b);

/// Wire codec of a summary: {"k":K,"total":N,"evictions":E,
/// "hitters":[{"key":...,"count":...,"error":...},...]} in canonical
/// order. Parse accepts exactly what Json produces (unknown members are
/// ignored, so newer fields pass old routers).
net::Json HeavySummaryJson(const HeavySummary& summary);
std::optional<HeavySummary> ParseHeavySummary(const net::Json& json);

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_HEAVY_H_
