#ifndef SHAPLEY_OBS_REQLOG_H_
#define SHAPLEY_OBS_REQLOG_H_

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace shapley::obs {

/// Request capture for record/replay: the server (net/server.h, via
/// ServerOptions::request_log) appends one ndjson line per POST request it
/// reads off a socket — BEFORE decoding, so the captured body is the exact
/// wire bytes, malformed requests included (a replay must reproduce their
/// error responses too). The log is self-contained: replaying it against a
/// fresh process reproduces the original responses bit-for-bit (after
/// stripping run-volatile timing fields), because the serving stack is
/// deterministic in (request bytes, seed).
///
/// Line shape (one JSON object per line, no blank lines):
///   {"t_ms": 12.5, "target": "/v1/compute", "body": "{...verbatim...}"}
/// t_ms is milliseconds since the writer was constructed (steady clock), so
/// original-speed replay can reproduce the capture's pacing.

struct LogEntry {
  double t_ms = 0.0;    ///< Capture-relative arrival time.
  std::string target;   ///< Request target, e.g. "/v1/compute".
  std::string body;     ///< Verbatim request body bytes.
};

/// Thread-safe appending ndjson writer. One writer may be shared by every
/// connection thread of a server (Append serializes under a mutex, and one
/// request is one line, so lines never interleave).
class RequestLogWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error when the file
  /// cannot be opened.
  explicit RequestLogWriter(const std::string& path);

  /// Appends one captured request, stamped with now - construction time.
  void Append(const std::string& target, const std::string& body);

  /// Lines appended so far.
  size_t entries() const;

  /// Flushes buffered lines to the file (Append already writes through the
  /// stream; this forces the OS handoff — call before handing the path to a
  /// reader while the writer is still live).
  void Flush();

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::chrono::steady_clock::time_point epoch_;
  size_t entries_ = 0;
};

/// Parses a captured log back into entries. Returns nullopt (and fills
/// `error` with a "line N: reason" message) on the first malformed line —
/// a truncated capture should fail loudly, not replay a prefix silently.
std::optional<std::vector<LogEntry>> ReadRequestLog(const std::string& path,
                                                    std::string* error);

/// ReadRequestLog on in-memory text (the file reader delegates here).
std::optional<std::vector<LogEntry>> ParseRequestLog(const std::string& text,
                                                     std::string* error);

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_REQLOG_H_
