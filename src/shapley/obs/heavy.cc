#include "shapley/obs/heavy.h"

#include <algorithm>
#include <utility>

namespace shapley::obs {

namespace {

/// Canonical summary order: count descending, key ascending on ties.
bool CanonicalLess(const HeavyHitter& a, const HeavyHitter& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;
}

}  // namespace

SpaceSaving::SpaceSaving(size_t k) : k_(std::max<size_t>(1, k)) {
  entries_.reserve(k_);
}

void SpaceSaving::Record(const std::string& key, uint64_t weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_ += weight;
  for (HeavyHitter& entry : entries_) {
    if (entry.key == key) {
      entry.count += weight;
      return;
    }
  }
  if (entries_.size() < k_) {
    entries_.push_back(HeavyHitter{key, weight, 0});
    return;
  }
  // At capacity: displace the minimum-count entry (key-ascending
  // tie-break keeps eviction independent of arrival order among equals).
  size_t victim = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[victim].count ||
        (entries_[i].count == entries_[victim].count &&
         entries_[i].key < entries_[victim].key)) {
      victim = i;
    }
  }
  const uint64_t floor = entries_[victim].count;
  entries_[victim] = HeavyHitter{key, floor + weight, floor};
  ++evictions_;
}

HeavySummary SpaceSaving::Summary() const {
  HeavySummary summary;
  summary.k = k_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    summary.total = total_;
    summary.evictions = evictions_;
    summary.hitters = entries_;
  }
  std::sort(summary.hitters.begin(), summary.hitters.end(), CanonicalLess);
  return summary;
}

uint64_t SpaceSaving::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

uint64_t SpaceSaving::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

size_t SpaceSaving::keys_tracked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

HeavySummary MergeHeavySummaries(const HeavySummary& a,
                                 const HeavySummary& b) {
  HeavySummary merged;
  merged.k = std::max(a.k, b.k);
  merged.total = a.total + b.total;
  merged.evictions = a.evictions + b.evictions;
  merged.hitters = a.hitters;
  for (const HeavyHitter& hitter : b.hitters) {
    bool found = false;
    for (HeavyHitter& mine : merged.hitters) {
      if (mine.key == hitter.key) {
        mine.count += hitter.count;
        mine.error += hitter.error;
        found = true;
        break;
      }
    }
    if (!found) merged.hitters.push_back(hitter);
  }
  std::sort(merged.hitters.begin(), merged.hitters.end(), CanonicalLess);
  if (merged.hitters.size() > merged.k) merged.hitters.resize(merged.k);
  return merged;
}

net::Json HeavySummaryJson(const HeavySummary& summary) {
  net::Json hitters = net::Json::Arr();
  for (const HeavyHitter& hitter : summary.hitters) {
    net::Json entry;
    entry.Set("key", net::Json::Str(hitter.key));
    entry.Set("count", net::Json::Number(hitter.count));
    entry.Set("error", net::Json::Number(hitter.error));
    hitters.Push(std::move(entry));
  }
  net::Json json;
  json.Set("k", net::Json::Number(uint64_t{summary.k}));
  json.Set("total", net::Json::Number(summary.total));
  json.Set("evictions", net::Json::Number(summary.evictions));
  json.Set("hitters", std::move(hitters));
  return json;
}

std::optional<HeavySummary> ParseHeavySummary(const net::Json& json) {
  if (!json.is_object()) return std::nullopt;
  HeavySummary summary;
  const net::Json* k = json.Find("k");
  const net::Json* total = json.Find("total");
  const net::Json* evictions = json.Find("evictions");
  const net::Json* hitters = json.Find("hitters");
  if (k == nullptr || !k->IfUint64().has_value() || total == nullptr ||
      !total->IfUint64().has_value() || evictions == nullptr ||
      !evictions->IfUint64().has_value() || hitters == nullptr ||
      hitters->IfArray() == nullptr) {
    return std::nullopt;
  }
  summary.k = static_cast<size_t>(*k->IfUint64());
  summary.total = *total->IfUint64();
  summary.evictions = *evictions->IfUint64();
  for (const net::Json& entry : *hitters->IfArray()) {
    const net::Json* key = entry.Find("key");
    const net::Json* count = entry.Find("count");
    const net::Json* error = entry.Find("error");
    if (key == nullptr || key->IfString() == nullptr || count == nullptr ||
        !count->IfUint64().has_value() || error == nullptr ||
        !error->IfUint64().has_value()) {
      return std::nullopt;
    }
    summary.hitters.push_back(
        HeavyHitter{*key->IfString(), *count->IfUint64(),
                    *error->IfUint64()});
  }
  return summary;
}

}  // namespace shapley::obs
