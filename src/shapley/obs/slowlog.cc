#include "shapley/obs/slowlog.h"

#include <algorithm>
#include <utility>

namespace shapley::obs {

SlowLog::SlowLog(double threshold_ms, size_t capacity)
    : threshold_ms_(threshold_ms),
      capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

void SlowLog::Capture(SlowEntry entry) {
  entry.t_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[total_ % capacity_] = std::move(entry);
  }
  ++total_;
}

std::vector<SlowEntry> SlowLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlowEntry> entries;
  entries.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    entries = ring_;
  } else {
    // Full ring: the oldest resident is the next overwrite target.
    for (size_t i = 0; i < capacity_; ++i) {
      entries.push_back(ring_[(total_ + i) % capacity_]);
    }
  }
  return entries;
}

uint64_t SlowLog::total_captured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

net::Json SlowEntryJson(const SlowEntry& entry) {
  net::Json json;
  json.Set("t_ms", net::Json::Number(entry.t_ms));
  json.Set("target", net::Json::Str(entry.target));
  json.Set("body", net::Json::Str(entry.body));
  json.Set("latency_ms", net::Json::Number(entry.latency_ms));
  json.Set("status", net::Json::Number(int64_t{entry.status}));
  json.Set("engine", net::Json::Str(entry.engine));
  json.Set("mode", net::Json::Str(entry.mode));
  json.Set("strategy", net::Json::Str(entry.strategy));
  json.Set("shard_key_hash", net::Json::Number(entry.shard_key_hash));
  json.Set("trace_id", net::Json::Str(entry.trace_id));
  return json;
}

bool ParseSlowLogBody(const std::string& json_body,
                      std::vector<LogEntry>* out) {
  std::string error;
  const auto parsed = net::Json::Parse(json_body, &error);
  if (!parsed.has_value() || !parsed->is_object()) return false;
  const net::Json* entries = parsed->Find("entries");
  if (entries == nullptr || entries->IfArray() == nullptr) return false;
  std::vector<LogEntry> log;
  for (const net::Json& entry : *entries->IfArray()) {
    const net::Json* t_ms = entry.Find("t_ms");
    const net::Json* target = entry.Find("target");
    const net::Json* body = entry.Find("body");
    if (t_ms == nullptr || !t_ms->IfDouble().has_value() ||
        target == nullptr || target->IfString() == nullptr ||
        body == nullptr || body->IfString() == nullptr) {
      return false;
    }
    log.push_back(LogEntry{*t_ms->IfDouble(), *target->IfString(),
                           *body->IfString()});
  }
  *out = std::move(log);
  return true;
}

}  // namespace shapley::obs
