#ifndef SHAPLEY_OBS_SLOWLOG_H_
#define SHAPLEY_OBS_SLOWLOG_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "shapley/net/json.h"
#include "shapley/obs/reqlog.h"

namespace shapley::obs {

/// One captured outlier: the verbatim POST body of a request that exceeded
/// the slow threshold, plus the digest fields needed to triage it without
/// re-running it. The body is EXACTLY what arrived on the wire, so the
/// entry replays bit-identically through the Replay harness.
struct SlowEntry {
  double t_ms = 0.0;           ///< Ms since the log's epoch (relative).
  std::string target;          ///< Endpoint the body was POSTed to.
  std::string body;            ///< Verbatim request body.
  double latency_ms = 0.0;     ///< What made it slow.
  int status = 0;
  std::string engine;
  std::string mode;
  std::string strategy;
  uint64_t shard_key_hash = 0;
  std::string trace_id;        ///< "" when the slow request was untraced.
};

/// A bounded ring of SlowEntries. ShouldCapture is the only call on the
/// fast path — one double compare, no lock — so the always-on cost of slow
/// capture is paid ONLY by requests that were already slow.
class SlowLog {
 public:
  explicit SlowLog(double threshold_ms = 250.0, size_t capacity = 32);

  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  bool ShouldCapture(double latency_ms) const {
    return threshold_ms_ > 0 && latency_ms >= threshold_ms_;
  }

  /// Stamps entry.t_ms (relative to the log's epoch) and appends,
  /// overwriting the oldest entry at capacity.
  void Capture(SlowEntry entry);

  /// Resident entries, oldest → newest.
  std::vector<SlowEntry> Snapshot() const;

  uint64_t total_captured() const;
  double threshold_ms() const { return threshold_ms_; }
  size_t capacity() const { return capacity_; }

 private:
  const double threshold_ms_;
  const size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SlowEntry> ring_;    ///< ring_[seq % capacity_].
  uint64_t total_ = 0;             ///< Next sequence number.
};

/// One slow entry in the GET /v1/debug/slow wire shape: {"t_ms":...,
/// "target":...,"body":<verbatim string>,"latency_ms":...,"status":...,
/// "engine":...,"mode":...,"strategy":...,"shard_key_hash":...,
/// "trace_id":...} in that (canonical) key order.
net::Json SlowEntryJson(const SlowEntry& entry);

/// Rebuilds Replay-ready LogEntries from a GET /v1/debug/slow response
/// body: each slow entry's {t_ms, target, body} becomes one LogEntry, in
/// log order, with the body verbatim — the slow-log → replay workflow.
/// Returns false (and leaves `out` untouched) if the body is not a
/// well-formed slow-log response.
bool ParseSlowLogBody(const std::string& json_body,
                      std::vector<LogEntry>* out);

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_SLOWLOG_H_
