#include "shapley/obs/metrics.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace shapley::obs {

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

// Prometheus renders numbers with full double precision; %.17g-style
// round-trip output keeps sums exact while printing integers bare.
std::string NumberText(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; past the last bound
  // the observation lands in the implicit +Inf bucket.
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + value,
                                     std::memory_order_relaxed)) {
  }
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
      10000};
  return kBuckets;
}

const std::vector<double>& DepthBuckets() {
  static const std::vector<double> kBuckets = {0, 1, 2, 4, 8, 16, 32, 64,
                                               128, 256};
  return kBuckets;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series* s = GetSeries(GetFamily(name, help, Kind::kCounter, {}), labels);
  if (!s->counter) s->counter = std::make_unique<Counter>();
  return s->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series* s = GetSeries(GetFamily(name, help, Kind::kGauge, {}), labels);
  if (!s->gauge) s->gauge = std::make_unique<Gauge>();
  return s->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::vector<double>& bounds,
                                         const Labels& labels) {
  if (bounds.empty()) {
    throw std::invalid_argument("histogram '" + name + "' needs buckets");
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::invalid_argument("histogram '" + name +
                                  "' buckets must be strictly increasing");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Series* s = GetSeries(GetFamily(name, help, Kind::kHistogram, bounds),
                        labels);
  if (!s->histogram) s->histogram = std::make_unique<Histogram>(bounds);
  return s->histogram.get();
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(
    const std::string& name, const std::string& help, Kind kind,
    const std::vector<double>& upper_bounds) {
  if (!ValidMetricName(name)) {
    throw std::invalid_argument("invalid metric name: '" + name + "'");
  }
  for (auto& family : families_) {
    if (family->name != name) continue;
    if (family->kind != kind) {
      throw std::logic_error("metric '" + name +
                             "' re-registered with a different kind");
    }
    if (kind == Kind::kHistogram && family->upper_bounds != upper_bounds) {
      throw std::logic_error("histogram '" + name +
                             "' re-registered with different buckets");
    }
    return family.get();
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  family->upper_bounds = upper_bounds;
  families_.push_back(std::move(family));
  return families_.back().get();
}

MetricsRegistry::Series* MetricsRegistry::GetSeries(Family* family,
                                                    const Labels& labels) {
  for (const auto& [key, value] : labels) {
    if (!ValidLabelName(key)) {
      throw std::invalid_argument("invalid label name: '" + key + "'");
    }
    (void)value;
  }
  for (auto& series : family->series) {
    if (series->labels == labels) return series.get();
  }
  auto series = std::make_unique<Series>();
  series->labels = labels;
  family->series.push_back(std::move(series));
  return family->series.back().get();
}

void MetricsRegistry::AddCollector(std::function<void()> collect) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collect));
}

std::string MetricsRegistry::RenderPrometheus() {
  // Collectors register/update instruments, so they must run before the
  // registry lock is taken (GetCounter et al. re-lock).
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    collectors = collectors_;
  }
  for (auto& collect : collectors) collect();

  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& family : families_) {
    out << "# HELP " << family->name << " " << family->help << "\n";
    out << "# TYPE " << family->name << " ";
    switch (family->kind) {
      case Kind::kCounter:
        out << "counter\n";
        break;
      case Kind::kGauge:
        out << "gauge\n";
        break;
      case Kind::kHistogram:
        out << "histogram\n";
        break;
    }
    for (const auto& series : family->series) {
      switch (family->kind) {
        case Kind::kCounter:
          out << SeriesText(family->name, series->labels) << " "
              << series->counter->value() << "\n";
          break;
        case Kind::kGauge:
          out << SeriesText(family->name, series->labels) << " "
              << NumberText(series->gauge->value()) << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series->histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i <= h.upper_bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            Labels with_le = series->labels;
            with_le.emplace_back(
                "le", i < h.upper_bounds().size()
                          ? NumberText(h.upper_bounds()[i])
                          : "+Inf");
            out << SeriesText(family->name + "_bucket", with_le) << " "
                << cumulative << "\n";
          }
          out << SeriesText(family->name + "_sum", series->labels) << " "
              << NumberText(h.sum()) << "\n";
          out << SeriesText(family->name + "_count", series->labels) << " "
              << h.count() << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

std::string SeriesText(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace shapley::obs
