#include "shapley/obs/trace.h"

namespace shapley::obs {

double RequestTrace::TotalMs() const {
  double total = 0.0;
  for (const TraceSpan& span : spans) total += span.ms;
  return total;
}

const TraceSpan* RequestTrace::Find(const std::string& name) const {
  for (const TraceSpan& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

}  // namespace shapley::obs
