#include "shapley/obs/trace.h"

#include <algorithm>

namespace shapley::obs {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(std::string_view bytes, uint64_t basis) {
  uint64_t hash = basis;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

TraceContext TraceContext::Derive(std::string_view request_bytes) {
  TraceContext context;
  // Two independent FNV-1a passes (the standard offset basis and a second
  // basis derived from it) give 128 bits; fold the basis back in so the
  // empty request still yields a non-zero id.
  context.trace_hi = Fnv1a(request_bytes, 14695981039346656037ull);
  context.trace_lo = Fnv1a(request_bytes, 0x9e3779b97f4a7c15ull);
  if (context.trace_hi == 0) context.trace_hi = kFnvPrime;
  if ((context.trace_hi | context.trace_lo) == 0) context.trace_lo = 1;
  context.parent_span = 0;
  return context;
}

std::string TraceContext::TraceIdHex() const {
  return HexU64(trace_hi) + HexU64(trace_lo);
}

std::string HexU64(uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::optional<uint64_t> ParseHexU64(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

std::optional<std::pair<uint64_t, uint64_t>> ParseTraceIdHex(
    std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  std::optional<uint64_t> hi = ParseHexU64(text.substr(0, 16));
  std::optional<uint64_t> lo = ParseHexU64(text.substr(16));
  if (!hi.has_value() || !lo.has_value()) return std::nullopt;
  return std::make_pair(*hi, *lo);
}

const std::string* TraceSpan::FindAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool WellNested(const TraceSpan& span) {
  for (const TraceSpan& child : span.children) {
    if (child.start_ms < 0.0) return false;
    if (child.start_ms + child.ms > span.ms + 1e-6) return false;
    if (!WellNested(child)) return false;
  }
  return true;
}

const TraceSpan* RequestTrace::Find(const std::string& name) const {
  const TraceSpan* stack[1] = {&root};
  std::vector<const TraceSpan*> pending(stack, stack + 1);
  while (!pending.empty()) {
    const TraceSpan* span = pending.back();
    pending.pop_back();
    if (span->name == name) return span;
    // Push children in reverse so pre-order (first child first) wins.
    for (auto it = span->children.rbegin(); it != span->children.rend();
         ++it) {
      pending.push_back(&*it);
    }
  }
  return nullptr;
}

TraceRecorder::TraceRecorder(std::string root_name, TraceContext context)
    : TraceRecorder(std::move(root_name), context,
                    std::chrono::steady_clock::now()) {}

TraceRecorder::TraceRecorder(std::string root_name, TraceContext context,
                             std::chrono::steady_clock::time_point epoch)
    : context_(context), epoch_(epoch) {
  Open root;
  root.span.name = std::move(root_name);
  root.start_abs = 0.0;
  open_.push_back(std::move(root));
}

double TraceRecorder::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::Begin(const std::string& name) {
  const double now = NowMs();
  std::lock_guard<std::mutex> lock(mutex_);
  Open open;
  open.span.name = name;
  open.start_abs = now;
  open_.push_back(std::move(open));
}

void TraceRecorder::Attr(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.back().span.attrs.emplace_back(key, std::move(value));
}

void TraceRecorder::CloseTop(TraceSpan* graft) {
  Open closing = std::move(open_.back());
  open_.pop_back();
  closing.span.ms = std::max(closing.span.ms, NowMs() - closing.start_abs);
  if (graft != nullptr) {
    // The remote subtree ran strictly inside this span's real-time window
    // (the window includes both network legs), so its duration bounds the
    // span's from below; split the residual delay symmetrically.
    closing.span.ms = std::max(closing.span.ms, graft->ms);
    graft->start_ms = std::max(0.0, (closing.span.ms - graft->ms) / 2.0);
    closing.span.children.push_back(std::move(*graft));
  }
  Open& parent = open_.back();
  closing.span.start_ms = closing.start_abs - parent.start_abs;
  parent.span.children.push_back(std::move(closing.span));
}

void TraceRecorder::End() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_.size() <= 1) return;  // The root is Finish()'s to close.
  CloseTop(nullptr);
}

void TraceRecorder::EndGraft(TraceSpan subtree) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_.size() <= 1) return;
  CloseTop(&subtree);
}

void TraceRecorder::AddClosed(const std::string& name, double start_ms,
                              double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSpan span;
  span.name = name;
  span.start_ms = start_ms;
  span.ms = ms;
  open_.back().span.children.push_back(std::move(span));
}

namespace {

/// Bottom-up: a parent always covers its children. Growth, not
/// truncation — durations of grafted subtrees are real measurements.
void EnsureContainment(TraceSpan* span) {
  for (TraceSpan& child : span->children) {
    EnsureContainment(&child);
    if (child.start_ms < 0.0) child.start_ms = 0.0;
    span->ms = std::max(span->ms, child.start_ms + child.ms);
  }
}

}  // namespace

RequestTrace TraceRecorder::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (open_.size() > 1) CloseTop(nullptr);
  RequestTrace trace;
  trace.context = context_;
  trace.root = std::move(open_.back().span);
  trace.root.start_ms = 0.0;
  trace.root.ms = std::max(trace.root.ms, NowMs() - open_.back().start_abs);
  open_.clear();
  EnsureContainment(&trace.root);
  return trace;
}

}  // namespace shapley::obs
