#ifndef SHAPLEY_OBS_PHASE_METRICS_H_
#define SHAPLEY_OBS_PHASE_METRICS_H_

#include "shapley/obs/metrics.h"
#include "shapley/obs/trace.h"

namespace shapley::obs {

/// The bridge from per-request span trees (obs/trace.h) to the aggregate
/// scrape: every span of a finished trace feeds the
/// shapley_phase_duration_ms{phase="<span name>"} histogram family, so the
/// deep-path profile is visible both per-request (the wire "trace" block)
/// and fleet-wide (/metrics), and the two agree by construction — they are
/// the same measurements.

/// Eagerly registers shapley_phase_duration_ms for every phase the serving
/// stack emits, so a scrape exposes the family at zero traced traffic
/// (dashboards and the CI smoke can grep for it unconditionally).
void RegisterPhaseMetrics(MetricsRegistry* registry);

/// Walks a FINISHED span tree depth-first, observing each span's duration
/// into shapley_phase_duration_ms{phase=<name>}. Runs once per traced
/// request, off the untraced hot path entirely.
void ObserveTracePhases(MetricsRegistry* registry, const TraceSpan& root);

}  // namespace shapley::obs

#endif  // SHAPLEY_OBS_PHASE_METRICS_H_
