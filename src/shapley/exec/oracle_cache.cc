#include "shapley/exec/oracle_cache.h"

#include <mutex>
#include <sstream>
#include <utility>

#include "shapley/data/partitioned_database.h"
#include "shapley/engines/fgmc.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/lineage/lineage.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

namespace {

// Appends one database part as "|R(3,7) S(7)" using relation names (schemas
// are object-local, names are not) and interned constant ids (process-wide
// canonical). Facts are already sorted and unique inside a Database.
void AppendFacts(std::ostream& os, const Database& part) {
  os << '|';
  const auto& schema = part.schema();
  for (const Fact& fact : part.facts()) {
    os << (schema != nullptr ? schema->name(fact.relation())
                             : std::to_string(fact.relation()))
       << '(';
    for (size_t i = 0; i < fact.args().size(); ++i) {
      if (i > 0) os << ',';
      os << fact.args()[i].id();
    }
    os << ')';
  }
}

}  // namespace

std::string OracleCache::Fingerprint(const std::string& oracle_name,
                                     const BooleanQuery& query,
                                     const PartitionedDatabase& db) {
  std::ostringstream os;
  os << oracle_name << '\x1f' << query.ToString() << '\x1f';
  AppendFacts(os, db.endogenous());
  AppendFacts(os, db.exogenous());
  return os.str();
}

Polynomial OracleCache::CountBySize(FgmcEngine& oracle,
                                    const BooleanQuery& query,
                                    const PartitionedDatabase& db) {
  const std::string key = Fingerprint(oracle.name(), query, db);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = counts_.find(key);
    if (it != counts_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Polynomial counts = oracle.CountBySize(query, db);
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (counts_.size() >= max_entries_) counts_.clear();
    counts_.emplace(key, counts);
  }
  return counts;
}

std::shared_ptr<const DdnnfCircuit> OracleCache::Circuit(
    const BooleanQuery& query, const PartitionedDatabase& db,
    size_t support_cap, size_t node_cap) {
  std::string key = Fingerprint("ddnnf", query, db);
  key += '\x1f' + std::to_string(support_cap) + ':' +
         std::to_string(node_cap);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = circuits_.find(key);
    if (it != circuits_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Lineage lineage = BuildLineage(query, db, support_cap);
  auto circuit =
      std::make_shared<const DdnnfCircuit>(CompileDnf(lineage, node_cap));
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (circuits_.size() >= max_entries_) circuits_.clear();
    auto [it, inserted] = circuits_.emplace(std::move(key), circuit);
    if (!inserted) circuit = it->second;  // First insert wins.
  }
  return circuit;
}

size_t OracleCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return counts_.size() + circuits_.size();
}

void OracleCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  counts_.clear();
  circuits_.clear();
}

}  // namespace shapley
