#include "shapley/exec/oracle_cache.h"

#include <sstream>
#include <utility>

#include "shapley/data/partitioned_database.h"
#include "shapley/engines/fgmc.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/lineage/lineage.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

namespace {

// Appends one database part as "|R(3,7) S(7)" using relation names (schemas
// are object-local, names are not) and interned constant ids (process-wide
// canonical). Facts are already sorted and unique inside a Database.
void AppendFacts(std::ostream& os, const Database& part) {
  os << '|';
  const auto& schema = part.schema();
  for (const Fact& fact : part.facts()) {
    os << (schema != nullptr ? schema->name(fact.relation())
                             : std::to_string(fact.relation()))
       << '(';
    for (size_t i = 0; i < fact.args().size(); ++i) {
      if (i > 0) os << ',';
      os << fact.args()[i].id();
    }
    os << ')';
  }
}

// Approximate heap footprint of a count polynomial: per-coefficient object
// overhead plus the magnitude's limb bytes.
size_t ApproxBytes(const Polynomial& p) {
  size_t bytes = sizeof(Polynomial);
  for (const BigInt& c : p.coefficients()) {
    bytes += sizeof(BigInt) + (c.BitLength() + 7) / 8;
  }
  return bytes;
}

}  // namespace

std::string OracleCache::Fingerprint(const std::string& oracle_name,
                                     const BooleanQuery& query,
                                     const PartitionedDatabase& db) {
  std::ostringstream os;
  os << oracle_name << '\x1f' << query.ToString() << '\x1f';
  AppendFacts(os, db.endogenous());
  AppendFacts(os, db.exogenous());
  return os.str();
}

Polynomial OracleCache::CountBySize(FgmcEngine& oracle,
                                    const BooleanQuery& query,
                                    const PartitionedDatabase& db) {
  const std::string key = Fingerprint(oracle.name(), query, db);
  std::shared_ptr<const Polynomial> cached;
  {
    std::lock_guard<std::mutex> lock(counts_.mutex);
    counts_.Lookup(key, clock_.fetch_add(1), &cached);
  }
  if (cached != nullptr) {
    counts_.stats.hits.fetch_add(1, std::memory_order_relaxed);
    return *cached;  // The value copy happens outside the lock.
  }
  counts_.stats.misses.fetch_add(1, std::memory_order_relaxed);
  auto counts =
      std::make_shared<const Polynomial>(oracle.CountBySize(query, db));
  const size_t counts_bytes = ApproxBytes(*counts);
  std::shared_ptr<const Polynomial> resident;
  {
    std::lock_guard<std::mutex> lock(counts_.mutex);
    resident = counts_.Insert(key, std::move(counts), counts_bytes,
                              clock_.fetch_add(1));
  }
  EnforceBudget();
  return *resident;  // Shared-ptr keeps the value alive across eviction.
}

std::shared_ptr<const DdnnfCircuit> OracleCache::Circuit(
    const BooleanQuery& query, const PartitionedDatabase& db,
    size_t support_cap, size_t node_cap) {
  std::string key = Fingerprint("ddnnf", query, db);
  key += '\x1f' + std::to_string(support_cap) + ':' +
         std::to_string(node_cap);
  {
    std::lock_guard<std::mutex> lock(circuits_.mutex);
    std::shared_ptr<const DdnnfCircuit> cached;
    if (circuits_.Lookup(key, clock_.fetch_add(1), &cached)) {
      circuits_.stats.hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  circuits_.stats.misses.fetch_add(1, std::memory_order_relaxed);
  Lineage lineage = BuildLineage(query, db, support_cap);
  auto circuit =
      std::make_shared<const DdnnfCircuit>(CompileDnf(lineage, node_cap));
  std::shared_ptr<const DdnnfCircuit> resident;
  {
    std::lock_guard<std::mutex> lock(circuits_.mutex);
    resident = circuits_.Insert(std::move(key), circuit,
                                circuit->ApproxBytes(), clock_.fetch_add(1));
  }
  EnforceBudget();
  return resident;
}

std::shared_ptr<SatMemo> OracleCache::SatTable(const BooleanQuery& query,
                                               const PartitionedDatabase& db) {
  const std::string key = Fingerprint("sat-memo", query, db);
  std::shared_ptr<SatMemo> cached;
  {
    std::lock_guard<std::mutex> lock(memos_.mutex);
    auto it = memos_.index.find(std::string_view(key));
    if (it != memos_.index.end()) {
      memos_.lru.splice(memos_.lru.begin(), memos_.lru, it->second);
      it->second->tick = clock_.fetch_add(1);
      // Memos grow after insertion (unlike the immutable polynomials and
      // circuits), so every access reconciles the budget against the
      // memo's current footprint.
      const size_t now_bytes =
          it->second->key.size() + it->second->value->ApproxBytes();
      memos_.bytes += now_bytes - it->second->bytes;
      it->second->bytes = now_bytes;
      cached = it->second->value;
    }
  }
  if (cached != nullptr) {
    memos_.stats.hits.fetch_add(1, std::memory_order_relaxed);
    EnforceBudget();  // The reconciled growth may now exceed the budget.
    return cached;
  }
  memos_.stats.misses.fetch_add(1, std::memory_order_relaxed);
  auto memo = std::make_shared<SatMemo>();
  const size_t memo_bytes = memo->ApproxBytes();
  std::shared_ptr<SatMemo> resident;
  {
    std::lock_guard<std::mutex> lock(memos_.mutex);
    // Concurrent misses race to insert an *empty* memo; losing one is
    // free (no computed work is discarded, unlike the counting tables).
    resident = memos_.Insert(key, std::move(memo), memo_bytes,
                             clock_.fetch_add(1));
  }
  EnforceBudget();
  return resident;
}

void OracleCache::EnforceBudget() {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex, memos_.mutex);
  // Per-table entry bound. (EvictTail attributes each eviction to its
  // table's counters — the resolution shapley_cache_evictions_total wants.)
  while (counts_.CanEvict() && counts_.lru.size() > max_entries_) {
    counts_.EvictTail();
  }
  while (circuits_.CanEvict() && circuits_.lru.size() > max_entries_) {
    circuits_.EvictTail();
  }
  while (memos_.CanEvict() && memos_.lru.size() > max_entries_) {
    memos_.EvictTail();
  }
  // Shared byte budget, true LRU across the tables via the use ticks.
  while (counts_.bytes + circuits_.bytes + memos_.bytes > max_bytes_) {
    struct Candidate {
      bool evictable;
      uint64_t tick;
    };
    const Candidate candidates[] = {
        {counts_.CanEvict(), counts_.CanEvict() ? counts_.TailTick() : 0},
        {circuits_.CanEvict(),
         circuits_.CanEvict() ? circuits_.TailTick() : 0},
        {memos_.CanEvict(), memos_.CanEvict() ? memos_.TailTick() : 0}};
    int oldest = -1;
    for (int i = 0; i < 3; ++i) {
      if (!candidates[i].evictable) continue;
      if (oldest == -1 || candidates[i].tick < candidates[oldest].tick) {
        oldest = i;
      }
    }
    if (oldest == -1) break;  // Only the per-table most recent entries remain.
    if (oldest == 0) {
      counts_.EvictTail();
    } else if (oldest == 1) {
      circuits_.EvictTail();
    } else {
      memos_.EvictTail();
    }
  }
}

OracleCache::Stats OracleCache::PerTableStats() const {
  auto snapshot = [](const ShardCounters& c) {
    TableStats out;
    out.hits = c.hits.load(std::memory_order_relaxed);
    out.misses = c.misses.load(std::memory_order_relaxed);
    out.inserts = c.inserts.load(std::memory_order_relaxed);
    out.evictions = c.evictions.load(std::memory_order_relaxed);
    return out;
  };
  Stats stats;
  stats.counts = snapshot(counts_.stats);
  stats.circuits = snapshot(circuits_.stats);
  stats.memos = snapshot(memos_.stats);
  return stats;
}

size_t OracleCache::size() const {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex, memos_.mutex);
  return counts_.lru.size() + circuits_.lru.size() + memos_.lru.size();
}

size_t OracleCache::bytes_used() const {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex, memos_.mutex);
  return counts_.bytes + circuits_.bytes + memos_.bytes;
}

void OracleCache::Clear() {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex, memos_.mutex);
  counts_.Clear();
  circuits_.Clear();
  memos_.Clear();
}

}  // namespace shapley
