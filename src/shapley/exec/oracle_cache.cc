#include "shapley/exec/oracle_cache.h"

#include <sstream>
#include <utility>

#include "shapley/data/partitioned_database.h"
#include "shapley/engines/fgmc.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/lineage/lineage.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

namespace {

// Appends one database part as "|R(3,7) S(7)" using relation names (schemas
// are object-local, names are not) and interned constant ids (process-wide
// canonical). Facts are already sorted and unique inside a Database.
void AppendFacts(std::ostream& os, const Database& part) {
  os << '|';
  const auto& schema = part.schema();
  for (const Fact& fact : part.facts()) {
    os << (schema != nullptr ? schema->name(fact.relation())
                             : std::to_string(fact.relation()))
       << '(';
    for (size_t i = 0; i < fact.args().size(); ++i) {
      if (i > 0) os << ',';
      os << fact.args()[i].id();
    }
    os << ')';
  }
}

// Approximate heap footprint of a count polynomial: per-coefficient object
// overhead plus the magnitude's limb bytes.
size_t ApproxBytes(const Polynomial& p) {
  size_t bytes = sizeof(Polynomial);
  for (const BigInt& c : p.coefficients()) {
    bytes += sizeof(BigInt) + (c.BitLength() + 7) / 8;
  }
  return bytes;
}

}  // namespace

std::string OracleCache::Fingerprint(const std::string& oracle_name,
                                     const BooleanQuery& query,
                                     const PartitionedDatabase& db) {
  std::ostringstream os;
  os << oracle_name << '\x1f' << query.ToString() << '\x1f';
  AppendFacts(os, db.endogenous());
  AppendFacts(os, db.exogenous());
  return os.str();
}

Polynomial OracleCache::CountBySize(FgmcEngine& oracle,
                                    const BooleanQuery& query,
                                    const PartitionedDatabase& db) {
  const std::string key = Fingerprint(oracle.name(), query, db);
  std::shared_ptr<const Polynomial> cached;
  {
    std::lock_guard<std::mutex> lock(counts_.mutex);
    counts_.Lookup(key, clock_.fetch_add(1), &cached);
  }
  if (cached != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return *cached;  // The value copy happens outside the lock.
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto counts =
      std::make_shared<const Polynomial>(oracle.CountBySize(query, db));
  const size_t counts_bytes = ApproxBytes(*counts);
  std::shared_ptr<const Polynomial> resident;
  {
    std::lock_guard<std::mutex> lock(counts_.mutex);
    resident = counts_.Insert(key, std::move(counts), counts_bytes,
                              clock_.fetch_add(1));
  }
  EnforceBudget();
  return *resident;  // Shared-ptr keeps the value alive across eviction.
}

std::shared_ptr<const DdnnfCircuit> OracleCache::Circuit(
    const BooleanQuery& query, const PartitionedDatabase& db,
    size_t support_cap, size_t node_cap) {
  std::string key = Fingerprint("ddnnf", query, db);
  key += '\x1f' + std::to_string(support_cap) + ':' +
         std::to_string(node_cap);
  {
    std::lock_guard<std::mutex> lock(circuits_.mutex);
    std::shared_ptr<const DdnnfCircuit> cached;
    if (circuits_.Lookup(key, clock_.fetch_add(1), &cached)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Lineage lineage = BuildLineage(query, db, support_cap);
  auto circuit =
      std::make_shared<const DdnnfCircuit>(CompileDnf(lineage, node_cap));
  std::shared_ptr<const DdnnfCircuit> resident;
  {
    std::lock_guard<std::mutex> lock(circuits_.mutex);
    resident = circuits_.Insert(std::move(key), circuit,
                                circuit->ApproxBytes(), clock_.fetch_add(1));
  }
  EnforceBudget();
  return resident;
}

void OracleCache::EnforceBudget() {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex);
  size_t evicted = 0;
  // Per-table entry bound.
  while (counts_.CanEvict() && counts_.lru.size() > max_entries_) {
    counts_.EvictTail();
    ++evicted;
  }
  while (circuits_.CanEvict() && circuits_.lru.size() > max_entries_) {
    circuits_.EvictTail();
    ++evicted;
  }
  // Shared byte budget, true LRU across both tables via the use ticks.
  while (counts_.bytes + circuits_.bytes > max_bytes_) {
    const bool counts_evictable = counts_.CanEvict();
    const bool circuits_evictable = circuits_.CanEvict();
    if (counts_evictable &&
        (!circuits_evictable || counts_.TailTick() < circuits_.TailTick())) {
      counts_.EvictTail();
    } else if (circuits_evictable) {
      circuits_.EvictTail();
    } else {
      break;  // Only the per-table most recent entries remain.
    }
    ++evicted;
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

size_t OracleCache::size() const {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex);
  return counts_.lru.size() + circuits_.lru.size();
}

size_t OracleCache::bytes_used() const {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex);
  return counts_.bytes + circuits_.bytes;
}

void OracleCache::Clear() {
  std::scoped_lock lock(counts_.mutex, circuits_.mutex);
  counts_.Clear();
  circuits_.Clear();
}

}  // namespace shapley
