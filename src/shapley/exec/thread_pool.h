#ifndef SHAPLEY_EXEC_THREAD_POOL_H_
#define SHAPLEY_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace shapley {

/// A fixed-size worker pool with task submission and fork-join parallel
/// loops — the execution substrate of the batch runtime (Section "exec" of
/// the architecture; see exec/batch_runner.h for the high-level entry
/// point).
///
/// The hard problems this library computes (#P-hard counting, exponential
/// brute-force sweeps) are embarrassingly batchable: per-fact and per-mask
/// work items are independent and share only read-only inputs. ParallelFor
/// is designed for exactly that shape:
///  - chunks are claimed dynamically, so uneven work items balance;
///  - the calling thread participates, so nesting a ParallelFor inside a
///    pool task (batch over instances → loop over facts) cannot deadlock;
///  - the first exception thrown by the body is rethrown at the call site
///    and the remaining chunks are abandoned.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 → one per hardware thread).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task; returns a future for its result (exceptions
  /// propagate through the future).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs body(i) for every i in [begin, end), splitting the range into
  /// grain-sized chunks claimed dynamically by the workers and the calling
  /// thread. Blocks until every index was processed (or abandoned after a
  /// failure). Choose `grain` so one chunk amortizes the claim overhead —
  /// e.g. a few thousand for cheap per-mask work, 1 for per-fact oracle
  /// calls.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body, size_t grain = 1);

  /// Number of queue tasks executed so far (monotone; stats only).
  size_t tasks_executed() const { return tasks_executed_.load(); }

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
  std::atomic<size_t> tasks_executed_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_THREAD_POOL_H_
