#ifndef SHAPLEY_EXEC_ORACLE_CACHE_H_
#define SHAPLEY_EXEC_ORACLE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "shapley/arith/polynomial.h"
#include "shapley/exec/sat_memo.h"

namespace shapley {

class BooleanQuery;
class DdnnfCircuit;
class FgmcEngine;
class PartitionedDatabase;

/// Memoizes the expensive artifacts of the counting pipeline across facts,
/// instances, batches and whole service lifetimes:
///  - FGMC count-by-size polynomials, keyed by (oracle, query, Dn, Dx) —
///    the unit of cost of the SVC ≤ FGMC reduction (Claim A.1), so every
///    hit eliminates one full stratified count;
///  - compiled d-DNNF circuits, keyed by (query, Dn, Dx, compiler caps) —
///    one compilation then serves FGMC, PQE and repeated probes;
///  - coalition-satisfaction memos (SatMemo), keyed by (query, Dn, Dx) —
///    the sampling engine's shared oracle fast path, so repeated
///    sub-coalition evaluations amortize across requests like counting
///    work does.
///
/// Keys are canonical fingerprints: the query's text plus the sorted fact
/// lists of both database parts (relation names + interned constant ids),
/// so two inputs fingerprint equal iff they are the same query text over
/// equal partitioned fact sets. All entry points are thread-safe — each
/// table has its own lock, so polynomial and circuit *lookups* never
/// contend with each other (the post-insert budget pass briefly takes
/// both); concurrent misses on one key compute independently and the
/// first insert wins (duplicates are discarded — results for equal keys
/// are equal).
///
/// Every table stores its values behind shared_ptr, so the under-lock
/// work of a hit is a pointer copy plus the O(1) LRU splice — never a
/// deep copy of coefficient limbs or circuit nodes.
///
/// Capacity is bounded two ways: `max_entries` entries per table, and one
/// `max_bytes` budget of approximate heap footprint (key string +
/// polynomial coefficient limbs, compiled circuit nodes, or memo entries)
/// SHARED across all tables — circuits routinely outweigh polynomials by
/// orders of magnitude, so counting entries alone would let a handful of
/// circuits blow the budget. Eviction is LRU by size across the whole
/// cache (use ticks order entries of every table on one clock): when a
/// bound is
/// exceeded, globally least-recently-used entries are dropped until the
/// cache fits again, so a long-lived serving process keeps its hot working
/// set instead of clearing wholesale. Each table always retains its most
/// recent entry, even when that entry alone exceeds the byte budget —
/// refusing it would recompute forever.
class OracleCache {
 public:
  /// Lookup/insert/evict traffic of ONE table — the per-table resolution
  /// the shapley_cache_*_total{table=...} metric families expose (the
  /// aggregate hits()/misses()/evictions() below are sums of these).
  /// `inserts` counts entries that actually became resident; a concurrent
  /// miss whose insert lost the first-wins race is a hit-shaped non-event
  /// and is not counted.
  struct TableStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t inserts = 0;
    size_t evictions = 0;
  };
  struct Stats {
    TableStats counts;
    TableStats circuits;
    TableStats memos;
  };

  explicit OracleCache(size_t max_entries = 1 << 16,
                       size_t max_bytes = size_t{512} << 20)
      : max_entries_(max_entries == 0 ? 1 : max_entries),
        max_bytes_(max_bytes == 0 ? 1 : max_bytes) {}

  /// oracle.CountBySize(query, db), memoized.
  Polynomial CountBySize(FgmcEngine& oracle, const BooleanQuery& query,
                         const PartitionedDatabase& db);

  /// The d-DNNF circuit of the query's lineage over db, memoized.
  /// Compilation failures (caps exceeded, non-monotone query) are not
  /// cached and rethrow on every call.
  std::shared_ptr<const DdnnfCircuit> Circuit(const BooleanQuery& query,
                                              const PartitionedDatabase& db,
                                              size_t support_cap,
                                              size_t node_cap);

  /// The shared coalition-satisfaction memo for (query, db), keyed by the
  /// same canonical fingerprint as the counting tables — so the sampling
  /// engine's repeated sub-coalition evaluations amortize across batches,
  /// threads, requests and engine instances exactly like counting work
  /// does. Creates an empty memo on first use; never null.
  std::shared_ptr<SatMemo> SatTable(const BooleanQuery& query,
                                    const PartitionedDatabase& db);

  /// The canonical cache key; exposed for tests and diagnostics.
  static std::string Fingerprint(const std::string& oracle_name,
                                 const BooleanQuery& query,
                                 const PartitionedDatabase& db);

  size_t hits() const {
    return counts_.stats.hits + circuits_.stats.hits + memos_.stats.hits;
  }
  size_t misses() const {
    return counts_.stats.misses + circuits_.stats.misses +
           memos_.stats.misses;
  }
  /// Entries dropped by LRU-by-size eviction so far (all tables).
  size_t evictions() const {
    return counts_.stats.evictions + circuits_.stats.evictions +
           memos_.stats.evictions;
  }
  /// One per-table snapshot of lookup/insert/evict counters. Each counter
  /// is an individual atomic read (monitoring fidelity, like the service's
  /// ServiceStats) — the per-counter values are exact, the cross-counter
  /// cut is not a transaction.
  Stats PerTableStats() const;
  size_t size() const;
  /// Approximate bytes held across all tables right now.
  size_t bytes_used() const;
  void Clear();

 private:
  /// Per-table traffic counters; atomics so the hot lookup paths bump them
  /// with relaxed stores and PerTableStats() reads without any table lock.
  struct ShardCounters {
    std::atomic<size_t> hits{0};
    std::atomic<size_t> misses{0};
    std::atomic<size_t> inserts{0};
    std::atomic<size_t> evictions{0};
  };

  /// One LRU table: list front = most recently used; the index maps the
  /// key (owned by the list node, stable across splices) to its node.
  /// Entries carry a use tick from the cache-wide clock so the tables
  /// can be evicted against each other in true LRU order. All fields are
  /// guarded by `mutex` except the lock-free `stats` counters.
  template <typename Value>
  struct Shard {
    struct Entry {
      std::string key;
      Value value;
      size_t bytes = 0;
      uint64_t tick = 0;
    };
    mutable std::mutex mutex;
    ShardCounters stats;
    std::list<Entry> lru;
    std::unordered_map<std::string_view, typename std::list<Entry>::iterator>
        index;
    size_t bytes = 0;

    /// Bumps an existing entry and copies out the value; false on miss.
    bool Lookup(const std::string& key, uint64_t tick, Value* out) {
      auto it = index.find(std::string_view(key));
      if (it == index.end()) return false;
      lru.splice(lru.begin(), lru, it->second);
      it->second->tick = tick;
      *out = it->second->value;
      return true;
    }

    /// Inserts (first insert wins) and returns the resident value.
    Value Insert(std::string key, Value value, size_t value_bytes,
                 uint64_t tick) {
      auto it = index.find(std::string_view(key));
      if (it != index.end()) {  // Concurrent miss landed first.
        lru.splice(lru.begin(), lru, it->second);
        it->second->tick = tick;
        return it->second->value;
      }
      stats.inserts.fetch_add(1, std::memory_order_relaxed);
      lru.push_front(Entry{std::move(key), std::move(value), 0, tick});
      lru.front().bytes = lru.front().key.size() + value_bytes;
      bytes += lru.front().bytes;
      index.emplace(std::string_view(lru.front().key), lru.begin());
      return lru.front().value;
    }

    /// True when the LRU tail may be evicted (never the sole entry).
    bool CanEvict() const { return lru.size() > 1; }
    /// Use tick of the LRU tail (call only when non-empty).
    uint64_t TailTick() const { return lru.back().tick; }

    void EvictTail() {
      stats.evictions.fetch_add(1, std::memory_order_relaxed);
      index.erase(std::string_view(lru.back().key));
      bytes -= lru.back().bytes;
      lru.pop_back();
    }

    void Clear() {
      index.clear();
      lru.clear();
      bytes = 0;
    }
  };

  /// Applies both bounds; locks all shards (scoped_lock, deadlock-free).
  void EnforceBudget();

  const size_t max_entries_;
  const size_t max_bytes_;
  Shard<std::shared_ptr<const Polynomial>> counts_;
  Shard<std::shared_ptr<const DdnnfCircuit>> circuits_;
  Shard<std::shared_ptr<SatMemo>> memos_;
  std::atomic<uint64_t> clock_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_ORACLE_CACHE_H_
