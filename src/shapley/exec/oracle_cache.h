#ifndef SHAPLEY_EXEC_ORACLE_CACHE_H_
#define SHAPLEY_EXEC_ORACLE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "shapley/arith/polynomial.h"

namespace shapley {

class BooleanQuery;
class DdnnfCircuit;
class FgmcEngine;
class PartitionedDatabase;

/// Memoizes the expensive artifacts of the counting pipeline across facts,
/// instances and whole batch runs:
///  - FGMC count-by-size polynomials, keyed by (oracle, query, Dn, Dx) —
///    the unit of cost of the SVC ≤ FGMC reduction (Claim A.1), so every
///    hit eliminates one full stratified count;
///  - compiled d-DNNF circuits, keyed by (query, Dn, Dx, compiler caps) —
///    one compilation then serves FGMC, PQE and repeated probes.
///
/// Keys are canonical fingerprints: the query's text plus the sorted fact
/// lists of both database parts (relation names + interned constant ids),
/// so two inputs fingerprint equal iff they are the same query text over
/// equal partitioned fact sets. All entry points are thread-safe;
/// concurrent misses on one key compute independently and the first insert
/// wins (duplicates are discarded — results for equal keys are equal).
///
/// Capacity is bounded by `max_entries` per table with epoch eviction: when
/// a table would exceed the bound it is cleared wholesale. The workloads
/// here have no useful recency structure (a batch either fits or cycles),
/// so the dumb policy beats per-entry bookkeeping.
class OracleCache {
 public:
  explicit OracleCache(size_t max_entries = 1 << 16)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// oracle.CountBySize(query, db), memoized.
  Polynomial CountBySize(FgmcEngine& oracle, const BooleanQuery& query,
                         const PartitionedDatabase& db);

  /// The d-DNNF circuit of the query's lineage over db, memoized.
  /// Compilation failures (caps exceeded, non-monotone query) are not
  /// cached and rethrow on every call.
  std::shared_ptr<const DdnnfCircuit> Circuit(const BooleanQuery& query,
                                              const PartitionedDatabase& db,
                                              size_t support_cap,
                                              size_t node_cap);

  /// The canonical cache key; exposed for tests and diagnostics.
  static std::string Fingerprint(const std::string& oracle_name,
                                 const BooleanQuery& query,
                                 const PartitionedDatabase& db);

  size_t hits() const { return hits_.load(); }
  size_t misses() const { return misses_.load(); }
  size_t size() const;
  void Clear();

 private:
  const size_t max_entries_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, Polynomial> counts_;
  std::unordered_map<std::string, std::shared_ptr<const DdnnfCircuit>>
      circuits_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_ORACLE_CACHE_H_
