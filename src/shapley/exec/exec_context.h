#ifndef SHAPLEY_EXEC_EXEC_CONTEXT_H_
#define SHAPLEY_EXEC_EXEC_CONTEXT_H_

namespace shapley {

class OracleCache;
class ThreadPool;

/// Optional shared execution resources, installed on engines by the batch
/// runtime (see exec/batch_runner.h) or by hand. Null members mean "serial"
/// and "uncached"; engines must produce identical values either way — the
/// context may only change how fast they are obtained. The installer keeps
/// ownership and must outlive every engine call that uses the context.
struct ExecContext {
  ThreadPool* pool = nullptr;
  OracleCache* cache = nullptr;
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_EXEC_CONTEXT_H_
