#ifndef SHAPLEY_EXEC_EXEC_CONTEXT_H_
#define SHAPLEY_EXEC_EXEC_CONTEXT_H_

namespace shapley {

namespace obs {
class TraceRecorder;
}  // namespace obs

class OracleCache;
class ThreadPool;

/// Optional shared execution resources, installed on engines by the batch
/// runtime (see exec/batch_runner.h) or by hand. Null members mean "serial"
/// and "uncached"; engines must produce identical values either way — the
/// context may only change how fast they are obtained. The installer keeps
/// ownership and must outlive every engine call that uses the context.
struct ExecContext {
  ThreadPool* pool = nullptr;
  OracleCache* cache = nullptr;
  /// Per-request deep-path profiling hook (obs/trace.h): non-null only
  /// while serving a TRACED request, in which case the engine decomposes
  /// its work into phase spans (compile / delta / accumulate, sampling
  /// rounds) on this recorder. Engines must null-check before ANY trace
  /// work — a null recorder is the hot path and must stay allocation- and
  /// lock-free. Recording may not change computed values.
  obs::TraceRecorder* trace = nullptr;
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_EXEC_CONTEXT_H_
