#include "shapley/exec/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace shapley {

std::string ExecStats::ToString() const {
  std::ostringstream os;
  os << "instances=" << instances << " facts=" << facts
     << " threads=" << threads << " tasks=" << tasks
     << " oracle_calls=" << oracle_calls << " cache_hits=" << cache_hits
     << " cache_misses=" << cache_misses << " wall_ms=" << wall_ms;
  return os.str();
}

std::string ExecStats::ToJson() const {
  std::ostringstream os;
  os << "{\"instances\": " << instances << ", \"facts\": " << facts
     << ", \"threads\": " << threads << ", \"tasks\": " << tasks
     << ", \"oracle_calls\": " << oracle_calls
     << ", \"cache_hits\": " << cache_hits
     << ", \"cache_misses\": " << cache_misses
     << ", \"wall_ms\": " << wall_ms << "}";
  return os.str();
}

BatchSvcRunner::BatchSvcRunner(std::shared_ptr<SvcEngine> engine,
                               BatchOptions options)
    : engine_(std::move(engine)) {
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (options.use_cache) {
    cache_ = std::make_unique<OracleCache>(options.cache_max_entries);
  }
}

BatchSvcRunner::~BatchSvcRunner() = default;

namespace {

// Uninstalls the shared resources from the engine (and its d-DNNF oracle,
// when it has one) on scope exit, so the engine never outlives a pool or
// cache it points at — also on the exception path.
struct ContextGuard {
  SvcEngine& engine;
  LineageFgmc* lineage_oracle;
  ~ContextGuard() {
    engine.set_exec_context(ExecContext{});
    if (lineage_oracle != nullptr) lineage_oracle->set_circuit_cache(nullptr);
  }
};

}  // namespace

template <typename Result, typename PerInstance>
std::vector<Result> BatchSvcRunner::Run(const std::vector<BatchInstance>& batch,
                                        const PerInstance& per_instance) {
  const auto start = std::chrono::steady_clock::now();
  const size_t base_tasks = pool_ != nullptr ? pool_->tasks_executed() : 0;
  const size_t base_hits = cache_ != nullptr ? cache_->hits() : 0;
  const size_t base_misses = cache_ != nullptr ? cache_->misses() : 0;
  auto* via_fgmc = dynamic_cast<SvcViaFgmc*>(engine_.get());
  const size_t base_oracle = via_fgmc != nullptr ? via_fgmc->oracle_calls() : 0;

  engine_->set_exec_context(ExecContext{pool_.get(), cache_.get()});
  // A d-DNNF-backed oracle additionally shares its compiled circuits.
  LineageFgmc* lineage_oracle =
      via_fgmc != nullptr
          ? dynamic_cast<LineageFgmc*>(via_fgmc->oracle().get())
          : nullptr;
  if (lineage_oracle != nullptr) {
    lineage_oracle->set_circuit_cache(cache_.get());
  }
  ContextGuard guard{*engine_, lineage_oracle};

  std::vector<Result> results(batch.size());
  auto run_one = [&](size_t i) { results[i] = per_instance(batch[i]); };
  if (pool_ != nullptr && batch.size() > 1) {
    pool_->ParallelFor(0, batch.size(), run_one);
  } else {
    for (size_t i = 0; i < batch.size(); ++i) run_one(i);
  }

  stats_ = ExecStats{};
  stats_.instances = batch.size();
  for (const BatchInstance& instance : batch) {
    stats_.facts += instance.db.NumEndogenous();
  }
  stats_.threads = pool_ != nullptr ? pool_->num_threads() : 1;
  stats_.tasks = pool_ != nullptr ? pool_->tasks_executed() - base_tasks : 0;
  stats_.oracle_calls =
      via_fgmc != nullptr ? via_fgmc->oracle_calls() - base_oracle : 0;
  stats_.cache_hits = cache_ != nullptr ? cache_->hits() - base_hits : 0;
  stats_.cache_misses =
      cache_ != nullptr ? cache_->misses() - base_misses : 0;
  stats_.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return results;
}

std::vector<std::map<Fact, BigRational>> BatchSvcRunner::AllValues(
    const std::vector<BatchInstance>& batch) {
  return Run<std::map<Fact, BigRational>>(
      batch, [this](const BatchInstance& instance) {
        return engine_->AllValues(*instance.query, instance.db);
      });
}

std::vector<std::pair<Fact, BigRational>> BatchSvcRunner::MaxValues(
    const std::vector<BatchInstance>& batch) {
  return Run<std::pair<Fact, BigRational>>(
      batch, [this](const BatchInstance& instance) {
        return engine_->MaxValue(*instance.query, instance.db);
      });
}

}  // namespace shapley
