#include "shapley/exec/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "shapley/obs/stats_json.h"
#include "shapley/service/shapley_service.h"

namespace shapley {

std::string ExecStats::ToString() const {
  std::ostringstream os;
  os << "instances=" << instances << " facts=" << facts
     << " threads=" << threads << " tasks=" << tasks
     << " oracle_calls=" << oracle_calls << " cache_hits=" << cache_hits
     << " cache_misses=" << cache_misses << " cache_bytes=" << cache_bytes
     << " verdict_cache_hits=" << verdict_cache_hits
     << " wall_ms=" << wall_ms;
  return os.str();
}

std::string ExecStats::ToJson() const {
  // One shared codec path with /v1/stats — obs/stats_json.h owns the key
  // order; a test asserts the rendered bytes.
  return obs::ExecStatsJson(*this).Dump();
}

BatchSvcRunner::BatchSvcRunner(std::shared_ptr<SvcEngine> engine,
                               BatchOptions options)
    : engine_(std::move(engine)) {
  threads_ = options.threads;
  if (threads_ == 0) {
    threads_ = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  ServiceOptions service_options;
  service_options.threads = threads_;
  service_options.use_cache = options.use_cache;
  service_options.cache_max_entries = options.cache_max_entries;
  service_options.cache_max_bytes = options.cache_max_bytes;
  service_ = std::make_unique<ShapleyService>(service_options);
}

BatchSvcRunner::~BatchSvcRunner() = default;

ThreadPool* BatchSvcRunner::pool() {
  return threads_ > 1 ? service_->pool() : nullptr;
}

OracleCache* BatchSvcRunner::cache() { return service_->cache(); }

namespace {

// Uninstalls the shared resources from the engine (and its d-DNNF oracle,
// when it has one) on scope exit, so the engine never outlives a pool or
// cache it points at — also on the exception path.
struct ContextGuard {
  SvcEngine& engine;
  LineageFgmc* lineage_oracle;
  ~ContextGuard() {
    engine.set_exec_context(ExecContext{});
    if (lineage_oracle != nullptr) lineage_oracle->set_circuit_cache(nullptr);
  }
};

// Batch semantics are exceptions, service semantics are structured errors;
// translate back. The engine's own exception is rethrown untouched when
// the service captured one ("throws what the engine throws" — type and
// message preserved); front-end failures, which the historical runner
// could not produce, surface as SvcException (a std::invalid_argument).
[[noreturn]] void RethrowSvcError(const SvcResponse& response) {
  if (response.raw_exception != nullptr) {
    std::rethrow_exception(response.raw_exception);
  }
  throw SvcException(*response.error);
}

}  // namespace

template <typename Result, typename Extract>
std::vector<Result> BatchSvcRunner::Run(const std::vector<BatchInstance>& batch,
                                        SvcMode mode, const Extract& extract) {
  const auto start = std::chrono::steady_clock::now();
  ThreadPool* service_pool = service_->pool();
  OracleCache* shared_cache = service_->cache();
  const size_t base_tasks = service_pool->tasks_executed();
  const size_t base_hits = shared_cache != nullptr ? shared_cache->hits() : 0;
  const size_t base_misses =
      shared_cache != nullptr ? shared_cache->misses() : 0;
  auto* via_fgmc = dynamic_cast<SvcViaFgmc*>(engine_.get());
  const size_t base_oracle = via_fgmc != nullptr ? via_fgmc->oracle_calls() : 0;

  // The runner's one engine instance is shared by every request of the
  // batch, so its context is installed once here (not per request by the
  // service — engine_instance overrides skip the service's install) and
  // removed when the batch settles.
  engine_->set_exec_context(ExecContext{pool(), shared_cache});
  LineageFgmc* lineage_oracle =
      via_fgmc != nullptr
          ? dynamic_cast<LineageFgmc*>(via_fgmc->oracle().get())
          : nullptr;
  if (lineage_oracle != nullptr) {
    lineage_oracle->set_circuit_cache(shared_cache);
  }
  ContextGuard guard{*engine_, lineage_oracle};

  // One shared cancel token restores the historical first-failure-wins
  // abandonment: when a response comes back failed, setting the token
  // makes every queued-but-unstarted request of this batch resolve
  // immediately with kCancelled instead of burning its full engine run.
  // The db copy into each request is deliberate: requests are
  // self-contained values (linear in facts, dwarfed by per-instance
  // engine work).
  CancelToken abandon = MakeCancelToken();
  std::vector<SvcRequest> requests;
  requests.reserve(batch.size());
  for (const BatchInstance& instance : batch) {
    SvcRequest request;
    request.query = instance.query;
    request.db = instance.db;
    request.mode = mode;
    request.engine_instance = engine_;
    request.cancel = abandon;
    requests.push_back(std::move(request));
  }
  std::vector<std::future<SvcResponse>> futures =
      service_->SubmitBatch(std::move(requests));

  // Settle the whole batch before surfacing any failure: the engine's
  // shared context must stay installed while any request is still running.
  // Futures are read in input order, so the first failure observed is the
  // first failure by input order (cancellations can only trail it).
  std::vector<SvcResponse> responses;
  responses.reserve(futures.size());
  for (std::future<SvcResponse>& future : futures) {
    responses.push_back(future.get());
    if (!responses.back().ok()) abandon->store(true);
  }

  stats_ = ExecStats{};
  stats_.instances = batch.size();
  for (const BatchInstance& instance : batch) {
    stats_.facts += instance.db.NumEndogenous();
  }
  stats_.threads = threads_;
  stats_.tasks = service_pool->tasks_executed() - base_tasks;
  stats_.oracle_calls =
      via_fgmc != nullptr ? via_fgmc->oracle_calls() - base_oracle : 0;
  stats_.cache_hits =
      shared_cache != nullptr ? shared_cache->hits() - base_hits : 0;
  stats_.cache_misses =
      shared_cache != nullptr ? shared_cache->misses() - base_misses : 0;
  stats_.cache_bytes =
      shared_cache != nullptr ? shared_cache->bytes_used() : 0;
  // verdict_cache_hits stays 0 here by construction: the runner's
  // engine_instance requests skip classification (see the field comment).
  stats_.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  std::vector<Result> results;
  results.reserve(responses.size());
  for (SvcResponse& response : responses) {
    if (!response.ok()) RethrowSvcError(response);
    results.push_back(extract(response));
  }
  return results;
}

std::vector<std::map<Fact, BigRational>> BatchSvcRunner::AllValues(
    const std::vector<BatchInstance>& batch) {
  return Run<std::map<Fact, BigRational>>(
      batch, SvcMode::kAllValues,
      [](SvcResponse& response) { return std::move(response.values); });
}

std::vector<std::pair<Fact, BigRational>> BatchSvcRunner::MaxValues(
    const std::vector<BatchInstance>& batch) {
  return Run<std::pair<Fact, BigRational>>(
      batch, SvcMode::kMaxValue,
      [](SvcResponse& response) { return std::move(response.ranked.front()); });
}

}  // namespace shapley
