#ifndef SHAPLEY_EXEC_SAT_MEMO_H_
#define SHAPLEY_EXEC_SAT_MEMO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace shapley {

/// A concurrent memo of coalition-satisfaction verdicts for ONE
/// (query, database) pair: coalition bitmask over the sorted endogenous
/// facts → [S ∪ Dx |= q]. This is the shared fast path of the sampling
/// engine — random permutation prefixes revisit small coalitions
/// constantly (the empty prefix every permutation, size-1 prefixes every
/// n-th, ...), and each hit replaces one full query evaluation.
///
/// Masks index the endogenous facts in their Database order, which is
/// sorted and deduplicated — so two databases with equal fact sets assign
/// equal masks, and a memo keyed by the OracleCache fingerprint (see
/// OracleCache::SatTable) is shareable across requests, threads and
/// engine instances for the same (query, Dn, Dx).
///
/// Thread-safety: lock-striped; lookups and inserts from any thread.
/// Capacity: hard-capped at kMaxEntries — beyond it inserts are dropped
/// (a memo, not a cache: losing an entry only costs a re-evaluation).
class SatMemo {
 public:
  /// Entry cap across all stripes: with ~kBytesPerEntry of map overhead
  /// per verdict this bounds one memo at ~3 MiB. Only small-coalition
  /// masks are ever inserted (see the sampling engine), so the cap is
  /// headroom, not a working-set limit.
  static constexpr size_t kMaxEntries = size_t{1} << 16;

  /// Approximate unordered_map footprint per entry (node, hash bucket
  /// share, key + value), used by ApproxBytes for cache accounting.
  static constexpr size_t kBytesPerEntry = 48;

  /// Approximate heap footprint right now. Memos grow after insertion, so
  /// OracleCache re-reads this on every SatTable access and reconciles
  /// its byte budget (growth between accesses is bounded by
  /// kMaxEntries · kBytesPerEntry).
  size_t ApproxBytes() const {
    return sizeof(SatMemo) + entries() * kBytesPerEntry;
  }

  /// The memoized verdict of coalition `mask`, if known.
  std::optional<bool> Lookup(uint64_t mask) const {
    const Stripe& stripe = stripes_[StripeOf(mask)];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.verdicts.find(mask);
    if (it == stripe.verdicts.end()) return std::nullopt;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Records a verdict (no-op once the cap is reached; first insert wins,
  /// which is harmless — verdicts for equal masks are equal).
  void Insert(uint64_t mask, bool satisfied) {
    if (entries_.load(std::memory_order_relaxed) >= kMaxEntries) return;
    Stripe& stripe = stripes_[StripeOf(mask)];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stripe.verdicts.emplace(mask, satisfied).second) {
      entries_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  size_t entries() const { return entries_.load(std::memory_order_relaxed); }
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kStripes = 16;

  /// Masks are prefix-correlated (low bits dense); remix before striping
  /// so neighboring coalitions spread across locks.
  static size_t StripeOf(uint64_t mask) {
    uint64_t z = (mask + 0x9e3779b97f4a7c15ull) * 0xbf58476d1ce4e5b9ull;
    return static_cast<size_t>((z ^ (z >> 31)) & (kStripes - 1));
  }

  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, bool> verdicts;
  };

  Stripe stripes_[kStripes];
  std::atomic<size_t> entries_{0};
  mutable std::atomic<size_t> hits_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_SAT_MEMO_H_
