#ifndef SHAPLEY_EXEC_BATCH_RUNNER_H_
#define SHAPLEY_EXEC_BATCH_RUNNER_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shapley/arith/big_rational.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

class ShapleyService;
enum class SvcMode;  // Scoped enums may be declared opaquely (int default).

/// One SVC instance of a batch: a Boolean query over a partitioned
/// database. Instances may freely share queries, schemas and facts.
struct BatchInstance {
  QueryPtr query;
  PartitionedDatabase db;
};

struct BatchOptions {
  /// Worker threads. 0 → one per hardware thread; 1 → serial execution
  /// (requests run one at a time in submission order and the engines use
  /// their serial per-instance paths; the cache and the oracle-sharing
  /// algebra of the engines' AllValues overrides still apply).
  size_t threads = 0;

  /// Share one OracleCache across the whole batch.
  bool use_cache = true;
  size_t cache_max_entries = 1 << 16;
  size_t cache_max_bytes = size_t{512} << 20;
};

/// Execution report of one batch run.
struct ExecStats {
  size_t instances = 0;
  size_t facts = 0;         ///< Total endogenous facts across instances.
  size_t threads = 1;       ///< Pool workers (1 = serial).
  size_t tasks = 0;         ///< Pool tasks executed (requests + chunks).
  size_t oracle_calls = 0;  ///< FGMC oracle requests (SvcViaFgmc only).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_bytes = 0;   ///< Approximate bytes resident after the run.
  /// Requests whose dichotomy classification was served from the service's
  /// verdict cache instead of reclassifying (0 on the engine_instance path,
  /// which skips classification altogether).
  size_t verdict_cache_hits = 0;
  double wall_ms = 0.0;

  std::string ToString() const;
  /// One flat JSON object, e.g. for bench --json output.
  std::string ToJson() const;
};

/// Synchronous batch front over the serving layer: fans Shapley-value
/// computation for a batch of instances across the shared pool of an
/// internally-owned ShapleyService, routing every counting-oracle request
/// through the service's shared OracleCache. Values are exact BigRationals,
/// computed by the installed engine, and are bit-identical to what the same
/// engine produces serially — the runner only changes scheduling and reuse,
/// never arithmetic.
///
/// This class is a thin adapter kept for callers that have a batch in hand
/// and want blocking semantics plus engine exceptions; new code that
/// streams requests, needs routing, deadlines or structured errors should
/// talk to ShapleyService directly (service/shapley_service.h).
class BatchSvcRunner {
 public:
  explicit BatchSvcRunner(std::shared_ptr<SvcEngine> engine,
                          BatchOptions options = {});
  ~BatchSvcRunner();

  /// AllValues of every instance, in input order. Rethrows the first
  /// failing instance's engine error (by input order) after the batch
  /// settles.
  std::vector<std::map<Fact, BigRational>> AllValues(
      const std::vector<BatchInstance>& batch);

  /// MaxValue of every instance, in input order. Every instance needs a
  /// nonempty Dn.
  std::vector<std::pair<Fact, BigRational>> MaxValues(
      const std::vector<BatchInstance>& batch);

  /// Stats of the most recent AllValues/MaxValues run.
  const ExecStats& last_stats() const { return stats_; }

  SvcEngine& engine() { return *engine_; }
  ThreadPool* pool();        ///< Null when serial (threads == 1).
  OracleCache* cache();      ///< Null when uncached.

 private:
  template <typename Result, typename Extract>
  std::vector<Result> Run(const std::vector<BatchInstance>& batch,
                          SvcMode mode, const Extract& extract);

  std::shared_ptr<SvcEngine> engine_;
  std::unique_ptr<ShapleyService> service_;
  size_t threads_ = 1;  ///< Resolved worker count.
  ExecStats stats_;
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_BATCH_RUNNER_H_
