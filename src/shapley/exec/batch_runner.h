#ifndef SHAPLEY_EXEC_BATCH_RUNNER_H_
#define SHAPLEY_EXEC_BATCH_RUNNER_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shapley/arith/big_rational.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// One SVC instance of a batch: a Boolean query over a partitioned
/// database. Instances may freely share queries, schemas and facts.
struct BatchInstance {
  QueryPtr query;
  PartitionedDatabase db;
};

struct BatchOptions {
  /// Worker threads. 0 → one per hardware thread; 1 → serial execution
  /// (no pool; still shares the cache and the per-instance oracle-sharing
  /// algebra of the engines' AllValues overrides).
  size_t threads = 0;

  /// Share one OracleCache across the whole batch.
  bool use_cache = true;
  size_t cache_max_entries = 1 << 16;
};

/// Execution report of one batch run.
struct ExecStats {
  size_t instances = 0;
  size_t facts = 0;         ///< Total endogenous facts across instances.
  size_t threads = 1;       ///< Pool workers (1 = serial).
  size_t tasks = 0;         ///< Pool queue tasks executed during the run.
  size_t oracle_calls = 0;  ///< FGMC oracle requests (SvcViaFgmc only).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  double wall_ms = 0.0;

  std::string ToString() const;
  /// One flat JSON object, e.g. for bench --json output.
  std::string ToJson() const;
};

/// Fans Shapley-value computation for a batch of instances across a shared
/// thread pool, routing every counting-oracle request of every instance
/// through one shared OracleCache. Values are exact BigRationals, computed
/// by the installed engine, and are bit-identical to what the same engine
/// produces serially — the runner only changes scheduling and reuse, never
/// arithmetic.
///
/// Parallelism has two nested levels, both dynamic: instances fan out
/// across the pool, and each instance's AllValues fans its per-fact (or
/// per-mask-chunk) work across the same pool; the fork-join loops let the
/// waiting thread participate, so the nesting cannot deadlock or
/// oversubscribe.
class BatchSvcRunner {
 public:
  explicit BatchSvcRunner(std::shared_ptr<SvcEngine> engine,
                          BatchOptions options = {});
  ~BatchSvcRunner();

  /// AllValues of every instance, in input order. Throws what the engine
  /// throws (first failure wins; remaining work is abandoned).
  std::vector<std::map<Fact, BigRational>> AllValues(
      const std::vector<BatchInstance>& batch);

  /// MaxValue of every instance, in input order. Every instance needs a
  /// nonempty Dn.
  std::vector<std::pair<Fact, BigRational>> MaxValues(
      const std::vector<BatchInstance>& batch);

  /// Stats of the most recent AllValues/MaxValues run.
  const ExecStats& last_stats() const { return stats_; }

  SvcEngine& engine() { return *engine_; }
  ThreadPool* pool() { return pool_.get(); }        ///< Null when serial.
  OracleCache* cache() { return cache_.get(); }     ///< Null when uncached.

 private:
  template <typename Result, typename PerInstance>
  std::vector<Result> Run(const std::vector<BatchInstance>& batch,
                          const PerInstance& per_instance);

  std::shared_ptr<SvcEngine> engine_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<OracleCache> cache_;
  ExecStats stats_;
};

}  // namespace shapley

#endif  // SHAPLEY_EXEC_BATCH_RUNNER_H_
