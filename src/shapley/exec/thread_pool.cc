#include "shapley/exec/thread_pool.h"

#include <algorithm>

namespace shapley {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  try {
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // Thread creation failed (e.g. EAGAIN under process limits): join the
    // workers already spawned before rethrowing — destroying a joinable
    // std::thread would call std::terminate.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

// Shared state of one ParallelFor call. Helper tasks enqueued on the pool
// may only start after the loop already completed (or never run at all
// before the pool shuts down); they hold the state through a shared_ptr and
// the body by value, and exit immediately when no chunk is left to claim.
struct LoopState {
  std::function<void(size_t)> body;
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t grain = 1;
  std::atomic<size_t> remaining{0};  // Items not yet processed or abandoned.
  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr error;  // First failure; guarded by mutex.
};

// Marks `count` items as settled and wakes the caller when none remain.
void FinishItems(LoopState& state, size_t count) {
  if (state.remaining.fetch_sub(count) == count) {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.all_done.notify_all();
  }
}

// Claims and runs chunks until the range is exhausted. On a body failure,
// records the exception, abandons every unclaimed item (so the loop
// terminates promptly) and returns.
void RunChunks(const std::shared_ptr<LoopState>& state) {
  for (;;) {
    const size_t i0 = state->next.fetch_add(state->grain);
    if (i0 >= state->end) return;
    const size_t i1 = std::min(i0 + state->grain, state->end);
    try {
      for (size_t i = i0; i < i1; ++i) state->body(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      const size_t prev = state->next.exchange(state->end);
      const size_t abandoned = prev < state->end ? state->end - prev : 0;
      FinishItems(*state, (i1 - i0) + abandoned);
      return;
    }
    FinishItems(*state, i1 - i0);
  }
}

}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body,
                             size_t grain) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  if (count <= grain || workers_.empty()) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->body = body;  // By value: a late helper may outlive the call site's
                       // reference; the shared state keeps it alive.
  state->next.store(begin);
  state->end = end;
  state->grain = grain;
  state->remaining.store(count);

  const size_t chunks = (count + grain - 1) / grain;
  const size_t helpers = std::min(workers_.size(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Enqueue([state] { RunChunks(state); });
  }
  RunChunks(state);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock,
                       [&] { return state->remaining.load() == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace shapley
