#ifndef SHAPLEY_ENGINES_GAME_H_
#define SHAPLEY_ENGINES_GAME_H_

#include <cstdint>
#include <functional>

#include "shapley/arith/big_rational.h"

namespace shapley {

/// A binary cooperative game on players {0, ..., n-1}: the wealth function
/// maps a coalition (bitmask) to 0 or 1. The games arising from Boolean
/// queries (Section 3.1) are all of this form, and they are additionally
/// monotone when the query is.
using BinaryWealth = std::function<bool(uint64_t coalition_mask)>;

/// Shapley value of `player` by the subset formula (Equation 2):
///   Sh = sum_{B ⊆ P\{p}} |B|!(n-|B|-1)!/n! (v(B ∪ {p}) − v(B)).
/// Exponential (2^n wealth calls); requires n <= 25.
BigRational ShapleyValueBySubsets(size_t n, const BinaryWealth& wealth,
                                  size_t player);

/// Shapley value of `player` by direct permutation enumeration
/// (Equation 1). Factorial (n! orderings); requires n <= 9. Used to
/// cross-validate the subset formula.
BigRational ShapleyValueByPermutations(size_t n, const BinaryWealth& wealth,
                                       size_t player);

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_GAME_H_
