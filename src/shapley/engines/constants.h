#ifndef SHAPLEY_ENGINES_CONSTANTS_H_
#define SHAPLEY_ENGINES_CONSTANTS_H_

#include <functional>
#include <map>
#include <set>

#include "shapley/arith/big_rational.h"
#include "shapley/arith/polynomial.h"
#include "shapley/data/database.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Section 6.4 — Shapley value of constants. The players are a set Cn of
/// endogenous constants; a coalition C is worth 1 iff the induced
/// sub-database D|_{C ∪ Cx} satisfies the (monotone) query while D|_{Cx}
/// does not.

/// A partition const(D) = Cn ⊎ Cx. Constants of D outside both sets are
/// rejected by the engines below.
struct ConstantPartition {
  std::set<Constant> endogenous;  // Cn — the players.
  std::set<Constant> exogenous;   // Cx — always available.
};

/// Validates that the partition covers const(D) disjointly; throws
/// std::invalid_argument otherwise.
void ValidateConstantPartition(const Database& db, const ConstantPartition& p);

/// FGMCconst: the generating polynomial sum_k #{C ⊆ Cn : |C| = k,
/// D|_{C ∪ Cx} |= q} z^k, by exhaustive enumeration (|Cn| <= 25).
Polynomial FgmcConstBySize(const BooleanQuery& query, const Database& db,
                           const ConstantPartition& partition);

/// SVCconst by the subset formula over constant coalitions (|Cn| <= 25).
BigRational SvcConstBruteForce(const BooleanQuery& query, const Database& db,
                               const ConstantPartition& partition,
                               Constant player);

/// All endogenous constants' Shapley values (shared satisfaction table).
std::map<Constant, BigRational> AllSvcConstBruteForce(
    const BooleanQuery& query, const Database& db,
    const ConstantPartition& partition);

/// An FGMCconst oracle: maps (db, Cn, Cx) to the counting polynomial.
using FgmcConstOracle = std::function<Polynomial(
    const Database& db, const ConstantPartition& partition)>;

/// SVCconst ≤poly FGMCconst (the Claim A.1 analog inside Proposition 6.3):
/// two oracle calls moving the player into Cx / removing it.
BigRational SvcConstViaFgmcConst(const BooleanQuery& query, const Database& db,
                                 const ConstantPartition& partition,
                                 Constant player,
                                 const FgmcConstOracle& oracle);

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_CONSTANTS_H_
