#include "shapley/engines/game.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "shapley/arith/factorial.h"
#include "shapley/common/macros.h"

namespace shapley {

BigRational ShapleyValueBySubsets(size_t n, const BinaryWealth& wealth,
                                  size_t player) {
  if (n > 25) {
    throw std::invalid_argument("ShapleyValueBySubsets: n too large (max 25)");
  }
  SHAPLEY_CHECK(player < n);
  const uint64_t player_bit = uint64_t{1} << player;
  const uint64_t full = (uint64_t{1} << n) - 1;
  const uint64_t others = full & ~player_bit;

  BigRational total(0);
  // Iterate exactly over the subsets of `others` (standard subset trick),
  // including the empty set.
  uint64_t mask = 0;
  while (true) {
    bool with = wealth(mask | player_bit);
    bool without = wealth(mask);
    if (with && !without) {
      total += ShapleyWeight(n, static_cast<size_t>(__builtin_popcountll(mask)));
    } else if (!with && without) {
      total -= ShapleyWeight(n, static_cast<size_t>(__builtin_popcountll(mask)));
    }
    if (mask == others) break;
    mask = (mask - others) & others;  // Next subset of `others`.
  }
  return total;
}

BigRational ShapleyValueByPermutations(size_t n, const BinaryWealth& wealth,
                                       size_t player) {
  if (n > 9) {
    throw std::invalid_argument(
        "ShapleyValueByPermutations: n too large (max 9)");
  }
  SHAPLEY_CHECK(player < n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});

  int64_t favorable = 0;
  int64_t total_permutations = 0;
  do {
    ++total_permutations;
    uint64_t before = 0;
    for (size_t pos = 0; pos < n; ++pos) {
      if (order[pos] == player) break;
      before |= uint64_t{1} << order[pos];
    }
    int delta = static_cast<int>(wealth(before | (uint64_t{1} << player))) -
                static_cast<int>(wealth(before));
    favorable += delta;
  } while (std::next_permutation(order.begin(), order.end()));

  return BigRational(BigInt(favorable), BigInt(total_permutations));
}

}  // namespace shapley
