#ifndef SHAPLEY_ENGINES_LIFTED_H_
#define SHAPLEY_ENGINES_LIFTED_H_

#include <map>

#include "shapley/arith/big_rational.h"
#include "shapley/arith/polynomial.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/query/conjunctive_query.h"

namespace shapley {

/// Safe-plan evaluation for hierarchical self-join-free CQs.
///
/// The recursion (shared by counting and probability computation):
///   * ground atom   — the matching fact must be present (factor z / p);
///   * independent join — variable-connected components touch disjoint
///     relations (sjf), so results multiply;
///   * independent project — a root variable occurring in every atom of a
///     component partitions the facts by the constant it binds; buckets are
///     independent, so combine via the complement product.
/// Hierarchicalness guarantees a root variable always exists; both
/// functions throw std::invalid_argument otherwise (or on self-joins or
/// negation).

/// Validates the preconditions (positive, sjf, hierarchical).
void RequireLiftedCompatible(const ConjunctiveQuery& cq);

/// Stratified counting: sum_j #{S ⊆ Dn : |S| = j, S ∪ Dx |= cq} z^j,
/// in time polynomial in |D|.
Polynomial LiftedCountBySize(const ConjunctiveQuery& cq,
                             const PartitionedDatabase& db);

/// Exact probability Pr(D |= cq) for a tuple-independent database given as
/// fact → probability (facts absent from the map are absent from the
/// database). Time polynomial in the number of facts.
BigRational LiftedProbability(const ConjunctiveQuery& cq,
                              const std::map<Fact, BigRational>& probabilities);

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_LIFTED_H_
