#include "shapley/engines/svc.h"

#include <stdexcept>
#include <vector>

#include "shapley/arith/factorial.h"
#include "shapley/common/macros.h"
#include "shapley/engines/game.h"

namespace shapley {

std::map<Fact, BigRational> SvcEngine::AllValues(const BooleanQuery& query,
                                                 const PartitionedDatabase& db) {
  std::map<Fact, BigRational> values;
  for (const Fact& f : db.endogenous().facts()) {
    values.emplace(f, Value(query, db, f));
  }
  return values;
}

std::pair<Fact, BigRational> SvcEngine::MaxValue(const BooleanQuery& query,
                                                 const PartitionedDatabase& db) {
  if (db.endogenous().empty()) {
    throw std::invalid_argument("MaxValue: no endogenous facts");
  }
  std::map<Fact, BigRational> values = AllValues(query, db);
  auto best = values.begin();
  for (auto it = values.begin(); it != values.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  return {best->first, best->second};
}

namespace {

// Precomputes the satisfaction of every world mask over Dn (with Dx always
// present). Shared across all facts for AllValues.
std::vector<char> SatisfactionTable(const BooleanQuery& query,
                                    const PartitionedDatabase& db) {
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();
  if (n > 25) {
    throw std::invalid_argument("BruteForceSvc: more than 25 endogenous facts");
  }
  std::vector<char> table(size_t{1} << n);
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    Database world = db.exogenous();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) world.Insert(endo[i]);
    }
    table[mask] = query.Evaluate(world) ? 1 : 0;
  }
  return table;
}

size_t IndexOfFact(const PartitionedDatabase& db, const Fact& fact) {
  const auto& endo = db.endogenous().facts();
  for (size_t i = 0; i < endo.size(); ++i) {
    if (endo[i] == fact) return i;
  }
  throw std::invalid_argument("SVC: fact is not endogenous in the database");
}

}  // namespace

BigRational BruteForceSvc::Value(const BooleanQuery& query,
                                 const PartitionedDatabase& db,
                                 const Fact& fact) {
  size_t player = IndexOfFact(db, fact);
  std::vector<char> table = SatisfactionTable(query, db);
  return ShapleyValueBySubsets(
      db.NumEndogenous(),
      [&table](uint64_t mask) { return table[mask] != 0; }, player);
}

std::map<Fact, BigRational> BruteForceSvc::AllValues(
    const BooleanQuery& query, const PartitionedDatabase& db) {
  std::vector<char> table = SatisfactionTable(query, db);
  BinaryWealth wealth = [&table](uint64_t mask) { return table[mask] != 0; };
  std::map<Fact, BigRational> values;
  const auto& endo = db.endogenous().facts();
  for (size_t i = 0; i < endo.size(); ++i) {
    values.emplace(endo[i], ShapleyValueBySubsets(endo.size(), wealth, i));
  }
  return values;
}

BigRational PermutationSvc::Value(const BooleanQuery& query,
                                  const PartitionedDatabase& db,
                                  const Fact& fact) {
  size_t player = IndexOfFact(db, fact);
  std::vector<char> table = SatisfactionTable(query, db);
  return ShapleyValueByPermutations(
      db.NumEndogenous(),
      [&table](uint64_t mask) { return table[mask] != 0; }, player);
}

BigRational SvcViaFgmc::Value(const BooleanQuery& query,
                              const PartitionedDatabase& db,
                              const Fact& fact) {
  IndexOfFact(db, fact);  // Validates endogeneity.
  const size_t n = db.NumEndogenous();
  SHAPLEY_CHECK(n >= 1);

  // Claim A.1: move μ out of the players; compare counts with μ assumed
  // present vs μ removed.
  PartitionedDatabase with_mu = db.WithFactMadeExogenous(fact);
  PartitionedDatabase without_mu = db.WithEndogenousFactRemoved(fact);
  Polynomial counts_with = oracle_->CountBySize(query, with_mu);
  Polynomial counts_without = oracle_->CountBySize(query, without_mu);
  oracle_calls_ += 2;

  BigRational value(0);
  for (size_t j = 0; j + 1 <= n; ++j) {
    BigInt delta = counts_with.Coefficient(j) - counts_without.Coefficient(j);
    if (delta.IsZero()) continue;
    value += ShapleyWeight(n, j) * BigRational(delta);
  }
  return value;
}

}  // namespace shapley
