#include "shapley/engines/svc.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "shapley/arith/factorial.h"
#include "shapley/common/macros.h"
#include "shapley/engines/game.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/obs/trace.h"

namespace shapley {

std::string ToString(SvcErrorCode code) {
  switch (code) {
    case SvcErrorCode::kCapacityExceeded:
      return "capacity-exceeded";
    case SvcErrorCode::kUnsupportedQuery:
      return "unsupported-query";
    case SvcErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case SvcErrorCode::kCancelled:
      return "cancelled";
    case SvcErrorCode::kInvalidRequest:
      return "invalid-request";
    case SvcErrorCode::kEngineFailure:
      return "engine-failure";
    case SvcErrorCode::kUpstreamUnavailable:
      return "upstream-unavailable";
    case SvcErrorCode::kRequestTimeout:
      return "request-timeout";
  }
  return "?";
}

std::string SvcError::ToString() const {
  std::ostringstream os;
  os << shapley::ToString(code);
  if (!engine.empty()) os << " [" << engine << "]";
  os << ": " << message;
  return os.str();
}

std::map<Fact, BigRational> SvcEngine::AllValues(const BooleanQuery& query,
                                                 const PartitionedDatabase& db) {
  std::map<Fact, BigRational> values;
  for (const Fact& f : db.endogenous().facts()) {
    values.emplace(f, Value(query, db, f));
  }
  return values;
}

std::pair<Fact, BigRational> SvcEngine::MaxValue(const BooleanQuery& query,
                                                 const PartitionedDatabase& db) {
  if (db.endogenous().empty()) {
    throw std::invalid_argument("MaxValue: no endogenous facts");
  }
  std::map<Fact, BigRational> values = AllValues(query, db);
  auto best = values.begin();
  for (auto it = values.begin(); it != values.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  return {best->first, best->second};
}

namespace {

// Precomputes the satisfaction of every world mask over Dn (with Dx always
// present). Shared across all facts for AllValues; mask ranges are
// independent, so the table fills in parallel chunks when a pool is given.
std::vector<char> SatisfactionTable(const BooleanQuery& query,
                                    const PartitionedDatabase& db,
                                    ThreadPool* pool) {
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();
  if (n > kBruteForceMaxEndogenous) {
    // Structured capacity error: the serving layer turns this into an
    // SvcResponse error instead of a crashed request; direct callers still
    // catch it as std::invalid_argument.
    throw SvcException(
        {SvcErrorCode::kCapacityExceeded,
         "|Dn| = " + std::to_string(n) + " exceeds the 2^|Dn| guard (max " +
             std::to_string(kBruteForceMaxEndogenous) + " endogenous facts)",
         "brute-force"});
  }
  std::vector<char> table(size_t{1} << n);
  auto evaluate = [&](size_t mask) {
    Database world = db.exogenous();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) world.Insert(endo[i]);
    }
    table[mask] = query.Evaluate(world) ? 1 : 0;
  };
  if (pool != nullptr && pool->num_threads() > 1 && table.size() >= 2048) {
    pool->ParallelFor(0, table.size(), evaluate, /*grain=*/512);
  } else {
    for (uint64_t mask = 0; mask < table.size(); ++mask) evaluate(mask);
  }
  return table;
}

size_t IndexOfFact(const PartitionedDatabase& db, const Fact& fact) {
  const auto& endo = db.endogenous().facts();
  for (size_t i = 0; i < endo.size(); ++i) {
    if (endo[i] == fact) return i;
  }
  throw std::invalid_argument("SVC: fact is not endogenous in the database");
}

// Σ_j j!(n−j−1)!·delta_at(j) / n! — the Shapley-weighted sum of per-size
// marginal counts, accumulated as one integer numerator over the common
// denominator n! (a single rational normalization instead of one per size).
template <typename DeltaAt>
BigRational WeightedMarginalSum(size_t n, const DeltaAt& delta_at) {
  BigInt numerator(0);
  for (size_t j = 0; j + 1 <= n; ++j) {
    BigInt delta = delta_at(j);
    if (delta.IsZero()) continue;
    // Copy before the next Factorial call: the memo table may grow and
    // reallocate, invalidating the returned reference.
    BigInt weight = Factorial(j);
    weight *= Factorial(n - j - 1);
    weight *= delta;
    numerator += weight;
  }
  return BigRational(std::move(numerator), Factorial(n));
}

}  // namespace

BigRational BruteForceSvc::Value(const BooleanQuery& query,
                                 const PartitionedDatabase& db,
                                 const Fact& fact) {
  size_t player = IndexOfFact(db, fact);
  std::vector<char> table = SatisfactionTable(query, db, exec_.pool);
  return ShapleyValueBySubsets(
      db.NumEndogenous(),
      [&table](uint64_t mask) { return table[mask] != 0; }, player);
}

std::map<Fact, BigRational> BruteForceSvc::AllValues(
    const BooleanQuery& query, const PartitionedDatabase& db) {
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();
  std::map<Fact, BigRational> values;
  if (n == 0) return values;

  // Deep-path decomposition for traced requests (null otherwise — the
  // untraced path takes no locks and allocates nothing for tracing). The
  // three phases mirror the lifted engine's: "compile" builds the shared
  // satisfaction table, "delta" is the marginal-classifying sweep,
  // "accumulate" the exact rational weighting. Spans are recorded from
  // this coordinating thread only; pool workers never touch the recorder.
  obs::TraceRecorder* recorder = exec_.trace;

  if (recorder != nullptr) recorder->Begin("compile");
  std::vector<char> table = SatisfactionTable(query, db, exec_.pool);
  if (recorder != nullptr) {
    recorder->Attr("worlds", std::to_string(table.size()));
    recorder->End();
  }
  const uint64_t num_masks = uint64_t{1} << n;

  // One tallying sweep shared across all facts: every coalition B and
  // player p ∉ B classifies the marginal v(B ∪ {p}) − v(B) into a
  // per-(player, |B|) plus/minus counter — n·2^n integer increments, with
  // the exact rational Shapley weights entering only once per (player,
  // size) afterwards. Counters fit in uint64 (≤ C(n−1, b) ≤ 2^24 at the
  // n ≤ 25 brute-force limit). The mask range chunks freely across threads
  // with one local tally per chunk.
  const size_t cells = n * n;
  std::vector<uint64_t> plus(cells, 0), minus(cells, 0);
  std::mutex merge_mutex;

  auto sweep = [&](uint64_t mask_begin, uint64_t mask_end,
                   std::vector<uint64_t>& local_plus,
                   std::vector<uint64_t>& local_minus) {
    for (uint64_t mask = mask_begin; mask < mask_end; ++mask) {
      const char v = table[mask];
      const size_t b = static_cast<size_t>(__builtin_popcountll(mask));
      for (size_t p = 0; p < n; ++p) {
        const uint64_t bit = uint64_t{1} << p;
        if (mask & bit) continue;
        const char vp = table[mask | bit];
        if (vp > v) {
          ++local_plus[p * n + b];
        } else if (vp < v) {
          ++local_minus[p * n + b];
        }
      }
    }
  };

  if (recorder != nullptr) recorder->Begin("delta");
  ThreadPool* pool = exec_.pool;
  if (pool != nullptr && pool->num_threads() > 1 && num_masks >= 4096) {
    const uint64_t num_chunks =
        std::min<uint64_t>(num_masks / 2048, 8 * pool->num_threads());
    const uint64_t chunk = (num_masks + num_chunks - 1) / num_chunks;
    pool->ParallelFor(0, static_cast<size_t>(num_chunks), [&](size_t c) {
      std::vector<uint64_t> local_plus(cells, 0), local_minus(cells, 0);
      const uint64_t lo = c * chunk;
      const uint64_t hi = std::min(num_masks, lo + chunk);
      sweep(lo, hi, local_plus, local_minus);
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (size_t i = 0; i < cells; ++i) {
        plus[i] += local_plus[i];
        minus[i] += local_minus[i];
      }
    });
  } else {
    sweep(0, num_masks, plus, minus);
  }
  if (recorder != nullptr) recorder->End();

  if (recorder != nullptr) recorder->Begin("accumulate");
  for (size_t p = 0; p < n; ++p) {
    values.emplace(endo[p], WeightedMarginalSum(n, [&](size_t b) {
      return BigInt(static_cast<int64_t>(plus[p * n + b])) -
             BigInt(static_cast<int64_t>(minus[p * n + b]));
    }));
  }
  if (recorder != nullptr) {
    recorder->Attr("facts", std::to_string(n));
    recorder->End();
  }
  return values;
}

BigRational PermutationSvc::Value(const BooleanQuery& query,
                                  const PartitionedDatabase& db,
                                  const Fact& fact) {
  size_t player = IndexOfFact(db, fact);
  std::vector<char> table = SatisfactionTable(query, db, exec_.pool);
  return ShapleyValueByPermutations(
      db.NumEndogenous(),
      [&table](uint64_t mask) { return table[mask] != 0; }, player);
}

Polynomial SvcViaFgmc::Count(const BooleanQuery& query,
                             const PartitionedDatabase& db) {
  oracle_calls_.fetch_add(1, std::memory_order_relaxed);
  if (exec_.cache != nullptr) {
    return exec_.cache->CountBySize(*oracle_, query, db);
  }
  return oracle_->CountBySize(query, db);
}

BigRational SvcViaFgmc::Value(const BooleanQuery& query,
                              const PartitionedDatabase& db,
                              const Fact& fact) {
  IndexOfFact(db, fact);  // Validates endogeneity.
  const size_t n = db.NumEndogenous();
  SHAPLEY_CHECK(n >= 1);

  // Claim A.1: move μ out of the players; compare counts with μ assumed
  // present vs μ removed.
  PartitionedDatabase with_mu = db.WithFactMadeExogenous(fact);
  PartitionedDatabase without_mu = db.WithEndogenousFactRemoved(fact);
  Polynomial counts_with = Count(query, with_mu);
  Polynomial counts_without = Count(query, without_mu);

  BigRational value(0);
  for (size_t j = 0; j + 1 <= n; ++j) {
    BigInt delta = counts_with.Coefficient(j) - counts_without.Coefficient(j);
    if (delta.IsZero()) continue;
    value += ShapleyWeight(n, j) * BigRational(delta);
  }
  return value;
}

std::map<Fact, BigRational> SvcViaFgmc::AllValues(
    const BooleanQuery& query, const PartitionedDatabase& db) {
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();
  std::map<Fact, BigRational> values;
  if (n == 0) return values;

  // The reduction runs as three sequential passes so a traced request can
  // see where the time goes (spans recorded from this coordinating thread
  // only; exec_.trace is null — zero-cost — unless the request opted in):
  //   "compile"    — the one shared full-database count F,
  //   "delta"      — the per-fact Dn\{μ} counts, fanned across the pool,
  //   "accumulate" — the exact rational Shapley weighting of the
  //                  coefficient deltas.
  // The passes compute exactly what the fused per-fact loop computed; only
  // the order changed, so values match Value() bit for bit.
  obs::TraceRecorder* recorder = exec_.trace;

  // Shared compilation (see the class comment): with the full-database
  // polynomial F computed once, the per-fact "μ made exogenous" count is
  //   FGMC_j(Dn\{μ}, Dx∪{μ}) = F[j+1] − FGMC_{j+1}(Dn\{μ}, Dx),
  // an exact integer identity, so each fact costs one oracle call plus
  // coefficient arithmetic.
  if (recorder != nullptr) recorder->Begin("compile");
  Polynomial full = Count(query, db);
  if (recorder != nullptr) {
    recorder->Attr("oracle", oracle_->name());
    recorder->End();
  }

  const bool parallel =
      exec_.pool != nullptr && exec_.pool->num_threads() > 1 && n > 1;

  if (recorder != nullptr) recorder->Begin("delta");
  std::vector<Polynomial> withouts(n);
  auto count_without = [&](size_t i) {
    withouts[i] = Count(query, db.WithEndogenousFactRemoved(endo[i]));
  };
  if (parallel) {
    exec_.pool->ParallelFor(0, n, count_without);
  } else {
    for (size_t i = 0; i < n; ++i) count_without(i);
  }
  if (recorder != nullptr) {
    recorder->Attr("oracle_calls", std::to_string(n));
    recorder->End();
  }

  if (recorder != nullptr) recorder->Begin("accumulate");
  std::vector<BigRational> results(n);
  auto accumulate = [&](size_t i) {
    const Polynomial& without = withouts[i];
    results[i] = WeightedMarginalSum(n, [&](size_t j) {
      BigInt with_j = full.Coefficient(j + 1) - without.Coefficient(j + 1);
      return with_j - without.Coefficient(j);
    });
  };
  if (parallel) {
    exec_.pool->ParallelFor(0, n, accumulate);
  } else {
    for (size_t i = 0; i < n; ++i) accumulate(i);
  }
  if (recorder != nullptr) {
    recorder->Attr("facts", std::to_string(n));
    recorder->End();
  }

  for (size_t i = 0; i < n; ++i) {
    values.emplace(endo[i], std::move(results[i]));
  }
  return values;
}

}  // namespace shapley
