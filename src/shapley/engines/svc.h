#ifndef SHAPLEY_ENGINES_SVC_H_
#define SHAPLEY_ENGINES_SVC_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "shapley/arith/big_rational.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/engines/capabilities.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc_error.h"
#include "shapley/exec/exec_context.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Engine interface for Shapley value computation SVC_q (Section 3.1):
/// the Shapley value of an endogenous fact in the game whose players are Dn
/// and whose wealth function is v_q(S) = [S ∪ Dx |= q] − [Dx |= q].
class SvcEngine {
 public:
  virtual ~SvcEngine() = default;

  virtual std::string name() const = 0;

  /// Capability metadata for routing and pre-flight validation (see
  /// service/engine_registry.h). Default: any query class, unbounded |Dn|.
  virtual EngineCaps caps() const { return {.all_query_classes = true}; }

  virtual BigRational Value(const BooleanQuery& query,
                            const PartitionedDatabase& db,
                            const Fact& fact) = 0;

  /// All endogenous facts' values (default: one Value call per fact;
  /// engines may override with something smarter).
  virtual std::map<Fact, BigRational> AllValues(const BooleanQuery& query,
                                                const PartitionedDatabase& db);

  /// The max-SVC problem of Section 6.3: any fact of maximum Shapley value,
  /// together with that value. Requires a nonempty Dn.
  virtual std::pair<Fact, BigRational> MaxValue(const BooleanQuery& query,
                                                const PartitionedDatabase& db);

  /// Installs shared execution resources (a thread pool to fan AllValues
  /// work across, an oracle cache to reuse counting work). Engines fall
  /// back to serial, uncached execution on null members and must return
  /// identical values either way. The installer keeps ownership and the
  /// resources must outlive every engine call that uses them.
  void set_exec_context(const ExecContext& context) { exec_ = context; }
  const ExecContext& exec_context() const { return exec_; }

 protected:
  ExecContext exec_;
};

/// Exhaustive subset-formula evaluation (Equation 2), 2^|Dn| query
/// evaluations shared across all facts. Works for every query type
/// (including CQ¬). Requires |Dn| <= kBruteForceMaxEndogenous, enforced
/// with a structured SvcException(kCapacityExceeded). AllValues shares one
/// satisfaction table and one tallying sweep across all facts, chunked
/// across the exec-context pool when one is installed.
class BruteForceSvc : public SvcEngine {
 public:
  std::string name() const override { return "brute-force"; }
  EngineCaps caps() const override {
    return {.all_query_classes = true,
            .max_endogenous = kBruteForceMaxEndogenous};
  }
  BigRational Value(const BooleanQuery& query, const PartitionedDatabase& db,
                    const Fact& fact) override;
  std::map<Fact, BigRational> AllValues(const BooleanQuery& query,
                                        const PartitionedDatabase& db) override;
};

/// Permutation-formula evaluation (Equation 1), |Dn|! orderings; a
/// cross-validation oracle for tiny instances (|Dn| <= 9).
class PermutationSvc : public SvcEngine {
 public:
  std::string name() const override { return "permutations"; }
  EngineCaps caps() const override {
    return {.all_query_classes = true, .max_endogenous = 9};
  }
  BigRational Value(const BooleanQuery& query, const PartitionedDatabase& db,
                    const Fact& fact) override;
};

/// The SVC ≤poly FGMC reduction of Claim A.1:
///   Sh(Dn, v_q, μ) = sum_j C_j [FGMC_j(Dn\{μ}, Dx ∪ {μ}) −
///                                FGMC_j(Dn\{μ}, Dx)],
/// with C_j = j!(|Dn|−j−1)!/|Dn|!. Two FGMC oracle calls per fact; with the
/// lifted FGMC engine this is the polynomial-time algorithm for
/// hierarchical sjf-CQs (the tractable side of [Livshits et al. 2021]).
///
/// AllValues collapses the reduction further: splitting every generalized
/// support of the *full* database on whether it contains μ gives
///   FGMC_j(Dn, Dx) = FGMC_{j-1}(Dn\{μ}, Dx∪{μ}) + FGMC_j(Dn\{μ}, Dx),
/// so one shared full-database count replaces the per-fact "μ exogenous"
/// call: 1 + |Dn| oracle calls for a whole instance instead of 2|Dn|.
/// Oracle calls go through the exec-context cache when one is installed,
/// and facts fan out across the exec-context pool.
class SvcViaFgmc : public SvcEngine {
 public:
  explicit SvcViaFgmc(std::shared_ptr<FgmcEngine> oracle)
      : oracle_(std::move(oracle)) {}

  std::string name() const override {
    return "via-fgmc(" + oracle_->name() + ")";
  }
  /// The reduction adds nothing to the oracle's reach: whatever query class
  /// and capacity the FGMC backend supports is what this engine supports.
  EngineCaps caps() const override { return oracle_->caps(); }
  BigRational Value(const BooleanQuery& query, const PartitionedDatabase& db,
                    const Fact& fact) override;
  std::map<Fact, BigRational> AllValues(const BooleanQuery& query,
                                        const PartitionedDatabase& db) override;

  /// Number of FGMC oracle requests made so far (reduction bookkeeping;
  /// cache hits count — they are requests the reduction needed).
  size_t oracle_calls() const { return oracle_calls_.load(); }

  /// The FGMC oracle backing the reduction.
  const std::shared_ptr<FgmcEngine>& oracle() const { return oracle_; }

 private:
  /// One oracle request, through the cache when installed.
  Polynomial Count(const BooleanQuery& query, const PartitionedDatabase& db);

  std::shared_ptr<FgmcEngine> oracle_;
  std::atomic<size_t> oracle_calls_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_SVC_H_
