#include "shapley/engines/pqe.h"

#include <stdexcept>

#include "shapley/common/macros.h"
#include "shapley/engines/lifted.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/lineage/lineage.h"

namespace shapley {

BigRational BruteForcePqe::Probability(const BooleanQuery& query,
                                       const ProbabilisticDatabase& db) {
  // Split facts into certain (p == 1) and uncertain ones.
  std::vector<Fact> uncertain;
  std::vector<BigRational> probs;
  Database certain(db.schema());
  for (size_t i = 0; i < db.size(); ++i) {
    if (db.probabilities()[i] == BigRational(1)) {
      certain.Insert(db.facts()[i]);
    } else {
      uncertain.push_back(db.facts()[i]);
      probs.push_back(db.probabilities()[i]);
    }
  }
  const size_t n = uncertain.size();
  if (n > 25) {
    throw std::invalid_argument("BruteForcePqe: more than 25 uncertain facts");
  }

  BigRational total(0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Database world = certain;
    BigRational weight(1);
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        world.Insert(uncertain[i]);
        weight *= probs[i];
      } else {
        weight *= BigRational(1) - probs[i];
      }
    }
    if (query.Evaluate(world)) total += weight;
  }
  return total;
}

BigRational LineagePqe::Probability(const BooleanQuery& query,
                                    const ProbabilisticDatabase& db) {
  PartitionedDatabase partitioned = db.AssociatedPartitioned();
  Lineage lineage = BuildLineage(query, partitioned, support_cap_);
  DdnnfCircuit circuit = CompileDnf(lineage, node_cap_);

  // Probabilities in lineage-variable order.
  std::vector<BigRational> probabilities;
  probabilities.reserve(lineage.num_variables());
  for (const Fact& f : lineage.variables) {
    bool found = false;
    for (size_t i = 0; i < db.size(); ++i) {
      if (db.facts()[i] == f) {
        probabilities.push_back(db.probabilities()[i]);
        found = true;
        break;
      }
    }
    SHAPLEY_CHECK_MSG(found, "lineage variable not in the database");
  }
  return circuit.WeightedModelCount(probabilities);
}

BigRational LiftedPqe::Probability(const BooleanQuery& query,
                                   const ProbabilisticDatabase& db) {
  const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query);
  if (cq == nullptr) {
    throw std::invalid_argument(
        "LiftedPqe: the lifted engine handles conjunctive queries only");
  }
  std::map<Fact, BigRational> probabilities;
  for (size_t i = 0; i < db.size(); ++i) {
    probabilities.emplace(db.facts()[i], db.probabilities()[i]);
  }
  return LiftedProbability(*cq, probabilities);
}

}  // namespace shapley
