#ifndef SHAPLEY_ENGINES_SVC_ERROR_H_
#define SHAPLEY_ENGINES_SVC_ERROR_H_

#include <stdexcept>
#include <string>
#include <utility>

namespace shapley {

/// Structured failure modes of a Shapley-value request. The serving layer
/// (service/shapley_service.h) reports every failure as an SvcError inside
/// the response instead of letting exceptions escape a worker thread.
enum class SvcErrorCode {
  /// The instance exceeds a hard size guard (e.g. the 2^|Dn| brute-force
  /// sweep beyond kBruteForceMaxEndogenous) and no polynomial engine
  /// covers the query's class.
  kCapacityExceeded,
  /// The chosen engine cannot handle this query class (e.g. the lifted
  /// plan on a non-hierarchical query, d-DNNF on CQ¬).
  kUnsupportedQuery,
  /// The request's deadline had already passed when it was dequeued.
  kDeadlineExceeded,
  /// The request's cancel token was set, or the service is shutting down.
  kCancelled,
  /// Malformed request (no query, unknown engine name, non-endogenous
  /// fact, empty Dn for MaxValue, ...).
  kInvalidRequest,
  /// The engine failed for any other reason (compilation node cap,
  /// resource exhaustion, ...).
  kEngineFailure,
  /// A proxy (the shard router) could not reach any backend able to serve
  /// the request — the request itself is fine; the fleet behind the proxy
  /// is not. Clients may retry after a backoff.
  kUpstreamUnavailable,
  /// The client started a request but did not finish sending it within the
  /// server's read timeout (HTTP 408) — the connection closes after this
  /// answer.
  kRequestTimeout,
};

std::string ToString(SvcErrorCode code);

/// One structured error: machine-readable code, human-readable message,
/// and the engine that raised it (empty when raised by the front-end).
struct SvcError {
  SvcErrorCode code = SvcErrorCode::kEngineFailure;
  std::string message;
  std::string engine;

  /// "capacity-exceeded [brute-force]: more than 25 endogenous facts".
  std::string ToString() const;
};

/// Exception carrier for SvcError across code that still communicates by
/// throwing (the engines' synchronous entry points). Derives from
/// std::invalid_argument so call sites that predate the structured path —
/// and tests asserting the exception type — keep working; new code should
/// catch SvcException first and read error().
class SvcException : public std::invalid_argument {
 public:
  explicit SvcException(SvcError error)
      : std::invalid_argument(error.ToString()), error_(std::move(error)) {}

  const SvcError& error() const { return error_; }

 private:
  SvcError error_;
};

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_SVC_ERROR_H_
