#ifndef SHAPLEY_ENGINES_CAPABILITIES_H_
#define SHAPLEY_ENGINES_CAPABILITIES_H_

#include <cstddef>
#include <limits>
#include <string>

namespace shapley {

/// Hard |Dn| guard of the exhaustive 2^|Dn| engines (subset masks are
/// uint64 and the sweep is exponential; beyond this the brute-force
/// engines raise SvcErrorCode::kCapacityExceeded). Lives here so both the
/// SVC and FGMC engine layers advertise the same bound they enforce.
inline constexpr size_t kBruteForceMaxEndogenous = 25;

/// Capability metadata of a counting / SVC engine, consumed by the serving
/// front-end (service/) for routing and pre-flight validation. The class
/// flags mirror the paper's dichotomy landscape: an engine either handles
/// every Boolean query of the library, only monotone ones (the lineage /
/// knowledge-compilation pipelines), or only the tractable hierarchical
/// sjf-CQ island of [Livshits et al. 2021]. Exactly one of the three class
/// flags should be set.
struct EngineCaps {
  /// Handles every BooleanQuery class, including CQ¬.
  bool all_query_classes = false;
  /// Monotone queries only (lineage-based pipelines).
  bool monotone_only = false;
  /// Positive hierarchical self-join-free CQs only (the lifted safe plan —
  /// exactly the FP side of the sjf-CQ dichotomy).
  bool hierarchical_sjf_cq_only = false;
  /// Hard upper bound on |Dn| the engine accepts before it raises a
  /// capacity error (max() = unbounded, i.e. polynomial-time engines).
  size_t max_endogenous = std::numeric_limits<size_t>::max();

  /// Returns (ε, δ)-bounded estimates instead of exact values. Approximate
  /// engines are exempt from the service's exhaustive-fallback guard (their
  /// cost is the sample budget, not 2^|Dn|) but are routed to only when the
  /// request opts in (SvcRequest::allow_approx) or names them explicitly.
  bool approximate = false;

  /// Error-model metadata of an approximate engine (empty for exact ones):
  /// which concentration bound backs the estimates and what it promises,
  /// e.g. "hoeffding: P(|est − Sh| > eps) <= delta per fact, additive".
  /// Surfaced by the CLI's `engines` listing and the registry, so callers
  /// can tell what kind of answer an engine gives before routing to it.
  std::string error_model = {};
};

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_CAPABILITIES_H_
