#include "shapley/engines/constants.h"

#include <stdexcept>
#include <vector>

#include "shapley/arith/factorial.h"
#include "shapley/common/macros.h"
#include "shapley/engines/game.h"

namespace shapley {

void ValidateConstantPartition(const Database& db,
                               const ConstantPartition& p) {
  for (Constant c : p.endogenous) {
    if (p.exogenous.count(c) > 0) {
      throw std::invalid_argument(
          "ConstantPartition: constant on both sides: " + c.name());
    }
  }
  for (Constant c : db.Constants()) {
    if (p.endogenous.count(c) == 0 && p.exogenous.count(c) == 0) {
      throw std::invalid_argument(
          "ConstantPartition: database constant unassigned: " + c.name());
    }
  }
}

namespace {

// Satisfaction of D|_{C ∪ Cx} for every coalition mask over Cn.
std::vector<char> ConstantSatisfactionTable(const BooleanQuery& query,
                                            const Database& db,
                                            const ConstantPartition& p,
                                            std::vector<Constant>* players) {
  if (!query.IsMonotone()) {
    throw std::invalid_argument(
        "constant-Shapley engines require a monotone query");
  }
  ValidateConstantPartition(db, p);
  players->assign(p.endogenous.begin(), p.endogenous.end());
  const size_t n = players->size();
  if (n > 25) {
    throw std::invalid_argument("SvcConst: more than 25 endogenous constants");
  }
  std::vector<char> table(size_t{1} << n);
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    std::set<Constant> allowed = p.exogenous;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) allowed.insert((*players)[i]);
    }
    table[mask] = query.Evaluate(db.InducedByConstants(allowed)) ? 1 : 0;
  }
  return table;
}

}  // namespace

Polynomial FgmcConstBySize(const BooleanQuery& query, const Database& db,
                           const ConstantPartition& partition) {
  std::vector<Constant> players;
  std::vector<char> table =
      ConstantSatisfactionTable(query, db, partition, &players);
  std::vector<BigInt> coefficients(players.size() + 1, BigInt(0));
  for (uint64_t mask = 0; mask < table.size(); ++mask) {
    if (table[mask]) {
      coefficients[static_cast<size_t>(__builtin_popcountll(mask))] += 1;
    }
  }
  return Polynomial(std::move(coefficients));
}

BigRational SvcConstBruteForce(const BooleanQuery& query, const Database& db,
                               const ConstantPartition& partition,
                               Constant player) {
  std::vector<Constant> players;
  std::vector<char> table =
      ConstantSatisfactionTable(query, db, partition, &players);
  // Wealth is 0 everywhere when D|_{Cx} already satisfies the query.
  if (table[0]) return BigRational(0);
  size_t index = players.size();
  for (size_t i = 0; i < players.size(); ++i) {
    if (players[i] == player) index = i;
  }
  if (index == players.size()) {
    throw std::invalid_argument("SvcConst: player is not endogenous");
  }
  return ShapleyValueBySubsets(
      players.size(), [&table](uint64_t mask) { return table[mask] != 0; },
      index);
}

std::map<Constant, BigRational> AllSvcConstBruteForce(
    const BooleanQuery& query, const Database& db,
    const ConstantPartition& partition) {
  std::vector<Constant> players;
  std::vector<char> table =
      ConstantSatisfactionTable(query, db, partition, &players);
  std::map<Constant, BigRational> values;
  for (size_t i = 0; i < players.size(); ++i) {
    if (table[0]) {
      values.emplace(players[i], BigRational(0));
    } else {
      values.emplace(players[i],
                     ShapleyValueBySubsets(
                         players.size(),
                         [&table](uint64_t mask) { return table[mask] != 0; },
                         i));
    }
  }
  return values;
}

BigRational SvcConstViaFgmcConst(const BooleanQuery& query, const Database& db,
                                 const ConstantPartition& partition,
                                 Constant player,
                                 const FgmcConstOracle& oracle) {
  ValidateConstantPartition(db, partition);
  if (partition.endogenous.count(player) == 0) {
    throw std::invalid_argument("SvcConst: player is not endogenous");
  }
  // Zero game when D|_{Cx} already satisfies the query.
  if (query.Evaluate(db.InducedByConstants(partition.exogenous))) {
    return BigRational(0);
  }
  const size_t n = partition.endogenous.size();

  ConstantPartition with_player = partition;
  with_player.endogenous.erase(player);
  with_player.exogenous.insert(player);
  ConstantPartition without_player = partition;
  without_player.endogenous.erase(player);
  // "Removing" a constant from the game: its facts must not be usable, so
  // drop every fact mentioning it.
  Database reduced(db.schema());
  for (const Fact& f : db.facts()) {
    if (!f.Mentions(player)) reduced.Insert(f);
  }

  Polynomial counts_with = oracle(db, with_player);
  Polynomial counts_without = oracle(reduced, without_player);

  BigRational value(0);
  for (size_t j = 0; j + 1 <= n; ++j) {
    BigInt delta = counts_with.Coefficient(j) - counts_without.Coefficient(j);
    if (delta.IsZero()) continue;
    value += ShapleyWeight(n, j) * BigRational(delta);
  }
  return value;
}

}  // namespace shapley
