#include "shapley/engines/fgmc.h"

#include <stdexcept>

#include "shapley/common/macros.h"
#include "shapley/engines/lifted.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/lineage/ddnnf.h"
#include "shapley/lineage/lineage.h"

namespace shapley {

Polynomial BruteForceFgmc::CountBySize(const BooleanQuery& query,
                                       const PartitionedDatabase& db) {
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();
  if (n > kBruteForceMaxEndogenous) {
    throw std::invalid_argument(
        "BruteForceFgmc: more than " +
        std::to_string(kBruteForceMaxEndogenous) + " endogenous facts");
  }
  std::vector<BigInt> coefficients(n + 1, BigInt(0));
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Database world = db.exogenous();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) world.Insert(endo[i]);
    }
    if (query.Evaluate(world)) {
      coefficients[static_cast<size_t>(__builtin_popcountll(mask))] += 1;
    }
  }
  return Polynomial(std::move(coefficients));
}

Polynomial LineageFgmc::CountBySize(const BooleanQuery& query,
                                    const PartitionedDatabase& db) {
  if (circuit_cache_ != nullptr) {
    return circuit_cache_->Circuit(query, db, support_cap_, node_cap_)
        ->CountBySize();
  }
  Lineage lineage = BuildLineage(query, db, support_cap_);
  DdnnfCircuit circuit = CompileDnf(lineage, node_cap_);
  return circuit.CountBySize();
}

Polynomial LiftedFgmc::CountBySize(const BooleanQuery& query,
                                   const PartitionedDatabase& db) {
  const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query);
  if (cq == nullptr) {
    throw std::invalid_argument(
        "LiftedFgmc: the lifted engine handles conjunctive queries only");
  }
  return LiftedCountBySize(*cq, db);
}

}  // namespace shapley
