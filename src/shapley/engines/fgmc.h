#ifndef SHAPLEY_ENGINES_FGMC_H_
#define SHAPLEY_ENGINES_FGMC_H_

#include <memory>
#include <string>

#include "shapley/arith/polynomial.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/engines/capabilities.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Engine interface for the fixed-size generalized model counting problem
/// FGMC_q (Section 3.2): given D = (Dn, Dx), compute for every size j the
/// number of subsets S ⊆ Dn with |S| = j and S ⊎ Dx |= q. The counts are
/// packaged as the generating polynomial sum_j FGMC_j z^j, from which the
/// whole problem family falls out:
///   GMC  = evaluation at z = 1,
///   FGMC_j = coefficient j,
///   FMC / MC = the purely endogenous special case.
class FgmcEngine {
 public:
  virtual ~FgmcEngine() = default;

  virtual std::string name() const = 0;

  /// Capability metadata for routing and pre-flight validation (see
  /// service/engine_registry.h). Default: any query class, unbounded |Dn|.
  virtual EngineCaps caps() const { return {.all_query_classes = true}; }

  /// The generating polynomial of generalized-support counts.
  virtual Polynomial CountBySize(const BooleanQuery& query,
                                 const PartitionedDatabase& db) = 0;

  /// GMC_q(D): total number of generalized supports.
  BigInt Gmc(const BooleanQuery& query, const PartitionedDatabase& db) {
    return CountBySize(query, db).SumOfCoefficients();
  }

  /// FGMC_q(D, j).
  BigInt Fgmc(const BooleanQuery& query, const PartitionedDatabase& db,
              size_t size) {
    return CountBySize(query, db).Coefficient(size);
  }

  /// FMC counts on a purely endogenous database.
  Polynomial FmcBySize(const BooleanQuery& query, Database db) {
    return CountBySize(query, PartitionedDatabase::AllEndogenous(std::move(db)));
  }
};

/// Exhaustive 2^|Dn| enumeration. Works for every query type, including
/// non-monotone CQ¬. Requires |Dn| <= 25.
class BruteForceFgmc : public FgmcEngine {
 public:
  std::string name() const override { return "brute-force"; }
  EngineCaps caps() const override {
    return {.all_query_classes = true,
            .max_endogenous = kBruteForceMaxEndogenous};
  }
  Polynomial CountBySize(const BooleanQuery& query,
                         const PartitionedDatabase& db) override;
};

class OracleCache;

/// Lineage + knowledge compilation: builds the minimal-support DNF, compiles
/// it to decision-DNNF and reads off the stratified model count. Monotone
/// queries only; exact for arbitrary lineage (worst case exponential only
/// when the query is genuinely hard).
class LineageFgmc : public FgmcEngine {
 public:
  explicit LineageFgmc(size_t support_cap = 200000, size_t node_cap = 2000000)
      : support_cap_(support_cap), node_cap_(node_cap) {}

  std::string name() const override { return "lineage-ddnnf"; }
  EngineCaps caps() const override { return {.monotone_only = true}; }
  Polynomial CountBySize(const BooleanQuery& query,
                         const PartitionedDatabase& db) override;

  /// Shares compiled d-DNNF circuits through `cache` (thread-safe; the
  /// caller keeps ownership). Null restores uncached compilation.
  void set_circuit_cache(OracleCache* cache) { circuit_cache_ = cache; }

 private:
  size_t support_cap_;
  size_t node_cap_;
  OracleCache* circuit_cache_ = nullptr;
};

/// Safe-plan lifted counting for hierarchical self-join-free CQs — the
/// polynomial-time side of the dichotomy ([Dalvi & Suciu 2004] plans,
/// stratified by subset size; this recovers the [Livshits et al. 2021]
/// tractability through counting, as the paper advocates). Throws
/// std::invalid_argument on non-sjf or non-hierarchical queries.
class LiftedFgmc : public FgmcEngine {
 public:
  std::string name() const override { return "lifted-safe-plan"; }
  EngineCaps caps() const override {
    return {.hierarchical_sjf_cq_only = true};
  }
  Polynomial CountBySize(const BooleanQuery& query,
                         const PartitionedDatabase& db) override;
};

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_FGMC_H_
