#ifndef SHAPLEY_ENGINES_PQE_H_
#define SHAPLEY_ENGINES_PQE_H_

#include <memory>
#include <string>

#include "shapley/arith/big_rational.h"
#include "shapley/data/probabilistic_database.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Engine interface for probabilistic query evaluation PQE_q (Section 3.3):
/// the probability that a tuple-independent database satisfies the query.
/// The restricted problems are the same computation on restricted inputs:
/// SPQE (single probability), SPPQE (single proper probability plus 1s),
/// PQE^{1/2} and PQE^{1/2;1}.
class PqeEngine {
 public:
  virtual ~PqeEngine() = default;

  virtual std::string name() const = 0;

  virtual BigRational Probability(const BooleanQuery& query,
                                  const ProbabilisticDatabase& db) = 0;
};

/// Exhaustive world enumeration (2^n possible worlds over the uncertain
/// facts). Works for every query type. Requires <= 25 uncertain facts.
class BruteForcePqe : public PqeEngine {
 public:
  std::string name() const override { return "brute-force"; }
  BigRational Probability(const BooleanQuery& query,
                          const ProbabilisticDatabase& db) override;
};

/// Lineage + knowledge compilation: weighted model count of the compiled
/// decision-DNNF. Monotone queries only.
class LineagePqe : public PqeEngine {
 public:
  explicit LineagePqe(size_t support_cap = 200000, size_t node_cap = 2000000)
      : support_cap_(support_cap), node_cap_(node_cap) {}

  std::string name() const override { return "lineage-ddnnf"; }
  BigRational Probability(const BooleanQuery& query,
                          const ProbabilisticDatabase& db) override;

 private:
  size_t support_cap_;
  size_t node_cap_;
};

/// Safe-plan lifted inference for hierarchical sjf-CQs (polynomial time).
class LiftedPqe : public PqeEngine {
 public:
  std::string name() const override { return "lifted-safe-plan"; }
  BigRational Probability(const BooleanQuery& query,
                          const ProbabilisticDatabase& db) override;
};

}  // namespace shapley

#endif  // SHAPLEY_ENGINES_PQE_H_
