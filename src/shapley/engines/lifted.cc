#include "shapley/engines/lifted.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "shapley/analysis/structure.h"
#include "shapley/common/macros.h"

namespace shapley {

namespace {

struct FactEntry {
  Fact fact;
  bool endogenous;                 // Counting mode.
  BigRational probability{1};     // Probability mode.
};

using Universe = std::vector<FactEntry>;

// Returns the set of relations mentioned by the atoms.
std::set<RelationId> RelationsOf(const std::vector<Atom>& atoms) {
  std::set<RelationId> rels;
  for (const Atom& atom : atoms) rels.insert(atom.relation());
  return rels;
}

size_t CountEndogenous(const Universe& universe) {
  size_t count = 0;
  for (const FactEntry& e : universe) {
    if (e.endogenous) ++count;
  }
  return count;
}

// Picks a root variable: one that occurs in every atom. Exists in every
// variable-connected component of a hierarchical query.
std::optional<Variable> FindRootVariable(const std::vector<Atom>& atoms) {
  SHAPLEY_CHECK(!atoms.empty());
  std::set<Variable> candidates = atoms.front().Variables();
  for (const Atom& atom : atoms) {
    std::set<Variable> mine = atom.Variables();
    std::set<Variable> kept;
    std::set_intersection(candidates.begin(), candidates.end(), mine.begin(),
                          mine.end(), std::inserter(kept, kept.begin()));
    candidates = std::move(kept);
    if (candidates.empty()) return std::nullopt;
  }
  return *candidates.begin();
}

// Shared recursion skeleton, specialized by two result algebras below.
//
// CountAlgebra results are generating polynomials over the endogenous facts
// in scope; ProbabilityAlgebra results are plain probabilities.
struct CountAlgebra {
  using Result = Polynomial;
  static Result True(const Universe& free) {
    return Polynomial::OnePlusZPower(CountEndogenous(free));
  }
  static Result False() { return Polynomial(); }
  // Fact required present.
  static Result RequireFact(const FactEntry& entry, Result rest) {
    if (!entry.endogenous) return rest;
    return rest.ShiftUp(1);
  }
  static Result Join(Result a, const Result& b) { return a * b; }
  // Complement-product over buckets; `bucket_totals` are the endogenous
  // counts per bucket, `free` the junk facts that match no bucket.
  static Result Project(const std::vector<Result>& bucket_results,
                        const std::vector<size_t>& bucket_endo,
                        const Universe& free) {
    Polynomial all_unsat = Polynomial::Constant(1);
    size_t total_endo = 0;
    for (size_t i = 0; i < bucket_results.size(); ++i) {
      all_unsat *=
          Polynomial::OnePlusZPower(bucket_endo[i]) - bucket_results[i];
      total_endo += bucket_endo[i];
    }
    Polynomial result =
        Polynomial::OnePlusZPower(total_endo) - all_unsat;
    return result * Polynomial::OnePlusZPower(CountEndogenous(free));
  }
};

struct ProbabilityAlgebra {
  using Result = BigRational;
  static Result True(const Universe&) { return BigRational(1); }
  static Result False() { return BigRational(0); }
  static Result RequireFact(const FactEntry& entry, Result rest) {
    return entry.probability * rest;
  }
  static Result Join(Result a, const Result& b) { return a * b; }
  static Result Project(const std::vector<Result>& bucket_results,
                        const std::vector<size_t>&, const Universe&) {
    BigRational all_unsat(1);
    for (const Result& r : bucket_results) {
      all_unsat *= BigRational(1) - r;
    }
    return BigRational(1) - all_unsat;
  }
};

template <typename Algebra>
class LiftedEvaluator {
 public:
  using Result = typename Algebra::Result;

  Result Evaluate(std::vector<Atom> atoms, Universe universe) {
    // Filter the universe to the relations of the current query; facts of
    // other relations are unconstrained ("free").
    std::set<RelationId> rels = RelationsOf(atoms);
    Universe scoped, free;
    for (FactEntry& e : universe) {
      (rels.count(e.fact.relation()) > 0 ? scoped : free)
          .push_back(std::move(e));
    }
    Result core = EvaluateScoped(std::move(atoms), std::move(scoped));
    // Free facts multiply in as an unconstrained block.
    return Algebra::Join(std::move(core), Algebra::True(free));
  }

 private:
  Result EvaluateScoped(std::vector<Atom> atoms, Universe universe) {
    if (atoms.empty()) return Algebra::True(universe);

    // Ground atom: its fact must be present.
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (!atoms[i].IsGround()) continue;
      Fact required = atoms[i].Instantiate({});
      auto it = std::find_if(universe.begin(), universe.end(),
                             [&](const FactEntry& e) {
                               return e.fact == required;
                             });
      if (it == universe.end()) return Algebra::False();
      FactEntry entry = *it;
      universe.erase(it);
      std::vector<Atom> rest = atoms;
      rest.erase(rest.begin() + static_cast<int64_t>(i));
      // The consumed relation may still be shared... sjf guarantees not;
      // remaining facts of that relation become free in the recursion.
      Result sub = Evaluate(std::move(rest), std::move(universe));
      return Algebra::RequireFact(entry, std::move(sub));
    }

    // Independent join across variable-connected components.
    auto components = VariableConnectedComponents(atoms);
    if (components.size() > 1) {
      Result product = Algebra::True({});
      for (const auto& component : components) {
        std::vector<Atom> part;
        for (size_t idx : component) part.push_back(atoms[idx]);
        std::set<RelationId> rels = RelationsOf(part);
        Universe part_universe;
        for (const FactEntry& e : universe) {
          if (rels.count(e.fact.relation()) > 0) part_universe.push_back(e);
        }
        product = Algebra::Join(std::move(product),
                                Evaluate(std::move(part), std::move(part_universe)));
      }
      return product;
    }

    // Independent project on a root variable.
    auto root = FindRootVariable(atoms);
    if (!root.has_value()) {
      throw std::invalid_argument(
          "lifted engine: no root variable — query is not hierarchical");
    }
    // Bucket facts by the constant they would bind the root variable to.
    std::map<Constant, Universe> buckets;
    Universe junk;
    std::map<RelationId, const Atom*> atom_of;
    for (const Atom& atom : atoms) {
      SHAPLEY_CHECK_MSG(atom_of.emplace(atom.relation(), &atom).second,
                        "lifted engine requires a self-join-free query");
    }
    for (FactEntry& e : universe) {
      const Atom* atom = atom_of.at(e.fact.relation());
      Assignment assignment;
      if (!atom->UnifyWith(e.fact, &assignment)) {
        junk.push_back(std::move(e));
        continue;
      }
      buckets[assignment.at(*root)].push_back(std::move(e));
    }

    std::vector<Result> bucket_results;
    std::vector<size_t> bucket_endo;
    for (auto& [constant, bucket] : buckets) {
      std::vector<Atom> substituted;
      substituted.reserve(atoms.size());
      for (const Atom& atom : atoms) {
        substituted.push_back(atom.Substitute(*root, constant));
      }
      bucket_endo.push_back(CountEndogenous(bucket));
      bucket_results.push_back(
          Evaluate(std::move(substituted), std::move(bucket)));
    }
    return Algebra::Project(bucket_results, bucket_endo, junk);
  }
};

}  // namespace

void RequireLiftedCompatible(const ConjunctiveQuery& cq) {
  if (cq.HasNegation()) {
    throw std::invalid_argument("lifted engine: negation not supported");
  }
  if (!IsSelfJoinFree(cq)) {
    throw std::invalid_argument("lifted engine: query must be self-join-free");
  }
  if (!IsHierarchical(cq)) {
    throw std::invalid_argument("lifted engine: query must be hierarchical");
  }
}

Polynomial LiftedCountBySize(const ConjunctiveQuery& cq,
                             const PartitionedDatabase& db) {
  RequireLiftedCompatible(cq);
  Universe universe;
  for (const Fact& f : db.endogenous().facts()) {
    universe.push_back({f, true, BigRational(1)});
  }
  for (const Fact& f : db.exogenous().facts()) {
    universe.push_back({f, false, BigRational(1)});
  }
  LiftedEvaluator<CountAlgebra> evaluator;
  return evaluator.Evaluate(cq.atoms(), std::move(universe));
}

BigRational LiftedProbability(
    const ConjunctiveQuery& cq,
    const std::map<Fact, BigRational>& probabilities) {
  RequireLiftedCompatible(cq);
  Universe universe;
  for (const auto& [fact, p] : probabilities) {
    universe.push_back({fact, false, p});
  }
  LiftedEvaluator<ProbabilityAlgebra> evaluator;
  return evaluator.Evaluate(cq.atoms(), std::move(universe));
}

}  // namespace shapley
