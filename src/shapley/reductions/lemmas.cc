#include "shapley/reductions/lemmas.h"

#include <stdexcept>

#include "shapley/analysis/leaks.h"
#include "shapley/analysis/structure.h"
#include "shapley/arith/factorial.h"
#include "shapley/arith/linear_system.h"
#include "shapley/common/macros.h"
#include "shapley/data/renaming.h"
#include "shapley/query/conjunction_query.h"
#include "shapley/query/path_query.h"
#include "shapley/query/supports.h"
#include "shapley/query/union_query.h"

namespace shapley {

namespace {

// (1+z)^n — the trivial answer when Dx already satisfies the query.
Polynomial AllSubsetsCount(size_t n) { return Polynomial::OnePlusZPower(n); }

// Splits a renamed-fresh support S into S0 (facts containing `a`) and S−.
struct SupportSplit {
  Database s0;
  Database s_minus;
  Fact mu;
  Constant a;
};

SupportSplit SplitSupport(const Database& support, Constant a) {
  SupportSplit split;
  split.a = a;
  split.s0 = Database(support.schema());
  split.s_minus = Database(support.schema());
  for (const Fact& f : support.facts()) {
    if (f.Mentions(a)) {
      split.s0.Insert(f);
    } else {
      split.s_minus.Insert(f);
    }
  }
  SHAPLEY_CHECK_MSG(!split.s0.empty(), "duplicated constant not in support");
  split.mu = split.s0.facts().front();
  return split;
}

// Picks a duplicable constant outside `c_set`; when `prefer_single_fact` is
// set, tries to find one occurring in exactly one fact (Lemma 6.2's
// "unshared constant") and returns an invalid Constant if none exists.
Constant PickDuplicableConstant(const Database& support,
                                const std::set<Constant>& c_set,
                                bool prefer_single_fact) {
  Constant fallback;
  for (Constant c : support.Constants()) {
    if (c_set.count(c) > 0) continue;
    if (!prefer_single_fact) return c;
    size_t occurrences = 0;
    for (const Fact& f : support.facts()) {
      if (f.Mentions(c)) ++occurrences;
    }
    if (occurrences == 1) return c;
    fallback = Constant();
  }
  return prefer_single_fact ? Constant() : fallback;
}

// The relation names a (monotone) query can touch, used by Lemma 4.4's
// relevance partition.
std::set<RelationId> QueryVocabulary(const BooleanQuery& query) {
  std::set<RelationId> vocab;
  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    for (const Atom& atom : cq->atoms()) vocab.insert(atom.relation());
    for (const Atom& atom : cq->negated_atoms()) vocab.insert(atom.relation());
    return vocab;
  }
  if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    for (const CqPtr& d : ucq->disjuncts()) {
      auto sub = QueryVocabulary(*d);
      vocab.insert(sub.begin(), sub.end());
    }
    return vocab;
  }
  if (const auto* rpq = dynamic_cast<const RegularPathQuery*>(&query)) {
    for (const std::string& name : rpq->regex().SymbolNames()) {
      auto rel = rpq->schema()->FindRelation(name);
      if (rel.has_value()) vocab.insert(*rel);
    }
    return vocab;
  }
  if (const auto* crpq =
          dynamic_cast<const ConjunctiveRegularPathQuery*>(&query)) {
    for (const PathAtom& atom : crpq->path_atoms()) {
      for (const std::string& name : atom.regex.SymbolNames()) {
        auto rel = crpq->schema()->FindRelation(name);
        if (rel.has_value()) vocab.insert(*rel);
      }
    }
    return vocab;
  }
  if (const auto* conj = dynamic_cast<const ConjunctionQuery*>(&query)) {
    vocab = QueryVocabulary(*conj->left());
    auto sub = QueryVocabulary(*conj->right());
    vocab.insert(sub.begin(), sub.end());
    return vocab;
  }
  throw std::invalid_argument("QueryVocabulary: unsupported query type");
}

}  // namespace

Polynomial FgmcViaSvcLemma41(const BooleanQuery& query,
                             const PseudoConnectednessWitness& witness,
                             const PartitionedDatabase& db, SvcEngine& oracle,
                             PascalStats* stats) {
  const size_t n = db.NumEndogenous();
  if (query.Evaluate(db.exogenous())) return AllSubsetsCount(n);

  // Rename the island support away from the database (C fixed).
  ConstantRenaming renaming =
      ConstantRenaming::FreshExcept(witness.island_support, witness.c_set);
  Database support = renaming.Apply(witness.island_support);

  Constant a = PickDuplicableConstant(support, witness.c_set,
                                      /*prefer_single_fact=*/false);
  SHAPLEY_CHECK_MSG(a.IsValid(),
                    "island support has no constant outside C");
  SupportSplit split = SplitSupport(support, a);

  PascalSpec spec;
  spec.oracle_query = &query;
  spec.base = db;
  spec.exogenous_extra = Database(db.schema());
  spec.s0 = split.s0;
  spec.s_minus = split.s_minus;
  spec.mu = split.mu;
  spec.duplicated = a;
  spec.blockers = Database(db.schema());
  spec.count_supports_directly = false;
  return RunPascalReduction(spec, oracle, stats);
}

Polynomial FmcViaSvcnLemma62(const BooleanQuery& query,
                             const PseudoConnectednessWitness& witness,
                             const Database& endogenous_db, SvcEngine& oracle,
                             PascalStats* stats) {
  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(endogenous_db);
  const size_t n = db.NumEndogenous();
  if (query.Evaluate(db.exogenous())) return AllSubsetsCount(n);

  ConstantRenaming renaming =
      ConstantRenaming::FreshExcept(witness.island_support, witness.c_set);
  Database support = renaming.Apply(witness.island_support);

  Constant a = PickDuplicableConstant(support, witness.c_set,
                                      /*prefer_single_fact=*/true);
  if (!a.IsValid()) {
    throw std::invalid_argument(
        "Lemma 6.2: island support has no unshared constant outside C");
  }
  SupportSplit split = SplitSupport(support, a);
  SHAPLEY_CHECK_MSG(split.s0.size() == 1,
                    "unshared constant must isolate a single fact");

  PascalSpec spec;
  spec.oracle_query = &query;
  spec.base = db;
  spec.exogenous_extra = Database(db.schema());
  spec.s0 = split.s0;
  spec.s_minus = split.s_minus;
  spec.mu = split.mu;
  spec.duplicated = a;
  spec.blockers = Database(db.schema());
  spec.count_supports_directly = false;

  // A purely-endogenous-preserving oracle adapter: assert no instance ever
  // carries exogenous facts.
  class CheckingOracle : public SvcEngine {
   public:
    explicit CheckingOracle(SvcEngine* inner) : inner_(inner) {}
    std::string name() const override { return inner_->name(); }
    BigRational Value(const BooleanQuery& q, const PartitionedDatabase& d,
                      const Fact& f) override {
      SHAPLEY_CHECK_MSG(d.IsPurelyEndogenous(),
                        "Lemma 6.2 must stay purely endogenous");
      return inner_->Value(q, d, f);
    }
    SvcEngine* inner_;
  } checking(&oracle);

  return RunPascalReduction(spec, checking, stats);
}

Polynomial FgmcViaSvcLemma43(const ConjunctiveQuery& q_full,
                             size_t component_index,
                             const PartitionedDatabase& db, SvcEngine& oracle,
                             PascalStats* stats, CqPtr* counted_query) {
  if (q_full.HasNegation()) {
    throw std::invalid_argument(
        "Lemma 4.3 wrapper: use FgmcViaSvcNegationD2 for CQ¬");
  }
  const bool sjf = IsSelfJoinFree(q_full);
  const bool constant_free = q_full.QueryConstants().empty();
  if (!sjf && !constant_free) {
    throw std::invalid_argument(
        "Lemma 4.3 wrapper (Corollary 4.5): query must be self-join-free or "
        "constant-free (leak-freeness cannot be certified otherwise)");
  }

  std::vector<CqPtr> components = MaximalVariableConnectedSubqueries(q_full);
  if (component_index >= components.size()) {
    throw std::invalid_argument("Lemma 4.3: component index out of range");
  }
  CqPtr q_vc = components[component_index];
  if (counted_query != nullptr) *counted_query = q_vc;

  const size_t n = db.NumEndogenous();
  if (q_vc->Evaluate(db.exogenous())) return AllSubsetsCount(n);

  // S: frozen core of the counted component (leak-free per Corollary 4.5).
  CqPtr core = CoreOfCq(*q_vc);
  if (!IsVariableConnected(core->atoms())) {
    throw std::invalid_argument(
        "Lemma 4.3: the chosen component's core is not variable-connected");
  }
  Database support = core->Freeze();
  SHAPLEY_CHECK(!HasQLeak(support, *q_vc));

  // S′: the frozen remaining components, all exogenous (Claim 5.2).
  Database s_prime(q_full.schema());
  std::vector<Atom> rest_atoms;
  for (size_t c = 0; c < components.size(); ++c) {
    if (c == component_index) continue;
    rest_atoms.insert(rest_atoms.end(), components[c]->atoms().begin(),
                      components[c]->atoms().end());
  }
  if (!rest_atoms.empty()) {
    CqPtr q_rest = ConjunctiveQuery::Create(q_full.schema(), rest_atoms);
    s_prime = q_rest->Freeze();
    if (q_vc->Evaluate(s_prime)) {
      throw std::invalid_argument(
          "Lemma 4.3: S' satisfies the counted component (hypothesis 2a); "
          "the component is redundant — use Lemma 4.1 instead");
    }
    SHAPLEY_CHECK(!HasQLeak(s_prime, *q_vc));
  }

  const std::set<Constant> c_set = q_vc->QueryConstants();
  Constant a = PickDuplicableConstant(support, c_set, false);
  SHAPLEY_CHECK_MSG(a.IsValid(), "frozen support has no constant outside C");
  SupportSplit split = SplitSupport(support, a);

  PascalSpec spec;
  spec.oracle_query = &q_full;
  spec.base = db;
  spec.exogenous_extra = s_prime;
  spec.s0 = split.s0;
  spec.s_minus = split.s_minus;
  spec.mu = split.mu;
  spec.duplicated = a;
  spec.blockers = Database(db.schema());
  spec.count_supports_directly = false;
  return RunPascalReduction(spec, oracle, stats);
}

Polynomial FgmcViaSvcLemma44(const BooleanQuery& query,
                             const Decomposition& decomposition,
                             const PartitionedDatabase& db, SvcEngine& oracle,
                             PascalStats* stats) {
  std::set<RelationId> vocab1 = QueryVocabulary(*decomposition.q1);
  std::set<RelationId> vocab2 = QueryVocabulary(*decomposition.q2);
  for (RelationId r : vocab1) {
    if (vocab2.count(r) > 0) {
      throw std::invalid_argument(
          "Lemma 4.4: decomposition parts must use disjoint vocabularies");
    }
  }

  // Relevance partition of D: q2-vocabulary facts go to D2, everything else
  // (q1 vocabulary and bystander relations) to D1.
  auto split_db = [&](const Database& source, Database* d1, Database* d2) {
    for (const Fact& f : source.facts()) {
      (vocab2.count(f.relation()) > 0 ? d2 : d1)->Insert(f);
    }
  };
  Database d1n(db.schema()), d1x(db.schema()), d2n(db.schema()),
      d2x(db.schema());
  split_db(db.endogenous(), &d1n, &d2n);
  split_db(db.exogenous(), &d1x, &d2x);
  PartitionedDatabase part1(d1n, d1x), part2(d2n, d2x);

  // FGMC of one part via the construction seeded with the other part's
  // canonical support.
  auto count_part = [&](const BooleanQuery& counted,
                        const BooleanQuery& other,
                        const PartitionedDatabase& part) -> Polynomial {
    const size_t n_part = part.NumEndogenous();
    if (counted.Evaluate(part.exogenous())) return AllSubsetsCount(n_part);

    std::vector<Database> supports = CanonicalMinimalSupports(other);
    const std::set<Constant> c_set = query.QueryConstants();
    for (const Database& candidate : supports) {
      Constant a = PickDuplicableConstant(candidate, c_set, false);
      if (!a.IsValid()) continue;
      SupportSplit split = SplitSupport(candidate, a);
      PascalSpec spec;
      spec.oracle_query = &query;
      spec.base = part;
      spec.exogenous_extra = Database(db.schema());
      spec.s0 = split.s0;
      spec.s_minus = split.s_minus;
      spec.mu = split.mu;
      spec.duplicated = a;
      spec.blockers = Database(db.schema());
      spec.count_supports_directly = true;
      return RunPascalReduction(spec, oracle, stats);
    }
    throw std::invalid_argument(
        "Lemma 4.4: no canonical support of the companion part has a "
        "constant outside C");
  };

  Polynomial counts1 = count_part(*decomposition.q1, *decomposition.q2, part1);
  Polynomial counts2 = count_part(*decomposition.q2, *decomposition.q1, part2);
  return counts1 * counts2;  // Convolution over split sizes.
}

Polynomial FgmcViaFmcLemma61(const BooleanQuery& query,
                             const PartitionedDatabase& db,
                             FgmcEngine& fmc_oracle, size_t* oracle_calls) {
  if (db.IsPurelyEndogenous()) {
    if (oracle_calls != nullptr) ++*oracle_calls;
    return fmc_oracle.CountBySize(query, db);
  }
  // Peel one exogenous fact α:
  //   FGMC_j(Dn, Dx) = FGMC_{j+1}(Dn ∪ {α}, Dx\{α}) − FGMC_{j+1}(Dn, Dx\{α}).
  Fact alpha = db.exogenous().facts().front();
  PartitionedDatabase promoted(db.endogenous().Union(Database(
                                   db.schema(), {alpha})),
                               db.exogenous().Difference(
                                   Database(db.schema(), {alpha})));
  PartitionedDatabase dropped(db.endogenous(),
                              db.exogenous().Difference(
                                  Database(db.schema(), {alpha})));
  Polynomial with_alpha =
      FgmcViaFmcLemma61(query, promoted, fmc_oracle, oracle_calls);
  Polynomial without_alpha =
      FgmcViaFmcLemma61(query, dropped, fmc_oracle, oracle_calls);

  // Shift down by one: coefficient j of the result is coefficient j+1 of
  // the difference.
  Polynomial difference = with_alpha - without_alpha;
  std::vector<BigInt> coeffs(db.NumEndogenous() + 1, BigInt(0));
  for (size_t j = 0; j <= db.NumEndogenous(); ++j) {
    coeffs[j] = difference.Coefficient(j + 1);
  }
  return Polynomial(std::move(coeffs));
}

Polynomial FgmcViaMaxSvcProp62(const BooleanQuery& query,
                               const PseudoConnectednessWitness& witness,
                               const PartitionedDatabase& db,
                               const MaxSvcOracle& oracle,
                               PascalStats* stats) {
  const size_t n = db.NumEndogenous();
  if (query.Evaluate(db.exogenous())) return AllSubsetsCount(n);

  ConstantRenaming renaming =
      ConstantRenaming::FreshExcept(witness.island_support, witness.c_set);
  Database support = renaming.Apply(witness.island_support);
  Constant a = PickDuplicableConstant(support, witness.c_set, false);
  SHAPLEY_CHECK_MSG(a.IsValid(), "island support has no constant outside C");

  // Proposition 6.2: take S0 := S (the whole support duplicates; copies
  // rename only `a`, so facts avoiding `a` are shared between them) and
  // S− := ∅, which makes μ a singleton generalized support in every A_i.
  PascalSpec spec;
  spec.oracle_query = &query;
  spec.base = db;
  spec.exogenous_extra = Database(db.schema());
  spec.s_minus = Database(db.schema());
  spec.blockers = Database(db.schema());
  spec.count_supports_directly = false;
  spec.duplicated = a;
  spec.s0 = support;
  // μ must mention the duplicated constant so that the copies μ_k differ.
  for (const Fact& f : support.facts()) {
    if (f.Mentions(a)) {
      spec.mu = f;
      break;
    }
  }
  return RunPascalReductionWithMaxOracle(spec, oracle, stats);
}

Polynomial FgmcConstViaSvcConstProp63(const BooleanQuery& query,
                                      const Database& db,
                                      const ConstantPartition& partition,
                                      const SvcConstOracle& oracle,
                                      PascalStats* stats) {
  ValidateConstantPartition(db, partition);
  if (!query.IsMonotone()) {
    throw std::invalid_argument("Proposition 6.3: query must be monotone");
  }
  // Query constants must be exogenous (the proviso of Proposition 6.3).
  ConstantPartition extended = partition;
  for (Constant c : query.QueryConstants()) {
    if (extended.endogenous.count(c) > 0) {
      throw std::invalid_argument(
          "Proposition 6.3: query constants must be exogenous");
    }
    extended.exogenous.insert(c);
  }
  const size_t n = extended.endogenous.size();

  // Trivial cases: Cx alone decides the query for every coalition.
  if (query.Evaluate(db.InducedByConstants(extended.exogenous))) {
    return AllSubsetsCount(n);
  }

  // A support collapsed onto one fresh constant a_mu.
  Database collapsed(db.schema());
  Constant a_mu = Constant::Fresh("amu");
  {
    bool found = false;
    for (const Database& support : CanonicalMinimalSupports(query)) {
      // Collapse all non-query constants to a_mu; hom-closure keeps it a
      // support. Then shrink to a minimal one.
      ConstantRenaming renaming;
      const std::set<Constant> c_set = query.QueryConstants();
      bool has_outside = false;
      for (Constant c : support.Constants()) {
        if (c_set.count(c) == 0) {
          renaming.Map(c, a_mu);
          has_outside = true;
        }
      }
      if (!has_outside) continue;
      Database candidate = renaming.Apply(support);
      if (!query.Evaluate(candidate)) continue;
      candidate = ShrinkToMinimalSupport(query, candidate);
      bool all_mention = true;
      for (const Fact& f : candidate.facts()) {
        if (!f.Mentions(a_mu)) {
          all_mention = false;
          break;
        }
      }
      if (!all_mention) continue;
      collapsed = candidate;
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument(
          "Proposition 6.3: no support collapses onto a single fresh "
          "constant with every fact mentioning it");
    }
  }

  // Build D_i = D ∪ S'' ∪ S''_1..S''_i and solve the s=0, K=0 system.
  std::vector<BigRational> values;
  Database current = db.Union(collapsed);
  std::set<Constant> players = extended.endogenous;
  players.insert(a_mu);
  for (size_t i = 0; i <= n; ++i) {
    ConstantPartition instance_partition;
    instance_partition.endogenous = players;
    instance_partition.exogenous = extended.exogenous;
    values.push_back(oracle(current, instance_partition, a_mu));
    if (stats != nullptr) {
      ++stats->oracle_calls;
      stats->largest_instance_endogenous =
          std::max(stats->largest_instance_endogenous, players.size());
      stats->largest_instance_total =
          std::max(stats->largest_instance_total, current.size());
    }
    // Next copy.
    ConstantRenaming renaming = ConstantRenaming::SingleFresh(a_mu);
    Database copy = renaming.Apply(collapsed);
    players.insert(renaming.Apply(a_mu));
    current = current.Union(copy);
  }

  RationalMatrix m(n + 1, std::vector<BigRational>(n + 1));
  for (size_t i = 0; i <= n; ++i) {
    for (size_t j = 0; j <= n; ++j) {
      m[i][j] = BigRational(Factorial(j) * Factorial(n + i - j),
                            Factorial(n + i + 1));
    }
  }
  std::vector<BigRational> x = SolveLinearSystem(std::move(m), values);
  std::vector<BigInt> counts(n + 1);
  for (size_t j = 0; j <= n; ++j) {
    SHAPLEY_CHECK_MSG(x[j].IsInteger(), "non-integral recovered count");
    counts[j] = Binomial(n, j) - x[j].numerator();
    SHAPLEY_CHECK(!counts[j].IsNegative());
  }
  return Polynomial(std::move(counts));
}

Polynomial FgmcViaSvcNegationD2(const ConjunctiveQuery& q,
                                size_t component_index,
                                const PartitionedDatabase& db,
                                SvcEngine& oracle, PascalStats* stats,
                                CqPtr* counted_query) {
  // Self-join-freeness across positive AND negated atoms.
  {
    std::set<RelationId> seen;
    for (const Atom& atom : q.atoms()) {
      if (!seen.insert(atom.relation()).second) {
        throw std::invalid_argument("Lemma D.2: query must be self-join-free");
      }
    }
    for (const Atom& atom : q.negated_atoms()) {
      if (!seen.insert(atom.relation()).second) {
        throw std::invalid_argument(
            "Lemma D.2: negated atoms must not share relations with the "
            "positive part");
      }
    }
  }

  // Positive components; pick q◦.
  CqPtr positive = ConjunctiveQuery::Create(q.schema(), q.atoms());
  std::vector<CqPtr> components = MaximalVariableConnectedSubqueries(*positive);
  if (component_index >= components.size()) {
    throw std::invalid_argument("Lemma D.2: component index out of range");
  }
  CqPtr q_core_pos = components[component_index];
  std::set<Variable> core_vars;
  for (const Atom& atom : q_core_pos->atoms()) {
    auto vs = atom.Variables();
    core_vars.insert(vs.begin(), vs.end());
  }

  // q̃− : negated atoms with all variables inside q◦; ground negated atoms
  // become blockers; others are dropped (their variables bind to fresh
  // constants of S′, where the negation trivially holds).
  std::vector<Atom> covered_negated;
  std::vector<Fact> blocker_facts;
  for (const Atom& neg : q.negated_atoms()) {
    auto vars = neg.Variables();
    if (vars.empty()) {
      blocker_facts.push_back(neg.Instantiate({}));
      continue;
    }
    bool covered = true;
    for (Variable v : vars) {
      if (core_vars.count(v) == 0) {
        covered = false;
        break;
      }
    }
    if (covered) covered_negated.push_back(neg);
  }
  CqPtr counted =
      covered_negated.empty()
          ? q_core_pos
          : ConjunctiveQuery::CreateWithNegation(
                q.schema(), q_core_pos->atoms(), covered_negated);
  if (counted_query != nullptr) *counted_query = counted;

  // Preprocess blockers against the database.
  PartitionedDatabase base = db;
  Database blockers(db.schema());
  for (const Fact& alpha : blocker_facts) {
    if (base.exogenous().Contains(alpha)) {
      // ¬α can never hold: nothing counts.
      return Polynomial();
    }
    if (base.endogenous().Contains(alpha)) {
      // Subsets containing α never satisfy; counting over Dn\{α} is
      // equivalent (sizes unchanged for the subsets that matter).
      base = base.WithEndogenousFactRemoved(alpha);
    }
    blockers.Insert(alpha);
  }

  const size_t n = base.NumEndogenous();
  if (counted->Evaluate(base.exogenous())) return AllSubsetsCount(n);

  // S ≅ frozen positive core component; S′ ≅ frozen remaining positives.
  Database support = q_core_pos->Freeze();
  Database s_prime(q.schema());
  std::vector<Atom> rest_atoms;
  for (size_t c = 0; c < components.size(); ++c) {
    if (c == component_index) continue;
    rest_atoms.insert(rest_atoms.end(), components[c]->atoms().begin(),
                      components[c]->atoms().end());
  }
  if (!rest_atoms.empty()) {
    s_prime =
        ConjunctiveQuery::Create(q.schema(), std::move(rest_atoms))->Freeze();
  }

  const std::set<Constant> c_set = q.QueryConstants();
  Constant a = PickDuplicableConstant(support, c_set, false);
  SHAPLEY_CHECK_MSG(a.IsValid(), "frozen support has no constant outside C");
  SupportSplit split = SplitSupport(support, a);

  PascalSpec spec;
  spec.oracle_query = &q;
  spec.base = base;
  spec.exogenous_extra = s_prime;
  spec.s0 = split.s0;
  spec.s_minus = split.s_minus;
  spec.mu = split.mu;
  spec.duplicated = a;
  spec.blockers = blockers;
  spec.count_supports_directly = false;
  return RunPascalReduction(spec, oracle, stats);
}

}  // namespace shapley
