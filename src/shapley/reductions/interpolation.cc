#include "shapley/reductions/interpolation.h"

#include <stdexcept>

#include "shapley/arith/linear_system.h"
#include "shapley/common/macros.h"

namespace shapley {

Polynomial InterpolationFgmc::CountBySize(const BooleanQuery& query,
                                          const PartitionedDatabase& db) {
  const size_t n = db.NumEndogenous();

  // Sample points z_t = t + 1 (so p = z/(1+z) ∈ (0,1), pairwise distinct).
  std::vector<BigRational> points, values;
  points.reserve(n + 1);
  values.reserve(n + 1);
  for (size_t t = 0; t <= n; ++t) {
    BigRational z(static_cast<int64_t>(t + 1));
    BigRational p = z / (BigRational(1) + z);
    ProbabilisticDatabase pdb = ProbabilisticDatabase::FromPartitioned(db, p);
    BigRational probability = oracle_->Probability(query, pdb);
    ++oracle_calls_;
    // (1+z)^n * Pr = sum_j z^j FGMC_j.
    BigRational one_plus_z = BigRational(1) + z;
    BigRational scale(1);
    for (size_t k = 0; k < n; ++k) scale *= one_plus_z;
    points.push_back(z);
    values.push_back(scale * probability);
  }

  std::vector<BigRational> coefficients = SolveVandermonde(points, values);
  std::vector<BigInt> counts;
  counts.reserve(coefficients.size());
  for (const BigRational& c : coefficients) {
    SHAPLEY_CHECK_MSG(c.IsInteger() && !c.numerator().IsNegative(),
                      "interpolated count is not a nonnegative integer: "
                          << c.ToString());
    counts.push_back(c.numerator());
  }
  return Polynomial(std::move(counts));
}

BigInt McViaUniformPqe(const BooleanQuery& query, const Database& db,
                       PqeEngine& oracle) {
  const BigRational half(BigInt(1), BigInt(2));
  ProbabilisticDatabase uniform(db.schema());
  for (const Fact& f : db.facts()) uniform.AddFact(f, half);
  BigRational probability = oracle.Probability(query, uniform);
  BigRational count =
      probability * BigRational(BigInt::Pow(2, db.size()));
  SHAPLEY_CHECK_MSG(count.IsInteger(), "2^n * Pr must be integral");
  return count.numerator();
}

BigRational FgmcBackedSppqe::Probability(const BooleanQuery& query,
                                         const ProbabilisticDatabase& db) {
  if (!db.IsSingleProperProbability()) {
    throw std::invalid_argument(
        "FgmcBackedSppqe: input is not SPPQE-shaped (probabilities must lie "
        "in {p, 1})");
  }
  PartitionedDatabase partitioned = db.AssociatedPartitioned();
  const size_t n = partitioned.NumEndogenous();
  if (n == 0) {
    // Everything is certain.
    return query.Evaluate(partitioned.exogenous()) ? BigRational(1)
                                                   : BigRational(0);
  }
  // Identify p (some probability != 1 exists since n > 0).
  BigRational p(1);
  for (const BigRational& prob : db.probabilities()) {
    if (!(prob == BigRational(1))) {
      p = prob;
      break;
    }
  }
  BigRational z = p / (BigRational(1) - p);

  Polynomial counts = oracle_->CountBySize(query, partitioned);
  // Pr = sum_j z^j FGMC_j / (1+z)^n.
  BigRational numerator = counts.Evaluate(z);
  BigRational one_plus_z = BigRational(1) + z;
  BigRational denominator(1);
  for (size_t k = 0; k < n; ++k) denominator *= one_plus_z;
  return numerator / denominator;
}

}  // namespace shapley
