#ifndef SHAPLEY_REDUCTIONS_LEMMAS_H_
#define SHAPLEY_REDUCTIONS_LEMMAS_H_

#include <memory>

#include "shapley/analysis/witnesses.h"
#include "shapley/engines/constants.h"
#include "shapley/engines/svc.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/reductions/pascal.h"

namespace shapley {

/// The paper's reductions from counting to Shapley values, as runnable
/// code. Each function computes FGMC (the full generating polynomial) of a
/// query over a database **using only an SVC oracle**, i.e. the direction
/// that had been missing from the literature before this paper.

/// Lemma 4.1: FGMC_q ≤poly SVC_q for pseudo-connected C-hom-closed q.
/// The witness supplies the island minimal support; obtain one from
/// CertifyPseudoConnected. Makes |Dn|+1 oracle calls.
Polynomial FgmcViaSvcLemma41(const BooleanQuery& query,
                             const PseudoConnectednessWitness& witness,
                             const PartitionedDatabase& db, SvcEngine& oracle,
                             PascalStats* stats = nullptr);

/// Lemma 6.2 (purely endogenous adaptation of Lemma 4.1):
/// FMC_q ≤poly SVCn_q when the island support has a constant occurring in
/// exactly one fact. The oracle is only ever called on purely endogenous
/// databases (checked). Throws if the witness has no such constant.
Polynomial FmcViaSvcnLemma62(const BooleanQuery& query,
                             const PseudoConnectednessWitness& witness,
                             const Database& endogenous_db, SvcEngine& oracle,
                             PascalStats* stats = nullptr);

/// Lemma 4.3 instantiated per Corollary 4.5: for a positive CQ q_full that
/// is self-join-free or constant-free, computes FGMC of its
/// `component_index`-th maximal variable-connected subquery q_vc over `db`,
/// using only an SVC_{q_full} oracle. Returns the counted subquery through
/// `counted_query` when non-null.
Polynomial FgmcViaSvcLemma43(const ConjunctiveQuery& q_full,
                             size_t component_index,
                             const PartitionedDatabase& db, SvcEngine& oracle,
                             PascalStats* stats = nullptr,
                             CqPtr* counted_query = nullptr);

/// Lemma 4.4: FGMC_q ≤poly SVC_q for q decomposable into q1 ∧ q2 (e.g. from
/// FindDecomposition). Splits D by the parts' disjoint vocabularies, runs
/// the construction once per part with the *other* part's support, and
/// convolves the two count polynomials.
Polynomial FgmcViaSvcLemma44(const BooleanQuery& query,
                             const Decomposition& decomposition,
                             const PartitionedDatabase& db, SvcEngine& oracle,
                             PascalStats* stats = nullptr);

/// Lemma 6.1: FGMC on a database with k exogenous facts via 2^k calls to an
/// FMC oracle (the engine is invoked on purely endogenous databases only).
Polynomial FgmcViaFmcLemma61(const BooleanQuery& query,
                             const PartitionedDatabase& db,
                             FgmcEngine& fmc_oracle,
                             size_t* oracle_calls = nullptr);

/// Proposition 6.2: FGMC_q ≤poly max-SVC_q — the same construction with
/// S0 = S and S− = ∅, consuming only the *value* returned by a max-SVC
/// oracle (any fact of maximum Shapley value).
Polynomial FgmcViaMaxSvcProp62(const BooleanQuery& query,
                               const PseudoConnectednessWitness& witness,
                               const PartitionedDatabase& db,
                               const MaxSvcOracle& oracle,
                               PascalStats* stats = nullptr);

/// Proposition 6.3: FGMCconst_q ≤poly SVCconst_q for hom-closed monotone q,
/// provided the query constants are exogenous. The support is collapsed
/// onto a single fresh constant a_μ (a "duplicable singleton" in constant
/// space) and duplicated; |Cn|+1 oracle calls.
using SvcConstOracle = std::function<BigRational(
    const Database& db, const ConstantPartition& partition, Constant player)>;
Polynomial FgmcConstViaSvcConstProp63(const BooleanQuery& query,
                                      const Database& db,
                                      const ConstantPartition& partition,
                                      const SvcConstOracle& oracle,
                                      PascalStats* stats = nullptr);

/// Lemma D.2 / Proposition 6.1: for a self-join-free CQ with safe negation
/// q, computes FGMC of q̃ = q◦ ∧ q̃− (the chosen maximal variable-connected
/// positive component q◦ together with the negated atoms it covers, and
/// ground negated atoms as blockers) using only an SVC_q oracle. The
/// counted query is returned through `counted_query` when non-null.
Polynomial FgmcViaSvcNegationD2(const ConjunctiveQuery& q,
                                size_t component_index,
                                const PartitionedDatabase& db,
                                SvcEngine& oracle,
                                PascalStats* stats = nullptr,
                                CqPtr* counted_query = nullptr);

}  // namespace shapley

#endif  // SHAPLEY_REDUCTIONS_LEMMAS_H_
