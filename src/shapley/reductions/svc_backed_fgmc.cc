#include "shapley/reductions/svc_backed_fgmc.h"

#include <stdexcept>

#include "shapley/common/macros.h"
#include "shapley/reductions/lemmas.h"

namespace shapley {

SvcBackedFgmc::SvcBackedFgmc(QueryPtr query, std::shared_ptr<SvcEngine> oracle)
    : query_(std::move(query)), oracle_(std::move(oracle)) {
  SHAPLEY_CHECK(query_ != nullptr && oracle_ != nullptr);
  witness_ = CertifyPseudoConnected(*query_);
  if (!witness_.has_value()) {
    decomposition_ = FindDecomposition(*query_);
    if (!decomposition_.has_value()) {
      throw std::invalid_argument(
          "SvcBackedFgmc: query is neither certified pseudo-connected "
          "(Lemma 4.1) nor decomposable (Lemma 4.4): " +
          query_->ToString());
    }
  }
}

std::string SvcBackedFgmc::name() const {
  return std::string("fgmc-via-svc(") +
         (witness_.has_value() ? "lemma 4.1" : "lemma 4.4") + ", " +
         oracle_->name() + ")";
}

Polynomial SvcBackedFgmc::CountBySize(const BooleanQuery& query,
                                      const PartitionedDatabase& db) {
  if (&query != query_.get() && query.ToString() != query_->ToString()) {
    throw std::invalid_argument(
        "SvcBackedFgmc: engine was constructed for a different query");
  }
  if (witness_.has_value()) {
    return FgmcViaSvcLemma41(*query_, *witness_, db, *oracle_, &stats_);
  }
  return FgmcViaSvcLemma44(*query_, *decomposition_, db, *oracle_, &stats_);
}

}  // namespace shapley
