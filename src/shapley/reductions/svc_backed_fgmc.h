#ifndef SHAPLEY_REDUCTIONS_SVC_BACKED_FGMC_H_
#define SHAPLEY_REDUCTIONS_SVC_BACKED_FGMC_H_

#include <memory>

#include "shapley/analysis/witnesses.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/reductions/pascal.h"

namespace shapley {

/// The paper's headline equivalence packaged as an engine: an FGMC engine
/// whose only computational primitive is a Shapley-value oracle.
///
/// Construction routing (resolved once, at engine construction):
///  * pseudo-connected queries (certified by CertifyPseudoConnected) go
///    through Lemma 4.1;
///  * decomposable queries (FindDecomposition) go through Lemma 4.4;
///  * otherwise construction fails with std::invalid_argument.
///
/// Composing SvcBackedFgmc with SvcViaFgmc (Claim A.1) closes the circle
/// FGMC ≡poly SVC of Corollary 4.1 in code.
class SvcBackedFgmc : public FgmcEngine {
 public:
  /// Routes `query` and keeps the oracle. Throws std::invalid_argument if
  /// neither Lemma 4.1 nor Lemma 4.4 applies.
  SvcBackedFgmc(QueryPtr query, std::shared_ptr<SvcEngine> oracle);

  std::string name() const override;

  /// `query` must be the query given at construction (the reductions are
  /// query-specific); throws otherwise.
  Polynomial CountBySize(const BooleanQuery& query,
                         const PartitionedDatabase& db) override;

  /// Cumulative reduction bookkeeping across calls.
  const PascalStats& stats() const { return stats_; }

 private:
  QueryPtr query_;
  std::shared_ptr<SvcEngine> oracle_;
  std::optional<PseudoConnectednessWitness> witness_;
  std::optional<Decomposition> decomposition_;
  PascalStats stats_;
};

}  // namespace shapley

#endif  // SHAPLEY_REDUCTIONS_SVC_BACKED_FGMC_H_
