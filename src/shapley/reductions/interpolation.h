#ifndef SHAPLEY_REDUCTIONS_INTERPOLATION_H_
#define SHAPLEY_REDUCTIONS_INTERPOLATION_H_

#include <memory>

#include "shapley/engines/fgmc.h"
#include "shapley/engines/pqe.h"

namespace shapley {

/// The counting ↔ probability bridges of Proposition 3.3 / Claims A.2, A.3:
///
///   (1+z)^n · Pr(D_z |= q) = sum_j z^j FGMC_j(Dn, Dx)
///
/// where D_z gives every endogenous fact probability z/(1+z). Evaluating a
/// PQE oracle at n+1 distinct rational points and solving the Vandermonde
/// system recovers the counts (FGMC ≤ SPPQE); the same identity read the
/// other way computes SPPQE from an FGMC oracle. Both directions use the
/// oracle only on the same underlying partitioned database, exactly as the
/// paper emphasizes.

/// FGMC engine backed by a PQE oracle via interpolation. The oracle is
/// consulted on |Dn| + 1 single-proper-probability databases.
class InterpolationFgmc : public FgmcEngine {
 public:
  explicit InterpolationFgmc(std::shared_ptr<PqeEngine> oracle)
      : oracle_(std::move(oracle)) {}

  std::string name() const override {
    return "interpolation(" + oracle_->name() + ")";
  }
  Polynomial CountBySize(const BooleanQuery& query,
                         const PartitionedDatabase& db) override;

  size_t oracle_calls() const { return oracle_calls_; }

 private:
  std::shared_ptr<PqeEngine> oracle_;
  size_t oracle_calls_ = 0;
};

/// The uniform-reliability bridge connecting the MC and PQE^{1/2} boxes of
/// Figure 1a: MC_q(D) = 2^{|D|} · Pr(D_{1/2} |= q), where D_{1/2} gives
/// every fact probability 1/2. This is the quantity [Amarilli 2023]'s
/// hardness result (Proposition 3.2) is stated for.
BigInt McViaUniformPqe(const BooleanQuery& query, const Database& db,
                       PqeEngine& oracle);

/// PQE engine for SPPQE-shaped inputs (all probabilities in {p, 1}) backed
/// by an FGMC oracle — one oracle call. Throws std::invalid_argument on
/// inputs that are not single-proper-probability.
class FgmcBackedSppqe : public PqeEngine {
 public:
  explicit FgmcBackedSppqe(std::shared_ptr<FgmcEngine> oracle)
      : oracle_(std::move(oracle)) {}

  std::string name() const override {
    return "sppqe-via-fgmc(" + oracle_->name() + ")";
  }
  BigRational Probability(const BooleanQuery& query,
                          const ProbabilisticDatabase& db) override;

 private:
  std::shared_ptr<FgmcEngine> oracle_;
};

}  // namespace shapley

#endif  // SHAPLEY_REDUCTIONS_INTERPOLATION_H_
