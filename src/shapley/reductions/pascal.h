#ifndef SHAPLEY_REDUCTIONS_PASCAL_H_
#define SHAPLEY_REDUCTIONS_PASCAL_H_

#include <functional>

#include "shapley/arith/polynomial.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/engines/svc.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// The shared Section 5 construction (Figure 2), used by Lemmas 4.1, 4.3,
/// 4.4, 6.2, D.2 and Propositions 6.2: given a base database D and a minimal
/// support split S = S0 ⊎ S− with a distinguished fact μ ∈ S0 and a
/// duplicable constant a, build for i = 0..|Dn| the instance
///
///   A_i = D ∪ E ∪ S0 ∪ S1 ∪ ... ∪ S_i ∪ S− ∪ blockers
///
/// (S_k = S0 with a renamed to a fresh a_k; endogenous facts: Dn, μ and its
/// copies, S−, blockers; everything else exogenous), ask the SVC oracle for
/// the value of μ, and invert the Pascal-type linear system
///
///   Sh_i = sum_j X_j (j+s)!(n+i+K-j)! / (n+i+s+K+1)!
///
/// (s = |S−|, K = #blockers; invertible by the Hankel/Bacher argument) to
/// recover X_j = #{G ⊆ Dn : |G| = j, the enabling condition holds}, where
/// the enabling condition is "G ∪ Dx satisfies the counted query" when
/// `count_supports_directly` (Lemma 4.4) and its complement otherwise
/// (Lemmas 4.1/4.3: μ's arrival only matters when the query was not already
/// satisfied from D).
struct PascalSpec {
  const BooleanQuery* oracle_query = nullptr;  // Query the SVC oracle runs.
  PartitionedDatabase base;                    // D.
  Database exogenous_extra;                    // E (e.g. S′ of Lemma 4.3).
  Database s0;                                 // Facts of S containing `a`.
  Database s_minus;                            // S \ S0.
  Fact mu;                                     // Distinguished fact in S0.
  Constant duplicated;                         // The constant a.
  Database blockers;                           // Endogenous poison facts (Lemma D.2).
  bool count_supports_directly = false;
};

/// Reduction bookkeeping surfaced by the benchmarks: the paper's reductions
/// make exactly |Dn|+1 oracle calls on instances of bounded extra size.
struct PascalStats {
  size_t oracle_calls = 0;
  size_t largest_instance_endogenous = 0;
  size_t largest_instance_total = 0;
};

/// Runs the construction and returns the FGMC generating polynomial
/// sum_j FGMC_j z^j of the counted query over `spec.base`.
Polynomial RunPascalReduction(const PascalSpec& spec, SvcEngine& oracle,
                              PascalStats* stats = nullptr);

/// Same construction driven through a max-SVC oracle (Proposition 6.2):
/// with S0 = S and S− = ∅ the distinguished fact μ is a singleton
/// generalized support, so by Lemma 6.3 its Shapley value is the maximum and
/// the max-oracle's value can be used verbatim. The callback receives the
/// instance and must return max_{f ∈ Dn} Sh(f).
using MaxSvcOracle = std::function<BigRational(const BooleanQuery& query,
                                               const PartitionedDatabase& db)>;
Polynomial RunPascalReductionWithMaxOracle(const PascalSpec& spec,
                                           const MaxSvcOracle& oracle,
                                           PascalStats* stats = nullptr);

}  // namespace shapley

#endif  // SHAPLEY_REDUCTIONS_PASCAL_H_
