#include "shapley/reductions/pascal.h"

#include "shapley/arith/factorial.h"
#include "shapley/arith/linear_system.h"
#include "shapley/common/macros.h"
#include "shapley/data/renaming.h"

namespace shapley {

namespace {

struct BuiltInstances {
  std::vector<PartitionedDatabase> instances;  // A_0 .. A_n.
  Fact mu;
};

// Validates the spec and materializes A_0..A_n.
BuiltInstances BuildInstances(const PascalSpec& spec) {
  SHAPLEY_CHECK(spec.oracle_query != nullptr);
  SHAPLEY_CHECK_MSG(spec.s0.Contains(spec.mu), "mu must belong to S0");
  SHAPLEY_CHECK_MSG(spec.mu.Mentions(spec.duplicated),
                    "mu must contain the duplicated constant");
  // Facts of S0 not mentioning the duplicated constant are shared verbatim
  // across copies (they only arise in the Proposition 6.2 variant, where
  // S0 = S); μ itself must be renamed so the copies μ_k stay distinct.
  for (const Fact& f : spec.s_minus.facts()) {
    SHAPLEY_CHECK_MSG(!f.Mentions(spec.duplicated),
                      "S- facts must not contain the duplicated constant");
  }
  SHAPLEY_CHECK_MSG(!spec.base.AllFacts().IntersectsWith(spec.s0) &&
                        !spec.base.AllFacts().IntersectsWith(spec.s_minus),
                    "support must be disjoint from the base database "
                    "(rename it fresh first)");

  const size_t n = spec.base.NumEndogenous();
  BuiltInstances built;
  built.mu = spec.mu;

  // Shared endogenous core: Dn ∪ {μ} ∪ S− ∪ blockers.
  Database endo = spec.base.endogenous();
  endo.Insert(spec.mu);
  endo.InsertAll(spec.s_minus);
  for (const Fact& f : spec.blockers.facts()) {
    SHAPLEY_CHECK_MSG(!spec.base.AllFacts().Contains(f),
                      "blockers must be removed from the base database first");
    endo.Insert(f);
  }
  // Shared exogenous core: Dx ∪ E ∪ (S0 \ {μ}).
  Database exo = spec.base.exogenous();
  exo.InsertAll(spec.exogenous_extra);
  for (const Fact& f : spec.s0.facts()) {
    if (!(f == spec.mu)) exo.Insert(f);
  }

  for (size_t i = 0; i <= n; ++i) {
    built.instances.emplace_back(endo, exo);
    // Prepare the next copy S_{i+1}: rename a ↦ fresh a_{i+1}.
    ConstantRenaming renaming = ConstantRenaming::SingleFresh(spec.duplicated);
    Database copy = renaming.Apply(spec.s0);
    Fact mu_copy = renaming.Apply(spec.mu);
    for (const Fact& f : copy.facts()) {
      if (f == mu_copy) {
        endo.Insert(f);
      } else {
        exo.Insert(f);
      }
    }
  }
  return built;
}

Polynomial SolveSystem(const PascalSpec& spec,
                       const std::vector<BigRational>& oracle_values) {
  const size_t n = spec.base.NumEndogenous();
  const size_t s = spec.s_minus.size();
  const size_t k = spec.blockers.size();
  SHAPLEY_CHECK(oracle_values.size() == n + 1);

  RationalMatrix m(n + 1, std::vector<BigRational>(n + 1));
  for (size_t i = 0; i <= n; ++i) {
    for (size_t j = 0; j <= n; ++j) {
      m[i][j] = BigRational(Factorial(j + s) * Factorial(n + i + k - j),
                            Factorial(n + i + s + k + 1));
    }
  }
  std::vector<BigRational> x = SolveLinearSystem(std::move(m), oracle_values);

  std::vector<BigInt> counts(n + 1);
  for (size_t j = 0; j <= n; ++j) {
    SHAPLEY_CHECK_MSG(x[j].IsInteger(),
                      "recovered count is not integral: " << x[j].ToString());
    counts[j] = spec.count_supports_directly ? x[j].numerator()
                                             : Binomial(n, j) - x[j].numerator();
    SHAPLEY_CHECK_MSG(!counts[j].IsNegative() && counts[j] <= Binomial(n, j),
                      "recovered count out of range at size " << j);
  }
  return Polynomial(std::move(counts));
}

void RecordStats(const BuiltInstances& built, PascalStats* stats) {
  if (stats == nullptr) return;
  stats->oracle_calls += built.instances.size();
  for (const PartitionedDatabase& instance : built.instances) {
    stats->largest_instance_endogenous =
        std::max(stats->largest_instance_endogenous, instance.NumEndogenous());
    stats->largest_instance_total = std::max(
        stats->largest_instance_total, instance.AllFacts().size());
  }
}

}  // namespace

Polynomial RunPascalReduction(const PascalSpec& spec, SvcEngine& oracle,
                              PascalStats* stats) {
  BuiltInstances built = BuildInstances(spec);
  RecordStats(built, stats);
  std::vector<BigRational> values;
  values.reserve(built.instances.size());
  for (const PartitionedDatabase& instance : built.instances) {
    values.push_back(oracle.Value(*spec.oracle_query, instance, built.mu));
  }
  return SolveSystem(spec, values);
}

Polynomial RunPascalReductionWithMaxOracle(const PascalSpec& spec,
                                           const MaxSvcOracle& oracle,
                                           PascalStats* stats) {
  SHAPLEY_CHECK_MSG(spec.s_minus.empty(),
                    "max-SVC reduction requires S- = ∅ (Proposition 6.2)");
  BuiltInstances built = BuildInstances(spec);
  RecordStats(built, stats);
  std::vector<BigRational> values;
  values.reserve(built.instances.size());
  for (const PartitionedDatabase& instance : built.instances) {
    // μ is a singleton generalized support in every A_i, so its value is
    // maximal (Lemma 6.3) and the max-oracle's value equals Sh(μ).
    values.push_back(oracle(*spec.oracle_query, instance));
  }
  return SolveSystem(spec, values);
}

}  // namespace shapley
