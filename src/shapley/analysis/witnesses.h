#ifndef SHAPLEY_ANALYSIS_WITNESSES_H_
#define SHAPLEY_ANALYSIS_WITNESSES_H_

#include <optional>
#include <string>

#include "shapley/data/database.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Evidence that a query is pseudo-connected (Section 4.1): an island
/// minimal support S with const(S) ⊈ C, plus the constant set C and a note
/// recording which lemma certified the island property.
struct PseudoConnectednessWitness {
  Database island_support;
  std::set<Constant> c_set;
  std::string certificate;  // e.g. "Lemma 4.2 (connected hom-closed)".
};

/// Best-effort pseudo-connectedness certification, covering the classes the
/// paper proves pseudo-connected:
///  * connected constant-free queries (Lemma 4.2) — CQ / UCQ / CRPQ / UCRPQ;
///  * RPQs whose language has a word of length >= 2 (Lemma B.1);
///  * queries with a duplicable singleton support (Corollary 4.4).
/// Returns nullopt when no rule applies (which does NOT mean the query is
/// not pseudo-connected — only that this library cannot certify it).
std::optional<PseudoConnectednessWitness> CertifyPseudoConnected(
    const BooleanQuery& query);

/// Looks for a duplicable singleton support: a minimal support of size one
/// containing a constant outside C (Corollary 4.4). Searches the canonical
/// minimal supports.
std::optional<Database> FindDuplicableSingletonSupport(
    const BooleanQuery& query);

/// Evidence that a query is decomposable into q1 ∧ q2 (Section 4.2).
struct Decomposition {
  QueryPtr q1;
  QueryPtr q2;
  std::string certificate;
};

/// Best-effort decomposition via Lemma 4.5 (disjoint relation names):
///  * a CQ whose core splits into variable components over disjoint
///    vocabularies;
///  * a CRPQ whose connected components use disjoint alphabets
///    (the cc-disjoint-CRPQ class of Corollary 4.6).
/// The returned parts additionally satisfy the minimal-support conditions of
/// the decomposability definition (fresh constants outside C).
std::optional<Decomposition> FindDecomposition(const BooleanQuery& query);

}  // namespace shapley

#endif  // SHAPLEY_ANALYSIS_WITNESSES_H_
