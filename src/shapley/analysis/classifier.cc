#include "shapley/analysis/classifier.h"

#include <sstream>

#include "shapley/analysis/safety.h"
#include "shapley/analysis/structure.h"
#include "shapley/analysis/witnesses.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/query/path_query.h"
#include "shapley/query/union_query.h"

namespace shapley {

namespace {

DichotomyVerdict ClassifyRpq(const RegularPathQuery& rpq) {
  DichotomyVerdict v;
  v.query_class = "RPQ";
  if (!rpq.dfa().HasWordOfLengthAtLeast(2)) {
    // Disjunction of ground atoms: trivially tractable; no equivalence
    // machinery needed.
    v.tractability = Tractability::kFP;
    v.justification = "Corollary 4.3 (no word of length >= 2: ground query)";
    return v;
  }
  v.fgmc_svc_equivalent = true;  // Lemma B.1 + Lemma 4.1.
  if (rpq.dfa().HasWordOfLengthAtLeast(3)) {
    v.tractability = Tractability::kSharpPHard;
    v.justification = "Corollary 4.3 (word of length >= 3)";
  } else {
    v.tractability = Tractability::kFP;
    v.justification = "Corollary 4.3 (all words of length <= 2)";
  }
  return v;
}

DichotomyVerdict ClassifyCq(const ConjunctiveQuery& cq) {
  DichotomyVerdict v;
  const bool constant_free = cq.QueryConstants().empty();

  if (cq.HasNegation()) {
    v.query_class = "sjf-CQ¬";
    if (!IsSelfJoinFree(cq)) {
      v.query_class = "CQ¬";
      v.justification = "negation with self-joins: no known dichotomy";
      return v;
    }
    if (IsHierarchical(cq)) {
      v.tractability = Tractability::kFP;
      v.justification = "[Reshef et al. 2020] (hierarchical sjf-CQ¬)";
    } else {
      v.tractability = Tractability::kSharpPHard;
      v.justification =
          "[Reshef et al. 2020]; partially recaptured by Proposition 6.1";
    }
    return v;
  }

  if (IsSelfJoinFree(cq)) {
    v.query_class = "sjf-CQ";
    if (IsHierarchical(cq)) {
      v.tractability = Tractability::kFP;
      v.justification =
          "[Livshits et al. 2021] (hierarchical sjf-CQ; lifted FGMC engine)";
    } else {
      v.tractability = Tractability::kSharpPHard;
      v.justification = "Corollary 4.5 (non-hierarchical sjf-CQ, via "
                        "Lemma 4.3 + GMC hardness [Kenig & Suciu 2021])";
    }
    // Query-preserving FGMC ≡ SVC holds for connected constant-free sjf-CQs
    // (Lemma 4.1) and decomposable ones (Lemma 4.4) — footnote 6.
    if (constant_free) v.fgmc_svc_equivalent = true;
    return v;
  }

  v.query_class = constant_free ? "CQ (constant-free)" : "CQ (with constants)";
  if (constant_free && !IsHierarchical(cq)) {
    v.tractability = Tractability::kSharpPHard;
    v.justification = "Corollary 4.5 (non-hierarchical constant-free CQ)";
    return v;
  }
  if (constant_free && IsConnectedQuery(cq)) {
    v.fgmc_svc_equivalent = true;
    SafetyVerdict s = DetermineSafety(cq);
    if (s.safety == Safety::kSafe) {
      v.tractability = Tractability::kFP;
      v.justification = "Corollary 4.2(1): safe (" + s.reason + ")";
    } else if (s.safety == Safety::kUnsafe) {
      v.tractability = Tractability::kSharpPHard;
      v.justification = "Corollary 4.2(1): unsafe (" + s.reason + ")";
    } else {
      v.justification =
          "Corollary 4.2(1) applies (FGMC ≡ SVC) but safety undecided: " +
          s.reason;
    }
    return v;
  }
  v.justification = constant_free
                        ? "hierarchical CQ with self-joins: open in the paper"
                        : "CQ with constants: outside the proven dichotomies";
  return v;
}

DichotomyVerdict ClassifyUcq(const UnionQuery& ucq) {
  if (ucq.disjuncts().size() == 1) return ClassifyCq(*ucq.disjuncts()[0]);

  DichotomyVerdict v;
  v.query_class = "UCQ";
  if (!ucq.IsPositive()) {
    v.justification = "union with negation: no known dichotomy";
    return v;
  }
  if (ucq.IsConstantFree() && IsConnectedQuery(ucq)) {
    v.query_class = "conn. UCQ (constant-free)";
    v.fgmc_svc_equivalent = true;  // Corollary 4.1.
    SafetyVerdict s = DetermineSafety(ucq);
    if (s.safety == Safety::kSafe) {
      v.tractability = Tractability::kFP;
      v.justification = "Corollary 4.2(1): safe (" + s.reason + ")";
    } else if (s.safety == Safety::kUnsafe) {
      v.tractability = Tractability::kSharpPHard;
      v.justification = "Corollary 4.2(1): unsafe (" + s.reason + ")";
    } else {
      v.justification =
          "Corollary 4.2(1) applies (FGMC ≡ SVC) but safety undecided: " +
          s.reason;
    }
    return v;
  }
  if (FindDuplicableSingletonSupport(ucq).has_value()) {
    v.query_class = "UCQ (dss)";
    v.fgmc_svc_equivalent = true;  // Corollary 4.4.
    SafetyVerdict s = DetermineSafety(ucq);
    if (s.safety == Safety::kSafe) {
      v.tractability = Tractability::kFP;
      v.justification = "Corollary 4.4 + safe (" + s.reason + ")";
    } else if (s.safety == Safety::kUnsafe) {
      v.tractability = Tractability::kSharpPHard;
      v.justification = "Corollary 4.4 + unsafe (" + s.reason + ")";
    } else {
      v.justification = "Corollary 4.4 applies but safety undecided";
    }
    return v;
  }
  v.justification = "disconnected UCQ without dss: outside proven results";
  return v;
}

DichotomyVerdict ClassifyCrpq(const ConjunctiveRegularPathQuery& crpq) {
  DichotomyVerdict v;
  v.query_class = crpq.IsSelfJoinFree() ? "sjf-CRPQ" : "CRPQ";
  if (!crpq.QueryConstants().empty()) {
    // Single-atom ∃x L(a,x) queries with a length-1 word are dss.
    if (FindDuplicableSingletonSupport(crpq).has_value()) {
      v.query_class += " (dss)";
      v.fgmc_svc_equivalent = true;
      v.justification = "Corollary 4.4 (duplicable singleton support); "
                        "tractability of FGMC not decided here";
      return v;
    }
    v.justification = "CRPQ with constants: outside the constant-free "
                      "dichotomies of Figure 1b";
    return v;
  }

  // Constant-free: Corollary 4.6 needs cc-disjointness (or connectivity).
  const bool connected = IsConnectedQuery(crpq);
  const bool decomposable = FindDecomposition(crpq).has_value();
  if (!connected && !decomposable) {
    v.justification = "disconnected CRPQ with shared vocabularies: "
                      "outside Corollary 4.6";
    return v;
  }
  v.fgmc_svc_equivalent = true;  // Lemma 4.1 or Lemma 4.4.

  // Boundedness: all languages finite → expand to a UCQ and use its verdict.
  bool all_finite = true;
  for (const Dfa& dfa : crpq.dfas()) {
    if (!dfa.IsFinite()) {
      all_finite = false;
      break;
    }
  }
  if (all_finite) {
    size_t max_len = 0;
    for (const Dfa& dfa : crpq.dfas()) {
      max_len = std::max(max_len, dfa.MaxWordLength().value_or(0));
    }
    try {
      UcqPtr expanded = crpq.ExpandToUcq(max_len);
      SafetyVerdict s = DetermineSafety(*expanded);
      if (s.safety == Safety::kSafe) {
        v.tractability = Tractability::kFP;
        v.justification = "Corollary 4.6: bounded and safe (" + s.reason + ")";
      } else if (s.safety == Safety::kUnsafe) {
        v.tractability = Tractability::kSharpPHard;
        v.justification = "Corollary 4.6: bounded but unsafe (" + s.reason + ")";
      } else {
        v.justification =
            "Corollary 4.6 applies; safety of the UCQ expansion undecided";
      }
    } catch (const std::invalid_argument&) {
      v.justification = "Corollary 4.6 applies; expansion too large to decide";
    }
    return v;
  }
  // Infinite language — treated as unbounded (heuristic; exact CRPQ
  // boundedness is [Barceló et al. 2019] and out of scope).
  v.tractability = Tractability::kSharpPHard;
  v.justification = "Corollary 4.6: unbounded (infinite atom language; "
                    "hardness via [Amarilli 2023])";
  return v;
}

}  // namespace

DichotomyVerdict ClassifySvcComplexity(const BooleanQuery& query) {
  if (const auto* rpq = dynamic_cast<const RegularPathQuery*>(&query)) {
    return ClassifyRpq(*rpq);
  }
  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    return ClassifyCq(*cq);
  }
  if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    return ClassifyUcq(*ucq);
  }
  if (const auto* crpq =
          dynamic_cast<const ConjunctiveRegularPathQuery*>(&query)) {
    return ClassifyCrpq(*crpq);
  }
  if (const auto* ucrpq = dynamic_cast<const UnionCrpq*>(&query)) {
    DichotomyVerdict v;
    v.query_class = "UCRPQ";
    if (ucrpq->QueryConstants().empty() && IsConnectedQuery(*ucrpq)) {
      v.query_class = "conn. UCRPQ (constant-free)";
      v.fgmc_svc_equivalent = true;
      v.justification =
          "Corollary 4.2(2) applies (FGMC ≡ SVC); safety of the graph query "
          "not decided here";
    } else {
      v.justification = "UCRPQ outside the connected constant-free case";
    }
    return v;
  }
  DichotomyVerdict v;
  v.query_class = "unknown";
  v.justification = "query type not covered by the classifier";
  return v;
}

std::string ToString(Tractability t) {
  switch (t) {
    case Tractability::kFP:
      return "FP";
    case Tractability::kSharpPHard:
      return "#P-hard";
    case Tractability::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string ToString(const DichotomyVerdict& v) {
  std::ostringstream os;
  os << "[" << v.query_class << "] " << ToString(v.tractability);
  if (v.fgmc_svc_equivalent) os << " (FGMC ≡ SVC)";
  os << " — " << v.justification;
  return os.str();
}

}  // namespace shapley
