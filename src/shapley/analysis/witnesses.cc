#include "shapley/analysis/witnesses.h"

#include <set>

#include "shapley/analysis/structure.h"
#include "shapley/common/macros.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/query/path_query.h"
#include "shapley/query/supports.h"
#include "shapley/query/union_query.h"

namespace shapley {

namespace {

// True iff the support has some constant outside `c_set`.
bool HasConstantOutside(const Database& support,
                        const std::set<Constant>& c_set) {
  for (Constant c : support.Constants()) {
    if (c_set.count(c) == 0) return true;
  }
  return false;
}

}  // namespace

std::optional<Database> FindDuplicableSingletonSupport(
    const BooleanQuery& query) {
  const std::set<Constant> c_set = query.QueryConstants();
  for (const Database& support : CanonicalMinimalSupports(query)) {
    if (support.size() == 1 && HasConstantOutside(support, c_set)) {
      return support;
    }
  }
  return std::nullopt;
}

std::optional<PseudoConnectednessWitness> CertifyPseudoConnected(
    const BooleanQuery& query) {
  const std::set<Constant> c_set = query.QueryConstants();

  // Corollary 4.4: a duplicable singleton support is an island support.
  if (auto singleton = FindDuplicableSingletonSupport(query)) {
    return PseudoConnectednessWitness{
        *singleton, c_set, "Corollary 4.4 (duplicable singleton support)"};
  }

  // Lemma B.1: an RPQ whose language has a word of length >= 2 is
  // pseudo-connected, with a fresh simple path as island support.
  if (const auto* rpq = dynamic_cast<const RegularPathQuery*>(&query)) {
    if (rpq->dfa().HasWordOfLengthAtLeast(2)) {
      auto support = CanonicalRpqSupport(*rpq, 2);
      if (support.has_value() && HasConstantOutside(*support, c_set)) {
        return PseudoConnectednessWitness{*support, c_set,
                                          "Lemma B.1 (RPQ, word length >= 2)"};
      }
    }
    return std::nullopt;
  }

  // Lemma 4.2: connected constant-free (hence hom-closed) queries are
  // pseudo-connected, with any canonical minimal support as island.
  if (c_set.empty() && query.IsMonotone() && IsConnectedQuery(query)) {
    auto supports = CanonicalMinimalSupports(query);
    for (const Database& support : supports) {
      if (!support.empty()) {
        return PseudoConnectednessWitness{
            support, c_set, "Lemma 4.2 (connected hom-closed)"};
      }
    }
  }
  return std::nullopt;
}

namespace {

// Splits CQ core atoms into first-variable-component vs rest, requiring
// disjoint relation vocabularies between the groups.
std::optional<Decomposition> DecomposeCq(const ConjunctiveQuery& cq) {
  if (cq.HasNegation()) return std::nullopt;
  CqPtr core = CoreOfCq(cq);
  auto components = VariableConnectedComponents(core->atoms());
  if (components.size() < 2) return std::nullopt;

  // Greedy: q1 = first component; q2 = the rest. Check vocabularies.
  std::set<RelationId> vocab1, vocab2;
  std::vector<Atom> atoms1, atoms2;
  for (size_t ci = 0; ci < components.size(); ++ci) {
    for (size_t idx : components[ci]) {
      const Atom& atom = core->atoms()[idx];
      if (ci == 0) {
        vocab1.insert(atom.relation());
        atoms1.push_back(atom);
      } else {
        vocab2.insert(atom.relation());
        atoms2.push_back(atom);
      }
    }
  }
  for (RelationId r : vocab1) {
    if (vocab2.count(r) > 0) return std::nullopt;
  }
  // Decomposability condition (1): each part needs a minimal support with a
  // constant outside C, i.e. at least one variable (frozen fresh).
  auto has_variable = [](const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      if (!a.Variables().empty()) return true;
    }
    return false;
  };
  if (!has_variable(atoms1) || !has_variable(atoms2)) return std::nullopt;

  return Decomposition{ConjunctiveQuery::Create(cq.schema(), std::move(atoms1)),
                       ConjunctiveQuery::Create(cq.schema(), std::move(atoms2)),
                       "Lemma 4.5 (CQ components over disjoint vocabularies)"};
}

std::optional<Decomposition> DecomposeCrpq(
    const ConjunctiveRegularPathQuery& crpq) {
  // Components of path atoms linked by shared variables.
  const auto& atoms = crpq.path_atoms();
  std::vector<size_t> component(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) component[i] = i;
  bool changed = true;
  auto shares_var = [&](size_t i, size_t j) {
    auto vars_of = [](const PathAtom& a) {
      std::set<Variable> vs;
      if (a.source.IsVariable()) vs.insert(a.source.variable());
      if (a.target.IsVariable()) vs.insert(a.target.variable());
      return vs;
    };
    auto vi = vars_of(atoms[i]);
    for (Variable v : vars_of(atoms[j])) {
      if (vi.count(v) > 0) return true;
    }
    return false;
  };
  while (changed) {
    changed = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      for (size_t j = i + 1; j < atoms.size(); ++j) {
        if (component[i] != component[j] && shares_var(i, j)) {
          size_t from = component[j], to = component[i];
          for (size_t k = 0; k < atoms.size(); ++k) {
            if (component[k] == from) component[k] = to;
          }
          changed = true;
        }
      }
    }
  }
  std::set<size_t> roots(component.begin(), component.end());
  if (roots.size() < 2) return std::nullopt;

  // First component vs rest; vocabularies must be disjoint.
  size_t first_root = component[0];
  std::vector<PathAtom> part1, part2;
  std::set<std::string> vocab1, vocab2;
  for (size_t i = 0; i < atoms.size(); ++i) {
    auto names = atoms[i].regex.SymbolNames();
    if (component[i] == first_root) {
      part1.push_back(atoms[i]);
      vocab1.insert(names.begin(), names.end());
    } else {
      part2.push_back(atoms[i]);
      vocab2.insert(names.begin(), names.end());
    }
  }
  for (const std::string& name : vocab1) {
    if (vocab2.count(name) > 0) return std::nullopt;
  }

  QueryPtr q1 = ConjunctiveRegularPathQuery::Create(crpq.schema(), std::move(part1));
  QueryPtr q2 = ConjunctiveRegularPathQuery::Create(crpq.schema(), std::move(part2));

  // Condition (1): both parts need a support with a constant outside C —
  // guaranteed when the part's canonical support has a fresh constant.
  const std::set<Constant> c_set = crpq.QueryConstants();
  for (const QueryPtr& part : {q1, q2}) {
    auto supports = CanonicalMinimalSupports(*part);
    bool ok = false;
    for (const Database& s : supports) {
      if (HasConstantOutside(s, c_set)) {
        ok = true;
        break;
      }
    }
    if (!ok) return std::nullopt;
  }
  return Decomposition{std::move(q1), std::move(q2),
                       "Lemma 4.5 (cc-disjoint CRPQ components)"};
}

}  // namespace

std::optional<Decomposition> FindDecomposition(const BooleanQuery& query) {
  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    return DecomposeCq(*cq);
  }
  if (const auto* crpq =
          dynamic_cast<const ConjunctiveRegularPathQuery*>(&query)) {
    return DecomposeCrpq(*crpq);
  }
  return std::nullopt;
}

}  // namespace shapley
