#ifndef SHAPLEY_ANALYSIS_STRUCTURE_H_
#define SHAPLEY_ANALYSIS_STRUCTURE_H_

#include <vector>

#include "shapley/query/conjunctive_query.h"
#include "shapley/query/union_query.h"

namespace shapley {

/// Structural properties of conjunctive queries used throughout Section 4.

/// True iff no two positive atoms share a relation name (the sjf-CQ class).
bool IsSelfJoinFree(const ConjunctiveQuery& cq);

/// True iff the query is hierarchical: for every two variables x, y, the
/// atom sets at(x), at(y) are comparable or disjoint (footnote 5 of the
/// paper). Negated atoms participate, matching the sjf-CQ¬ dichotomy of
/// [Reshef, Kimelfeld & Livshits 2020].
bool IsHierarchical(const ConjunctiveQuery& cq);

/// Partition of atom indices into connectivity components where two atoms
/// are adjacent iff they share a *variable* (constants do not connect).
/// Ground atoms land in singleton components.
std::vector<std::vector<size_t>> VariableConnectedComponents(
    const std::vector<Atom>& atoms);

/// Partition by shared terms (variables or constants) — the incidence-graph
/// connectivity of Section 2.
std::vector<std::vector<size_t>> TermConnectedComponents(
    const std::vector<Atom>& atoms);

/// True iff the atom set stays connected after removing constant nodes
/// (the "variable-connected" notion of Section 4.1). Singleton and empty
/// sets count as connected.
bool IsVariableConnected(const std::vector<Atom>& atoms);

/// True iff every canonical minimal support of the (monotone) query is
/// connected. For the classes of this library (whose minimal supports are
/// C-hom images of the canonical ones, and hom images of connected sets are
/// connected), this decides the paper's "connected query" notion.
bool IsConnectedQuery(const BooleanQuery& query);

/// The maximal variable-connected subqueries of a CQ: one CQ per variable
/// component, in component order. Negated atoms are attached to the
/// component containing all their variables (they have no variables of their
/// own by safety; ground negated atoms go to a trailing ground component).
std::vector<CqPtr> MaximalVariableConnectedSubqueries(
    const ConjunctiveQuery& cq);

}  // namespace shapley

#endif  // SHAPLEY_ANALYSIS_STRUCTURE_H_
