#ifndef SHAPLEY_ANALYSIS_CLASSIFIER_H_
#define SHAPLEY_ANALYSIS_CLASSIFIER_H_

#include <string>

#include "shapley/query/boolean_query.h"

namespace shapley {

/// Data-complexity verdict for SVC_q, per the dichotomies of Figure 1b.
enum class Tractability { kFP, kSharpPHard, kUnknown };

struct DichotomyVerdict {
  Tractability tractability = Tractability::kUnknown;
  /// Human-readable class label, e.g. "sjf-CQ", "RPQ", "conn. UCQ".
  std::string query_class;
  /// Which result yields the verdict, e.g. "Corollary 4.3" or
  /// "[Livshits et al. 2021] via Corollary 4.5".
  std::string justification;
  /// True when this library's reductions establish FGMC_q ≡poly SVC_q
  /// (Corollary 4.1 / 4.4 or Lemma 4.4), the paper's headline equivalence.
  bool fgmc_svc_equivalent = false;
};

/// Classifies the data complexity of SVC_q by routing the query through the
/// paper's dichotomies:
///  * RPQ             — Corollary 4.3 (word-length criterion; always decides);
///  * sjf-CQ          — Corollary 4.5 + [Livshits et al. 2021] (always decides);
///  * sjf-CQ¬         — [Reshef et al. 2020] (always decides);
///  * CQ (self-joins) — Corollary 4.5 for the non-hierarchical constant-free
///                      case; connected + safety catalog otherwise;
///  * UCQ             — Corollary 4.2(1) for connected constant-free unions,
///                      modulo the safety oracle;
///  * CRPQ / UCRPQ    — Corollary 4.6 / 4.2(2): finite languages are
///                      expanded to UCQs; an infinite language in any atom is
///                      treated as unboundedness (heuristic — exact CRPQ
///                      boundedness [Barceló et al. 2019] is out of scope).
/// Honest kUnknown wherever no implemented result applies.
DichotomyVerdict ClassifySvcComplexity(const BooleanQuery& query);

/// Printable forms.
std::string ToString(Tractability t);
std::string ToString(const DichotomyVerdict& v);

}  // namespace shapley

#endif  // SHAPLEY_ANALYSIS_CLASSIFIER_H_
