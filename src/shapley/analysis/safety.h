#ifndef SHAPLEY_ANALYSIS_SAFETY_H_
#define SHAPLEY_ANALYSIS_SAFETY_H_

#include <string>

#include "shapley/query/boolean_query.h"

namespace shapley {

/// Safety status of a query for probabilistic query evaluation / generalized
/// model counting (the Dalvi–Suciu / Kenig–Suciu dichotomy of
/// Proposition 3.1: safe ⇒ PQE, GMC in FP; unsafe ⇒ both #P-hard).
enum class Safety { kSafe, kUnsafe, kUnknown };

struct SafetyVerdict {
  Safety safety = Safety::kUnknown;
  std::string reason;
};

/// Decides safety where this library can do so soundly:
///  * self-join-free CQs: safe iff hierarchical (Dalvi–Suciu 2004);
///  * ground or single-atom CQs: safe;
///  * UCQs whose disjuncts use pairwise-disjoint relations: safe iff every
///    disjunct is safe (the disjuncts are independent events; an unsafe
///    disjunct reduces to the union by zeroing the other relations);
///  * a small catalog of literature queries (e.g. R(x),S(x,y),T(y) unsafe).
/// Everything else is kUnknown — the full UCQ safety procedure of
/// [Dalvi & Suciu 2012] is out of scope (see DESIGN.md, substitutions).
SafetyVerdict DetermineSafety(const BooleanQuery& query);

}  // namespace shapley

#endif  // SHAPLEY_ANALYSIS_SAFETY_H_
