#include "shapley/analysis/safety.h"

#include <set>

#include "shapley/analysis/structure.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/query/union_query.h"

namespace shapley {

namespace {

SafetyVerdict ClassifyCq(const ConjunctiveQuery& cq) {
  if (cq.HasNegation()) {
    // sjf-CQ¬: hierarchical iff safe for PQE^{1/2;1} per [Fink & Olteanu
    // 2016]; we reuse the hierarchical test (negated atoms included).
    if (IsSelfJoinFree(cq)) {
      if (IsHierarchical(cq)) {
        return {Safety::kSafe, "hierarchical sjf-CQ¬ [Fink & Olteanu 2016]"};
      }
      return {Safety::kUnsafe,
              "non-hierarchical sjf-CQ¬ [Fink & Olteanu 2016]"};
    }
    return {Safety::kUnknown, "CQ¬ with self-joins: no decision procedure"};
  }
  if (cq.Variables().empty()) {
    return {Safety::kSafe, "ground CQ (no variables)"};
  }
  if (IsSelfJoinFree(cq)) {
    if (IsHierarchical(cq)) {
      return {Safety::kSafe, "hierarchical sjf-CQ [Dalvi & Suciu 2004]"};
    }
    return {Safety::kUnsafe, "non-hierarchical sjf-CQ [Dalvi & Suciu 2004]"};
  }
  return {Safety::kUnknown,
          "CQ with self-joins: beyond the sjf dichotomy implemented here"};
}

}  // namespace

SafetyVerdict DetermineSafety(const BooleanQuery& query) {
  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    return ClassifyCq(*cq);
  }
  if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    if (ucq->disjuncts().size() == 1) return ClassifyCq(*ucq->disjuncts()[0]);

    // Disjoint-relation disjuncts: independent events.
    std::set<RelationId> seen;
    bool disjoint = true;
    for (const CqPtr& disjunct : ucq->disjuncts()) {
      std::set<RelationId> mine;
      for (const Atom& atom : disjunct->atoms()) mine.insert(atom.relation());
      for (const Atom& atom : disjunct->negated_atoms()) {
        mine.insert(atom.relation());
      }
      for (RelationId r : mine) {
        if (!seen.insert(r).second) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) break;
    }
    if (disjoint) {
      bool any_unknown = false;
      for (const CqPtr& disjunct : ucq->disjuncts()) {
        SafetyVerdict v = ClassifyCq(*disjunct);
        if (v.safety == Safety::kUnsafe) {
          return {Safety::kUnsafe,
                  "relation-disjoint UCQ with an unsafe disjunct (" +
                      v.reason + ")"};
        }
        if (v.safety == Safety::kUnknown) any_unknown = true;
      }
      if (!any_unknown) {
        return {Safety::kSafe,
                "relation-disjoint UCQ with all-safe disjuncts "
                "(independent union)"};
      }
      return {Safety::kUnknown, "relation-disjoint UCQ, disjunct undecided"};
    }
    return {Safety::kUnknown,
            "UCQ with shared relations: full Dalvi–Suciu procedure not "
            "implemented (see DESIGN.md)"};
  }
  return {Safety::kUnknown, "safety oracle handles CQs and UCQs"};
}

}  // namespace shapley
