#include "shapley/analysis/leaks.h"

#include <map>
#include <stdexcept>

#include "shapley/query/conjunctive_query.h"
#include "shapley/query/supports.h"
#include "shapley/query/union_query.h"

namespace shapley {

bool SingleFactLeakWitness(const Fact& from, const Fact& to,
                           const std::set<Constant>& c_set) {
  if (from.relation() != to.relation() || from.arity() != to.arity()) {
    return false;
  }
  // Build the candidate mapping position by position; it must be a function
  // fixing C, and must send at least one non-C constant into C.
  std::map<Constant, Constant> mapping;
  for (size_t i = 0; i < from.arity(); ++i) {
    Constant src = from.args()[i];
    Constant dst = to.args()[i];
    if (c_set.count(src) > 0) {
      if (!(src == dst)) return false;  // C-homs fix C pointwise.
      continue;
    }
    auto [it, inserted] = mapping.emplace(src, dst);
    if (!inserted && !(it->second == dst)) return false;  // Not a function.
  }
  for (const auto& [src, dst] : mapping) {
    if (c_set.count(dst) > 0) return true;  // Outside-C constant lands in C.
  }
  return false;
}

namespace {

// The facts of all canonical minimal supports (frozen disjunct cores).
std::vector<Fact> CanonicalSupportFacts(const BooleanQuery& query) {
  std::vector<Fact> facts;
  for (const Database& support : CanonicalMinimalSupports(query)) {
    facts.insert(facts.end(), support.facts().begin(), support.facts().end());
  }
  return facts;
}

void RequireLeakSupported(const BooleanQuery& query) {
  if (dynamic_cast<const ConjunctiveQuery*>(&query) == nullptr &&
      dynamic_cast<const UnionQuery*>(&query) == nullptr) {
    throw std::invalid_argument(
        "IsQLeak: exact leak detection implemented for CQs and UCQs only");
  }
}

}  // namespace

bool IsQLeak(const Fact& fact, const BooleanQuery& query) {
  RequireLeakSupported(query);
  const std::set<Constant> c_set = query.QueryConstants();
  for (const Fact& support_fact : CanonicalSupportFacts(query)) {
    if (SingleFactLeakWitness(support_fact, fact, c_set)) return true;
  }
  return false;
}

bool HasQLeak(const Database& db, const BooleanQuery& query) {
  RequireLeakSupported(query);
  const std::set<Constant> c_set = query.QueryConstants();
  std::vector<Fact> support_facts = CanonicalSupportFacts(query);
  for (const Fact& fact : db.facts()) {
    for (const Fact& support_fact : support_facts) {
      if (SingleFactLeakWitness(support_fact, fact, c_set)) return true;
    }
  }
  return false;
}

}  // namespace shapley
