#ifndef SHAPLEY_ANALYSIS_LEAKS_H_
#define SHAPLEY_ANALYSIS_LEAKS_H_

#include "shapley/data/database.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// q-leak detection (Section 4.1): a fact α is a q-leak if some fact α' of
/// some minimal support of q admits a C-homomorphism h : {α'} → {α} with
/// h(c) ∈ C for some c ∈ const(α') \ C, where C = const(q).
///
/// Exact for ConjunctiveQuery and UnionQuery: every minimal support of a CQ
/// is a C-hom image of the frozen core, and leak witnesses compose through
/// C-homomorphisms, so checking the frozen-core facts is complete. Throws
/// std::invalid_argument for other query types (the paper's leak-based
/// reduction, Lemma 4.3, is only instantiated on (U)CQs).
bool IsQLeak(const Fact& fact, const BooleanQuery& query);

/// True iff some fact of `db` is a q-leak.
bool HasQLeak(const Database& db, const BooleanQuery& query);

/// True iff there is a C-homomorphism from the one-fact set {from} to {to}
/// mapping some constant outside `c_set` into `c_set` (the single-fact leak
/// witness test; exposed for tests).
bool SingleFactLeakWitness(const Fact& from, const Fact& to,
                           const std::set<Constant>& c_set);

}  // namespace shapley

#endif  // SHAPLEY_ANALYSIS_LEAKS_H_
