#include "shapley/analysis/structure.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "shapley/common/macros.h"
#include "shapley/query/supports.h"

namespace shapley {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

  std::vector<std::vector<size_t>> Components(size_t n) {
    std::map<size_t, std::vector<size_t>> groups;
    for (size_t i = 0; i < n; ++i) groups[Find(i)].push_back(i);
    std::vector<std::vector<size_t>> out;
    out.reserve(groups.size());
    for (auto& [root, members] : groups) out.push_back(std::move(members));
    return out;
  }

 private:
  std::vector<size_t> parent_;
};

std::vector<std::vector<size_t>> ComponentsBy(
    const std::vector<Atom>& atoms, bool constants_connect) {
  UnionFind uf(atoms.size());
  std::map<Term, size_t> first_seen;
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (Term t : atoms[i].terms()) {
      if (!constants_connect && t.IsConstant()) continue;
      auto [it, inserted] = first_seen.emplace(t, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  return uf.Components(atoms.size());
}

}  // namespace

bool IsSelfJoinFree(const ConjunctiveQuery& cq) {
  std::set<RelationId> seen;
  for (const Atom& atom : cq.atoms()) {
    if (!seen.insert(atom.relation()).second) return false;
  }
  return true;
}

bool IsHierarchical(const ConjunctiveQuery& cq) {
  // at(v) over positive AND negated atoms, per the sjf-CQ¬ setting.
  std::vector<Atom> all_atoms = cq.atoms();
  all_atoms.insert(all_atoms.end(), cq.negated_atoms().begin(),
                   cq.negated_atoms().end());

  std::map<Variable, std::set<size_t>> at;
  for (size_t i = 0; i < all_atoms.size(); ++i) {
    for (Variable v : all_atoms[i].Variables()) at[v].insert(i);
  }
  for (auto i = at.begin(); i != at.end(); ++i) {
    for (auto j = std::next(i); j != at.end(); ++j) {
      const std::set<size_t>&a = i->second, &b = j->second;
      bool a_in_b = std::includes(b.begin(), b.end(), a.begin(), a.end());
      bool b_in_a = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (a_in_b || b_in_a) continue;
      bool disjoint = true;
      for (size_t x : a) {
        if (b.count(x) > 0) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) return false;
    }
  }
  return true;
}

std::vector<std::vector<size_t>> VariableConnectedComponents(
    const std::vector<Atom>& atoms) {
  return ComponentsBy(atoms, /*constants_connect=*/false);
}

std::vector<std::vector<size_t>> TermConnectedComponents(
    const std::vector<Atom>& atoms) {
  return ComponentsBy(atoms, /*constants_connect=*/true);
}

bool IsVariableConnected(const std::vector<Atom>& atoms) {
  return VariableConnectedComponents(atoms).size() <= 1;
}

bool IsConnectedQuery(const BooleanQuery& query) {
  for (const Database& support : CanonicalMinimalSupports(query)) {
    if (!support.IsConnected()) return false;
  }
  return true;
}

std::vector<CqPtr> MaximalVariableConnectedSubqueries(
    const ConjunctiveQuery& cq) {
  auto components = VariableConnectedComponents(cq.atoms());
  std::vector<CqPtr> result;
  std::vector<bool> negated_used(cq.negated_atoms().size(), false);

  for (const auto& component : components) {
    std::vector<Atom> positive;
    std::set<Variable> vars;
    for (size_t idx : component) {
      positive.push_back(cq.atoms()[idx]);
      auto vs = cq.atoms()[idx].Variables();
      vars.insert(vs.begin(), vs.end());
    }
    // Attach negated atoms fully covered by this component's variables
    // (ground negated atoms are attached later).
    std::vector<Atom> negated;
    for (size_t n = 0; n < cq.negated_atoms().size(); ++n) {
      const Atom& neg = cq.negated_atoms()[n];
      auto nv = neg.Variables();
      if (nv.empty()) continue;
      bool covered = true;
      for (Variable v : nv) {
        if (vars.count(v) == 0) {
          covered = false;
          break;
        }
      }
      if (covered && !negated_used[n]) {
        negated.push_back(neg);
        negated_used[n] = true;
      }
    }
    result.push_back(negated.empty()
                         ? ConjunctiveQuery::Create(cq.schema(), std::move(positive))
                         : ConjunctiveQuery::CreateWithNegation(
                               cq.schema(), std::move(positive),
                               std::move(negated)));
  }

  // Ground negated atoms form their own trailing component (with no
  // positive part they'd be unsafe as a standalone CQ; attach them to the
  // first component instead, which is always sound for the uses here).
  std::vector<Atom> ground_negs;
  for (size_t n = 0; n < cq.negated_atoms().size(); ++n) {
    if (!negated_used[n] && cq.negated_atoms()[n].Variables().empty()) {
      ground_negs.push_back(cq.negated_atoms()[n]);
    }
  }
  if (!ground_negs.empty()) {
    SHAPLEY_CHECK(!result.empty());
    const ConjunctiveQuery& first = *result.front();
    std::vector<Atom> neg = first.negated_atoms();
    neg.insert(neg.end(), ground_negs.begin(), ground_negs.end());
    result.front() = ConjunctiveQuery::CreateWithNegation(
        first.schema(), first.atoms(), std::move(neg));
  }
  return result;
}

}  // namespace shapley
