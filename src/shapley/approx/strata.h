#ifndef SHAPLEY_APPROX_STRATA_H_
#define SHAPLEY_APPROX_STRATA_H_

#include <cstddef>
#include <vector>

namespace shapley {

/// Antithetic, position-paired permutation sampling
/// (ApproxStrategy::kStratified).
///
/// The permutation marginal of a fact f depends on the permutation only
/// through the coalition preceding f — and that coalition's distribution
/// depends on f's POSITION alone. Plain Monte Carlo lets the two samples
/// a fact gets from two permutations land in arbitrary positions, paying
/// the between-position component of the marginal's variance (often the
/// dominant one: early positions rarely satisfy a query, late positions
/// almost always do) in full. The antithetic pair allocates positions by
/// construction:
///
///  - One iid sampling UNIT is a PAIR: a uniformly random permutation σ
///    together with its REVERSAL. A fact at position k in σ sits at
///    position n−1−k in reverse(σ), so every unit samples each fact at
///    COMPLEMENTARY position strata — never two draws from the same half
///    of the position range. For a marginal that is monotone in position
///    the two draws are negatively correlated, so the pair mean's
///    variance, (Var + Cov)/2, drops below half a single marginal's: the
///    between-position component cancels inside the pair.
///  - The pair mean stays bounded by the single-marginal range, and pairs
///    use disjoint RNG draws, hence are iid — exactly the unit the
///    empirical-Bernstein stopping rule (approx/stopping.h) needs; its
///    variance term is where the reduction cashes out.
///
/// The unit is kept as SMALL as soundness allows on purpose: the stopping
/// rule's bias term pays per iid unit, so bundling g permutations into
/// one unit costs g× the draws in the bias-dominated low-variance regime.
/// A pair costs 2× and buys ≥ 2× back; bigger bundles (e.g. full rotation
/// orbits) don't. Deterministic per-unit transforms of an INDEPENDENT
/// uniform base permutation (rotations included) are statistically inert —
/// the transformed draw is again uniform — so the reversal, which ties the
/// unit's two draws together, is the only transform that earns its keep.
///
/// Reversal of a uniform permutation is uniform, so each individual
/// permutation is an unbiased draw and the pair mean is an unbiased,
/// bounded estimate of the Shapley value.
inline constexpr size_t kStrataGroupPermutations = 2;

/// out = reverse(order): the antithetic partner.
inline void ReverseInto(const std::vector<size_t>& order,
                        std::vector<size_t>* out) {
  out->assign(order.rbegin(), order.rend());
}

}  // namespace shapley

#endif  // SHAPLEY_APPROX_STRATA_H_
