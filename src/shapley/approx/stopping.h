#ifndef SHAPLEY_APPROX_STOPPING_H_
#define SHAPLEY_APPROX_STOPPING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "shapley/approx/approx.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Per-fact marginal ranges of `query` over the endogenous facts of `db`,
/// in the database's (sorted) endogenous fact order.
///
/// The Boolean-query marginal v(P ∪ {f}) − v(P) spans
///  - {0, 1} when the query is monotone in f's relation (the relation only
///    ever occurs positively, or not at all),
///  - {−1, 0} when it is anti-monotone in it (the relation occurs only
///    under negation — adding such a fact can only kill witnesses),
///  - {−1, 0, 1} only when the relation occurs under BOTH polarities.
/// The Hoeffding and Bernstein bounds depend on the marginal's SPREAD, so
/// the first two cases certify with range 1 — half the range (and a
/// quarter of the Hoeffding sample count) the query-level "has negation
/// somewhere" test would charge them. This is deliberately computed per
/// fact, not per request: a mixed instance keeps the tighter bound on
/// every fact negation never touches.
///
/// Polarity is read off the query tree for conjunctive queries, unions and
/// conjunctions thereof; any other non-monotone query class falls back to
/// the conservative range 2 for every fact.
std::vector<double> PerFactMarginalRanges(const BooleanQuery& query,
                                          const PartitionedDatabase& db);

/// The empirical-Bernstein sequential stopping rule of the adaptive
/// sampling strategies (ApproxStrategy::kBernstein / kStratified).
///
/// The sampler draws permutations in deterministic batches and calls
/// Checkpoint() between rounds with the MERGED integer tallies — per-fact
/// sums and sums of squares over iid sampling units (one permutation, or
/// one stratified group of `unit_perms` permutations). At checkpoint k the
/// rule computes each live fact's empirical-Bernstein half-width at
/// confidence CheckpointDelta(delta/2, k) and RETIRES every fact whose
/// half-width already meets ε: the fact's estimate freezes at the current
/// tallies (later draws are ignored), its certified half-width is
/// recorded, and once every fact is retired the whole run stops. Because
/// checkpoints only ever see merged tallies at batch boundaries,
/// retirement decisions (and with them the estimates) are bit-identical
/// across thread counts.
///
/// δ-SPLIT: the failure budget is spent in two halves. The checkpoint
/// schedule draws from δ/2 (its telescoping union stays within δ/2), and
/// the other δ/2 is RESERVED for one terminal Hoeffding bound in
/// Finish(). A fact still live when the budget runs out freezes at the
/// better of one more Bernstein look and that terminal Hoeffding width —
/// so a non-retiring run (nothing about its variance ever justified
/// stopping early) reports at worst range·sqrt(ln(4/δ)/(2m)), a √2
/// premium over the fixed Hoeffding strategy at the same count, rather
/// than a premium that grows with the number of checkpoints taken. The
/// two halves together keep the joint per-fact contract at δ.
///
/// Finish() is that terminal checkpoint: when `max_samples` truncates a
/// run that needed more, the recorded width is honestly wider than ε.
class SequentialStopper {
 public:
  /// `fact_ranges`: per-fact marginal ranges (PerFactMarginalRanges).
  /// `unit_perms`: permutations per iid sampling unit (1 for plain Monte
  /// Carlo, kStrataGroupPermutations for stratified groups). Tallies and
  /// unit counts passed to Checkpoint/Finish are in UNITS; frozen sample
  /// counts are reported back in permutations.
  SequentialStopper(double epsilon, double delta,
                    std::vector<double> fact_ranges, size_t unit_perms);

  /// One stopping decision from cumulative merged tallies: net[i] = Σ of
  /// unit sums, sq[i] = Σ of squared unit sums, over `units` iid units.
  /// Returns true once every fact is retired (the caller stops sampling).
  bool Checkpoint(const std::vector<int64_t>& net,
                  const std::vector<int64_t>& sq, size_t units);

  /// Terminal checkpoint: freezes every still-live fact at the final
  /// tallies, whatever half-width that certifies.
  void Finish(const std::vector<int64_t>& net, const std::vector<int64_t>& sq,
              size_t units);

  bool all_retired() const { return retired_count_ == retired_.size(); }
  size_t retired_count() const { return retired_count_; }
  /// Per-fact retirement flags (canonical order) as of the last
  /// Checkpoint(). A retired fact's tallies are FROZEN — Checkpoint and
  /// Finish never read them again — which is what lets the sampler skip
  /// evaluating retired facts' marginals inside later permutation walks
  /// without changing a single reported estimate.
  const std::vector<bool>& retired() const { return retired_; }
  /// Facts retired with their bound met (≤ ε) — excludes Finish() freezes.
  size_t retired_within_epsilon() const { return retired_within_epsilon_; }
  size_t checkpoints() const { return checkpoint_; }

  /// Frozen per-fact results, valid after Finish() (in endogenous order).
  const std::vector<int64_t>& frozen_net() const { return frozen_net_; }
  /// Permutations backing each fact's estimate (unit count × unit_perms).
  const std::vector<size_t>& frozen_samples() const { return frozen_samples_; }
  const std::vector<double>& half_widths() const { return half_widths_; }

 private:
  /// Empirical-Bernstein half-width of fact i at the given tallies and
  /// per-checkpoint confidence.
  double HalfWidthAt(size_t i, int64_t net, int64_t sq, size_t units,
                     double delta_k) const;
  void Freeze(size_t i, int64_t net, size_t units, double half_width);

  double epsilon_;
  double delta_;
  std::vector<double> ranges_;
  size_t unit_perms_;
  size_t checkpoint_ = 0;
  size_t retired_count_ = 0;
  size_t retired_within_epsilon_ = 0;
  std::vector<bool> retired_;
  std::vector<int64_t> frozen_net_;
  std::vector<size_t> frozen_samples_;
  std::vector<double> half_widths_;
};

}  // namespace shapley

#endif  // SHAPLEY_APPROX_STOPPING_H_
