#ifndef SHAPLEY_APPROX_RNG_H_
#define SHAPLEY_APPROX_RNG_H_

#include <cstdint>

namespace shapley {

/// SplitMix64 (Steele–Lea–Flood): a tiny, fast, well-mixed 64-bit
/// generator. The sampler uses it instead of <random> engines because its
/// output is fully specified by this header — bit-reproducibility across
/// standard libraries and platforms is part of the approximation contract
/// (std::uniform_int_distribution is implementation-defined).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform draw from [0, bound), unbiased via rejection (Lemire's
  /// threshold trick: reject the partial final bucket of 2^64 / bound).
  uint64_t NextBelow(uint64_t bound) {
    const uint64_t threshold = (0 - bound) % bound;
    uint64_t r;
    do {
      r = Next();
    } while (r < threshold);
    return r % bound;
  }

 private:
  uint64_t state_;
};

/// Derives the seed of one sample-batch stream from the request's base
/// seed: feeding (seed, stream) through one SplitMix64 step decorrelates
/// neighboring streams, so batch k is independent of batch k+1 while the
/// whole schedule stays a pure function of the base seed — parallel
/// execution order cannot leak into the estimates.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  SplitMix64 mixer(seed ^ (0x5851f42d4c957f2dull * (stream + 1)));
  return mixer.Next();
}

}  // namespace shapley

#endif  // SHAPLEY_APPROX_RNG_H_
