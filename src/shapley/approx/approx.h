#ifndef SHAPLEY_APPROX_APPROX_H_
#define SHAPLEY_APPROX_APPROX_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace shapley {

/// Approximation contract of a sampling request: the caller asks for
/// estimates within an additive half-width `epsilon` of the exact Shapley
/// value, each with failure probability at most `delta` (per fact), and
/// supplies the base `seed` that makes the run bit-reproducible. The
/// sample count is derived from (epsilon, delta) by the Hoeffding bound
/// (see HoeffdingSamples) and optionally capped by `max_samples`; when the
/// cap bites, the response reports the (wider) half-width actually
/// achieved by the drawn samples instead of the requested epsilon.
struct ApproxParams {
  double epsilon = 0.05;   ///< Target additive error (half-width), > 0.
  double delta = 0.05;     ///< Per-fact failure probability, in (0, 1).
  uint64_t seed = 1;       ///< Base seed; same seed → bit-identical output.
  size_t max_samples = 0;  ///< Sample budget cap (0 = derived count only).
};

/// What an approximate engine actually did, attached to the response so the
/// caller can judge the estimate: the realized sample count, the half-width
/// the Hoeffding bound certifies at that count, and the confidence level.
/// The guarantee reads: for each fact independently,
///   P(|estimate − Sh(fact)| > half_width) ≤ delta.
struct ApproxInfo {
  double epsilon = 0.0;     ///< Requested half-width.
  double delta = 0.0;       ///< Requested per-fact failure probability.
  uint64_t seed = 0;        ///< Seed the run used (reruns reproduce it).
  size_t samples = 0;       ///< Permutations drawn (samples per fact).
  double half_width = 0.0;  ///< Certified half-width at `samples`.
  double confidence = 0.0;  ///< 1 − delta.
  double range = 1.0;       ///< Marginal range: 1 (monotone) or 2 (general).
  size_t memo_hits = 0;     ///< Coalition evaluations served by the memo.

  std::string ToString() const;
};

/// Hoeffding sample count: the smallest m with
///   2·exp(−2·m·epsilon² / range²) ≤ delta,
/// i.e. m = ceil(range²·ln(2/delta) / (2·epsilon²)). `range` is the spread
/// of one sampled marginal: the Boolean-query marginal v(P∪{f}) − v(P)
/// lies in {0, 1} for monotone queries (range 1) and {−1, 0, 1} with
/// negation (range 2).
inline size_t HoeffdingSamples(double epsilon, double delta, double range) {
  const double m =
      std::ceil(range * range * std::log(2.0 / delta) /
                (2.0 * epsilon * epsilon));
  if (m < 1.0) return 1;
  // Saturate: a tiny epsilon derives counts beyond size_t, and the
  // double→integer cast would be UB (observed wrapping to 0). The
  // sampler's own sample guard then refuses the saturated value.
  if (m >= static_cast<double>(std::numeric_limits<size_t>::max())) {
    return std::numeric_limits<size_t>::max();
  }
  return static_cast<size_t>(m);
}

/// The half-width the same bound certifies after `samples` draws:
///   half_width = range·sqrt(ln(2/delta) / (2·samples)).
inline double HoeffdingHalfWidth(size_t samples, double delta, double range) {
  return range *
         std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(samples)));
}

}  // namespace shapley

#endif  // SHAPLEY_APPROX_APPROX_H_
