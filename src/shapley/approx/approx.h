#ifndef SHAPLEY_APPROX_APPROX_H_
#define SHAPLEY_APPROX_APPROX_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace shapley {

/// How the sampling engine turns an (ε, δ) contract into samples:
///  - kHoeffding: the fixed-count baseline — derive the sample count from
///    the Hoeffding bound up front and draw it all, variance-blind.
///  - kBernstein: empirical-Bernstein sequential stopping — draw in
///    batches, and between batches retire every fact whose variance-aware
///    confidence half-width already meets ε (a δ-spending schedule over
///    the checkpoints keeps the joint contract honest). Low-variance facts
///    stop an order of magnitude earlier than the Hoeffding count.
///  - kStratified: the same sequential stopping over position-stratified,
///    antithetically paired permutations — each iid sampling unit covers
///    every fact's position strata evenly (rotations) and in complementary
///    pairs (reversal), cutting the between-position variance component
///    before the Bernstein rule ever sees it.
/// Every strategy preserves the determinism contract: identical seeds give
/// bit-identical estimates across thread counts, because stopping
/// decisions happen only at batch boundaries from merged integer tallies.
enum class ApproxStrategy {
  kHoeffding = 0,
  kBernstein = 1,
  kStratified = 2,
};

inline const char* ToString(ApproxStrategy strategy) {
  switch (strategy) {
    case ApproxStrategy::kHoeffding:
      return "hoeffding";
    case ApproxStrategy::kBernstein:
      return "bernstein";
    case ApproxStrategy::kStratified:
      return "stratified";
  }
  return "?";
}

/// CLI/service-facing parse; nullopt for unknown names (the caller owns
/// turning that into its structured error).
inline std::optional<ApproxStrategy> ParseApproxStrategy(
    const std::string& name) {
  if (name == "hoeffding") return ApproxStrategy::kHoeffding;
  if (name == "bernstein") return ApproxStrategy::kBernstein;
  if (name == "stratified") return ApproxStrategy::kStratified;
  return std::nullopt;
}

/// The concentration-bound promise an engine configured with `strategy`
/// advertises through EngineCaps::error_model.
inline const char* ApproxErrorModel(ApproxStrategy strategy) {
  switch (strategy) {
    case ApproxStrategy::kHoeffding:
      return "hoeffding: P(|est - Sh| > eps) <= delta per fact, additive; "
             "deterministic given seed";
    case ApproxStrategy::kBernstein:
      return "empirical-bernstein sequential stopping: P(|est - Sh| > "
             "reported half-width) <= delta per fact across all stopping "
             "checkpoints (union delta-spending); never draws more than "
             "the hoeffding count; deterministic given seed";
    case ApproxStrategy::kStratified:
      return "empirical-bernstein over position-stratified antithetic "
             "permutation units: P(|est - Sh| > reported half-width) <= "
             "delta per fact across all stopping checkpoints; never draws "
             "more than the hoeffding count; deterministic given seed";
  }
  return "?";
}

/// Approximation contract of a sampling request: the caller asks for
/// estimates within an additive half-width `epsilon` of the exact Shapley
/// value, each with failure probability at most `delta` (per fact), and
/// supplies the base `seed` that makes the run bit-reproducible. The
/// sample budget is derived from (epsilon, delta) by the Hoeffding bound
/// (see HoeffdingSamples) and optionally capped by `max_samples`; adaptive
/// strategies may stop well below it, and when the cap bites, the response
/// reports the (wider) half-width actually achieved by the drawn samples
/// instead of the requested epsilon.
struct ApproxParams {
  double epsilon = 0.05;   ///< Target additive error (half-width), > 0.
  double delta = 0.05;     ///< Per-fact failure probability, in (0, 1).
  uint64_t seed = 1;       ///< Base seed; same seed → bit-identical output.
  size_t max_samples = 0;  ///< Sample budget cap (0 = derived count only).
  /// Sampling/stopping strategy (see ApproxStrategy). The default is the
  /// fixed-count Hoeffding baseline. Reproducibility is within-version:
  /// same seed, same build → bit-identical estimates; across versions the
  /// derived sample count may legitimately change (e.g. the per-fact
  /// range analysis tightening a negated query's budget), which changes
  /// the realized estimates.
  ApproxStrategy strategy = ApproxStrategy::kHoeffding;
};

/// What an approximate engine actually did, attached to the response so the
/// caller can judge the estimate: the realized sample count, the half-width
/// the active bound certifies at that count, and the confidence level.
/// The guarantee reads: for each fact independently,
///   P(|estimate − Sh(fact)| > its half-width) ≤ delta.
/// The per-fact vectors are indexed by the database's (sorted) endogenous
/// fact order — the same order the values map iterates in.
struct ApproxInfo {
  double epsilon = 0.0;     ///< Requested half-width.
  double delta = 0.0;       ///< Requested per-fact failure probability.
  uint64_t seed = 0;        ///< Seed the run used (reruns reproduce it).
  size_t samples = 0;       ///< Permutations drawn (max over facts).
  double half_width = 0.0;  ///< Widest per-fact certified half-width.
  double confidence = 0.0;  ///< 1 − delta.
  double range = 1.0;       ///< Widest per-fact marginal range (1 or 2).
  size_t memo_hits = 0;     ///< Coalition evaluations served by the memo.

  /// Strategy that produced the estimates ("hoeffding" | "bernstein" |
  /// "stratified") — echoed verbatim into responses so a caller can tell
  /// which stopping rule certified the half-widths.
  std::string strategy;
  /// The fixed Hoeffding-bound sample count the same (ε, δ) contract would
  /// have drawn up front — the baseline adaptive strategies are measured
  /// against. Adaptive runs never draw more than this.
  size_t hoeffding_baseline = 0;
  /// Stopping checkpoints evaluated (0 for the fixed Hoeffding strategy).
  size_t checkpoints = 0;
  /// Facts whose bound met ε before the budget ran out.
  size_t facts_retired = 0;

  /// Per-fact marginal range: 1.0 for facts the query is monotone or
  /// anti-monotone in (their marginal spans one unit), 2.0 for facts whose
  /// relation occurs under both polarities. Computed per fact, not per
  /// request — a fact never touched by negation keeps the tighter bound
  /// even on a query with negated atoms elsewhere.
  std::vector<double> fact_ranges;
  /// Per-fact permutations backing the estimate: a retired fact's estimate
  /// freezes at its retirement checkpoint (later draws are ignored), so
  /// entries can differ under adaptive strategies.
  std::vector<size_t> fact_samples;
  /// Per-fact certified half-width at `fact_samples` draws. The honesty
  /// contract the tests pin down: every estimate lands within ITS OWN
  /// reported half-width of the exact value (with probability ≥ 1 − δ).
  std::vector<double> fact_half_widths;

  std::string ToString() const;
};

/// Hoeffding sample count: the smallest m with
///   2·exp(−2·m·epsilon² / range²) ≤ delta,
/// i.e. m = ceil(range²·ln(2/delta) / (2·epsilon²)). `range` is the spread
/// of one sampled marginal: the Boolean-query marginal v(P∪{f}) − v(P)
/// lies in {0, 1} for monotone queries (range 1) and {−1, 0, 1} with
/// negation (range 2).
inline size_t HoeffdingSamples(double epsilon, double delta, double range) {
  const double m =
      std::ceil(range * range * std::log(2.0 / delta) /
                (2.0 * epsilon * epsilon));
  if (m < 1.0) return 1;
  // Saturate: a tiny epsilon derives counts beyond size_t, and the
  // double→integer cast would be UB (observed wrapping to 0). The
  // sampler's own sample guard then refuses the saturated value.
  if (m >= static_cast<double>(std::numeric_limits<size_t>::max())) {
    return std::numeric_limits<size_t>::max();
  }
  return static_cast<size_t>(m);
}

/// The half-width the same bound certifies after `samples` draws:
///   half_width = range·sqrt(ln(2/delta) / (2·samples)).
inline double HoeffdingHalfWidth(size_t samples, double delta, double range) {
  return range *
         std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(samples)));
}

/// Empirical-Bernstein half-width (Audibert–Munos–Szepesvári):
/// for t iid samples with empirical variance V (the biased 1/t version)
/// and range `range`,
///   P(|mean − μ| > sqrt(2·V·ln(3/delta)/t) + 3·range·ln(3/delta)/t) ≤ delta.
/// Unlike Hoeffding's, this bound shrinks with the OBSERVED variance — on
/// low-variance facts it certifies ε after an order of magnitude fewer
/// samples, at the price of a 1/t bias term that keeps it honest early on.
inline double EmpiricalBernsteinHalfWidth(size_t samples, double variance,
                                          double range, double delta) {
  const double t = static_cast<double>(samples);
  const double lg = std::log(3.0 / delta);
  return std::sqrt(2.0 * variance * lg / t) + 3.0 * range * lg / t;
}

/// δ-spending schedule of the sequential stopping rule: checkpoint k
/// (1-based) tests each fact's bound at confidence delta_k = δ/(k·(k+1)).
/// Σ_k δ/(k(k+1)) telescopes to δ, so a K-checkpoint run spends
/// δ·K/(K+1) < δ and the union over ALL checkpoints stays within δ —
/// the joint (ε, δ) contract survives any number of looks at the data.
/// The SequentialStopper feeds this schedule δ/2 and reserves the other
/// δ/2 for one terminal Hoeffding bound (the δ-split of
/// approx/stopping.h), capping a non-retiring run's width premium over
/// plain Hoeffding at √2.
inline double CheckpointDelta(double delta, size_t checkpoint) {
  const double k = static_cast<double>(checkpoint);
  return delta / (k * (k + 1.0));
}

}  // namespace shapley

#endif  // SHAPLEY_APPROX_APPROX_H_
