#include "shapley/approx/sampling.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <numeric>
#include <sstream>
#include <vector>

#include "shapley/approx/rng.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/sat_memo.h"
#include "shapley/exec/thread_pool.h"

namespace shapley {

namespace {

/// Permutations per pool task. Fixed (never derived from thread count or
/// sample count) so the batch → RNG-stream mapping, and with it every
/// estimate, is independent of parallelism.
constexpr size_t kPermutationsPerBatch = 32;

/// Memoize only coalitions up to this size: a random prefix of size k is
/// one of C(n, k)·k! orderings, so revisits are common for tiny k and
/// vanishingly rare beyond — memoizing large prefixes would only grow the
/// table without ever hitting.
constexpr size_t kMemoMaxCoalition = 8;

size_t IndexOfEndogenous(const PartitionedDatabase& db, const Fact& fact) {
  const auto& endo = db.endogenous().facts();
  for (size_t i = 0; i < endo.size(); ++i) {
    if (endo[i] == fact) return i;
  }
  throw SvcException({SvcErrorCode::kInvalidRequest,
                      "sampling: fact is not endogenous in the database",
                      "sampling"});
}

void ValidateParams(const ApproxParams& params) {
  if (!(params.epsilon > 0.0)) {
    throw SvcException({SvcErrorCode::kInvalidRequest,
                        "sampling: epsilon must be > 0", "sampling"});
  }
  if (!(params.delta > 0.0) || !(params.delta < 1.0)) {
    throw SvcException({SvcErrorCode::kInvalidRequest,
                        "sampling: delta must be in (0, 1)", "sampling"});
  }
}

}  // namespace

std::string ApproxInfo::ToString() const {
  std::ostringstream os;
  os << "samples=" << samples << " half_width=" << half_width
     << " confidence=" << confidence << " seed=" << seed
     << " (requested eps=" << epsilon << " delta=" << delta
     << ", marginal range " << range << ", memo_hits=" << memo_hits << ")";
  return os.str();
}

BigRational SamplingSvc::Value(const BooleanQuery& query,
                               const PartitionedDatabase& db,
                               const Fact& fact) {
  const size_t index = IndexOfEndogenous(db, fact);
  // One permutation samples every fact's marginal at once, so the whole
  // AllValues sweep costs the same sample budget as a single fact.
  std::map<Fact, BigRational> values = AllValues(query, db);
  return values.at(db.endogenous().facts()[index]);
}

std::map<Fact, BigRational> SamplingSvc::AllValues(
    const BooleanQuery& query, const PartitionedDatabase& db) {
  ValidateParams(params_);
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();

  const bool monotone = query.IsMonotone();
  const double range = monotone ? 1.0 : 2.0;
  size_t samples = HoeffdingSamples(params_.epsilon, params_.delta, range);
  if (params_.max_samples > 0) {
    samples = std::min(samples, params_.max_samples);
  }
  if (samples > kSampleGuard) {
    throw SvcException(
        {SvcErrorCode::kCapacityExceeded,
         "sampling: (epsilon, delta) derives " + std::to_string(samples) +
             " permutations, beyond the engine guard of " +
             std::to_string(kSampleGuard) +
             " — widen epsilon/delta or set max_samples",
         "sampling"});
  }

  // Built locally and published under the lock only when the run
  // completes: failed or aborted runs leave last_info() untouched, and a
  // concurrent last_info() reader never sees a half-filled struct.
  ApproxInfo info;
  info.epsilon = params_.epsilon;
  info.delta = params_.delta;
  info.seed = params_.seed;
  info.confidence = 1.0 - params_.delta;
  info.range = range;
  info.samples = samples;
  info.half_width = HoeffdingHalfWidth(samples, params_.delta, range);

  std::map<Fact, BigRational> values;
  if (n == 0) {
    std::lock_guard<std::mutex> lock(info_mutex_);
    info_ = info;
    return values;
  }

  // The shared satisfaction oracle: through the exec-context cache when
  // installed (amortizes across requests with the same fingerprint), a
  // run-local memo otherwise. Coalition masks index the sorted endogenous
  // fact vector, so they are canonical per fingerprint; beyond 64 facts
  // masks stop being representable and the memo is skipped.
  std::shared_ptr<SatMemo> memo;
  if (n <= 64) {
    memo = exec_.cache != nullptr ? exec_.cache->SatTable(query, db)
                                  : std::make_shared<SatMemo>();
  }

  // v(∅) = [Dx |= q], the `prev` seed of every walk — evaluated once.
  const bool base_satisfied = query.Evaluate(db.exogenous());

  // Per-fact net marginal tallies (#positive − #negative), merged with
  // commutative integer addition so the totals are schedule-independent.
  std::vector<int64_t> net(n, 0);
  std::atomic<size_t> memo_hits{0};
  std::mutex merge_mutex;

  const size_t num_batches =
      (samples + kPermutationsPerBatch - 1) / kPermutationsPerBatch;

  auto run_batch = [&](size_t batch) {
    // Cooperative abort points between batches: the sweep's total work
    // (samples × |Dn| query evaluations) is caller-tunable, so honoring
    // cancellation and deadlines mid-run is what keeps a serving worker
    // reclaimable. The thrown SvcException abandons the remaining batches
    // (ParallelFor rethrows the first body exception at the call site).
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      throw SvcException({SvcErrorCode::kCancelled,
                          "sampling: request cancelled mid-run", "sampling"});
    }
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() > *deadline_) {
      throw SvcException({SvcErrorCode::kDeadlineExceeded,
                          "sampling: deadline passed mid-run after " +
                              std::to_string(batch) + " of " +
                              std::to_string(num_batches) + " batches",
                          "sampling"});
    }
    SplitMix64 rng(MixSeed(params_.seed, batch));
    std::vector<int64_t> local(n, 0);
    size_t local_hits = 0;
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), size_t{0});

    // One world per batch: each walk inserts its prefix facts and removes
    // them again afterwards — O(walk length) restores instead of a full
    // exogenous copy per permutation (early-exited monotone walks touch
    // only a handful of facts).
    Database world = db.exogenous();
    std::vector<size_t> walked;
    walked.reserve(n);

    const size_t first = batch * kPermutationsPerBatch;
    const size_t last = std::min(samples, first + kPermutationsPerBatch);
    for (size_t s = first; s < last; ++s) {
      // Fisher–Yates; carrying the previous permutation as the starting
      // arrangement is fine (the shuffle is uniform from any start) and
      // deterministic (batches replay their whole schedule from the seed).
      for (size_t i = n - 1; i > 0; --i) {
        std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
      }

      walked.clear();
      uint64_t mask = 0;
      bool prev = base_satisfied;
      for (size_t i = 0; i < n; ++i) {
        // Monotone walks stop at the first satisfied prefix: every later
        // fact joins a winning coalition, marginal 0.
        if (monotone && prev) break;
        const size_t player = perm[i];
        world.Insert(endo[player]);
        walked.push_back(player);
        // Masks exist only for the memo, and only while every player fits
        // a 64-bit coalition (shifting by >= 64 would be UB).
        if (memo != nullptr) mask |= uint64_t{1} << player;

        bool current;
        bool memoized = false;
        const bool memoizable =
            memo != nullptr &&
            static_cast<size_t>(std::popcount(mask)) <= kMemoMaxCoalition;
        if (memoizable) {
          if (std::optional<bool> verdict = memo->Lookup(mask)) {
            current = *verdict;
            memoized = true;
            ++local_hits;
          }
        }
        if (!memoized) {
          current = query.Evaluate(world);
          if (memoizable) memo->Insert(mask, current);
        }

        local[player] +=
            static_cast<int64_t>(current) - static_cast<int64_t>(prev);
        prev = current;
      }
      for (size_t player : walked) world.Remove(endo[player]);
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (size_t i = 0; i < n; ++i) net[i] += local[i];
    memo_hits.fetch_add(local_hits, std::memory_order_relaxed);
  };

  if (exec_.pool != nullptr && exec_.pool->num_threads() > 1 &&
      num_batches > 1) {
    exec_.pool->ParallelFor(0, num_batches, run_batch);
  } else {
    for (size_t batch = 0; batch < num_batches; ++batch) run_batch(batch);
  }

  info.memo_hits = memo_hits.load();
  for (size_t i = 0; i < n; ++i) {
    values.emplace(endo[i],
                   BigRational(BigInt(net[i]),
                               BigInt(static_cast<int64_t>(samples))));
  }
  {
    std::lock_guard<std::mutex> lock(info_mutex_);
    info_ = info;
  }
  return values;
}

}  // namespace shapley
