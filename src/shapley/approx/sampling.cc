#include "shapley/approx/sampling.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <numeric>
#include <sstream>
#include <vector>

#include "shapley/approx/rng.h"
#include "shapley/approx/stopping.h"
#include "shapley/approx/strata.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/sat_memo.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/obs/trace.h"

namespace shapley {

namespace {

/// Permutations per pool task. Fixed (never derived from thread count or
/// sample count) so the batch → RNG-stream mapping, and with it every
/// estimate, is independent of parallelism. A multiple of
/// kStrataGroupPermutations, so stratified groups never straddle batches.
constexpr size_t kPermutationsPerBatch = 32;
static_assert(kPermutationsPerBatch % kStrataGroupPermutations == 0,
              "stratified units must not straddle batch RNG streams");

/// Batches between stopping checkpoints of the adaptive strategies: rounds
/// of 4 batches (128 permutations) balance reaction time against δ-spend —
/// each checkpoint costs a δ/(k(k+1)) installment, so checking after every
/// batch would widen the bound for nothing on long runs. A pure function
/// of nothing but this constant, so the checkpoint grid (and with it every
/// retirement decision) is identical across thread counts.
constexpr size_t kBatchesPerRound = 4;

/// Memoize only coalitions up to this size: a random prefix of size k is
/// one of C(n, k)·k! orderings, so revisits are common for tiny k and
/// vanishingly rare beyond — memoizing large prefixes would only grow the
/// table without ever hitting.
constexpr size_t kMemoMaxCoalition = 8;

size_t IndexOfEndogenous(const PartitionedDatabase& db, const Fact& fact) {
  const auto& endo = db.endogenous().facts();
  for (size_t i = 0; i < endo.size(); ++i) {
    if (endo[i] == fact) return i;
  }
  throw SvcException({SvcErrorCode::kInvalidRequest,
                      "sampling: fact is not endogenous in the database",
                      "sampling"});
}

void ValidateParams(const ApproxParams& params) {
  if (!(params.epsilon > 0.0)) {
    throw SvcException({SvcErrorCode::kInvalidRequest,
                        "sampling: epsilon must be > 0", "sampling"});
  }
  if (!(params.delta > 0.0) || !(params.delta < 1.0)) {
    throw SvcException({SvcErrorCode::kInvalidRequest,
                        "sampling: delta must be in (0, 1)", "sampling"});
  }
  switch (params.strategy) {
    case ApproxStrategy::kHoeffding:
    case ApproxStrategy::kBernstein:
    case ApproxStrategy::kStratified:
      break;
    default:
      throw SvcException(
          {SvcErrorCode::kInvalidRequest,
           "sampling: unknown approximation strategy — expected hoeffding, "
           "bernstein or stratified",
           "sampling"});
  }
}

}  // namespace

std::string ApproxInfo::ToString() const {
  std::ostringstream os;
  os << "strategy=" << strategy << " samples=" << samples << "/"
     << hoeffding_baseline << " half_width=" << half_width
     << " confidence=" << confidence << " seed=" << seed
     << " (requested eps=" << epsilon << " delta=" << delta
     << ", marginal range " << range << ", checkpoints=" << checkpoints
     << ", retired=" << facts_retired << "/" << fact_half_widths.size()
     << ", memo_hits=" << memo_hits << ")";
  return os.str();
}

BigRational SamplingSvc::Value(const BooleanQuery& query,
                               const PartitionedDatabase& db,
                               const Fact& fact) {
  const size_t index = IndexOfEndogenous(db, fact);
  // One permutation samples every fact's marginal at once, so the whole
  // AllValues sweep costs the same sample budget as a single fact.
  std::map<Fact, BigRational> values = AllValues(query, db);
  return values.at(db.endogenous().facts()[index]);
}

std::map<Fact, BigRational> SamplingSvc::AllValues(
    const BooleanQuery& query, const PartitionedDatabase& db) {
  ValidateParams(params_);
  const auto& endo = db.endogenous().facts();
  const size_t n = endo.size();

  const bool monotone = query.IsMonotone();
  // Per-fact ranges, not one per request: a mixed instance charges each
  // fact only the spread its own relation's polarity admits. The request's
  // sample BUDGET must still cover the widest fact.
  const std::vector<double> ranges = PerFactMarginalRanges(query, db);
  const double max_range =
      n == 0 ? (monotone ? 1.0 : 2.0)
             : *std::max_element(ranges.begin(), ranges.end());

  const size_t baseline = HoeffdingSamples(params_.epsilon, params_.delta,
                                           max_range);
  size_t budget = baseline;
  if (params_.max_samples > 0) {
    budget = std::min(budget, params_.max_samples);
  }
  if (budget > kSampleGuard) {
    throw SvcException(
        {SvcErrorCode::kCapacityExceeded,
         "sampling: (epsilon, delta) derives " + std::to_string(budget) +
             " permutations, beyond the engine guard of " +
             std::to_string(kSampleGuard) +
             " — widen epsilon/delta or set max_samples",
         "sampling"});
  }

  // Built locally and published under the lock only when the run
  // completes: failed or aborted runs leave last_info() untouched, and a
  // concurrent last_info() reader never sees a half-filled struct.
  ApproxInfo info;
  info.epsilon = params_.epsilon;
  info.delta = params_.delta;
  info.seed = params_.seed;
  info.confidence = 1.0 - params_.delta;
  info.range = max_range;
  info.strategy = shapley::ToString(params_.strategy);
  info.hoeffding_baseline = baseline;
  info.fact_ranges = ranges;
  info.samples = budget;
  info.half_width = HoeffdingHalfWidth(budget, params_.delta, max_range);

  std::map<Fact, BigRational> values;
  if (n == 0) {
    std::lock_guard<std::mutex> lock(info_mutex_);
    info_ = info;
    return values;
  }

  // Canonical player order: permutation position p maps to the fact at
  // endo[order[p]], with `order` sorting the endogenous facts by their
  // RENDERED TEXT rather than by their (relation id, constant id) tuple.
  // Interner ids depend on process history — a database decoded from the
  // wire, or built in another process, interns relations/constants in a
  // different sequence and would sort the same facts differently — while
  // the text is a pure function of the instance. Pinning the player
  // indexing to the text makes every estimate a function of (seed,
  // instance) alone: bit-identical across thread counts, schemas AND
  // processes — the same canonicalization discipline as the OracleCache
  // fingerprint, and what makes the memo masks below truly canonical.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  {
    std::vector<std::string> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = endo[i].ToString(*db.schema());
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  }
  std::vector<double> canonical_ranges(n);
  for (size_t p = 0; p < n; ++p) canonical_ranges[p] = ranges[order[p]];

  // Sampling-unit geometry: plain strategies draw one permutation per iid
  // unit; the stratified strategy draws antithetic PAIRS (strata.h) and
  // treats the pair as the unit. A budget too small to fund even one pair
  // (an ε so loose a single draw certifies it) degenerates to a single
  // plain unit — the run must never overdraw the budget, or the
  // "never more than the Hoeffding count" contract breaks.
  const bool stratified = params_.strategy == ApproxStrategy::kStratified;
  const size_t unit_perms =
      stratified ? std::min<size_t>(kStrataGroupPermutations, budget) : 1;
  const size_t total_units = std::max<size_t>(1, budget / unit_perms);
  const size_t units_per_batch = kPermutationsPerBatch / unit_perms;
  const size_t num_batches =
      (total_units + units_per_batch - 1) / units_per_batch;

  // The shared satisfaction oracle: through the exec-context cache when
  // installed (amortizes across requests with the same fingerprint), a
  // run-local memo otherwise. Coalition masks index the canonical
  // (text-ordered) fact positions, so they are canonical per fingerprint
  // — two processes memoizing the same instance agree bit for bit; beyond
  // 64 facts masks stop being representable and the memo is skipped.
  std::shared_ptr<SatMemo> memo;
  if (n <= 64) {
    memo = exec_.cache != nullptr ? exec_.cache->SatTable(query, db)
                                  : std::make_shared<SatMemo>();
  }

  // v(∅) = [Dx |= q], the `prev` seed of every walk — evaluated once.
  const bool base_satisfied = query.Evaluate(db.exogenous());

  // Retirement snapshot the walks truncate against (canonical positions;
  // empty = truncation off or nothing retired yet). Updated ONLY between
  // rounds, right after the stopper's checkpoint — every batch of a round
  // sees one stable snapshot, so the truncation inherits the checkpoint
  // grid's thread-count independence. A retired fact's tallies are frozen
  // (the stopper never reads them again), so walks may skip the
  // evaluations that exist only to measure retired facts' marginals: a
  // position is evaluated iff it, or the position after it (whose marginal
  // needs this prefix's value as `prev`), belongs to a live fact, and the
  // walk ends at the last live position outright. Estimates are
  // bit-identical with truncation on or off; only the evaluation count
  // drops (substantially, once most facts retire early).
  std::vector<bool> retired_walk_snapshot;

  // Per-fact cumulative tallies over iid units: net[i] = Σ unit sums
  // (#positive − #negative marginals), sq[i] = Σ squared unit sums (what
  // the empirical-Bernstein rule reads the variance from). Both merged
  // with commutative integer addition, so the totals — and with them every
  // stopping decision — are schedule-independent.
  std::vector<int64_t> net(n, 0);
  std::vector<int64_t> sq(n, 0);
  std::atomic<size_t> memo_hits{0};
  std::mutex merge_mutex;

  auto run_batch = [&](size_t batch) {
    // Cooperative abort points between batches: the sweep's total work
    // (samples × |Dn| query evaluations) is caller-tunable, so honoring
    // cancellation and deadlines mid-run is what keeps a serving worker
    // reclaimable. The thrown SvcException abandons the remaining batches
    // (ParallelFor rethrows the first body exception at the call site).
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      throw SvcException({SvcErrorCode::kCancelled,
                          "sampling: request cancelled mid-run", "sampling"});
    }
    if (deadline_.has_value() &&
        std::chrono::steady_clock::now() > *deadline_) {
      throw SvcException({SvcErrorCode::kDeadlineExceeded,
                          "sampling: deadline passed mid-run after " +
                              std::to_string(batch) + " of " +
                              std::to_string(num_batches) + " batches",
                          "sampling"});
    }
    SplitMix64 rng(MixSeed(params_.seed, batch));
    std::vector<int64_t> local_net(n, 0);
    std::vector<int64_t> local_sq(n, 0);
    std::vector<int64_t> unit_sum(n, 0);  // One unit's per-fact marginals.
    size_t local_hits = 0;
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), size_t{0});
    std::vector<size_t> reversed;  // Stratified: antithetic partner.

    // One world per batch: each walk inserts its prefix facts and removes
    // them again afterwards — O(walk length) restores instead of a full
    // exogenous copy per permutation (early-exited monotone walks touch
    // only a handful of facts).
    Database world = db.exogenous();
    std::vector<size_t> walked;
    walked.reserve(n);

    // One permutation walk: marginals accumulate into unit_sum (a group's
    // walks share one unit_sum; a plain unit is a single walk). Players
    // are CANONICAL positions; endo[order[player]] is the actual fact.
    auto walk = [&](const std::vector<size_t>& arrangement) {
      walked.clear();
      uint64_t mask = 0;
      bool prev = base_satisfied;
      // Truncation bound: the position of the LAST live fact in this
      // arrangement — everything beyond it measures only frozen tallies.
      const bool truncate = !retired_walk_snapshot.empty();
      size_t last_live = n - 1;
      if (truncate) {
        size_t i = n;
        while (i > 0 && retired_walk_snapshot[arrangement[i - 1]]) --i;
        if (i == 0) return;  // Every fact retired; nothing left to measure.
        last_live = i - 1;
      }
      for (size_t i = 0; i <= last_live; ++i) {
        // Monotone walks stop at the first satisfied prefix: every later
        // fact joins a winning coalition, marginal 0. (`prev` may lag the
        // true prefix value across SKIPPED positions below — the walk then
        // just breaks one evaluated position later; live facts' marginals
        // are unaffected, because a live position always sees an evaluated
        // predecessor.)
        if (monotone && prev) break;
        const size_t player = arrangement[i];
        world.Insert(endo[order[player]]);
        walked.push_back(player);
        // Masks exist only for the memo, and only while every player fits
        // a 64-bit coalition (shifting by >= 64 would be UB).
        if (memo != nullptr) mask |= uint64_t{1} << player;

        // Evaluate iff this position's marginal is still read (live fact)
        // or the NEXT position's is (its marginal subtracts this prefix's
        // value). Two retired positions in a row need no evaluation at
        // all — the world just accumulates their facts.
        if (truncate && retired_walk_snapshot[player] &&
            (i == last_live || retired_walk_snapshot[arrangement[i + 1]])) {
          continue;
        }

        bool current;
        bool memoized = false;
        const bool memoizable =
            memo != nullptr &&
            static_cast<size_t>(std::popcount(mask)) <= kMemoMaxCoalition;
        if (memoizable) {
          if (std::optional<bool> verdict = memo->Lookup(mask)) {
            current = *verdict;
            memoized = true;
            ++local_hits;
          }
        }
        if (!memoized) {
          current = query.Evaluate(world);
          if (memoizable) memo->Insert(mask, current);
        }

        unit_sum[player] +=
            static_cast<int64_t>(current) - static_cast<int64_t>(prev);
        prev = current;
      }
      for (size_t player : walked) world.Remove(endo[order[player]]);
    };

    const size_t first = batch * units_per_batch;
    const size_t last = std::min(total_units, first + units_per_batch);
    for (size_t u = first; u < last; ++u) {
      // Fisher–Yates; carrying the previous permutation as the starting
      // arrangement is fine (the shuffle is uniform from any start) and
      // deterministic (batches replay their whole schedule from the seed).
      for (size_t i = n - 1; i > 0; --i) {
        std::swap(perm[i], perm[rng.NextBelow(i + 1)]);
      }

      walk(perm);
      if (unit_perms == kStrataGroupPermutations) {
        // One iid unit = one antithetic pair: the reversal samples every
        // fact at the complementary position stratum (see strata.h for
        // why that is both unbiased and variance-cutting).
        ReverseInto(perm, &reversed);
        walk(reversed);
      }

      for (size_t i = 0; i < n; ++i) {
        const int64_t x = unit_sum[i];
        if (x != 0) {
          local_net[i] += x;
          local_sq[i] += x * x;
          unit_sum[i] = 0;
        }
      }
    }

    std::lock_guard<std::mutex> lock(merge_mutex);
    for (size_t i = 0; i < n; ++i) {
      net[i] += local_net[i];
      sq[i] += local_sq[i];
    }
    memo_hits.fetch_add(local_hits, std::memory_order_relaxed);
  };

  auto run_span = [&](size_t from, size_t to) {
    if (exec_.pool != nullptr && exec_.pool->num_threads() > 1 &&
        to - from > 1) {
      exec_.pool->ParallelFor(from, to, run_batch);
    } else {
      for (size_t batch = from; batch < to; ++batch) run_batch(batch);
    }
  };

  // Per-round spans for traced requests (exec_.trace is null — zero-cost
  // — unless the request opted in), recorded from this coordinating
  // thread only: pool workers running batches never touch the recorder.
  // Tracing observes the round barriers; it never changes the batch → RNG
  // mapping, so traced and untraced estimates are bit-identical.
  obs::TraceRecorder* recorder = exec_.trace;

  if (params_.strategy == ApproxStrategy::kHoeffding) {
    // The fixed-count baseline: one fan-out over every batch, no
    // checkpoints — the same batch schedule as before the adaptive
    // strategies existed, so estimates only differ where the per-fact
    // range analysis tightened the derived count itself. The per-fact
    // half-widths apply the per-fact ranges: at the same sample count, a
    // fact negation never touches certifies half the width.
    if (recorder != nullptr) recorder->Begin("round");
    run_span(0, num_batches);
    if (recorder != nullptr) {
      recorder->Attr("samples", std::to_string(total_units * unit_perms));
      recorder->Attr("retired", "0");
      recorder->End();
    }
    const int64_t drawn = static_cast<int64_t>(total_units);
    info.fact_samples.assign(n, total_units);
    info.fact_half_widths.resize(n);
    for (size_t p = 0; p < n; ++p) {
      // Tallies are canonical-indexed; reports stay in endogenous order.
      const size_t i = order[p];
      info.fact_half_widths[i] =
          HoeffdingHalfWidth(total_units, params_.delta, ranges[i]);
      values.emplace(endo[i], BigRational(BigInt(net[p]), BigInt(drawn)));
    }
  } else {
    // Adaptive strategies: rounds of batches with a stopping checkpoint
    // between them. The early exit is what the adaptive contract buys —
    // once every fact's bound meets ε, the remaining rounds are never
    // scheduled. Checkpoints see only merged tallies at round barriers,
    // so the exit round (and every estimate) is thread-count independent.
    SequentialStopper stopper(params_.epsilon, params_.delta,
                              canonical_ranges, unit_perms);
    size_t done = 0;
    size_t units_done = 0;
    bool all_retired = false;
    while (done < num_batches && !all_retired) {
      if (recorder != nullptr) recorder->Begin("round");
      const size_t to = std::min(num_batches, done + kBatchesPerRound);
      run_span(done, to);
      done = to;
      units_done = std::min(total_units, done * units_per_batch);
      if (done < num_batches) {
        all_retired = stopper.Checkpoint(net, sq, units_done);
        if (truncate_retired_walks_ && !all_retired &&
            stopper.retired_count() > 0) {
          retired_walk_snapshot = stopper.retired();
        }
      }
      if (recorder != nullptr) {
        // The span covers the round's sampling AND its stopping
        // checkpoint; the attributes are the cumulative progress the
        // checkpoint saw.
        recorder->Attr("samples", std::to_string(units_done * unit_perms));
        recorder->Attr("retired", std::to_string(stopper.retired_count()));
        recorder->End();
      }
    }
    stopper.Finish(net, sq, units_done);

    info.samples = units_done * unit_perms;
    info.checkpoints = stopper.checkpoints();
    info.facts_retired = stopper.retired_within_epsilon();
    // Stopper results are canonical-indexed; un-permute into the
    // endogenous order the ApproxInfo contract promises.
    info.fact_samples.resize(n);
    info.fact_half_widths.resize(n);
    for (size_t p = 0; p < n; ++p) {
      const size_t i = order[p];
      info.fact_samples[i] = stopper.frozen_samples()[p];
      info.fact_half_widths[i] = stopper.half_widths()[p];
      values.emplace(
          endo[i],
          BigRational(BigInt(stopper.frozen_net()[p]),
                      BigInt(static_cast<int64_t>(
                          stopper.frozen_samples()[p]))));
    }
    info.half_width = *std::max_element(info.fact_half_widths.begin(),
                                        info.fact_half_widths.end());
  }

  info.memo_hits = memo_hits.load();
  {
    std::lock_guard<std::mutex> lock(info_mutex_);
    info_ = info;
  }
  return values;
}

}  // namespace shapley
