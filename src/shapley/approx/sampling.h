#ifndef SHAPLEY_APPROX_SAMPLING_H_
#define SHAPLEY_APPROX_SAMPLING_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "shapley/approx/approx.h"
#include "shapley/engines/svc.h"

namespace shapley {

/// Monte Carlo permutation sampling for SVC_q — the standard answer on the
/// #P-hard side of the paper's dichotomy (cf. Kara–Olteanu–Suciu; Lupia et
/// al.): Equation 1 reads the Shapley value as the expectation, over a
/// uniformly random permutation π of Dn, of the marginal contribution
/// v(π<f ∪ {f}) − v(π<f); averaging that marginal over sampled
/// permutations estimates every fact's value simultaneously, with a
/// concentration bound certifying an additive (ε, δ) guarantee per fact.
///
/// Three strategies share the execution substrate (see ApproxStrategy):
///  - hoeffding: the fixed-count baseline — HoeffdingSamples(ε, δ, range)
///    permutations drawn up front, variance-blind;
///  - bernstein: empirical-Bernstein sequential stopping — between batch
///    rounds, every fact whose variance-aware half-width already meets ε
///    is retired (its estimate freezes), and the run stops when all facts
///    are retired, never exceeding the Hoeffding count (approx/stopping.h);
///  - stratified: the same stopping rule over position-stratified,
///    antithetically paired permutation groups (approx/strata.h), which
///    cut the between-position variance the Bernstein rule feeds on.
/// Marginal ranges are computed PER FACT (PerFactMarginalRanges): a fact
/// whose relation negation never touches keeps the tighter range-1 bound
/// even on a query with negated atoms elsewhere.
///
/// Execution model:
///  - permutations are drawn in fixed-size batches; batches fan out across
///    the exec-context ThreadPool, each with its own SplitMix64 stream
///    seeded purely by (request seed, batch index), and permutation
///    positions index the facts in CANONICAL TEXT ORDER (not interner-id
///    order, which varies with process history) — so the estimate is a
///    function of (seed, instance) alone, bit-identical across thread
///    counts, scheduling orders, schemas and processes (per-fact tallies
///    are integers and merging is commutative addition); a request
///    replayed through the network front (net/) against a remote server
///    reproduces the local run exactly. Adaptive strategies take their stopping
///    decisions only BETWEEN rounds of batches, from the merged tallies,
///    so early exit never breaks that guarantee — it only lets the batch
///    fan-out stop scheduling rounds the contract no longer needs;
///  - one permutation walk evaluates the query on each prefix world,
///    yielding one marginal sample for EVERY fact: m permutations give m
///    samples per fact for ~n·m evaluations total;
///  - monotone queries early-exit a walk at the first satisfied prefix
///    (all later marginals are 0), which in practice cuts the walk to the
///    satisfying prefix length;
///  - prefix coalitions are memoized in a SatMemo shared through the
///    exec-context OracleCache under the same canonical fingerprint as
///    counting work (|Dn| ≤ 64 and small prefixes only, where revisits
///    actually happen), so repeated sub-coalition evaluations amortize
///    across batches, threads and repeated requests.
///
/// Estimates are returned as exact rationals of the empirical mean
/// ((#positive − #negative marginals) / samples backing the fact), so
/// responses stay in the BigRational currency of the exact engines and
/// identical seeds reproduce identical values bit for bit.
class SamplingSvc : public SvcEngine {
 public:
  /// Guard on the run's sample budget: a request whose (ε, δ) derives more
  /// permutations than this and supplies no tighter max_samples budget is
  /// refused with a structured kCapacityExceeded — the sampler's analogue
  /// of the exhaustive engines' 2^|Dn| guard. It bounds one factor of the
  /// total work (samples × |Dn| evaluations); wall time on huge instances
  /// is bounded cooperatively by set_cancel/set_deadline, which the
  /// serving layer wires from the request. Adaptive strategies may stop
  /// far below the budget; they can never exceed it.
  static constexpr size_t kSampleGuard = size_t{1} << 26;

  explicit SamplingSvc(ApproxParams params = {}) : params_(params) {}

  std::string name() const override { return "sampling"; }

  EngineCaps caps() const override {
    return {.all_query_classes = true,
            .approximate = true,
            .error_model = ApproxErrorModel(params_.strategy)};
  }

  /// The (ε, δ, seed, budget, strategy) contract for subsequent runs. The
  /// serving layer forwards SvcRequest::approx here before the engine
  /// runs. Configuration setters are not synchronized against a running
  /// AllValues — configure before running (the service configures only
  /// its own per-request instances; a caller sharing one instance across
  /// concurrent requests owns that discipline, as with every engine).
  void set_params(const ApproxParams& params) { params_ = params; }
  const ApproxParams& params() const { return params_; }

  /// Cooperative mid-run aborts, checked between sample batches: a set
  /// cancel flag fails the run with kCancelled, a passed deadline with
  /// kDeadlineExceeded — so a long sweep cannot pin a serving worker
  /// after its client stopped caring. Both optional (null/absent = run to
  /// completion).
  void set_cancel(std::shared_ptr<std::atomic<bool>> cancel) {
    cancel_ = std::move(cancel);
  }
  void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    deadline_ = deadline;
  }

  /// Retired-fact walk truncation (adaptive strategies; default ON). Once
  /// the stopper retires a fact its tallies are frozen, so later walks
  /// skip the query evaluations that exist only to measure retired facts'
  /// marginals — the walk still inserts the prefix facts (later active
  /// positions need the world) but evaluates a position only when it, or
  /// the position after it, belongs to a live fact, and ends at the last
  /// live position outright. Estimates are BIT-IDENTICAL either way
  /// (stopping_property_test asserts it); the toggle exists for that test
  /// and for perf comparisons, not as a correctness knob.
  void set_truncate_retired_walks(bool on) { truncate_retired_walks_ = on; }
  bool truncate_retired_walks() const { return truncate_retired_walks_; }

  BigRational Value(const BooleanQuery& query, const PartitionedDatabase& db,
                    const Fact& fact) override;
  std::map<Fact, BigRational> AllValues(const BooleanQuery& query,
                                        const PartitionedDatabase& db) override;

  /// What the most recent completed run actually did (strategy, samples
  /// drawn vs. Hoeffding baseline, per-fact certified half-widths, memo
  /// hits); attached to SvcResponse::approx by the service. Returns a copy
  /// under a lock — safe against a concurrently running AllValues on a
  /// shared instance (which run's info a shared instance reports is, as
  /// above, the sharer's problem; torn reads are not).
  ApproxInfo last_info() const {
    std::lock_guard<std::mutex> lock(info_mutex_);
    return info_;
  }

 private:
  ApproxParams params_;
  bool truncate_retired_walks_ = true;
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  mutable std::mutex info_mutex_;
  ApproxInfo info_;
};

}  // namespace shapley

#endif  // SHAPLEY_APPROX_SAMPLING_H_
