#include "shapley/approx/stopping.h"

#include <algorithm>
#include <set>
#include <utility>

#include "shapley/query/conjunction_query.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/query/union_query.h"

namespace shapley {

namespace {

/// Walks the query tree collecting which relations occur positively and
/// which under negation. Returns false when the tree contains a node whose
/// polarity structure this analysis cannot read (an unknown non-monotone
/// class) — the caller then falls back to the conservative range.
bool CollectPolarity(const BooleanQuery& query, std::set<RelationId>* positive,
                     std::set<RelationId>* negated) {
  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    for (const Atom& atom : cq->atoms()) positive->insert(atom.relation());
    for (const Atom& atom : cq->negated_atoms()) {
      negated->insert(atom.relation());
    }
    return true;
  }
  if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    for (const CqPtr& disjunct : ucq->disjuncts()) {
      if (!CollectPolarity(*disjunct, positive, negated)) return false;
    }
    return true;
  }
  if (const auto* conj = dynamic_cast<const ConjunctionQuery*>(&query)) {
    return CollectPolarity(*conj->left(), positive, negated) &&
           CollectPolarity(*conj->right(), positive, negated);
  }
  // Every other class of the library is monotone; a monotone subtree
  // contributes no negated occurrence, and its positive relations only
  // matter when they meet a negated occurrence elsewhere — which we cannot
  // rule out without reading them. Monotone whole queries never reach this
  // analysis (the caller short-circuits), so reaching an unreadable node
  // means negation is in play somewhere: stay conservative.
  return false;
}

}  // namespace

std::vector<double> PerFactMarginalRanges(const BooleanQuery& query,
                                          const PartitionedDatabase& db) {
  const auto& endo = db.endogenous().facts();
  // Monotone query: every marginal is {0, 1}.
  std::vector<double> ranges(endo.size(), 1.0);
  if (query.IsMonotone()) return ranges;

  std::set<RelationId> positive, negated;
  if (!CollectPolarity(query, &positive, &negated)) {
    std::fill(ranges.begin(), ranges.end(), 2.0);
    return ranges;
  }
  for (size_t i = 0; i < endo.size(); ++i) {
    const RelationId relation = endo[i].relation();
    // Only a relation occurring under BOTH polarities can both create and
    // kill witnesses — everything else is monotone or anti-monotone in
    // the fact, spread 1.
    ranges[i] = (positive.count(relation) != 0 && negated.count(relation) != 0)
                    ? 2.0
                    : 1.0;
  }
  return ranges;
}

SequentialStopper::SequentialStopper(double epsilon, double delta,
                                     std::vector<double> fact_ranges,
                                     size_t unit_perms)
    : epsilon_(epsilon),
      delta_(delta),
      ranges_(std::move(fact_ranges)),
      unit_perms_(unit_perms),
      retired_(ranges_.size(), false),
      frozen_net_(ranges_.size(), 0),
      frozen_samples_(ranges_.size(), 0),
      half_widths_(ranges_.size(), 0.0) {}

double SequentialStopper::HalfWidthAt(size_t i, int64_t net, int64_t sq,
                                      size_t units, double delta_k) const {
  // Unit values are (unit sum) / unit_perms — means of unit_perms bounded
  // marginals, so they share the single-marginal range. The tallies stay
  // integers (determinism currency); the conversion to doubles here is a
  // pure function of the merged integers, so it is schedule-independent.
  const double t = static_cast<double>(units);
  const double scale = static_cast<double>(unit_perms_);
  const double mean = static_cast<double>(net) / (scale * t);
  const double mean_sq =
      static_cast<double>(sq) / (scale * scale * t);
  const double variance = std::max(0.0, mean_sq - mean * mean);
  return EmpiricalBernsteinHalfWidth(units, variance, ranges_[i], delta_k);
}

void SequentialStopper::Freeze(size_t i, int64_t net, size_t units,
                               double half_width) {
  retired_[i] = true;
  ++retired_count_;
  frozen_net_[i] = net;
  frozen_samples_[i] = units * unit_perms_;
  half_widths_[i] = half_width;
}

bool SequentialStopper::Checkpoint(const std::vector<int64_t>& net,
                                   const std::vector<int64_t>& sq,
                                   size_t units) {
  ++checkpoint_;
  // δ-split: the checkpoint schedule spends HALF the budget (see the
  // class comment — the other half funds Finish()'s terminal Hoeffding
  // look). CheckpointDelta telescopes to its argument, so the union over
  // every checkpoint stays within δ/2.
  const double delta_k = CheckpointDelta(delta_ / 2.0, checkpoint_);
  for (size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i]) continue;
    const double hw = HalfWidthAt(i, net[i], sq[i], units, delta_k);
    if (hw <= epsilon_) {
      Freeze(i, net[i], units, hw);
      ++retired_within_epsilon_;
    }
  }
  return all_retired();
}

void SequentialStopper::Finish(const std::vector<int64_t>& net,
                               const std::vector<int64_t>& sq, size_t units) {
  if (all_retired()) return;
  // Terminal look, funded by the RESERVED δ/2: each straggler freezes at
  // the better of (a) one more empirical-Bernstein checkpoint from the
  // δ/2 schedule and (b) one plain Hoeffding bound at confidence δ/2 over
  // everything drawn. (b) is what caps the non-retiring premium: a run
  // whose variance never justified early stopping reports
  //   range·sqrt(ln(4/δ) / (2m))  ≤  √2 · range·sqrt(ln(2/δ) / (2m)),
  // at most a √2 width premium over the fixed Hoeffding strategy at the
  // same count — instead of the unbounded ln(k²)-flavored premium the
  // old all-schedule spending charged. Both looks are budgeted (δ/2
  // schedule union + δ/2 terminal ≤ δ), so the joint per-fact contract
  // P(|est − Sh| > reported half-width) ≤ δ still holds.
  ++checkpoint_;
  const double delta_k = CheckpointDelta(delta_ / 2.0, checkpoint_);
  for (size_t i = 0; i < retired_.size(); ++i) {
    if (retired_[i]) continue;
    const double bernstein =
        HalfWidthAt(i, net[i], sq[i], units, delta_k);
    const double hoeffding =
        HoeffdingHalfWidth(units, delta_ / 2.0, ranges_[i]);
    Freeze(i, net[i], units, std::min(bernstein, hoeffding));
  }
}

}  // namespace shapley
