#include "shapley/cluster/router.h"

#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "shapley/common/version.h"
#include "shapley/net/codec.h"
#include "shapley/net/json.h"
#include "shapley/obs/stats_json.h"
#include "shapley/obs/trace.h"

namespace shapley::cluster {

namespace {

using net::Json;

/// "id" first (humans tailing the stream see it first), every other
/// member of `parsed` verbatim in order.
Json RetagParsedLine(const Json& parsed, uint64_t new_id) {
  Json tagged;
  tagged.Set("id", Json::Number(new_id));
  if (const Json::Object* members = parsed.IfObject()) {
    for (const auto& [key, value] : *members) {
      if (key != "id") tagged.Set(key, value);
    }
  }
  return tagged;
}

/// An ndjson line the ROUTER answers for a request no backend could serve.
std::string UnservedLine(uint64_t id, const std::string& detail) {
  const std::string body = net::FrontEndErrorBody(
      SvcErrorCode::kUpstreamUnavailable, detail);
  std::string parse_error;
  std::optional<Json> json = Json::Parse(body, &parse_error);
  return RetagParsedLine(*json, id).Dump();
}

}  // namespace

std::string RetagNdjsonLine(const std::string& line, uint64_t new_id) {
  std::string parse_error;
  std::optional<Json> json = Json::Parse(line, &parse_error);
  if (!json.has_value()) {
    throw std::runtime_error("RetagNdjsonLine: bad line: " + parse_error);
  }
  return RetagParsedLine(*json, new_id).Dump();
}

/// The HttpHandler behind the router's HttpServer. One instance, shared by
/// every connection thread; all state lives in the ShardRouter.
class RouterHandler : public net::HttpHandler {
 public:
  explicit RouterHandler(ShardRouter* router) : router_(router) {}

  bool Handle(net::ResponseWriter* writer, const net::HttpRequest& request,
              bool keep_alive, const net::ServerCounters& counters) override {
    if (request.target == "/v1/compute") {
      if (request.method != "POST") {
        return MethodNotAllowed(writer, "use POST on /v1/compute",
                                keep_alive);
      }
      return HandleCompute(writer, request, keep_alive);
    }
    if (request.target == "/v1/batch") {
      if (request.method != "POST") {
        return MethodNotAllowed(writer, "use POST on /v1/batch", keep_alive);
      }
      return HandleBatch(writer, request, keep_alive);
    }
    if (request.target == "/v1/engines") {
      if (request.method != "GET") {
        return MethodNotAllowed(writer, "use GET on /v1/engines", keep_alive);
      }
      return HandleProxyGet(writer, "/v1/engines", keep_alive);
    }
    if (request.target == "/v1/stats") {
      if (request.method != "GET") {
        return MethodNotAllowed(writer, "use GET on /v1/stats", keep_alive);
      }
      return HandleStats(writer, keep_alive, counters);
    }
    if (request.target == "/v1/cluster") {
      if (request.method != "GET") {
        return MethodNotAllowed(writer, "use GET on /v1/cluster", keep_alive);
      }
      return HandleCluster(writer, keep_alive, counters);
    }
    if (request.target == "/v1/debug/flight") {
      if (request.method != "GET") {
        return MethodNotAllowed(writer, "use GET on /v1/debug/flight",
                                keep_alive);
      }
      return net::WriteJsonResponse(
          writer, 200, net::DebugFlightBody(*router_->deck_), keep_alive);
    }
    if (request.target == "/v1/debug/slow") {
      if (request.method != "GET") {
        return MethodNotAllowed(writer, "use GET on /v1/debug/slow",
                                keep_alive);
      }
      return net::WriteJsonResponse(
          writer, 200, net::DebugSlowBody(*router_->deck_), keep_alive);
    }
    if (request.target == "/v1/debug/hot") {
      if (request.method != "GET") {
        return MethodNotAllowed(writer, "use GET on /v1/debug/hot",
                                keep_alive);
      }
      return HandleHot(writer, keep_alive);
    }
    return net::WriteJsonResponse(
        writer, 404,
        net::FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                               "unknown endpoint " + request.target),
        keep_alive);
  }

 private:
  bool MethodNotAllowed(net::ResponseWriter* writer, const std::string& message,
                        bool keep_alive) {
    return net::WriteJsonResponse(
        writer, 405,
        net::FrontEndErrorBody(SvcErrorCode::kInvalidRequest, message),
        keep_alive);
  }

  /// The shard key of a decoded request; falls back to the raw body when
  /// the fingerprint is unavailable (still deterministic, just opaque).
  static std::string KeyFor(const SvcRequest& request,
                            const std::string& raw_body) {
    std::string key = ShardKeyFor(request);
    return key.empty() ? raw_body : key;
  }

  /// Healthy backends for `key` in rendezvous order — [0] is the home
  /// shard, the rest the failover sequence.
  std::vector<size_t> HealthyRank(const std::string& key) const {
    std::vector<size_t> healthy;
    for (size_t i : router_->shard_map_.Rank(key)) {
      if (router_->backends_[i]->healthy()) healthy.push_back(i);
    }
    return healthy;
  }

  /// Router-side latency (decode + route + upstream round trip) broken
  /// down by endpoint — the router's analogue of the backend's
  /// shapley_request_latency_ms.
  void ObserveLatency(const char* endpoint, double ms) {
    router_->metrics_
        ->GetHistogram("shapley_router_request_latency_ms",
                       "Router wall time per proxied request",
                       obs::LatencyBucketsMs(), {{"endpoint", endpoint}})
        ->Observe(ms);
  }

  /// One routed request into the router's always-on deck: a flight digest
  /// (engine = the backend that served it, "" when none could) and — when
  /// the forward was slow — the verbatim forwarded body into the slow-log.
  /// The router's SKETCHES stay untouched: /v1/debug/hot reports the
  /// merged backend sketches, and recording here too would double-count
  /// every request in the fleet view. Thread-safe (batch shard workers
  /// call this concurrently).
  void RecordRouted(const std::string& target, uint64_t shard_key_hash,
                    const std::string& backend_id, const std::string& mode,
                    int status, double wall_ms, const std::string& trace_id,
                    const std::string* body_if_slow) {
    net::DebugDeck* deck = router_->deck_.get();
    obs::FlightDigest digest;
    digest.target = target;
    digest.shard_key_hash = shard_key_hash;
    digest.engine = backend_id;
    digest.mode = mode;
    digest.status = status;
    digest.latency_us = static_cast<uint64_t>(wall_ms * 1000.0);
    digest.trace_id = trace_id;
    deck->flight.Record(std::move(digest));
    if (body_if_slow != nullptr && deck->slow.ShouldCapture(wall_ms)) {
      obs::SlowEntry entry;
      entry.target = target;
      entry.body = *body_if_slow;
      entry.latency_ms = wall_ms;
      entry.status = status;
      entry.engine = backend_id;
      entry.mode = mode;
      entry.shard_key_hash = shard_key_hash;
      entry.trace_id = trace_id;
      deck->slow.Capture(std::move(entry));
    }
  }

  /// The HTTP status a backend batch line reports: its "error" block
  /// carries the mapped status verbatim; no error block means 200.
  static int LineStatus(const Json& line) {
    const Json* error = line.Find("error");
    if (error == nullptr) return 200;
    const Json* status = error->Find("status");
    std::optional<int64_t> value =
        status != nullptr ? status->IfInt64() : std::nullopt;
    return value.has_value() ? static_cast<int>(*value) : 500;
  }

  bool HandleCompute(net::ResponseWriter* writer, const net::HttpRequest& request,
                     bool keep_alive) {
    const obs::SpanTimer wall_timer;
    std::string parse_error;
    std::optional<Json> json = Json::Parse(request.body, &parse_error);
    if (!json.has_value()) {
      return net::WriteJsonResponse(
          writer, 400,
          net::FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                 "bad JSON: " + parse_error),
          keep_alive);
    }
    // Decoded for ROUTING only — the fingerprint needs the typed query and
    // database; the bytes that reach the backend are the client's own.
    net::DecodedRequest decoded;
    if (std::optional<SvcError> error = net::DecodeRequest(*json, &decoded)) {
      SvcResponse response;
      response.error = std::move(error);
      auto schema = Schema::Create();
      return net::WriteJsonResponse(
          writer, net::HttpStatusFor(response.error->code),
          net::EncodeResponse(response, *schema).Dump(), keep_alive);
    }

    router_->requests_routed_.fetch_add(1);

    // Cluster-propagated tracing: a traced request gets a recorder rooted
    // at "router" under ONE trace context (the client's own, when it sent
    // the object form; derived from the request bytes otherwise), and the
    // forwarded body is re-stamped with that context so the backend's
    // span tree grafts into this one. Untraced requests keep the existing
    // contract — the client's bytes are forwarded VERBATIM, no recorder,
    // no re-encode.
    std::unique_ptr<obs::TraceRecorder> recorder;
    std::string forward_body = request.body;
    if (decoded.request.trace) {
      obs::TraceContext context = decoded.request.trace_context;
      if (!context.valid()) context = obs::TraceContext::Derive(request.body);
      recorder = std::make_unique<obs::TraceRecorder>("router", context);
      Json stamped = *json;
      net::SetRequestTraceContext(&stamped, recorder->context());
      forward_body = stamped.Dump();
    }
    // Installs the finished cluster-wide tree into a backend (or error)
    // body; returns the body unchanged when the request is untraced or
    // the body is not JSON.
    auto with_trace = [&](const std::string& body) {
      if (recorder == nullptr) return body;
      std::optional<Json> parsed = Json::Parse(body);
      if (!parsed.has_value()) return body;
      net::SetTraceBlock(&*parsed, recorder->Finish());
      return parsed->Dump();
    };

    const std::string key = KeyFor(decoded.request, request.body);
    const uint64_t key_hash = StableHash64(key);
    const std::string mode = shapley::ToString(decoded.request.mode);
    const std::string trace_id =
        recorder != nullptr ? recorder->context().TraceIdHex() : "";
    std::vector<size_t> order = HealthyRank(key);
    const size_t tries =
        router_->options_.retry_failover ? std::min<size_t>(order.size(), 2)
                                         : std::min<size_t>(order.size(), 1);
    for (size_t attempt = 0; attempt < tries; ++attempt) {
      BackendChannel* channel = router_->backends_[order[attempt]].get();
      channel->CountRouted(1);
      if (attempt > 0) {
        channel->CountRetried(1);
        router_->requests_failed_over_.fetch_add(1);
      }
      if (recorder != nullptr) {
        // One "hop" span per forwarding attempt, tagged with the upstream
        // identity — a failover leaves BOTH hops in the tree, the failed
        // one carrying the error.
        recorder->Begin("hop");
        recorder->Attr("backend", channel->id());
        recorder->Attr("attempt", std::to_string(attempt));
      }
      std::unique_ptr<net::ShapleyClient> client = channel->Acquire();
      try {
        int status = 0;
        const std::string body = client->RawCompute(forward_body, &status);
        channel->Release(std::move(client));
        if (recorder != nullptr) {
          // Graft the backend's own span tree (shipped in the response's
          // trace block) under this hop — offsets are parent-relative, so
          // no clock comparison across processes is needed.
          std::optional<obs::RequestTrace> backend_trace;
          if (std::optional<Json> parsed = Json::Parse(body)) {
            if (const Json* trace_json = parsed->Find("trace")) {
              backend_trace = net::DecodeTrace(*trace_json);
            }
          }
          if (backend_trace.has_value()) {
            recorder->EndGraft(std::move(backend_trace->root));
          } else {
            recorder->End();
          }
        }
        const double wall_ms = wall_timer.ElapsedMs();
        ObserveLatency("compute", wall_ms);
        RecordRouted("/v1/compute", key_hash, channel->id(), mode, status,
                     wall_ms, trace_id, &forward_body);
        return net::WriteJsonResponse(writer, status, with_trace(body),
                                      keep_alive);
      } catch (const std::runtime_error& e) {
        // Transport failure (the client threw, so it is mid-protocol and
        // gets destroyed, not pooled): mark the shard down and fail over.
        channel->CountFailed(1);
        channel->set_healthy(false);
        if (recorder != nullptr) {
          recorder->Attr("error", e.what());
          recorder->End();
        }
      }
    }
    router_->requests_unserved_.fetch_add(1);
    RecordRouted("/v1/compute", key_hash, /*backend_id=*/"", mode, 503,
                 wall_timer.ElapsedMs(), trace_id, /*body_if_slow=*/nullptr);
    return net::WriteJsonResponse(
        writer, 503,
        with_trace(net::FrontEndErrorBody(
            SvcErrorCode::kUpstreamUnavailable,
            "no healthy backend for this shard")),
        keep_alive);
  }

  bool HandleBatch(net::ResponseWriter* writer, const net::HttpRequest& request,
                   bool keep_alive) {
    const obs::SpanTimer wall_timer;
    std::string parse_error;
    std::optional<Json> json = Json::Parse(request.body, &parse_error);
    if (!json.has_value()) {
      return net::WriteJsonResponse(
          writer, 400,
          net::FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                 "bad JSON: " + parse_error),
          keep_alive);
    }
    const Json* requests = json->Find("requests");
    const Json::Array* items =
        requests != nullptr ? requests->IfArray() : nullptr;
    if (items == nullptr) {
      return net::WriteJsonResponse(
          writer, 400,
          net::FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                 "batch: expected {\"requests\": [...]}"),
          keep_alive);
    }

    // Route every request: decode failures are answered by the ROUTER
    // (tagged error lines, exactly as a backend would stream them); the
    // rest group by home shard, remembering their raw text (forwarded
    // verbatim) and key (for failover re-ranking).
    const size_t n = items->size();
    std::vector<std::string> item_text(n);
    std::vector<std::string> keys(n);
    std::vector<std::string> modes(n);  // For the per-line flight digests.
    // Per-item recorders for traced requests (null otherwise): each traced
    // item gets its OWN cluster-wide tree, its forwarded text re-stamped
    // with the item's trace context; untraced items forward verbatim.
    std::vector<std::unique_ptr<obs::TraceRecorder>> recorders(n);
    std::vector<std::string> immediate;       // Pre-routed error lines.
    std::map<size_t, std::vector<size_t>> groups;  // backend → global ids.
    std::vector<size_t> unserved;
    for (size_t i = 0; i < n; ++i) {
      item_text[i] = (*items)[i].Dump();
      net::DecodedRequest decoded;
      if (std::optional<SvcError> error =
              net::DecodeRequest((*items)[i], &decoded)) {
        SvcResponse response;
        response.error = std::move(error);
        auto schema = Schema::Create();
        std::string body = net::EncodeResponse(response, *schema).Dump();
        std::optional<Json> parsed = Json::Parse(body, &parse_error);
        immediate.push_back(RetagParsedLine(*parsed, uint64_t{i}).Dump());
        continue;
      }
      router_->requests_routed_.fetch_add(1);
      if (decoded.request.trace) {
        obs::TraceContext context = decoded.request.trace_context;
        if (!context.valid()) {
          context = obs::TraceContext::Derive(item_text[i]);
        }
        recorders[i] = std::make_unique<obs::TraceRecorder>("router", context);
        Json stamped = (*items)[i];
        net::SetRequestTraceContext(&stamped, recorders[i]->context());
        item_text[i] = stamped.Dump();
      }
      keys[i] = KeyFor(decoded.request, item_text[i]);
      modes[i] = shapley::ToString(decoded.request.mode);
      const std::vector<size_t> order = HealthyRank(keys[i]);
      if (order.empty()) {
        unserved.push_back(i);
      } else {
        groups[order[0]].push_back(i);
      }
    }

    // Gather side: one writer lock serializes completion-order lines from
    // every shard stream into the single client-facing chunk stream.
    if (!writer->SendAll(net::SerializeResponseHead(
            200, "application/x-ndjson", /*content_length=*/-1,
            keep_alive))) {
      return false;
    }
    std::mutex write_mutex;
    bool write_ok = true;
    auto write_line = [&](const std::string& line) {
      std::lock_guard<std::mutex> lock(write_mutex);
      if (!write_ok) return;
      write_ok = writer->SendAll(net::ChunkFrame(line + "\n"));
    };
    // A traced unserved item still carries its (router-only) span tree —
    // the hops it burned are exactly what an operator wants to see on a
    // 503 line.
    auto unserved_line = [&](size_t id, const std::string& detail) {
      RecordRouted("/v1/compute", StableHash64(keys[id]), /*backend_id=*/"",
                   modes[id], 503, wall_timer.ElapsedMs(),
                   recorders[id] != nullptr
                       ? recorders[id]->context().TraceIdHex()
                       : "",
                   /*body_if_slow=*/nullptr);
      std::string line = UnservedLine(id, detail);
      if (recorders[id] != nullptr) {
        if (std::optional<Json> parsed = Json::Parse(line)) {
          net::SetTraceBlock(&*parsed, recorders[id]->Finish());
          line = parsed->Dump();
        }
      }
      return line;
    };
    for (const std::string& line : immediate) write_line(line);
    for (size_t id : unserved) {
      router_->requests_unserved_.fetch_add(1);
      write_line(unserved_line(id, "no healthy backend for this shard"));
    }

    // Scatter side: one thread per shard, each streaming its sub-batch and
    // re-tagging local ids back to global ones as lines complete. A shard
    // that dies mid-stream fails over exactly the ids it had NOT yet
    // delivered (depth 1, once); anything beyond that becomes a structured
    // kUpstreamUnavailable line — every id is answered exactly once.
    std::function<void(size_t, const std::vector<size_t>&, int)> run_shard =
        [&](size_t backend_index, const std::vector<size_t>& ids,
            int depth) {
          BackendChannel* channel = router_->backends_[backend_index].get();
          channel->CountRouted(ids.size());
          if (depth > 0) channel->CountRetried(ids.size());
          std::string body = "{\"requests\":[";
          for (size_t k = 0; k < ids.size(); ++k) {
            if (k > 0) body += ',';
            body += item_text[ids[k]];
          }
          body += "]}";
          // Every traced id of this sub-batch opens a "hop" span now (its
          // recorder is touched only by this shard's worker thread until
          // the hop closes); a mid-stream death leaves the failed hop —
          // error-tagged — in the tree next to the retry hop the failover
          // pass adds.
          for (size_t id : ids) {
            if (recorders[id] != nullptr) {
              recorders[id]->Begin("hop");
              recorders[id]->Attr("backend", channel->id());
              recorders[id]->Attr("attempt", std::to_string(depth));
            }
          }
          std::vector<bool> seen(ids.size(), false);
          std::unique_ptr<net::ShapleyClient> client = channel->Acquire();
          try {
            client->RawBatch(body, [&](const std::string& line) {
              std::string line_error;
              std::optional<Json> parsed = Json::Parse(line, &line_error);
              if (!parsed.has_value()) {
                throw std::runtime_error("undecodable batch line: " +
                                         line_error);
              }
              const Json* id_json = parsed->Find("id");
              std::optional<uint64_t> local =
                  id_json != nullptr ? id_json->IfUint64() : std::nullopt;
              if (!local.has_value() || *local >= ids.size()) {
                throw std::runtime_error("batch line with a bad id");
              }
              seen[*local] = true;
              const size_t gid = ids[*local];
              // Per-line digest: the latency is CLIENT-OBSERVED (batch
              // arrival → this line ready), matching the backend's batch
              // digests; a slow line captures its own forwarded item so
              // the outlier replays standalone through /v1/compute.
              RecordRouted("/v1/compute", StableHash64(keys[gid]),
                           channel->id(), modes[gid], LineStatus(*parsed),
                           wall_timer.ElapsedMs(),
                           recorders[gid] != nullptr
                               ? recorders[gid]->context().TraceIdHex()
                               : "",
                           &item_text[gid]);
              if (recorders[gid] != nullptr) {
                // Close the hop (grafting the backend's subtree from the
                // line's trace block) and install the finished cluster
                // tree into the line this client actually receives.
                std::optional<obs::RequestTrace> backend_trace;
                if (const Json* trace_json = parsed->Find("trace")) {
                  backend_trace = net::DecodeTrace(*trace_json);
                }
                if (backend_trace.has_value()) {
                  recorders[gid]->EndGraft(std::move(backend_trace->root));
                } else {
                  recorders[gid]->End();
                }
                Json traced_line = *parsed;
                net::SetTraceBlock(&traced_line, recorders[gid]->Finish());
                write_line(
                    RetagParsedLine(traced_line, uint64_t{gid}).Dump());
              } else {
                write_line(RetagParsedLine(*parsed, uint64_t{gid}).Dump());
              }
            });
            channel->Release(std::move(client));
          } catch (const std::runtime_error& e) {
            channel->set_healthy(false);
            std::vector<size_t> missing;
            for (size_t k = 0; k < ids.size(); ++k) {
              if (!seen[k]) missing.push_back(ids[k]);
            }
            channel->CountFailed(missing.size());
            // The undelivered ids' hops failed: tag and close them before
            // the failover pass opens their retry hops.
            for (size_t id : missing) {
              if (recorders[id] != nullptr) {
                recorders[id]->Attr("error", e.what());
                recorders[id]->End();
              }
            }
            if (router_->options_.retry_failover && depth == 0) {
              // Re-rank each survivor against CURRENT health; several may
              // share a fallback, so regroup before re-sending.
              std::map<size_t, std::vector<size_t>> regrouped;
              for (size_t id : missing) {
                const std::vector<size_t> order = HealthyRank(keys[id]);
                if (order.empty()) {
                  router_->requests_unserved_.fetch_add(1);
                  write_line(unserved_line(
                      id, "no healthy backend for this shard"));
                } else {
                  router_->requests_failed_over_.fetch_add(1);
                  regrouped[order[0]].push_back(id);
                }
              }
              for (const auto& [fallback, sub_ids] : regrouped) {
                run_shard(fallback, sub_ids, 1);
              }
            } else {
              for (size_t id : missing) {
                router_->requests_unserved_.fetch_add(1);
                write_line(unserved_line(
                    id, "shard failed and failover exhausted"));
              }
            }
          }
        };

    std::vector<std::thread> workers;
    workers.reserve(groups.size());
    for (const auto& [backend_index, ids] : groups) {
      workers.emplace_back(
          [&run_shard, backend_index = backend_index, &ids] {
            run_shard(backend_index, ids, 0);
          });
    }
    for (std::thread& worker : workers) worker.join();

    {
      std::lock_guard<std::mutex> lock(write_mutex);
      if (!write_ok) return false;
      ObserveLatency("batch", wall_timer.ElapsedMs());
      return writer->SendAll(net::ChunkFrame(""));  // Terminal chunk.
    }
  }

  /// Forwards a GET verbatim from the first healthy backend that answers
  /// (/v1/engines: a homogeneous fleet has one registry).
  bool HandleProxyGet(net::ResponseWriter* writer, const std::string& target,
                      bool keep_alive) {
    for (size_t i = 0; i < router_->backends_.size(); ++i) {
      BackendChannel* channel = router_->backends_[i].get();
      if (!channel->healthy()) continue;
      std::unique_ptr<net::ShapleyClient> client = channel->Acquire();
      try {
        int status = 0;
        const std::string body = client->RawGet(target, &status);
        channel->Release(std::move(client));
        return net::WriteJsonResponse(writer, status, body, keep_alive);
      } catch (const std::runtime_error&) {
        channel->set_healthy(false);
      }
    }
    return net::WriteJsonResponse(
        writer, 503,
        net::FrontEndErrorBody(SvcErrorCode::kUpstreamUnavailable,
                               "no healthy backend"),
        keep_alive);
  }

  /// One fleet-wide /v1/stats that LOOKS like a single backend's: every
  /// reachable backend's "service" counters summed field by field (field
  /// set taken from the responses, so fields this router build does not
  /// know about still aggregate), plus the router's own "server" block.
  bool HandleStats(net::ResponseWriter* writer, bool keep_alive,
                   const net::ServerCounters& counters) {
    std::vector<std::pair<std::string, uint64_t>> sums;
    for (size_t i = 0; i < router_->backends_.size(); ++i) {
      BackendChannel* channel = router_->backends_[i].get();
      if (!channel->healthy()) continue;
      std::unique_ptr<net::ShapleyClient> client = channel->Acquire();
      std::string body;
      try {
        int status = 0;
        body = client->RawGet("/v1/stats", &status);
        channel->Release(std::move(client));
        if (status != 200) continue;
      } catch (const std::runtime_error&) {
        channel->set_healthy(false);
        continue;
      }
      std::string parse_error;
      std::optional<Json> parsed = Json::Parse(body, &parse_error);
      const Json* service =
          parsed.has_value() ? parsed->Find("service") : nullptr;
      const Json::Object* fields =
          service != nullptr ? service->IfObject() : nullptr;
      if (fields == nullptr) continue;
      for (const auto& [key, value] : *fields) {
        std::optional<uint64_t> number = value.IfUint64();
        if (!number.has_value()) continue;
        bool found = false;
        for (auto& [sum_key, sum] : sums) {
          if (sum_key == key) {
            sum += *number;
            found = true;
            break;
          }
        }
        if (!found) sums.emplace_back(key, *number);
      }
    }
    Json service;
    for (const auto& [key, sum] : sums) {
      service.Set(key, Json::Number(sum));
    }
    Json body;
    body.Set("service", std::move(service));
    // The "server" block goes through the shared stats codec
    // (obs/stats_json) — the same serialization the backend's /v1/stats
    // uses, so router and backend stats stay byte-compatible. The summed
    // "service" block keeps its dynamic field walk on purpose: it must
    // aggregate fields newer backends add that this build predates.
    body.Set("server", obs::ServerCountersJson(counters));
    return net::WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
  }

  /// ONE fleet-wide hot list: every healthy backend's /v1/debug/hot is
  /// fetched, its two sketches parsed, and the fleet view is the
  /// MergeHeavySummaries fold — exact and associative while the fleet
  /// tracks ≤ k distinct keys, top-k-truncated with additive totals past
  /// that (the documented mergeable-summary contract of obs/heavy.h).
  bool HandleHot(net::ResponseWriter* writer, bool keep_alive) {
    std::optional<obs::HeavySummary> keys;
    std::optional<obs::HeavySummary> classes;
    size_t backends_reached = 0;
    for (size_t i = 0; i < router_->backends_.size(); ++i) {
      BackendChannel* channel = router_->backends_[i].get();
      if (!channel->healthy()) continue;
      std::unique_ptr<net::ShapleyClient> client = channel->Acquire();
      std::string body;
      try {
        int status = 0;
        body = client->RawGet("/v1/debug/hot", &status);
        channel->Release(std::move(client));
        if (status != 200) continue;
      } catch (const std::runtime_error&) {
        channel->set_healthy(false);
        continue;
      }
      std::optional<Json> parsed = Json::Parse(body);
      const Json* sketches =
          parsed.has_value() ? parsed->Find("sketches") : nullptr;
      if (sketches == nullptr) continue;
      const Json* by_key = sketches->Find("shard_key");
      const Json* by_class = sketches->Find("query_class");
      std::optional<obs::HeavySummary> backend_keys =
          by_key != nullptr ? obs::ParseHeavySummary(*by_key) : std::nullopt;
      std::optional<obs::HeavySummary> backend_classes =
          by_class != nullptr ? obs::ParseHeavySummary(*by_class)
                              : std::nullopt;
      if (!backend_keys.has_value() || !backend_classes.has_value()) {
        continue;
      }
      ++backends_reached;
      keys = keys.has_value()
                 ? obs::MergeHeavySummaries(*keys, *backend_keys)
                 : std::move(backend_keys);
      classes = classes.has_value()
                    ? obs::MergeHeavySummaries(*classes, *backend_classes)
                    : std::move(backend_classes);
    }
    Json sketches;
    sketches.Set("shard_key",
                 obs::HeavySummaryJson(keys.value_or(obs::HeavySummary{})));
    sketches.Set(
        "query_class",
        obs::HeavySummaryJson(classes.value_or(obs::HeavySummary{})));
    Json body;
    body.Set("role", Json::Str("router"));
    body.Set("backends", Json::Number(uint64_t{backends_reached}));
    body.Set("sketches", std::move(sketches));
    return net::WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
  }

  bool HandleCluster(net::ResponseWriter* writer, bool keep_alive,
                     const net::ServerCounters& counters) {
    Json shards = Json::Arr();
    for (size_t i = 0; i < router_->backends_.size(); ++i) {
      const BackendChannel* channel = router_->backends_[i].get();
      Json shard;
      shard.Set("id", Json::Str(channel->id()));
      shard.Set("healthy", Json::Bool(channel->healthy()));
      shard.Set("routed", Json::Number(uint64_t{channel->routed()}));
      shard.Set("failed", Json::Number(uint64_t{channel->failed()}));
      shard.Set("retried", Json::Number(uint64_t{channel->retried()}));
      shards.Push(std::move(shard));
    }
    Json body;
    body.Set("role", Json::Str("router"));
    body.Set("version", Json::Str(kShapleyVersion));
    body.Set("hash", Json::Str("rendezvous-fnv1a64"));
    body.Set("shards", std::move(shards));
    body.Set("requests_routed",
             Json::Number(uint64_t{router_->requests_routed_.load()}));
    body.Set("requests_failed_over",
             Json::Number(uint64_t{router_->requests_failed_over_.load()}));
    body.Set("requests_unserved",
             Json::Number(uint64_t{router_->requests_unserved_.load()}));
    Json server;
    server.Set("connections_accepted",
               Json::Number(uint64_t{counters.connections_accepted}));
    server.Set("requests_served",
               Json::Number(uint64_t{counters.requests_served}));
    body.Set("server", std::move(server));
    return net::WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
  }

  ShardRouter* router_;
};

ShardRouter::ShardRouter(const std::vector<std::string>& backend_specs,
                         RouterOptions options)
    : options_(std::move(options)), shard_map_({}) {
  if (backend_specs.empty()) {
    throw std::invalid_argument("ShardRouter: no backends");
  }
  std::vector<std::string> ids;
  for (const std::string& spec : backend_specs) {
    std::optional<BackendAddress> address = ParseBackendAddress(spec);
    if (!address.has_value()) {
      throw std::invalid_argument("ShardRouter: bad backend spec '" + spec +
                                  "' (want host:port)");
    }
    backends_.push_back(
        std::make_unique<BackendChannel>(*address, options_.client));
    ids.push_back(backends_.back()->id());
  }
  shard_map_ = ShardMap(std::move(ids));
  // The router's own always-on deck (flight + slow-log; its sketches stay
  // empty — see RouterHandler::HandleHot), sized by the same server
  // options a backend would use.
  deck_ = std::make_unique<net::DebugDeck>(options_.server);
  handler_ = std::make_unique<RouterHandler>(this);

  // The router owns its registry and hands it to its HttpServer (Start()),
  // so one scrape shows routing counters, per-backend series AND the
  // transport counters side by side. Router families carry the
  // shapley_router_ prefix — disjoint from every backend series by name
  // (and transport families are disjoint by their role label).
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  net::RegisterDebugDeckMetrics(metrics_.get(), deck_.get(), "router");
  metrics_->AddCollector([this] {
    metrics_
        ->GetCounter("shapley_router_requests_routed_total",
                     "Requests the router dispatched to a shard")
        ->Set(requests_routed_.load());
    metrics_
        ->GetCounter("shapley_router_requests_failed_over_total",
                     "Requests re-sent to a fallback shard")
        ->Set(requests_failed_over_.load());
    metrics_
        ->GetCounter("shapley_router_requests_unserved_total",
                     "Requests no healthy backend could serve")
        ->Set(requests_unserved_.load());
    for (const auto& backend : backends_) {
      const obs::Labels labels{{"backend", backend->id()}};
      metrics_
          ->GetGauge("shapley_router_backend_healthy",
                     "1 when the backend passes health checks", labels)
          ->Set(backend->healthy() ? 1.0 : 0.0);
      metrics_
          ->GetCounter("shapley_router_backend_routed_total",
                       "Requests routed to this backend", labels)
          ->Set(backend->routed());
      metrics_
          ->GetCounter("shapley_router_backend_failed_total",
                       "Requests that failed at this backend's transport",
                       labels)
          ->Set(backend->failed());
      metrics_
          ->GetCounter("shapley_router_backend_retried_total",
                       "Failover requests this backend absorbed", labels)
          ->Set(backend->retried());
    }
  });
}

ShardRouter::~ShardRouter() { Stop(); }

void ShardRouter::Start() {
  for (auto& backend : backends_) backend->Probe();
  net::ServerOptions server_options = options_.server;
  server_options.role = "router";
  server_options.metrics = metrics_.get();
  server_ = std::make_unique<net::HttpServer>(handler_.get(), server_options);
  server_->Start();
  if (options_.health_poll_ms > 0) {
    polling_.store(true);
    poller_ = std::thread([this] { PollLoop(); });
  }
}

void ShardRouter::Stop() {
  if (polling_.exchange(false) && poller_.joinable()) poller_.join();
  if (server_ != nullptr) server_->Stop();
}

uint16_t ShardRouter::port() const { return server_->port(); }

const std::string& ShardRouter::host() const { return server_->host(); }

std::vector<bool> ShardRouter::Eligibility() const {
  std::vector<bool> eligible(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    eligible[i] = backends_[i]->healthy();
  }
  return eligible;
}

void ShardRouter::PollLoop() {
  // Sleep in short slices so Stop() never waits a full poll period.
  int elapsed_ms = options_.health_poll_ms;  // First round probes at once.
  while (polling_.load()) {
    if (elapsed_ms >= options_.health_poll_ms) {
      for (auto& backend : backends_) {
        if (!polling_.load()) return;
        backend->Probe();
      }
      elapsed_ms = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    elapsed_ms += 20;
  }
}

}  // namespace shapley::cluster
