#include "shapley/cluster/shard_map.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace shapley::cluster {

uint64_t StableHash64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis.
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x00000100000001b3ull;  // FNV prime.
  }
  return h;
}

std::string ShardKeyFor(const SvcRequest& request) {
  if (request.query == nullptr) return "";
  // NOT OracleCache::Fingerprint: that key renders interner ids, which
  // depend on the ORDER a schema happened to intern symbols — stable
  // within one process's cache, but different between the client that
  // built a request and the router that decoded it (and between two
  // routers decoding permuted fact lists). The routing key must be a pure
  // function of the instance, so it renders fact TEXT through the
  // request's own schema and sorts it: any process holding a canonically
  // equal (query, database) computes the same key.
  // This runs per request on the always-on digest path as well as per
  // routed request, so it builds into ONE reserved buffer: render each
  // fact once, sort the renderings, append — no intermediate joins.
  const auto append_sorted = [&](const Database& facts, std::string* key) {
    std::vector<std::string> rendered;
    rendered.reserve(facts.facts().size());
    size_t length = 0;
    for (const Fact& fact : facts.facts()) {
      rendered.push_back(fact.ToString(*request.db.schema()));
      length += rendered.back().size() + 1;
    }
    std::sort(rendered.begin(), rendered.end());
    key->reserve(key->size() + length);
    for (const std::string& fact : rendered) {
      *key += fact;
      *key += '\x1e';
    }
  };
  std::string key = "route\x1f";
  key += request.query->ToString();
  key += '\x1f';
  append_sorted(request.db.endogenous(), &key);
  key += '\x1f';
  append_sorted(request.db.exogenous(), &key);
  return key;
}

ShardMap::ShardMap(std::vector<std::string> backend_ids)
    : ids_(std::move(backend_ids)) {}

uint64_t ShardMap::Weight(const std::string& key, size_t backend) const {
  // One hash over key + unit separator + id: the separator keeps
  // ("a", "bc") and ("ab", "c") from colliding by concatenation.
  return StableHash64(key + '\x1f' + ids_[backend]);
}

std::vector<size_t> ShardMap::Rank(const std::string& key) const {
  std::vector<std::pair<uint64_t, size_t>> weighted;
  weighted.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    weighted.emplace_back(Weight(key, i), i);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<size_t> order;
  order.reserve(weighted.size());
  for (const auto& [weight, index] : weighted) order.push_back(index);
  return order;
}

size_t ShardMap::Pick(const std::string& key,
                      const std::vector<bool>& eligible) const {
  size_t best = npos;
  uint64_t best_weight = 0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (!eligible[i]) continue;
    const uint64_t weight = Weight(key, i);
    if (best == npos || weight > best_weight) {
      best = i;
      best_weight = weight;
    }
  }
  return best;
}

}  // namespace shapley::cluster
