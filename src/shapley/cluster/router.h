#ifndef SHAPLEY_CLUSTER_ROUTER_H_
#define SHAPLEY_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shapley/cluster/backend.h"
#include "shapley/cluster/shard_map.h"
#include "shapley/net/client.h"
#include "shapley/net/server.h"
#include "shapley/obs/metrics.h"

namespace shapley::cluster {

struct RouterOptions {
  /// The router's own listening socket (role is forced to "router").
  /// `server.request_log` works here exactly as on a backend: the router's
  /// HttpServer captures every POST body at the shared pre-decode point,
  /// so a router session can be recorded and replayed (obs/reqlog,
  /// obs/replay) against a fresh fleet.
  net::ServerOptions server;
  /// Options for the pooled backend connections.
  net::ClientOptions client;
  /// Health-probe period for the background poller; 0 disables polling
  /// (health then changes only through observed failures — a backend
  /// marked down stays down).
  int health_poll_ms = 250;
  /// Retry a transport-failed request ONCE on the key's next-ranked
  /// healthy shard before giving up with kUpstreamUnavailable.
  bool retry_failover = true;
};

/// Re-tags one ndjson batch line with a new "id", preserving every other
/// member VERBATIM in order (unknown fields included) — the only rewrite
/// the router performs on a backend response. Exposed for tests.
std::string RetagNdjsonLine(const std::string& line, uint64_t new_id);

/// The shard router: one process fronting N `shapley serve` backends over
/// the ordinary wire protocol, so a fleet looks like a single server.
///
/// Routing: each decoded request's ShardKeyFor fingerprint is rendezvous-
/// hashed over the backend ids (ShardMap) — identical instances always
/// land on the same backend and keep hitting its warmed OracleCache; the
/// router itself never evaluates anything.
///
/// Endpoints: the full single-server surface, plus cluster introspection —
///   POST /v1/compute  decode → shard → forward verbatim; the backend's
///                     status and body pass through untouched
///   POST /v1/batch    scatter/gather — the batch splits by shard, each
///                     sub-batch streams from its backend CONCURRENTLY,
///                     and lines are re-tagged with their global ids and
///                     forwarded in completion order across the whole
///                     fleet (no per-shard head-of-line blocking)
///   GET  /v1/engines  proxied from any healthy backend (the registry is
///                     identical across a homogeneous fleet)
///   GET  /v1/stats    per-backend "service" counters summed into one
///                     fleet view + the router's own "server" counters
///   GET  /v1/cluster  the shard map, per-backend health and the routed/
///                     failed/retried counters
///   GET  /healthz     answered by the router itself (role "router")
///   GET  /v1/debug/flight|slow  the router's OWN always-on deck: a flight
///                     digest per routed request (engine = backend id) and
///                     slow captures of outlier forwards
///   GET  /v1/debug/hot  fans out to every healthy backend's /v1/debug/hot
///                     and folds the sketches (MergeHeavySummaries) into
///                     ONE fleet-wide hot list — the router records no
///                     sketch of its own, so fleet counts are never doubled
///
/// Failover: a transport failure marks the backend unhealthy and (with
/// retry_failover) re-sends the affected requests ONCE to the key's
/// next-ranked healthy shard — for a batch, only the requests whose lines
/// had not yet streamed. When no backend can serve a request, it gets a
/// structured kUpstreamUnavailable error (HTTP 503) — never a dropped id.
/// A background poller probes /healthz so a recovered backend rejoins.
///
/// Tracing: a traced request ("trace" opted in) yields ONE cluster-wide
/// span tree — the router roots it at "router", opens a "hop" span per
/// forwarding attempt (attrs: backend identity, attempt number, and the
/// transport error on a failed hop), stamps its trace context onto the
/// forwarded body (the only rewrite traced forwarding performs; untraced
/// bodies still cross verbatim), and grafts the backend's own "backend →
/// decode/route/cache/engine/encode" subtree from the response under the
/// hop that fetched it. Failover keeps both hops in the tree. Untraced
/// requests allocate no recorder anywhere on the path.
class ShardRouter {
 public:
  /// `backend_specs` are "host:port" strings. Throws std::invalid_argument
  /// when empty or unparsable.
  ShardRouter(const std::vector<std::string>& backend_specs,
              RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Probes every backend once, starts the health poller and the HTTP
  /// front. Throws std::runtime_error when the address cannot be bound.
  void Start();

  /// Stops the front (graceful drain) and the poller. Idempotent.
  void Stop();

  uint16_t port() const;
  const std::string& host() const;

  const ShardMap& shard_map() const { return shard_map_; }
  BackendChannel* backend(size_t i) { return backends_[i].get(); }
  size_t num_backends() const { return backends_.size(); }

  /// The router's metrics registry (owned; never null). GET /metrics on
  /// the router's port renders it: router routing counters, per-backend
  /// {backend="host:port"} series, request-latency-by-endpoint histograms
  /// and the transport counters its HttpServer folds in (role "router").
  obs::MetricsRegistry* metrics() { return metrics_.get(); }

  /// The router's always-on debug deck (owned; never null). Its flight
  /// ring and slow-log record every routed request; its sketches stay
  /// empty — /v1/debug/hot is the MERGED backend view instead.
  net::DebugDeck* debug_deck() { return deck_.get(); }

 private:
  friend class RouterHandler;

  /// healthy() of every backend, in shard-map order.
  std::vector<bool> Eligibility() const;
  void PollLoop();

  const RouterOptions options_;
  ShardMap shard_map_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<net::DebugDeck> deck_;
  std::vector<std::unique_ptr<BackendChannel>> backends_;
  std::unique_ptr<net::HttpHandler> handler_;
  std::unique_ptr<net::HttpServer> server_;
  std::thread poller_;
  std::atomic<bool> polling_{false};
  std::atomic<size_t> requests_routed_{0};
  std::atomic<size_t> requests_failed_over_{0};
  std::atomic<size_t> requests_unserved_{0};
};

}  // namespace shapley::cluster

#endif  // SHAPLEY_CLUSTER_ROUTER_H_
