#ifndef SHAPLEY_CLUSTER_BACKEND_H_
#define SHAPLEY_CLUSTER_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "shapley/net/client.h"

namespace shapley::cluster {

/// "host:port" split into its parts; nullopt on anything unparsable.
struct BackendAddress {
  std::string host;
  uint16_t port = 0;
};
std::optional<BackendAddress> ParseBackendAddress(const std::string& spec);

/// The router's view of one backend: its address, a pooled set of
/// keep-alive client connections, a health flag, and per-backend routing
/// counters. Thread-safe — many scatter threads acquire connections from
/// one channel concurrently.
///
/// Health semantics: healthy_ starts true (a fresh fleet gets the benefit
/// of the doubt; the first failed request corrects it), is cleared by any
/// transport failure the router observes, and is restored only by a
/// successful /healthz probe — so a flapping backend has to actually
/// answer before traffic returns to it.
class BackendChannel {
 public:
  BackendChannel(BackendAddress address, net::ClientOptions client_options);

  /// "host:port" — the identity rendezvous hashing is computed over.
  const std::string& id() const { return id_; }

  /// A connection for exclusive use (ShapleyClient is single-threaded):
  /// pooled if one is free, freshly built otherwise. Never null; dialing
  /// happens lazily inside the client.
  std::unique_ptr<net::ShapleyClient> Acquire();

  /// Returns a connection to the pool (call only after a clean exchange —
  /// a client that threw mid-protocol should simply be destroyed instead).
  void Release(std::unique_ptr<net::ShapleyClient> client);

  /// GET /healthz with a short read timeout; updates healthy() and
  /// returns the verdict.
  bool Probe();

  bool healthy() const { return healthy_.load(); }
  void set_healthy(bool healthy) { healthy_.store(healthy); }

  /// Requests this channel was asked to serve (batch counts each line).
  void CountRouted(size_t n) { routed_.fetch_add(n); }
  /// Requests that died on this channel with a transport failure.
  void CountFailed(size_t n) { failed_.fetch_add(n); }
  /// Requests re-sent here after another shard failed them.
  void CountRetried(size_t n) { retried_.fetch_add(n); }
  size_t routed() const { return routed_.load(); }
  size_t failed() const { return failed_.load(); }
  size_t retried() const { return retried_.load(); }

 private:
  const BackendAddress address_;
  const std::string id_;
  const net::ClientOptions client_options_;
  std::atomic<bool> healthy_{true};
  std::atomic<size_t> routed_{0};
  std::atomic<size_t> failed_{0};
  std::atomic<size_t> retried_{0};
  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<net::ShapleyClient>> pool_;
};

}  // namespace shapley::cluster

#endif  // SHAPLEY_CLUSTER_BACKEND_H_
