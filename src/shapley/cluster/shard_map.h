#ifndef SHAPLEY_CLUSTER_SHARD_MAP_H_
#define SHAPLEY_CLUSTER_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "shapley/service/request.h"

namespace shapley::cluster {

/// FNV-1a 64-bit over the bytes of `s` — fully specified here, so the same
/// key hashes identically in every process of the fleet (std::hash is
/// implementation-defined and therefore unusable as a shard function).
uint64_t StableHash64(const std::string& s);

/// The routing key of a request: a canonical, PROCESS-INDEPENDENT
/// rendering of (query text, sorted fact text) — computed from the
/// DECODED request alone, no evaluation. Unlike OracleCache::Fingerprint
/// (which renders interner ids and is only stable within one schema),
/// this key is a pure function of the instance: two textually different
/// but canonically equal requests, decoded by any process, get the same
/// key — so repeats of an instance always land on the same shard and
/// warm that backend's oracle cache instead of spraying cold misses
/// across the fleet. Returns "" when the request carries no query (the
/// router then falls back to hashing the raw body).
std::string ShardKeyFor(const SvcRequest& request);

/// Rendezvous (highest-random-weight) hashing over a fixed list of backend
/// ids. Each (key, backend) pair gets a stable 64-bit weight; a key's home
/// is the backend with the highest weight. Properties the router leans on:
///   - deterministic: any process with the same backend list computes the
///     same placement (no shared state, no coordination);
///   - minimal disruption: removing one backend remaps ONLY the keys whose
///     highest weight was that backend (~1/N of them) — every other key
///     keeps its shard and its warmed cache;
///   - built-in fallback order: a key's SECOND-highest backend is its
///     natural failover target, the same one every router instance picks.
class ShardMap {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  explicit ShardMap(std::vector<std::string> backend_ids);

  size_t size() const { return ids_.size(); }
  const std::vector<std::string>& ids() const { return ids_; }

  /// All backend indices ordered by descending weight for `key` (ties by
  /// lower index): Rank(key)[0] is the home shard, [1] the first fallback.
  std::vector<size_t> Rank(const std::string& key) const;

  /// The highest-weight backend among those with eligible[i] true; npos
  /// when none is eligible. eligible.size() must equal size().
  size_t Pick(const std::string& key, const std::vector<bool>& eligible) const;

 private:
  uint64_t Weight(const std::string& key, size_t backend) const;

  std::vector<std::string> ids_;
};

}  // namespace shapley::cluster

#endif  // SHAPLEY_CLUSTER_SHARD_MAP_H_
