#include "shapley/cluster/backend.h"

#include <utility>

namespace shapley::cluster {

std::optional<BackendAddress> ParseBackendAddress(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return std::nullopt;
  }
  BackendAddress address;
  address.host = spec.substr(0, colon);
  unsigned long port = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  address.port = static_cast<uint16_t>(port);
  return address;
}

BackendChannel::BackendChannel(BackendAddress address,
                               net::ClientOptions client_options)
    : address_(std::move(address)),
      id_(address_.host + ":" + std::to_string(address_.port)),
      client_options_(client_options) {}

std::unique_ptr<net::ShapleyClient> BackendChannel::Acquire() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<net::ShapleyClient> client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  return std::make_unique<net::ShapleyClient>(address_.host, address_.port,
                                              client_options_);
}

void BackendChannel::Release(std::unique_ptr<net::ShapleyClient> client) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(client));
}

bool BackendChannel::Probe() {
  // A probe must answer fast or not at all: short read timeout, one dial
  // attempt — the point is a verdict, not a patient wait.
  net::ClientOptions probe_options = client_options_;
  probe_options.read_timeout_ms = 1'000;
  probe_options.connect_attempts = 1;
  net::ShapleyClient probe(address_.host, address_.port, probe_options);
  bool ok = false;
  try {
    int status = 0;
    probe.RawGet("/healthz", &status);
    ok = (status == 200);
  } catch (const std::runtime_error&) {
    ok = false;
  }
  healthy_.store(ok);
  return ok;
}

}  // namespace shapley::cluster
