#include "shapley/gen/generators.h"

#include <random>
#include <set>
#include <string>

#include "shapley/common/macros.h"

namespace shapley {

PartitionedDatabase RandomPartitionedDatabase(
    const std::shared_ptr<Schema>& schema,
    const RandomDatabaseOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<Constant> domain;
  domain.reserve(options.domain_size);
  for (size_t i = 0; i < options.domain_size; ++i) {
    domain.push_back(Constant::Named("c" + std::to_string(i)));
  }
  std::vector<RelationId> relations = schema->relations();
  SHAPLEY_CHECK_MSG(!relations.empty(), "schema has no relations");

  Database endo(schema), exo(schema);
  for (size_t i = 0; i < options.num_facts; ++i) {
    RelationId rel = relations[rng() % relations.size()];
    std::vector<Constant> args;
    for (uint32_t a = 0; a < schema->arity(rel); ++a) {
      args.push_back(domain[rng() % domain.size()]);
    }
    Fact fact(rel, std::move(args));
    if (endo.Contains(fact) || exo.Contains(fact)) continue;
    if (coin(rng) < options.exogenous_fraction) {
      exo.Insert(std::move(fact));
    } else {
      endo.Insert(std::move(fact));
    }
  }
  return PartitionedDatabase(std::move(endo), std::move(exo));
}

PartitionedDatabase RstGadget(const std::shared_ptr<Schema>& schema,
                              size_t left, size_t right,
                              double edge_probability, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  RelationId r = schema->AddRelation("R", 1);
  RelationId s = schema->AddRelation("S", 2);
  RelationId t = schema->AddRelation("T", 1);

  Database endo(schema);
  std::vector<Constant> lefts, rights;
  for (size_t i = 0; i < left; ++i) {
    lefts.push_back(Constant::Named("l" + std::to_string(i)));
    endo.Insert(Fact(r, {lefts.back()}));
  }
  for (size_t j = 0; j < right; ++j) {
    rights.push_back(Constant::Named("r" + std::to_string(j)));
    endo.Insert(Fact(t, {rights.back()}));
  }
  for (size_t i = 0; i < left; ++i) {
    for (size_t j = 0; j < right; ++j) {
      if (coin(rng) < edge_probability) {
        endo.Insert(Fact(s, {lefts[i], rights[j]}));
      }
    }
  }
  return PartitionedDatabase::AllEndogenous(std::move(endo));
}

Database PathGraph(const std::shared_ptr<Schema>& schema,
                   const std::string& relation, size_t hops,
                   double chord_probability, uint64_t seed) {
  SHAPLEY_CHECK(hops >= 1);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  RelationId rel = schema->AddRelation(relation, 2);

  std::vector<Constant> nodes;
  nodes.push_back(Constant::Named("s"));
  for (size_t i = 1; i < hops; ++i) {
    nodes.push_back(Constant::Named("n" + std::to_string(i)));
  }
  nodes.push_back(Constant::Named("t"));

  Database db(schema);
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    db.Insert(Fact(rel, {nodes[i], nodes[i + 1]}));
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (i != j && coin(rng) < chord_probability) {
        db.Insert(Fact(rel, {nodes[i], nodes[j]}));
      }
    }
  }
  return db;
}

Database RandomGraph(const std::shared_ptr<Schema>& schema,
                     const std::vector<std::string>& relations, size_t nodes,
                     double p, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<RelationId> rels;
  for (const std::string& name : relations) {
    rels.push_back(schema->AddRelation(name, 2));
  }
  std::vector<Constant> vertices;
  for (size_t i = 0; i < nodes; ++i) {
    vertices.push_back(Constant::Named("v" + std::to_string(i)));
  }
  Database db(schema);
  for (RelationId rel : rels) {
    for (size_t i = 0; i < nodes; ++i) {
      for (size_t j = 0; j < nodes; ++j) {
        if (coin(rng) < p) db.Insert(Fact(rel, {vertices[i], vertices[j]}));
      }
    }
  }
  return db;
}

Database DblpDatabase(const std::shared_ptr<Schema>& schema, size_t authors,
                      size_t papers, double shapley_fraction, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  RelationId publication = schema->AddRelation("Publication", 2);
  RelationId keyword = schema->AddRelation("Keyword", 2);
  Constant shapley = Constant::Named("Shapley");
  Constant databases = Constant::Named("Databases");

  std::vector<Constant> author_ids, paper_ids;
  for (size_t a = 0; a < authors; ++a) {
    author_ids.push_back(Constant::Named("author" + std::to_string(a)));
  }
  Database db(schema);
  for (size_t p = 0; p < papers; ++p) {
    Constant paper = Constant::Named("paper" + std::to_string(p));
    paper_ids.push_back(paper);
    size_t coauthors = 1 + rng() % 3;
    for (size_t k = 0; k < coauthors; ++k) {
      db.Insert(Fact(publication, {author_ids[rng() % authors], paper}));
    }
    db.Insert(Fact(keyword,
                   {paper, coin(rng) < shapley_fraction ? shapley : databases}));
  }
  return db;
}

CqPtr RandomCq(const std::shared_ptr<Schema>& schema,
               const RandomCqOptions& options) {
  SHAPLEY_CHECK(options.num_atoms >= 1 && options.num_variables >= 1);
  SHAPLEY_CHECK(options.max_arity >= 1);
  std::mt19937_64 rng(options.seed);

  std::vector<Variable> variables;
  for (size_t i = 0; i < options.num_variables; ++i) {
    variables.push_back(Variable::Named("x" + std::to_string(i)));
  }

  std::vector<Atom> atoms;
  std::set<RelationId> used;
  for (size_t a = 0; a < options.num_atoms; ++a) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng() % options.max_arity);
    RelationId rel = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      size_t index = rng() % options.num_relations;
      rel = schema->AddRelation(
          "Qr" + std::to_string(index) + "_" + std::to_string(arity), arity);
      if (!options.self_join_free || used.count(rel) == 0) break;
    }
    used.insert(rel);
    std::vector<Term> terms;
    for (uint32_t t = 0; t < arity; ++t) {
      terms.push_back(Term(variables[rng() % variables.size()]));
    }
    atoms.push_back(Atom(rel, std::move(terms)));
  }
  return ConjunctiveQuery::Create(schema, std::move(atoms));
}

}  // namespace shapley
