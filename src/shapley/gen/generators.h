#ifndef SHAPLEY_GEN_GENERATORS_H_
#define SHAPLEY_GEN_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shapley/data/partitioned_database.h"
#include "shapley/query/conjunctive_query.h"

namespace shapley {

/// Workload generators for tests and benchmarks. All are deterministic
/// given the seed. The instance families mirror the ones the paper's proofs
/// reason about: random databases for cross-engine validation, bipartite
/// gadgets for the hard queries, graph families for RPQs, and a DBLP-style
/// Publication/Keyword database for the Section 6.4 example.
struct RandomDatabaseOptions {
  size_t num_facts = 8;
  size_t domain_size = 4;          // Constants c0..c{domain_size-1}.
  double exogenous_fraction = 0.2; // Per-fact probability of being exogenous.
  uint64_t seed = 1;
};

/// Random facts over every relation of `schema`, arguments drawn uniformly
/// from the domain. Duplicates are merged (the result may have fewer than
/// num_facts facts).
PartitionedDatabase RandomPartitionedDatabase(
    const std::shared_ptr<Schema>& schema, const RandomDatabaseOptions& options);

/// The bipartite gadget family of the classic hard query
/// R(x), S(x,y), T(y): `left` R-constants, `right` T-constants, and an
/// S-edge between (i, j) kept with probability `edge_probability`. All facts
/// endogenous. Relations R/S/T are added to the schema if missing.
PartitionedDatabase RstGadget(const std::shared_ptr<Schema>& schema,
                              size_t left, size_t right,
                              double edge_probability, uint64_t seed);

/// A directed path s -> m1 -> ... -> t with `hops` edges all labeled
/// `relation`; extra random chords with probability `chord_probability`.
Database PathGraph(const std::shared_ptr<Schema>& schema,
                   const std::string& relation, size_t hops,
                   double chord_probability, uint64_t seed);

/// An Erdős–Rényi directed graph over `nodes` constants where each ordered
/// pair carries an edge of each given relation with probability p.
Database RandomGraph(const std::shared_ptr<Schema>& schema,
                     const std::vector<std::string>& relations, size_t nodes,
                     double p, uint64_t seed);

/// A DBLP-style database for the Section 6.4 example query
///   q* = ∃x,y Publication(x,y) ∧ Keyword(y,'Shapley'):
/// `authors` authors, `papers` papers, random authorship (each paper gets
/// 1-3 authors) and each paper tagged 'Shapley' with probability
/// `shapley_fraction` (others get 'Databases').
Database DblpDatabase(const std::shared_ptr<Schema>& schema, size_t authors,
                      size_t papers, double shapley_fraction, uint64_t seed);

/// Options for random conjunctive queries (used by the structural-property
/// sweeps: hierarchicalness characterizations, connectivity, parser
/// round-trips).
struct RandomCqOptions {
  size_t num_atoms = 3;
  size_t num_variables = 3;
  size_t num_relations = 3;    // Drawn from Q0..Q{num_relations-1}.
  uint32_t max_arity = 2;      // Arity 1..max_arity per relation.
  bool self_join_free = false; // Force distinct relations per atom.
  uint64_t seed = 1;
};

/// A random positive Boolean CQ. Relation names "Qr{i}_{arity}" are added
/// to the schema on demand (arity encoded in the name so that different
/// seeds can share one schema).
CqPtr RandomCq(const std::shared_ptr<Schema>& schema,
               const RandomCqOptions& options);

}  // namespace shapley

#endif  // SHAPLEY_GEN_GENERATORS_H_
