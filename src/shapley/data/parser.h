#ifndef SHAPLEY_DATA_PARSER_H_
#define SHAPLEY_DATA_PARSER_H_

#include <memory>
#include <string_view>

#include "shapley/data/database.h"
#include "shapley/data/partitioned_database.h"

namespace shapley {

/// Parses a fact list like "R(a,b), S(b,c) R(c,c)" (commas, semicolons and
/// whitespace all separate facts). Unknown relation names are added to
/// `schema` with the observed arity; a known relation used with a different
/// arity throws std::invalid_argument.
Database ParseDatabase(const std::shared_ptr<Schema>& schema,
                       std::string_view text);

/// Parses "R(a,b) | S(b,c)": facts before '|' are endogenous, after it
/// exogenous. The bar may be omitted (then everything is endogenous).
PartitionedDatabase ParsePartitionedDatabase(
    const std::shared_ptr<Schema>& schema, std::string_view text);

/// Parses a single fact like "R(a,b)".
Fact ParseFact(const std::shared_ptr<Schema>& schema, std::string_view text);

}  // namespace shapley

#endif  // SHAPLEY_DATA_PARSER_H_
