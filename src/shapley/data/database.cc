#include "shapley/data/database.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "shapley/common/macros.h"

namespace shapley {

Database::Database(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)) {}

Database::Database(std::shared_ptr<Schema> schema, std::vector<Fact> facts)
    : schema_(std::move(schema)), facts_(std::move(facts)) {
  std::sort(facts_.begin(), facts_.end());
  facts_.erase(std::unique(facts_.begin(), facts_.end()), facts_.end());
}

bool Database::Contains(const Fact& fact) const {
  return std::binary_search(facts_.begin(), facts_.end(), fact);
}

bool Database::Insert(Fact fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it != facts_.end() && *it == fact) return false;
  facts_.insert(it, std::move(fact));
  return true;
}

bool Database::Remove(const Fact& fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it == facts_.end() || !(*it == fact)) return false;
  facts_.erase(it);
  return true;
}

void Database::InsertAll(const Database& other) {
  for (const Fact& f : other.facts_) Insert(f);
}

Database Database::Union(const Database& other) const {
  Database result = *this;
  if (result.schema_ == nullptr) result.schema_ = other.schema_;
  result.InsertAll(other);
  return result;
}

Database Database::Intersection(const Database& other) const {
  Database result(schema_ != nullptr ? schema_ : other.schema_);
  std::set_intersection(facts_.begin(), facts_.end(), other.facts_.begin(),
                        other.facts_.end(), std::back_inserter(result.facts_));
  return result;
}

Database Database::Difference(const Database& other) const {
  Database result(schema_ != nullptr ? schema_ : other.schema_);
  std::set_difference(facts_.begin(), facts_.end(), other.facts_.begin(),
                      other.facts_.end(), std::back_inserter(result.facts_));
  return result;
}

bool Database::IsSubsetOf(const Database& other) const {
  return std::includes(other.facts_.begin(), other.facts_.end(),
                       facts_.begin(), facts_.end());
}

bool Database::IntersectsWith(const Database& other) const {
  auto i = facts_.begin();
  auto j = other.facts_.begin();
  while (i != facts_.end() && j != other.facts_.end()) {
    if (*i == *j) return true;
    if (*i < *j) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::vector<Fact> Database::FactsOf(RelationId relation) const {
  std::vector<Fact> result;
  for (const Fact& f : facts_) {
    if (f.relation() == relation) result.push_back(f);
  }
  return result;
}

std::set<Constant> Database::Constants() const {
  std::set<Constant> result;
  for (const Fact& f : facts_) {
    result.insert(f.args().begin(), f.args().end());
  }
  return result;
}

Database Database::InducedByConstants(const std::set<Constant>& allowed) const {
  Database result(schema_);
  for (const Fact& f : facts_) {
    bool all_allowed = true;
    for (Constant c : f.args()) {
      if (allowed.count(c) == 0) {
        all_allowed = false;
        break;
      }
    }
    if (all_allowed) result.facts_.push_back(f);
  }
  return result;
}

namespace {

// Union-find over fact indices; facts sharing a constant are unioned.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<std::vector<size_t>> Database::ConnectedComponents() const {
  UnionFind uf(facts_.size());
  std::map<Constant, size_t> first_seen;
  for (size_t i = 0; i < facts_.size(); ++i) {
    for (Constant c : facts_[i].args()) {
      auto [it, inserted] = first_seen.emplace(c, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < facts_.size(); ++i) {
    groups[uf.Find(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> result;
  result.reserve(groups.size());
  for (auto& [root, members] : groups) result.push_back(std::move(members));
  return result;
}

bool Database::IsConnected() const {
  return ConnectedComponents().size() <= 1;
}

std::string Database::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < facts_.size(); ++i) {
    if (i > 0) os << ", ";
    os << (schema_ != nullptr ? facts_[i].ToString(*schema_)
                              : "fact@" + std::to_string(i));
  }
  os << "}";
  return os.str();
}

}  // namespace shapley
