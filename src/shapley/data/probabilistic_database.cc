#include "shapley/data/probabilistic_database.h"

#include <algorithm>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

void ProbabilisticDatabase::AddFact(Fact fact, BigRational probability) {
  if (probability.sign() <= 0 || probability > BigRational(1)) {
    throw std::invalid_argument(
        "ProbabilisticDatabase: probability must lie in (0, 1]");
  }
  if (std::find(facts_.begin(), facts_.end(), fact) != facts_.end()) {
    throw std::invalid_argument("ProbabilisticDatabase: duplicate fact");
  }
  facts_.push_back(std::move(fact));
  probabilities_.push_back(std::move(probability));
}

ProbabilisticDatabase ProbabilisticDatabase::FromPartitioned(
    const PartitionedDatabase& db, const BigRational& p) {
  if (p.sign() <= 0 || p >= BigRational(1)) {
    throw std::invalid_argument(
        "ProbabilisticDatabase: endogenous probability must lie in (0, 1)");
  }
  ProbabilisticDatabase result(db.schema());
  for (const Fact& f : db.endogenous().facts()) result.AddFact(f, p);
  for (const Fact& f : db.exogenous().facts()) result.AddFact(f, BigRational(1));
  return result;
}

PartitionedDatabase ProbabilisticDatabase::AssociatedPartitioned() const {
  Database endo(schema_), exo(schema_);
  for (size_t i = 0; i < facts_.size(); ++i) {
    if (probabilities_[i] == BigRational(1)) {
      exo.Insert(facts_[i]);
    } else {
      endo.Insert(facts_[i]);
    }
  }
  return PartitionedDatabase(std::move(endo), std::move(exo));
}

bool ProbabilisticDatabase::IsSingleProperProbability() const {
  const BigRational one(1);
  const BigRational* p = nullptr;
  for (const BigRational& prob : probabilities_) {
    if (prob == one) continue;
    if (p == nullptr) {
      p = &prob;
    } else if (!(prob == *p)) {
      return false;
    }
  }
  return true;
}

bool ProbabilisticDatabase::IsSingleProbability() const {
  if (probabilities_.empty()) return true;
  const BigRational& p = probabilities_.front();
  if (p == BigRational(1)) return false;
  for (const BigRational& prob : probabilities_) {
    if (!(prob == p)) return false;
  }
  return true;
}

}  // namespace shapley
