#ifndef SHAPLEY_DATA_PROBABILISTIC_DATABASE_H_
#define SHAPLEY_DATA_PROBABILISTIC_DATABASE_H_

#include <vector>

#include "shapley/arith/big_rational.h"
#include "shapley/data/database.h"
#include "shapley/data/partitioned_database.h"

namespace shapley {

/// A tuple-independent probabilistic database: facts with independent
/// existence probabilities in (0, 1]. Facts with probability 1 form the
/// associated exogenous part (Section 3.3).
class ProbabilisticDatabase {
 public:
  ProbabilisticDatabase() = default;
  explicit ProbabilisticDatabase(std::shared_ptr<Schema> schema)
      : schema_(std::move(schema)) {}

  /// Adds a fact with the given probability; throws std::invalid_argument if
  /// the probability is outside (0, 1] or the fact repeats.
  void AddFact(Fact fact, BigRational probability);

  /// The SPPQE input shape: endogenous facts get probability p, exogenous
  /// facts probability 1. Requires p in (0, 1).
  static ProbabilisticDatabase FromPartitioned(const PartitionedDatabase& db,
                                               const BigRational& p);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  size_t size() const { return facts_.size(); }
  const std::vector<Fact>& facts() const { return facts_; }
  const std::vector<BigRational>& probabilities() const { return probabilities_; }

  /// The partitioned database whose Dx is the probability-1 facts.
  PartitionedDatabase AssociatedPartitioned() const;

  /// True iff all probabilities lie in {p, 1} for a single p (SPPQE shape).
  bool IsSingleProperProbability() const;
  /// True iff all probabilities equal a single p < 1 (SPQE shape).
  bool IsSingleProbability() const;

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<Fact> facts_;
  std::vector<BigRational> probabilities_;
};

}  // namespace shapley

#endif  // SHAPLEY_DATA_PROBABILISTIC_DATABASE_H_
