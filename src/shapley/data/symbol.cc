#include "shapley/data/symbol.h"

#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

// Process-wide interner. Id 0 is reserved for the invalid sentinel.
class Interner {
 public:
  uint32_t Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) return it->second;
    names_.emplace_back(name);
    uint32_t id = static_cast<uint32_t>(names_.size());
    by_name_.emplace(names_.back(), id);
    return id;
  }

  uint32_t Fresh(std::string_view prefix) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string name;
    do {
      name = std::string(prefix) + "#" + std::to_string(++fresh_counter_);
    } while (by_name_.count(name) != 0);
    names_.push_back(name);
    uint32_t id = static_cast<uint32_t>(names_.size());
    by_name_.emplace(names_.back(), id);
    return id;
  }

  const std::string& Name(uint32_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    SHAPLEY_CHECK_MSG(id >= 1 && id <= names_.size(), "bad symbol id " << id);
    return names_[id - 1];
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> names_;  // Stable storage (ids index into this).
  std::unordered_map<std::string, uint32_t> by_name_;
  uint64_t fresh_counter_ = 0;
};

Interner& ConstantInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

Interner& VariableInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

}  // namespace

Constant Constant::Named(std::string_view name) {
  return Constant(ConstantInterner().Intern(name));
}

Constant Constant::Fresh(std::string_view prefix) {
  return Constant(ConstantInterner().Fresh(prefix));
}

const std::string& Constant::name() const {
  return ConstantInterner().Name(id_);
}

std::ostream& operator<<(std::ostream& os, Constant c) {
  return os << (c.IsValid() ? c.name() : "<invalid>");
}

Variable Variable::Named(std::string_view name) {
  return Variable(VariableInterner().Intern(name));
}

Variable Variable::Fresh(std::string_view prefix) {
  return Variable(VariableInterner().Fresh(prefix));
}

const std::string& Variable::name() const {
  return VariableInterner().Name(id_);
}

std::ostream& operator<<(std::ostream& os, Variable v) {
  return os << (v.IsValid() ? v.name() : "<invalid>");
}

}  // namespace shapley
