#ifndef SHAPLEY_DATA_RENAMING_H_
#define SHAPLEY_DATA_RENAMING_H_

#include <map>
#include <set>

#include "shapley/data/database.h"

namespace shapley {

/// A constant renaming (injective when built by the helpers below, i.e. a
/// C-isomorphism fixing the constants it does not mention).
///
/// The Section 5 constructions repeatedly "C-isomorphically rename" supports
/// and databases so that different parts of the construction share no
/// constant outside C, and mint the copy family (S_k) by renaming a single
/// constant `a` to fresh constants a_k.
class ConstantRenaming {
 public:
  ConstantRenaming() = default;

  /// Maps `from` to `to`; later mappings override earlier ones.
  void Map(Constant from, Constant to);

  /// Identity outside the explicit mappings.
  Constant Apply(Constant c) const;
  Fact Apply(const Fact& fact) const;
  Database Apply(const Database& db) const;

  /// A renaming sending every constant of `db` outside `keep` to a brand-new
  /// fresh constant (the "C-isomorphic renaming onto fresh constants" step).
  static ConstantRenaming FreshExcept(const Database& db,
                                      const std::set<Constant>& keep);

  /// A renaming sending exactly `from` to a fresh constant (the S_k copy
  /// construction: a ↦ a_k).
  static ConstantRenaming SingleFresh(Constant from);

  bool empty() const { return mapping_.empty(); }

 private:
  std::map<Constant, Constant> mapping_;
};

}  // namespace shapley

#endif  // SHAPLEY_DATA_RENAMING_H_
