#ifndef SHAPLEY_DATA_DATABASE_H_
#define SHAPLEY_DATA_DATABASE_H_

#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "shapley/data/fact.h"
#include "shapley/data/schema.h"
#include "shapley/data/symbol.h"

namespace shapley {

/// A database: a finite set of facts over a schema.
///
/// Stored as a sorted, deduplicated vector (databases in this library are
/// small — the problems are #P-hard — and set semantics with cheap iteration
/// matter more than point-lookup throughput).
class Database {
 public:
  Database() = default;
  explicit Database(std::shared_ptr<Schema> schema);
  Database(std::shared_ptr<Schema> schema, std::vector<Fact> facts);

  const std::shared_ptr<Schema>& schema() const { return schema_; }
  const std::vector<Fact>& facts() const { return facts_; }
  size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }

  bool Contains(const Fact& fact) const;
  /// Inserts; returns false if already present.
  bool Insert(Fact fact);
  /// Removes; returns false if absent.
  bool Remove(const Fact& fact);
  void InsertAll(const Database& other);

  /// Set operations (schemas must match).
  Database Union(const Database& other) const;
  Database Intersection(const Database& other) const;
  Database Difference(const Database& other) const;
  bool IsSubsetOf(const Database& other) const;
  bool IntersectsWith(const Database& other) const;

  /// All facts of one relation.
  std::vector<Fact> FactsOf(RelationId relation) const;

  /// The set const(D) of constants appearing in the database.
  std::set<Constant> Constants() const;

  /// The induced sub-database D|C = { f in D : const(f) ⊆ C } (Section 6.4).
  Database InducedByConstants(const std::set<Constant>& allowed) const;

  /// True iff the incidence graph of the fact set is connected (facts are
  /// linked through shared constants). The empty database is connected;
  /// so is a singleton.
  bool IsConnected() const;

  /// Partition of fact indices into connected components.
  std::vector<std::vector<size_t>> ConnectedComponents() const;

  /// "{R(a,b), S(b)}" rendering for debugging and error messages.
  std::string ToString() const;

  friend bool operator==(const Database& a, const Database& b) {
    return a.facts_ == b.facts_;
  }

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<Fact> facts_;  // Sorted, unique.
};

}  // namespace shapley

#endif  // SHAPLEY_DATA_DATABASE_H_
