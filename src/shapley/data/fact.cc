#include "shapley/data/fact.h"

namespace shapley {

Fact::Fact(RelationId relation, std::vector<Constant> args)
    : relation_(relation), args_(std::move(args)) {}

Fact::Fact(RelationId relation, std::initializer_list<Constant> args)
    : relation_(relation), args_(args) {}

bool Fact::Mentions(Constant c) const {
  for (Constant arg : args_) {
    if (arg == c) return true;
  }
  return false;
}

std::string Fact::ToString(const Schema& schema) const {
  // Direct string building: this renders on hot serving paths (response
  // encoding, shard keys), where a per-call ostringstream dominates the
  // actual formatting work.
  const std::string& relation = schema.name(relation_);
  size_t length = relation.size() + 2 + (args_.empty() ? 0 : args_.size() - 1);
  for (Constant arg : args_) length += arg.name().size();
  std::string out;
  out.reserve(length);
  out += relation;
  out += '(';
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ',';
    out += args_[i].name();
  }
  out += ')';
  return out;
}

std::strong_ordering operator<=>(const Fact& a, const Fact& b) {
  if (a.relation_ != b.relation_) return a.relation_ <=> b.relation_;
  return a.args_ <=> b.args_;
}

size_t Fact::Hash() const {
  size_t h = relation_ * 0x9e3779b97f4a7c15ull + 1;
  for (Constant c : args_) {
    h ^= c.id() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace shapley
