#include "shapley/data/fact.h"

#include <sstream>

namespace shapley {

Fact::Fact(RelationId relation, std::vector<Constant> args)
    : relation_(relation), args_(std::move(args)) {}

Fact::Fact(RelationId relation, std::initializer_list<Constant> args)
    : relation_(relation), args_(args) {}

bool Fact::Mentions(Constant c) const {
  for (Constant arg : args_) {
    if (arg == c) return true;
  }
  return false;
}

std::string Fact::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << schema.name(relation_) << "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) os << ",";
    os << args_[i];
  }
  os << ")";
  return os.str();
}

std::strong_ordering operator<=>(const Fact& a, const Fact& b) {
  if (a.relation_ != b.relation_) return a.relation_ <=> b.relation_;
  return a.args_ <=> b.args_;
}

size_t Fact::Hash() const {
  size_t h = relation_ * 0x9e3779b97f4a7c15ull + 1;
  for (Constant c : args_) {
    h ^= c.id() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace shapley
