#ifndef SHAPLEY_DATA_SYMBOL_H_
#define SHAPLEY_DATA_SYMBOL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace shapley {

/// A database constant (an element of the infinite set Const of the paper).
///
/// Constants are interned process-wide: equal names yield equal ids, and
/// `Fresh` mints constants guaranteed distinct from every constant created so
/// far — the reductions of Section 5 lean heavily on "take fresh constants"
/// steps (C-isomorphic copies S_k, frozen variables, renamed supports).
class Constant {
 public:
  /// Invalid sentinel; usable as a map key placeholder.
  Constant() : id_(0) {}

  /// Interns `name` (idempotent).
  static Constant Named(std::string_view name);

  /// Mints a brand-new constant whose name starts with `prefix`.
  static Constant Fresh(std::string_view prefix = "c");

  /// Rebuilds a constant from a raw interner id (internal use: Term storage).
  static Constant FromId(uint32_t id) { return Constant(id); }

  /// The constant's print name.
  const std::string& name() const;

  uint32_t id() const { return id_; }
  bool IsValid() const { return id_ != 0; }

  friend bool operator==(Constant a, Constant b) { return a.id_ == b.id_; }
  friend auto operator<=>(Constant a, Constant b) { return a.id_ <=> b.id_; }
  friend std::ostream& operator<<(std::ostream& os, Constant c);

 private:
  explicit Constant(uint32_t id) : id_(id) {}
  uint32_t id_;
};

/// A query variable. Interned in a separate namespace from constants, so the
/// variable "x" and the constant "x" never collide.
class Variable {
 public:
  Variable() : id_(0) {}

  static Variable Named(std::string_view name);
  static Variable Fresh(std::string_view prefix = "v");

  /// Rebuilds a variable from a raw interner id (internal use: Term storage).
  static Variable FromId(uint32_t id) { return Variable(id); }

  const std::string& name() const;
  uint32_t id() const { return id_; }
  bool IsValid() const { return id_ != 0; }

  friend bool operator==(Variable a, Variable b) { return a.id_ == b.id_; }
  friend auto operator<=>(Variable a, Variable b) { return a.id_ <=> b.id_; }
  friend std::ostream& operator<<(std::ostream& os, Variable v);

 private:
  explicit Variable(uint32_t id) : id_(id) {}
  uint32_t id_;
};

}  // namespace shapley

template <>
struct std::hash<shapley::Constant> {
  size_t operator()(shapley::Constant c) const { return c.id(); }
};
template <>
struct std::hash<shapley::Variable> {
  size_t operator()(shapley::Variable v) const { return v.id(); }
};

#endif  // SHAPLEY_DATA_SYMBOL_H_
