#ifndef SHAPLEY_DATA_FACT_H_
#define SHAPLEY_DATA_FACT_H_

#include <compare>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "shapley/data/schema.h"
#include "shapley/data/symbol.h"

namespace shapley {

/// A ground atom R(c1, ..., ck): a relation id plus constant arguments.
class Fact {
 public:
  Fact() = default;
  Fact(RelationId relation, std::vector<Constant> args);
  Fact(RelationId relation, std::initializer_list<Constant> args);

  RelationId relation() const { return relation_; }
  const std::vector<Constant>& args() const { return args_; }
  size_t arity() const { return args_.size(); }

  /// True iff `c` occurs among the arguments.
  bool Mentions(Constant c) const;

  /// "R(a,b)" given the schema that owns the relation id.
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation_ == b.relation_ && a.args_ == b.args_;
  }
  friend std::strong_ordering operator<=>(const Fact& a, const Fact& b);

  size_t Hash() const;

 private:
  RelationId relation_ = 0;
  std::vector<Constant> args_;
};

}  // namespace shapley

template <>
struct std::hash<shapley::Fact> {
  size_t operator()(const shapley::Fact& f) const { return f.Hash(); }
};

#endif  // SHAPLEY_DATA_FACT_H_
