#ifndef SHAPLEY_DATA_PARTITIONED_DATABASE_H_
#define SHAPLEY_DATA_PARTITIONED_DATABASE_H_

#include <string>

#include "shapley/data/database.h"

namespace shapley {

/// A partitioned database D = (Dn, Dx): endogenous facts Dn (the players of
/// the Shapley game, the countable subsets of GMC) and exogenous facts Dx
/// (assumed present in every sub-database). See Section 3 of the paper.
class PartitionedDatabase {
 public:
  PartitionedDatabase() = default;
  explicit PartitionedDatabase(std::shared_ptr<Schema> schema)
      : endogenous_(schema), exogenous_(std::move(schema)) {}

  /// Builds from the two parts; throws std::invalid_argument if they overlap.
  PartitionedDatabase(Database endogenous, Database exogenous);

  /// A fully endogenous database (Dx = ∅), the input shape of SVCn/FMC/MC.
  static PartitionedDatabase AllEndogenous(Database db);

  const Database& endogenous() const { return endogenous_; }
  const Database& exogenous() const { return exogenous_; }
  const std::shared_ptr<Schema>& schema() const {
    return endogenous_.schema() != nullptr ? endogenous_.schema()
                                           : exogenous_.schema();
  }

  /// Dn ∪ Dx.
  Database AllFacts() const { return endogenous_.Union(exogenous_); }

  size_t NumEndogenous() const { return endogenous_.size(); }
  bool IsPurelyEndogenous() const { return exogenous_.empty(); }

  /// Adds a fact to the chosen side; throws if present on the other side.
  void AddEndogenous(Fact fact);
  void AddExogenous(Fact fact);

  /// Returns a copy where `fact` (currently endogenous) became exogenous.
  /// Used by the SVC ≤ FGMC reduction of Claim A.1.
  PartitionedDatabase WithFactMadeExogenous(const Fact& fact) const;

  /// Returns a copy where `fact` (currently endogenous) was removed.
  PartitionedDatabase WithEndogenousFactRemoved(const Fact& fact) const;

  std::string ToString() const;

 private:
  Database endogenous_;
  Database exogenous_;
};

}  // namespace shapley

#endif  // SHAPLEY_DATA_PARTITIONED_DATABASE_H_
