#include "shapley/data/partitioned_database.h"

#include <sstream>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

PartitionedDatabase::PartitionedDatabase(Database endogenous,
                                         Database exogenous)
    : endogenous_(std::move(endogenous)), exogenous_(std::move(exogenous)) {
  if (endogenous_.IntersectsWith(exogenous_)) {
    throw std::invalid_argument(
        "PartitionedDatabase: endogenous and exogenous parts overlap");
  }
}

PartitionedDatabase PartitionedDatabase::AllEndogenous(Database db) {
  PartitionedDatabase result;
  result.endogenous_ = std::move(db);
  result.exogenous_ = Database(result.endogenous_.schema());
  return result;
}

void PartitionedDatabase::AddEndogenous(Fact fact) {
  if (exogenous_.Contains(fact)) {
    throw std::invalid_argument(
        "PartitionedDatabase: fact is already exogenous");
  }
  endogenous_.Insert(std::move(fact));
}

void PartitionedDatabase::AddExogenous(Fact fact) {
  if (endogenous_.Contains(fact)) {
    throw std::invalid_argument(
        "PartitionedDatabase: fact is already endogenous");
  }
  exogenous_.Insert(std::move(fact));
}

PartitionedDatabase PartitionedDatabase::WithFactMadeExogenous(
    const Fact& fact) const {
  SHAPLEY_CHECK_MSG(endogenous_.Contains(fact), "fact must be endogenous");
  PartitionedDatabase result = *this;
  result.endogenous_.Remove(fact);
  result.exogenous_.Insert(fact);
  return result;
}

PartitionedDatabase PartitionedDatabase::WithEndogenousFactRemoved(
    const Fact& fact) const {
  SHAPLEY_CHECK_MSG(endogenous_.Contains(fact), "fact must be endogenous");
  PartitionedDatabase result = *this;
  result.endogenous_.Remove(fact);
  return result;
}

std::string PartitionedDatabase::ToString() const {
  std::ostringstream os;
  os << "Dn=" << endogenous_.ToString() << " Dx=" << exogenous_.ToString();
  return os.str();
}

}  // namespace shapley
