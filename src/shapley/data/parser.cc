#include "shapley/data/parser.h"

#include <cctype>
#include <stdexcept>
#include <string>
#include <vector>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

// Minimal recursive-descent tokenizer shared by the fact parsers.
class FactScanner {
 public:
  FactScanner(const std::shared_ptr<Schema>& schema, std::string_view text)
      : schema_(schema), text_(text) {}

  void SkipSeparators() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ',' || text_[pos_] == ';')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSeparators();
    return pos_ >= text_.size();
  }

  bool AtBar() {
    SkipSeparators();
    return pos_ < text_.size() && text_[pos_] == '|';
  }

  void ConsumeBar() {
    SHAPLEY_CHECK(AtBar());
    ++pos_;
  }

  Fact ParseOneFact() {
    SkipSeparators();
    std::string relation = ParseIdentifier("relation name");
    Expect('(');
    std::vector<Constant> args;
    while (true) {
      SkipSeparators();
      args.push_back(Constant::Named(ParseIdentifier("constant")));
      SkipSeparators();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        break;
      }
      // SkipSeparators already consumed the comma; just continue unless at a
      // malformed position.
      if (pos_ >= text_.size()) {
        throw std::invalid_argument("ParseDatabase: unterminated fact near '" +
                                    relation + "'");
      }
    }
    RelationId id = schema_->AddRelation(relation,
                                         static_cast<uint32_t>(args.size()));
    return Fact(id, std::move(args));
  }

 private:
  std::string ParseIdentifier(const char* what) {
    SkipSeparators();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '#' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (start == pos_) {
      throw std::invalid_argument(std::string("ParseDatabase: expected ") +
                                  what + " at position " +
                                  std::to_string(pos_) + " in '" +
                                  std::string(text_) + "'");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void Expect(char c) {
    SkipSeparators();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::invalid_argument(std::string("ParseDatabase: expected '") +
                                  c + "' at position " + std::to_string(pos_));
    }
    ++pos_;
  }

  std::shared_ptr<Schema> schema_;
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Database ParseDatabase(const std::shared_ptr<Schema>& schema,
                       std::string_view text) {
  Database db(schema);
  FactScanner scanner(schema, text);
  while (!scanner.AtEnd()) {
    db.Insert(scanner.ParseOneFact());
  }
  return db;
}

PartitionedDatabase ParsePartitionedDatabase(
    const std::shared_ptr<Schema>& schema, std::string_view text) {
  Database endo(schema), exo(schema);
  FactScanner scanner(schema, text);
  bool in_exogenous = false;
  while (!scanner.AtEnd()) {
    if (scanner.AtBar()) {
      if (in_exogenous) {
        throw std::invalid_argument("ParsePartitionedDatabase: two '|' bars");
      }
      scanner.ConsumeBar();
      in_exogenous = true;
      continue;
    }
    Fact f = scanner.ParseOneFact();
    (in_exogenous ? exo : endo).Insert(std::move(f));
  }
  return PartitionedDatabase(std::move(endo), std::move(exo));
}

Fact ParseFact(const std::shared_ptr<Schema>& schema, std::string_view text) {
  FactScanner scanner(schema, text);
  Fact f = scanner.ParseOneFact();
  if (!scanner.AtEnd()) {
    throw std::invalid_argument("ParseFact: trailing input in '" +
                                std::string(text) + "'");
  }
  return f;
}

}  // namespace shapley
