#include "shapley/data/renaming.h"

namespace shapley {

void ConstantRenaming::Map(Constant from, Constant to) {
  mapping_[from] = to;
}

Constant ConstantRenaming::Apply(Constant c) const {
  auto it = mapping_.find(c);
  return it == mapping_.end() ? c : it->second;
}

Fact ConstantRenaming::Apply(const Fact& fact) const {
  std::vector<Constant> args;
  args.reserve(fact.args().size());
  for (Constant c : fact.args()) args.push_back(Apply(c));
  return Fact(fact.relation(), std::move(args));
}

Database ConstantRenaming::Apply(const Database& db) const {
  Database result(db.schema());
  for (const Fact& f : db.facts()) result.Insert(Apply(f));
  return result;
}

ConstantRenaming ConstantRenaming::FreshExcept(
    const Database& db, const std::set<Constant>& keep) {
  ConstantRenaming renaming;
  for (Constant c : db.Constants()) {
    if (keep.count(c) == 0) {
      renaming.Map(c, Constant::Fresh(c.name()));
    }
  }
  return renaming;
}

ConstantRenaming ConstantRenaming::SingleFresh(Constant from) {
  ConstantRenaming renaming;
  renaming.Map(from, Constant::Fresh(from.name()));
  return renaming;
}

}  // namespace shapley
