#ifndef SHAPLEY_DATA_SCHEMA_H_
#define SHAPLEY_DATA_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace shapley {

/// Identifier of a relation symbol inside one Schema.
using RelationId = uint32_t;

/// A relational schema: a finite set of relation symbols with arities.
///
/// Databases and queries that are meant to interoperate must share one Schema
/// instance (relation ids are schema-local); the conventional way to hold one
/// is a std::shared_ptr<Schema> created by Schema::Create().
class Schema {
 public:
  static std::shared_ptr<Schema> Create() { return std::make_shared<Schema>(); }

  /// Adds a relation; returns its id. Re-adding the same name with the same
  /// arity returns the existing id; a different arity throws
  /// std::invalid_argument.
  RelationId AddRelation(std::string_view name, uint32_t arity);

  /// Finds a relation id by name.
  std::optional<RelationId> FindRelation(std::string_view name) const;

  uint32_t arity(RelationId id) const;
  const std::string& name(RelationId id) const;

  /// Number of relations.
  size_t size() const { return arities_.size(); }

  /// True iff every relation is binary — i.e. this is a graph schema, the
  /// setting of RPQs / CRPQs and of [Amarilli 2023]'s hardness result.
  bool IsGraphSchema() const;

  /// All relation ids, in insertion order.
  std::vector<RelationId> relations() const;

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace shapley

#endif  // SHAPLEY_DATA_SCHEMA_H_
