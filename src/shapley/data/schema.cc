#include "shapley/data/schema.h"

#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

RelationId Schema::AddRelation(std::string_view name, uint32_t arity) {
  if (arity == 0) {
    throw std::invalid_argument("Schema: relations must have positive arity");
  }
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (arities_[it->second] != arity) {
      throw std::invalid_argument("Schema: relation '" + std::string(name) +
                                  "' re-declared with different arity");
    }
    return it->second;
  }
  RelationId id = static_cast<RelationId>(names_.size());
  names_.emplace_back(name);
  arities_.push_back(arity);
  by_name_.emplace(names_.back(), id);
  return id;
}

std::optional<RelationId> Schema::FindRelation(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

uint32_t Schema::arity(RelationId id) const {
  SHAPLEY_CHECK_MSG(id < arities_.size(), "bad relation id " << id);
  return arities_[id];
}

const std::string& Schema::name(RelationId id) const {
  SHAPLEY_CHECK_MSG(id < names_.size(), "bad relation id " << id);
  return names_[id];
}

bool Schema::IsGraphSchema() const {
  for (uint32_t a : arities_) {
    if (a != 2) return false;
  }
  return !arities_.empty();
}

std::vector<RelationId> Schema::relations() const {
  std::vector<RelationId> ids(names_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<RelationId>(i);
  return ids;
}

}  // namespace shapley
