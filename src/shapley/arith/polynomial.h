#ifndef SHAPLEY_ARITH_POLYNOMIAL_H_
#define SHAPLEY_ARITH_POLYNOMIAL_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "shapley/arith/big_int.h"
#include "shapley/arith/big_rational.h"

namespace shapley {

/// Dense univariate polynomial with BigInt coefficients.
///
/// The central datatype of size-stratified counting: a database region with
/// n endogenous facts is summarized by the generating polynomial
/// F(z) = sum_j (#size-j generalized supports) z^j, and the lifted FGMC
/// engine combines regions by polynomial arithmetic (product = independent
/// join, the (1+z)^n unit = "any subset").
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;

  /// From low-to-high coefficients; trailing zeros are trimmed.
  explicit Polynomial(std::vector<BigInt> coefficients);

  /// The constant polynomial c.
  static Polynomial Constant(BigInt c);
  /// The monomial c * z^k.
  static Polynomial Monomial(BigInt c, size_t k);
  /// (1 + z)^n — the subset-generating polynomial of an n-element set.
  static Polynomial OnePlusZPower(size_t n);

  bool IsZero() const { return coefficients_.empty(); }
  /// Degree; -1 for the zero polynomial.
  int Degree() const { return static_cast<int>(coefficients_.size()) - 1; }

  /// Coefficient of z^k (zero beyond the degree).
  const BigInt& Coefficient(size_t k) const;
  const std::vector<BigInt>& coefficients() const { return coefficients_; }

  /// Sum of all coefficients, i.e. evaluation at z = 1.
  BigInt SumOfCoefficients() const;

  Polynomial& operator+=(const Polynomial& rhs);
  Polynomial& operator-=(const Polynomial& rhs);
  Polynomial& operator*=(const Polynomial& rhs);

  friend Polynomial operator+(Polynomial a, const Polynomial& b) { return a += b; }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) { return a -= b; }
  friend Polynomial operator*(Polynomial a, const Polynomial& b) { return a *= b; }

  /// Multiplies by z^k (shifts coefficients up).
  Polynomial ShiftUp(size_t k) const;

  /// Exact evaluation at a rational point.
  BigRational Evaluate(const BigRational& z) const;
  /// Exact evaluation at an integer point.
  BigInt EvaluateInt(const BigInt& z) const;

  friend bool operator==(const Polynomial& a, const Polynomial& b) {
    return a.coefficients_ == b.coefficients_;
  }

  /// Human-readable rendering, e.g. "1 + 3z + 2z^2".
  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, const Polynomial& p);

 private:
  void Trim();
  std::vector<BigInt> coefficients_;  // coefficients_[k] is the z^k term.
};

}  // namespace shapley

#endif  // SHAPLEY_ARITH_POLYNOMIAL_H_
