#include "shapley/arith/big_int.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

constexpr uint64_t kBase = uint64_t{1} << 32;

// Divides the magnitude `limbs` (little-endian) in place by a single 32-bit
// divisor and returns the remainder.
uint32_t DivModSmall(std::vector<uint32_t>* limbs, uint32_t divisor) {
  uint64_t rem = 0;
  for (size_t i = limbs->size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | (*limbs)[i];
    (*limbs)[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
  return static_cast<uint32_t>(rem);
}

// Multiplies the magnitude in place by a small factor and adds a small term.
void MulAddSmall(std::vector<uint32_t>* limbs, uint32_t factor, uint32_t add) {
  uint64_t carry = add;
  for (uint32_t& limb : *limbs) {
    uint64_t cur = uint64_t{limb} * factor + carry;
    limb = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  while (carry != 0) {
    limbs->push_back(static_cast<uint32_t>(carry));
    carry >>= 32;
  }
}

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  sign_ = value > 0 ? 1 : -1;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = value > 0 ? static_cast<uint64_t>(value)
                           : ~static_cast<uint64_t>(value) + 1;
  limbs_.push_back(static_cast<uint32_t>(mag));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
}

BigInt BigInt::FromString(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt: empty string");
  bool negative = false;
  size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) throw std::invalid_argument("BigInt: no digits");
  BigInt result;
  // Consume digits in chunks of 9 (largest power of ten below 2^32).
  while (i < text.size()) {
    uint32_t chunk = 0;
    uint32_t chunk_base = 1;
    for (int d = 0; d < 9 && i < text.size(); ++d, ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        throw std::invalid_argument("BigInt: invalid digit in '" +
                                    std::string(text) + "'");
      }
      chunk = chunk * 10 + static_cast<uint32_t>(text[i] - '0');
      chunk_base *= 10;
    }
    MulAddSmall(&result.limbs_, chunk_base, chunk);
  }
  result.sign_ = result.limbs_.empty() ? 0 : (negative ? -1 : 1);
  return result;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint32_t rem = DivModSmall(&mag, 1000000000u);
    if (mag.empty()) {
      // Most significant chunk: no zero padding.
      digits.insert(0, std::to_string(rem));
    } else {
      std::string chunk = std::to_string(rem);
      digits.insert(0, std::string(9 - chunk.size(), '0') + chunk);
    }
  }
  return (sign_ < 0 ? "-" : "") + digits;
}

std::optional<int64_t> BigInt::ToInt64() const {
  if (limbs_.size() > 2) return std::nullopt;
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= uint64_t{limbs_[1]} << 32;
  if (sign_ >= 0) {
    if (mag > static_cast<uint64_t>(INT64_MAX)) return std::nullopt;
    return static_cast<int64_t>(mag);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX) + 1) return std::nullopt;
  return -static_cast<int64_t>(mag - 1) - 1;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  size_t bits = (limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.sign_ = -result.sign_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  if (result.sign_ < 0) result.sign_ = 1;
  return result;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) sign_ = 0;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::AddMagnitude(const BigInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t cur = carry + limbs_[i];
    if (i < rhs.limbs_.size()) cur += rhs.limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
}

void BigInt::SubMagnitudeSmaller(const BigInt& rhs) {
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t cur = static_cast<int64_t>(limbs_[i]) - borrow -
                  (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0);
    if (cur < 0) {
      cur += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<uint32_t>(cur);
  }
  SHAPLEY_CHECK(borrow == 0);
  Trim();
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (rhs.IsZero()) return *this;
  if (IsZero()) return *this = rhs;
  if (sign_ == rhs.sign_) {
    AddMagnitude(rhs);
    return *this;
  }
  int cmp = CompareMagnitude(*this, rhs);
  if (cmp == 0) return *this = BigInt();
  if (cmp > 0) {
    SubMagnitudeSmaller(rhs);
  } else {
    BigInt tmp = rhs;
    tmp.SubMagnitudeSmaller(*this);
    *this = std::move(tmp);
  }
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  if (rhs.IsZero()) return *this;
  BigInt negated = rhs;
  negated.sign_ = -negated.sign_;
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (IsZero() || rhs.IsZero()) return *this = BigInt();
  std::vector<uint32_t> result(limbs_.size() + rhs.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t a = limbs_[i];
    for (size_t j = 0; j < rhs.limbs_.size(); ++j) {
      uint64_t cur = result[i + j] + a * rhs.limbs_[j] + carry;
      result[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  sign_ *= rhs.sign_;
  limbs_ = std::move(result);
  Trim();
  return *this;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  if (divisor.IsZero()) throw std::invalid_argument("BigInt: division by zero");
  int cmp = CompareMagnitude(dividend, divisor);
  if (cmp < 0) {
    if (quotient != nullptr) *quotient = BigInt();
    if (remainder != nullptr) *remainder = dividend;
    return;
  }

  BigInt q, r;
  if (divisor.limbs_.size() == 1) {
    q.limbs_ = dividend.limbs_;
    uint32_t rem = DivModSmall(&q.limbs_, divisor.limbs_[0]);
    if (rem != 0) r.limbs_.push_back(rem);
  } else {
    // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top limb
    // has its high bit set, then estimate each quotient limb from the top
    // three dividend limbs and correct (at most twice).
    int shift = 0;
    uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
    auto shifted = [shift](const std::vector<uint32_t>& v) {
      std::vector<uint32_t> out(v.size() + 1, 0);
      for (size_t i = 0; i < v.size(); ++i) {
        out[i] |= static_cast<uint32_t>(uint64_t{v[i]} << shift);
        out[i + 1] = shift == 0 ? 0 : static_cast<uint32_t>(v[i] >> (32 - shift));
      }
      while (!out.empty() && out.back() == 0) out.pop_back();
      return out;
    };
    std::vector<uint32_t> u = shifted(dividend.limbs_);
    std::vector<uint32_t> v = shifted(divisor.limbs_);
    size_t n = v.size();
    size_t m = u.size() - n;
    u.push_back(0);  // u has m + n + 1 limbs.
    q.limbs_.assign(m + 1, 0);

    for (size_t j = m + 1; j-- > 0;) {
      uint64_t numerator = (uint64_t{u[j + n]} << 32) | u[j + n - 1];
      uint64_t qhat = numerator / v[n - 1];
      uint64_t rhat = numerator % v[n - 1];
      while (qhat >= kBase ||
             (n >= 2 &&
              qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2]))) {
        --qhat;
        rhat += v[n - 1];
        if (rhat >= kBase) break;
      }
      // Multiply-and-subtract qhat * v from u[j .. j+n].
      int64_t borrow = 0;
      uint64_t carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t product = qhat * v[i] + carry;
        carry = product >> 32;
        int64_t diff = static_cast<int64_t>(u[i + j]) -
                       static_cast<int64_t>(product & 0xffffffffu) - borrow;
        if (diff < 0) {
          diff += static_cast<int64_t>(kBase);
          borrow = 1;
        } else {
          borrow = 0;
        }
        u[i + j] = static_cast<uint32_t>(diff);
      }
      int64_t diff = static_cast<int64_t>(u[j + n]) -
                     static_cast<int64_t>(carry) - borrow;
      if (diff < 0) {
        // qhat was one too large: add v back once.
        diff += static_cast<int64_t>(kBase);
        --qhat;
        uint64_t add_carry = 0;
        for (size_t i = 0; i < n; ++i) {
          uint64_t cur = uint64_t{u[i + j]} + v[i] + add_carry;
          u[i + j] = static_cast<uint32_t>(cur);
          add_carry = cur >> 32;
        }
        diff += static_cast<int64_t>(add_carry);
        diff &= static_cast<int64_t>(kBase - 1);
      }
      u[j + n] = static_cast<uint32_t>(diff);
      q.limbs_[j] = static_cast<uint32_t>(qhat);
    }
    // Remainder: u[0 .. n-1] shifted back right.
    u.resize(n);
    if (shift != 0) {
      for (size_t i = 0; i + 1 < n; ++i) {
        u[i] = static_cast<uint32_t>((u[i] >> shift) |
                                     (uint64_t{u[i + 1]} << (32 - shift)));
      }
      u[n - 1] >>= shift;
    }
    r.limbs_ = std::move(u);
  }

  q.sign_ = 1;
  q.Trim();
  q.sign_ = q.limbs_.empty() ? 0 : dividend.sign_ * divisor.sign_;
  r.sign_ = 1;
  r.Trim();
  r.sign_ = r.limbs_.empty() ? 0 : dividend.sign_;
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt q;
  DivMod(*this, rhs, &q, nullptr);
  return *this = std::move(q);
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt r;
  DivMod(*this, rhs, nullptr, &r);
  return *this = std::move(r);
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a = a.Abs();
  b = b.Abs();
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exponent) {
  BigInt result = 1;
  BigInt acc = base;
  while (exponent != 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.sign_ != rhs.sign_) return lhs.sign_ <=> rhs.sign_;
  int cmp = BigInt::CompareMagnitude(lhs, rhs) * (lhs.sign_ < 0 ? -1 : 1);
  return cmp <=> 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

size_t BigInt::Hash() const {
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(sign_ + 1));
  for (uint32_t limb : limbs_) mix(limb);
  return h;
}

}  // namespace shapley
