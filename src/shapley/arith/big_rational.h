#ifndef SHAPLEY_ARITH_BIG_RATIONAL_H_
#define SHAPLEY_ARITH_BIG_RATIONAL_H_

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "shapley/arith/big_int.h"

namespace shapley {

/// Exact rational number: numerator / denominator in lowest terms with a
/// strictly positive denominator. Used for Shapley values, probabilities,
/// and the coefficients of the linear systems in the Section 5 reductions.
class BigRational {
 public:
  /// Zero.
  BigRational() : num_(0), den_(1) {}

  /// Integer value (implicit: mixed expressions are pervasive).
  BigRational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  BigRational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT

  /// numerator / denominator. Throws std::invalid_argument if denominator==0.
  BigRational(BigInt numerator, BigInt denominator);

  const BigInt& numerator() const { return num_; }
  const BigInt& denominator() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  bool IsInteger() const { return den_.IsOne(); }
  int sign() const { return num_.sign(); }

  /// Renders "p" if integral, "p/q" otherwise.
  std::string ToString() const;
  /// Closest double (for display only; never used in computations).
  double ToDouble() const;

  BigRational operator-() const;
  BigRational Inverse() const;

  BigRational& operator+=(const BigRational& rhs);
  BigRational& operator-=(const BigRational& rhs);
  BigRational& operator*=(const BigRational& rhs);
  BigRational& operator/=(const BigRational& rhs);

  friend BigRational operator+(BigRational a, const BigRational& b) { return a += b; }
  friend BigRational operator-(BigRational a, const BigRational& b) { return a -= b; }
  friend BigRational operator*(BigRational a, const BigRational& b) { return a *= b; }
  friend BigRational operator/(BigRational a, const BigRational& b) { return a /= b; }

  friend bool operator==(const BigRational& a, const BigRational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const BigRational& a,
                                          const BigRational& b);

  friend std::ostream& operator<<(std::ostream& os, const BigRational& v);

  size_t Hash() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // Invariant: den_ > 0, gcd(|num_|, den_) == 1.
};

}  // namespace shapley

template <>
struct std::hash<shapley::BigRational> {
  size_t operator()(const shapley::BigRational& v) const { return v.Hash(); }
};

#endif  // SHAPLEY_ARITH_BIG_RATIONAL_H_
