#include "shapley/arith/linear_system.h"

#include <stdexcept>
#include <utility>

#include "shapley/common/macros.h"

namespace shapley {

std::vector<BigRational> SolveLinearSystem(RationalMatrix a,
                                           std::vector<BigRational> b) {
  const size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("SolveLinearSystem: dimension mismatch");
  }
  for (const auto& row : a) {
    if (row.size() != n) {
      throw std::invalid_argument("SolveLinearSystem: matrix not square");
    }
  }

  // Forward elimination with first-nonzero pivoting (exact arithmetic needs
  // no numerical pivot selection, only a nonzero one).
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && a[pivot][col].IsZero()) ++pivot;
    if (pivot == n) {
      throw std::invalid_argument("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      std::swap(a[pivot], a[col]);
      std::swap(b[pivot], b[col]);
    }
    const BigRational inv = a[col][col].Inverse();
    for (size_t j = col; j < n; ++j) a[col][j] *= inv;
    b[col] *= inv;
    for (size_t row = col + 1; row < n; ++row) {
      if (a[row][col].IsZero()) continue;
      const BigRational factor = a[row][col];
      for (size_t j = col; j < n; ++j) {
        a[row][j] -= factor * a[col][j];
      }
      b[row] -= factor * b[col];
    }
  }

  // Back substitution.
  std::vector<BigRational> x(n);
  for (size_t row = n; row-- > 0;) {
    BigRational sum = b[row];
    for (size_t j = row + 1; j < n; ++j) sum -= a[row][j] * x[j];
    x[row] = sum;  // Diagonal is 1 after normalization.
  }
  return x;
}

std::vector<BigRational> SolveVandermonde(
    const std::vector<BigRational>& points,
    const std::vector<BigRational>& values) {
  const size_t n = points.size();
  if (values.size() != n) {
    throw std::invalid_argument("SolveVandermonde: dimension mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (points[i] == points[j]) {
        throw std::invalid_argument("SolveVandermonde: repeated sample point");
      }
    }
  }

  // Newton divided differences: d[i] starts as f[x_i] and is refined in
  // place to the order-i coefficient.
  std::vector<BigRational> d = values;
  for (size_t order = 1; order < n; ++order) {
    for (size_t i = n; i-- > order;) {
      d[i] = (d[i] - d[i - 1]) / (points[i] - points[i - order]);
    }
  }

  // Expand the Newton form prod_{k<i}(z - x_k) into monomial coefficients.
  std::vector<BigRational> coeffs(n, BigRational(0));
  std::vector<BigRational> basis(n, BigRational(0));  // Current Newton basis.
  basis[0] = 1;
  size_t basis_degree = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k <= basis_degree; ++k) {
      coeffs[k] += d[i] * basis[k];
    }
    if (i + 1 < n) {
      // basis *= (z - points[i]).
      ++basis_degree;
      for (size_t k = basis_degree + 1; k-- > 0;) {
        BigRational next = k > 0 ? basis[k - 1] : BigRational(0);
        basis[k] = next - points[i] * basis[k];
      }
    }
  }
  return coeffs;
}

}  // namespace shapley
