#include "shapley/arith/polynomial.h"

#include <ostream>
#include <sstream>

#include "shapley/arith/factorial.h"
#include "shapley/common/macros.h"

namespace shapley {

namespace {
const BigInt& ZeroBigInt() {
  static const BigInt kZero(0);
  return kZero;
}
}  // namespace

Polynomial::Polynomial(std::vector<BigInt> coefficients)
    : coefficients_(std::move(coefficients)) {
  Trim();
}

Polynomial Polynomial::Constant(BigInt c) {
  std::vector<BigInt> coeffs;
  coeffs.push_back(std::move(c));
  return Polynomial(std::move(coeffs));
}

Polynomial Polynomial::Monomial(BigInt c, size_t k) {
  if (c.IsZero()) return Polynomial();
  std::vector<BigInt> coeffs(k + 1, BigInt(0));
  coeffs[k] = std::move(c);
  return Polynomial(std::move(coeffs));
}

Polynomial Polynomial::OnePlusZPower(size_t n) {
  std::vector<BigInt> coeffs;
  coeffs.reserve(n + 1);
  for (size_t k = 0; k <= n; ++k) coeffs.push_back(Binomial(n, k));
  return Polynomial(std::move(coeffs));
}

void Polynomial::Trim() {
  while (!coefficients_.empty() && coefficients_.back().IsZero()) {
    coefficients_.pop_back();
  }
}

const BigInt& Polynomial::Coefficient(size_t k) const {
  if (k >= coefficients_.size()) return ZeroBigInt();
  return coefficients_[k];
}

BigInt Polynomial::SumOfCoefficients() const {
  BigInt sum = 0;
  for (const BigInt& c : coefficients_) sum += c;
  return sum;
}

Polynomial& Polynomial::operator+=(const Polynomial& rhs) {
  if (coefficients_.size() < rhs.coefficients_.size()) {
    coefficients_.resize(rhs.coefficients_.size(), BigInt(0));
  }
  for (size_t i = 0; i < rhs.coefficients_.size(); ++i) {
    coefficients_[i] += rhs.coefficients_[i];
  }
  Trim();
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& rhs) {
  if (coefficients_.size() < rhs.coefficients_.size()) {
    coefficients_.resize(rhs.coefficients_.size(), BigInt(0));
  }
  for (size_t i = 0; i < rhs.coefficients_.size(); ++i) {
    coefficients_[i] -= rhs.coefficients_[i];
  }
  Trim();
  return *this;
}

Polynomial& Polynomial::operator*=(const Polynomial& rhs) {
  if (IsZero() || rhs.IsZero()) {
    coefficients_.clear();
    return *this;
  }
  std::vector<BigInt> result(coefficients_.size() + rhs.coefficients_.size() - 1,
                             BigInt(0));
  for (size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i].IsZero()) continue;
    for (size_t j = 0; j < rhs.coefficients_.size(); ++j) {
      result[i + j] += coefficients_[i] * rhs.coefficients_[j];
    }
  }
  coefficients_ = std::move(result);
  Trim();
  return *this;
}

Polynomial Polynomial::ShiftUp(size_t k) const {
  if (IsZero() || k == 0) {
    Polynomial copy = *this;
    return copy;
  }
  std::vector<BigInt> coeffs(coefficients_.size() + k, BigInt(0));
  for (size_t i = 0; i < coefficients_.size(); ++i) {
    coeffs[i + k] = coefficients_[i];
  }
  return Polynomial(std::move(coeffs));
}

BigRational Polynomial::Evaluate(const BigRational& z) const {
  BigRational result = 0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    result = result * z + BigRational(coefficients_[i]);
  }
  return result;
}

BigInt Polynomial::EvaluateInt(const BigInt& z) const {
  BigInt result = 0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    result = result * z + coefficients_[i];
  }
  return result;
}

std::string Polynomial::ToString() const {
  if (IsZero()) return "0";
  std::ostringstream os;
  bool first = true;
  for (size_t k = 0; k < coefficients_.size(); ++k) {
    if (coefficients_[k].IsZero()) continue;
    if (!first) os << " + ";
    first = false;
    if (k == 0) {
      os << coefficients_[k];
    } else {
      if (!coefficients_[k].IsOne()) os << coefficients_[k];
      os << "z";
      if (k > 1) os << "^" << k;
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Polynomial& p) {
  return os << p.ToString();
}

}  // namespace shapley
