#include "shapley/arith/factorial.h"

#include "shapley/common/macros.h"

namespace shapley {

FactorialTable::FactorialTable() { cache_.push_back(BigInt(1)); }

const BigInt& FactorialTable::Factorial(size_t n) {
  while (cache_.size() <= n) {
    cache_.push_back(cache_.back() * BigInt(static_cast<int64_t>(cache_.size())));
  }
  return cache_[n];
}

BigInt FactorialTable::Binomial(size_t n, size_t k) {
  if (k > n) return BigInt(0);
  return Factorial(n) / (Factorial(k) * Factorial(n - k));
}

BigRational FactorialTable::ShapleyWeight(size_t n, size_t b) {
  SHAPLEY_CHECK_MSG(b < n, "coalition size " << b << " not below n=" << n);
  return BigRational(Factorial(b) * Factorial(n - b - 1), Factorial(n));
}

namespace {
FactorialTable& SharedTable() {
  thread_local FactorialTable table;
  return table;
}
}  // namespace

const BigInt& Factorial(size_t n) { return SharedTable().Factorial(n); }
BigInt Binomial(size_t n, size_t k) { return SharedTable().Binomial(n, k); }
BigRational ShapleyWeight(size_t n, size_t b) {
  return SharedTable().ShapleyWeight(n, b);
}

}  // namespace shapley
