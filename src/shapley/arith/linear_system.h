#ifndef SHAPLEY_ARITH_LINEAR_SYSTEM_H_
#define SHAPLEY_ARITH_LINEAR_SYSTEM_H_

#include <vector>

#include "shapley/arith/big_rational.h"

namespace shapley {

/// Dense matrix of exact rationals (row-major).
using RationalMatrix = std::vector<std::vector<BigRational>>;

/// Solves A x = b exactly by Gaussian elimination with nonzero pivoting.
/// Requires A square and nonsingular; throws std::invalid_argument otherwise.
///
/// The Section 5 reductions recover the FGMC counts from |Dn|+1 Shapley
/// oracle answers by inverting the Pascal-like matrix of general term
/// (j+s)!(n+i-j)!/(n+i+s+1)! — invertible by Bacher (2002) — and the
/// Claim A.2 equivalence inverts a Vandermonde system. Both go through here.
std::vector<BigRational> SolveLinearSystem(RationalMatrix a,
                                           std::vector<BigRational> b);

/// Solves the Vandermonde system sum_j c_j x_i^j = v_i for the coefficients
/// c_j, given pairwise-distinct sample points x_i. Uses Newton's divided
/// differences (O(n^2), much cheaper than generic elimination).
std::vector<BigRational> SolveVandermonde(const std::vector<BigRational>& points,
                                          const std::vector<BigRational>& values);

}  // namespace shapley

#endif  // SHAPLEY_ARITH_LINEAR_SYSTEM_H_
