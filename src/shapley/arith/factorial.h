#ifndef SHAPLEY_ARITH_FACTORIAL_H_
#define SHAPLEY_ARITH_FACTORIAL_H_

#include <cstddef>
#include <vector>

#include "shapley/arith/big_int.h"
#include "shapley/arith/big_rational.h"

namespace shapley {

/// Memoized factorial / binomial tables.
///
/// The Shapley weight of a coalition of size b among n players is
/// b! (n-b-1)! / n!, and the Section 5 reductions build matrices whose
/// entries are ratios of factorials, so these are called in tight loops.
/// The cache grows on demand and is cheap to copy-construct empty.
class FactorialTable {
 public:
  FactorialTable();

  /// n! (n up to a few thousand in practice).
  const BigInt& Factorial(size_t n);

  /// Binomial coefficient C(n, k); 0 when k > n.
  BigInt Binomial(size_t n, size_t k);

  /// The Shapley coalition weight |B|! (n - |B| - 1)! / n! for a game with
  /// n players and a coalition of size b (requires b < n).
  BigRational ShapleyWeight(size_t n, size_t b);

 private:
  std::vector<BigInt> cache_;  // cache_[i] == i!
};

/// Convenience free functions backed by a thread-local table.
const BigInt& Factorial(size_t n);
BigInt Binomial(size_t n, size_t k);
BigRational ShapleyWeight(size_t n, size_t b);

}  // namespace shapley

#endif  // SHAPLEY_ARITH_FACTORIAL_H_
