#ifndef SHAPLEY_ARITH_BIG_INT_H_
#define SHAPLEY_ARITH_BIG_INT_H_

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace shapley {

/// Arbitrary-precision signed integer.
///
/// Shapley values are rational numbers whose denominators are factorials of
/// the database size, and the reductions of the paper solve exact linear
/// systems whose coefficients are ratios of factorials. Floating point is
/// useless here; every engine in this library computes over BigInt /
/// BigRational so that "the reduction recovers exactly the model counts" is a
/// checkable statement.
///
/// Representation: sign (-1, 0, +1) plus a little-endian vector of 32-bit
/// limbs with no leading zero limb. Multiplication is schoolbook (the numbers
/// involved are at most a few thousand digits; Karatsuba would be noise),
/// division is Knuth's Algorithm D.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer (implicit on purpose: arithmetic code
  /// reads much better with mixed BigInt/int expressions).
  BigInt(int64_t value);  // NOLINT(google-explicit-constructor)

  /// Parses a base-10 integer with optional leading '-'.
  /// Throws std::invalid_argument on malformed input.
  static BigInt FromString(std::string_view text);

  /// Base-10 rendering, e.g. "-1234".
  std::string ToString() const;

  /// -1, 0 or +1.
  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsNegative() const { return sign_ < 0; }
  bool IsOne() const { return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1; }

  /// Value as int64_t if it fits, std::nullopt otherwise.
  std::optional<int64_t> ToInt64() const;

  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  /// Computes quotient and remainder in one pass (truncated semantics).
  /// Throws std::invalid_argument on division by zero.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// Greatest common divisor of |a| and |b|; Gcd(0, 0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  /// base raised to a non-negative machine exponent.
  static BigInt Pow(const BigInt& base, uint64_t exponent);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs) {
    return lhs.sign_ == rhs.sign_ && lhs.limbs_ == rhs.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& lhs,
                                          const BigInt& rhs);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

  /// FNV-1a style hash, suitable for std::unordered_map keys.
  size_t Hash() const;

 private:
  // Invariant: sign_ == 0 iff limbs_ is empty; limbs_.back() != 0 otherwise.
  int sign_ = 0;
  std::vector<uint32_t> limbs_;

  void Trim();
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  void AddMagnitude(const BigInt& rhs);
  // Requires |*this| >= |rhs|.
  void SubMagnitudeSmaller(const BigInt& rhs);
};

}  // namespace shapley

template <>
struct std::hash<shapley::BigInt> {
  size_t operator()(const shapley::BigInt& v) const { return v.Hash(); }
};

#endif  // SHAPLEY_ARITH_BIG_INT_H_
