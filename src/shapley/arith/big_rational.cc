#include "shapley/arith/big_rational.h"

#include <ostream>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

BigRational::BigRational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  if (den_.IsZero()) {
    throw std::invalid_argument("BigRational: zero denominator");
  }
  Normalize();
}

void BigRational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = 1;
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.IsOne()) {
    num_ /= g;
    den_ /= g;
  }
}

std::string BigRational::ToString() const {
  if (IsInteger()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double BigRational::ToDouble() const {
  // Scale to ~18 significant decimal digits, convert, divide back.
  constexpr int64_t kScale = 1000000000000000000;  // 1e18
  BigInt scaled = num_ * BigInt(kScale) / den_;
  auto small = scaled.ToInt64();
  if (small.has_value()) return static_cast<double>(*small) / 1e18;
  // Fall back for huge values: string-based exponent estimate.
  std::string s = scaled.ToString();
  bool neg = !s.empty() && s[0] == '-';
  size_t digits = s.size() - (neg ? 1 : 0);
  double mantissa = std::stod(s.substr(0, (neg ? 1 : 0) + 15));
  double result = mantissa;
  for (size_t i = 15; i < digits; ++i) result *= 10.0;
  return result / 1e18;
}

BigRational BigRational::operator-() const {
  BigRational result = *this;
  result.num_ = -result.num_;
  return result;
}

BigRational BigRational::Inverse() const {
  if (IsZero()) throw std::invalid_argument("BigRational: inverse of zero");
  return BigRational(den_, num_);
}

BigRational& BigRational::operator+=(const BigRational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  Normalize();
  return *this;
}

BigRational& BigRational::operator-=(const BigRational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  Normalize();
  return *this;
}

BigRational& BigRational::operator*=(const BigRational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  Normalize();
  return *this;
}

BigRational& BigRational::operator/=(const BigRational& rhs) {
  if (rhs.IsZero()) throw std::invalid_argument("BigRational: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  Normalize();
  return *this;
}

std::strong_ordering operator<=>(const BigRational& a, const BigRational& b) {
  // Cross-multiply: denominators are positive by invariant.
  return a.num_ * b.den_ <=> b.num_ * a.den_;
}

std::ostream& operator<<(std::ostream& os, const BigRational& v) {
  return os << v.ToString();
}

size_t BigRational::Hash() const {
  return num_.Hash() * 1000003u ^ den_.Hash();
}

}  // namespace shapley
