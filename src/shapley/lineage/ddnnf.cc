#include "shapley/lineage/ddnnf.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

using Clause = std::vector<uint32_t>;
using ClauseSet = std::vector<Clause>;

// Canonical cache key for a clause set (clauses are sorted internally and
// the set is sorted lexicographically by the compiler before keying).
std::string KeyOf(const ClauseSet& clauses) {
  std::ostringstream os;
  for (const Clause& c : clauses) {
    for (uint32_t v : c) os << v << ',';
    os << ';';
  }
  return os.str();
}

// Sorts the clause set and removes duplicates and absorbed clauses.
void Normalize(ClauseSet* clauses) {
  std::sort(clauses->begin(), clauses->end(),
            [](const Clause& a, const Clause& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  clauses->erase(std::unique(clauses->begin(), clauses->end()),
                 clauses->end());
  ClauseSet kept;
  for (const Clause& clause : *clauses) {
    bool absorbed = false;
    for (const Clause& small : kept) {
      if (std::includes(clause.begin(), clause.end(), small.begin(),
                        small.end())) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(clause);
  }
  *clauses = std::move(kept);
}

class Compiler {
 public:
  explicit Compiler(const DnfCompileOptions& options) : options_(options) {
    // Node 0 = FALSE, node 1 = TRUE (shared constants).
    nodes_.push_back({DdnnfCircuit::NodeKind::kFalse, 0, 0, 0, {}, 0});
    nodes_.push_back({DdnnfCircuit::NodeKind::kTrue, 0, 0, 0, {}, 0});
  }

  std::vector<DdnnfCircuit::Node> TakeNodes() { return std::move(nodes_); }

  uint32_t Compile(ClauseSet clauses) {
    Normalize(&clauses);
    if (clauses.empty()) return 0;          // FALSE.
    if (clauses.front().empty()) return 1;  // TRUE (absorption left only {}).

    if (!options_.use_cache) return CompileUncached(clauses);
    std::string key = KeyOf(clauses);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;

    uint32_t result = CompileUncached(clauses);
    cache_.emplace(std::move(key), result);
    return result;
  }

 private:
  uint32_t NewNode(DdnnfCircuit::Node node) {
    if (nodes_.size() >= options_.node_cap) {
      throw std::invalid_argument("CompileDnf: node cap exceeded");
    }
    nodes_.push_back(std::move(node));
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  uint32_t CompileUncached(const ClauseSet& clauses) {
    // Connected components by shared variables. A DNF whose clause groups
    // share no variable is the OR of independent sub-DNFs.
    auto components = options_.use_component_decomposition
                          ? SplitComponents(clauses)
                          : std::vector<ClauseSet>{clauses};
    if (components.size() > 1) {
      std::vector<uint32_t> children;
      uint32_t var_count = 0;
      for (ClauseSet& component : components) {
        uint32_t child = Compile(std::move(component));
        if (child == 1) return 1;  // TRUE annihilates the OR.
        if (child == 0) continue;  // FALSE is the OR unit.
        var_count += nodes_[child].var_count;
        children.push_back(child);
      }
      if (children.empty()) return 0;
      if (children.size() == 1) return children.front();
      DdnnfCircuit::Node node;
      node.kind = DdnnfCircuit::NodeKind::kIndependentOr;
      node.children = std::move(children);
      node.var_count = var_count;
      return NewNode(std::move(node));
    }

    // Shannon-expand on the most frequent variable.
    uint32_t branch = MostFrequentVariable(clauses);
    ClauseSet hi, lo;
    for (const Clause& clause : clauses) {
      if (std::binary_search(clause.begin(), clause.end(), branch)) {
        Clause without;
        for (uint32_t v : clause) {
          if (v != branch) without.push_back(v);
        }
        hi.push_back(std::move(without));
        // Clause is falsified in the lo branch: dropped.
      } else {
        hi.push_back(clause);
        lo.push_back(clause);
      }
    }
    uint32_t vars_here = CountVariables(clauses);
    uint32_t hi_node = Compile(std::move(hi));
    uint32_t lo_node = Compile(std::move(lo));

    DdnnfCircuit::Node node;
    node.kind = DdnnfCircuit::NodeKind::kDecision;
    node.variable = branch;
    node.hi = hi_node;
    node.lo = lo_node;
    node.var_count = vars_here;
    return NewNode(std::move(node));
  }

  static uint32_t CountVariables(const ClauseSet& clauses) {
    std::set<uint32_t> vars;
    for (const Clause& c : clauses) vars.insert(c.begin(), c.end());
    return static_cast<uint32_t>(vars.size());
  }

  static uint32_t MostFrequentVariable(const ClauseSet& clauses) {
    std::map<uint32_t, size_t> freq;
    for (const Clause& c : clauses) {
      for (uint32_t v : c) ++freq[v];
    }
    SHAPLEY_CHECK(!freq.empty());
    uint32_t best = freq.begin()->first;
    size_t best_count = 0;
    for (const auto& [v, count] : freq) {
      if (count > best_count) {
        best = v;
        best_count = count;
      }
    }
    return best;
  }

  static std::vector<ClauseSet> SplitComponents(const ClauseSet& clauses) {
    std::vector<size_t> parent(clauses.size());
    std::iota(parent.begin(), parent.end(), size_t{0});
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::map<uint32_t, size_t> first_clause;
    for (size_t i = 0; i < clauses.size(); ++i) {
      for (uint32_t v : clauses[i]) {
        auto [it, inserted] = first_clause.emplace(v, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::map<size_t, ClauseSet> groups;
    for (size_t i = 0; i < clauses.size(); ++i) {
      groups[find(i)].push_back(clauses[i]);
    }
    std::vector<ClauseSet> out;
    out.reserve(groups.size());
    for (auto& [root, group] : groups) out.push_back(std::move(group));
    return out;
  }

  std::vector<DdnnfCircuit::Node> nodes_;
  DnfCompileOptions options_;
  std::unordered_map<std::string, uint32_t> cache_;
};

}  // namespace

DdnnfCircuit CompileDnf(const Lineage& lineage, size_t node_cap) {
  DnfCompileOptions options;
  options.node_cap = node_cap;
  return CompileDnf(lineage, options);
}

DdnnfCircuit CompileDnf(const Lineage& lineage,
                        const DnfCompileOptions& options) {
  DdnnfCircuit circuit;
  circuit.total_variables_ = lineage.num_variables();
  Compiler compiler(options);
  if (lineage.certainly_true) {
    circuit.root_ = 1;
  } else {
    ClauseSet clauses = lineage.clauses;
    circuit.root_ = compiler.Compile(std::move(clauses));
  }
  circuit.nodes_ = compiler.TakeNodes();
  return circuit;
}

Polynomial DdnnfCircuit::CountBySize() const {
  // Memoized bottom-up: polynomial over vars(node) variables; parents smooth
  // gap variables with (1+z)^gap.
  std::vector<Polynomial> memo(nodes_.size());
  std::vector<bool> done(nodes_.size(), false);

  auto eval = [&](auto&& self, uint32_t id) -> const Polynomial& {
    if (done[id]) return memo[id];
    const Node& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kFalse:
        memo[id] = Polynomial();
        break;
      case NodeKind::kTrue:
        memo[id] = Polynomial::Constant(1);
        break;
      case NodeKind::kDecision: {
        const Polynomial& hi = self(self, node.hi);
        const Polynomial& lo = self(self, node.lo);
        uint32_t inner = node.var_count - 1;
        uint32_t gap_hi = inner - nodes_[node.hi].var_count;
        uint32_t gap_lo = inner - nodes_[node.lo].var_count;
        Polynomial hi_part = hi * Polynomial::OnePlusZPower(gap_hi);
        hi_part = hi_part.ShiftUp(1);  // The branch variable is true.
        Polynomial lo_part = lo * Polynomial::OnePlusZPower(gap_lo);
        memo[id] = hi_part + lo_part;
        break;
      }
      case NodeKind::kAnd: {
        Polynomial product = Polynomial::Constant(1);
        uint32_t child_vars = 0;
        for (uint32_t child : node.children) {
          product *= self(self, child);
          child_vars += nodes_[child].var_count;
        }
        SHAPLEY_CHECK(child_vars <= node.var_count);
        memo[id] = product * Polynomial::OnePlusZPower(node.var_count - child_vars);
        break;
      }
      case NodeKind::kIndependentOr: {
        // Complement product: models(∨ φi) = total − Π (total_i − models(φi)).
        Polynomial complement = Polynomial::Constant(1);
        uint32_t child_vars = 0;
        for (uint32_t child : node.children) {
          const Polynomial& c = self(self, child);
          complement *=
              Polynomial::OnePlusZPower(nodes_[child].var_count) - c;
          child_vars += nodes_[child].var_count;
        }
        SHAPLEY_CHECK(child_vars == node.var_count);
        memo[id] = Polynomial::OnePlusZPower(node.var_count) - complement;
        break;
      }
    }
    done[id] = true;
    return memo[id];
  };

  const Polynomial& root_poly = eval(eval, root_);
  uint32_t gap =
      static_cast<uint32_t>(total_variables_) - nodes_[root_].var_count;
  return root_poly * Polynomial::OnePlusZPower(gap);
}

BigRational DdnnfCircuit::WeightedModelCount(
    const std::vector<BigRational>& probabilities) const {
  SHAPLEY_CHECK_MSG(probabilities.size() == total_variables_,
                    "probability vector size mismatch");
  std::vector<BigRational> memo(nodes_.size());
  std::vector<bool> done(nodes_.size(), false);
  auto eval = [&](auto&& self, uint32_t id) -> const BigRational& {
    if (done[id]) return memo[id];
    const Node& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kFalse:
        memo[id] = BigRational(0);
        break;
      case NodeKind::kTrue:
        memo[id] = BigRational(1);
        break;
      case NodeKind::kDecision: {
        const BigRational& p = probabilities[node.variable];
        memo[id] = p * self(self, node.hi) +
                   (BigRational(1) - p) * self(self, node.lo);
        break;
      }
      case NodeKind::kAnd: {
        BigRational product(1);
        for (uint32_t child : node.children) product *= self(self, child);
        memo[id] = std::move(product);
        break;
      }
      case NodeKind::kIndependentOr: {
        BigRational complement(1);
        for (uint32_t child : node.children) {
          complement *= BigRational(1) - self(self, child);
        }
        memo[id] = BigRational(1) - complement;
        break;
      }
    }
    done[id] = true;
    return memo[id];
  };
  return eval(eval, root_);
}

BigInt DdnnfCircuit::ModelCount() const {
  return CountBySize().SumOfCoefficients();
}

size_t DdnnfCircuit::ApproxBytes() const {
  size_t bytes = sizeof(DdnnfCircuit) + nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    bytes += node.children.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace shapley
