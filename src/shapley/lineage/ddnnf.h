#ifndef SHAPLEY_LINEAGE_DDNNF_H_
#define SHAPLEY_LINEAGE_DDNNF_H_

#include <cstdint>
#include <vector>

#include "shapley/arith/big_rational.h"
#include "shapley/arith/polynomial.h"
#include "shapley/lineage/lineage.h"

namespace shapley {

/// A decision-DNNF circuit compiled from a monotone lineage DNF.
///
/// Knowledge compilation is the "native #SAT tooling" this reproduction
/// leans on: once the lineage is in decision-DNNF, both weighted model
/// counting (→ PQE with arbitrary per-fact probabilities) and size-
/// stratified model counting (→ FGMC/FMC, one count per subset size) are
/// linear-time circuit traversals.
///
/// Nodes: kTrue/kFalse constants, kDecision (branch on a variable; children
/// are the v=1 and v=0 cofactors), kAnd (conjunction of sub-circuits over
/// disjoint variable sets) and kIndependentOr (disjunction of sub-circuits
/// over disjoint variable sets — the "independent union" of lifted
/// inference; counting goes through the complement product
/// 1 − Π(1 − child)). `var_count` is |vars(node)|, used to smooth counting
/// across "gap" variables a child never mentions.
class DdnnfCircuit {
 public:
  enum class NodeKind : uint8_t { kTrue, kFalse, kDecision, kAnd, kIndependentOr };

  struct Node {
    NodeKind kind;
    uint32_t variable = 0;            // kDecision only.
    uint32_t hi = 0, lo = 0;          // kDecision cofactors.
    std::vector<uint32_t> children;   // kAnd only.
    uint32_t var_count = 0;           // |vars(subcircuit)|.
  };

  const std::vector<Node>& nodes() const { return nodes_; }
  uint32_t root() const { return root_; }
  size_t total_variables() const { return total_variables_; }
  size_t size() const { return nodes_.size(); }

  /// The model-count generating polynomial sum_k (#models with k true
  /// variables) z^k over all `total_variables()` variables.
  Polynomial CountBySize() const;

  /// Weighted model count: probability that a random assignment (variable i
  /// true with probability probabilities[i], independently) satisfies the
  /// circuit. This is Pr(D |= q) when variables are the endogenous facts.
  BigRational WeightedModelCount(
      const std::vector<BigRational>& probabilities) const;

  /// Total number of satisfying assignments (CountBySize at z = 1).
  BigInt ModelCount() const;

  /// Approximate heap footprint in bytes (node array + child lists) — the
  /// unit of the size-aware cache accounting in exec/oracle_cache.h.
  /// Circuits routinely outweigh count polynomials by orders of magnitude,
  /// which is why the cache budgets bytes rather than entries alone.
  size_t ApproxBytes() const;

 private:
  friend DdnnfCircuit CompileDnf(const Lineage& lineage, size_t node_cap);
  friend DdnnfCircuit CompileDnf(const Lineage& lineage,
                                 const struct DnfCompileOptions& options);

  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t total_variables_ = 0;
};

/// Compiler knobs — exposed for the ablation study of the design choices
/// (bench_kc_ablation): component decomposition is what keeps circuits
/// polynomial on "independent union" structure; caching is what collapses
/// isomorphic cofactors.
struct DnfCompileOptions {
  size_t node_cap = 2000000;
  bool use_component_decomposition = true;
  bool use_cache = true;
};

/// Compiles a monotone DNF to decision-DNNF by Shannon expansion with
/// connected-component decomposition, absorption and formula caching.
/// Throws std::invalid_argument if more than `node_cap` nodes are created
/// (the lineage of an unsafe query can be genuinely exponential).
DdnnfCircuit CompileDnf(const Lineage& lineage, size_t node_cap = 2000000);

/// Same, with explicit options.
DdnnfCircuit CompileDnf(const Lineage& lineage,
                        const DnfCompileOptions& options);

}  // namespace shapley

#endif  // SHAPLEY_LINEAGE_DDNNF_H_
