#ifndef SHAPLEY_LINEAGE_LINEAGE_H_
#define SHAPLEY_LINEAGE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "shapley/data/partitioned_database.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// Boolean provenance of a monotone query over a partitioned database:
/// a positive DNF over one variable per endogenous fact. Clause = the
/// endogenous part of a minimal support (exogenous facts are always present
/// and drop out). A sub-database S ⊆ Dn satisfies S ∪ Dx |= q iff some
/// clause's variables are all in S.
struct Lineage {
  /// Variable i represents endogenous fact variables[i].
  std::vector<Fact> variables;

  /// Clauses as sorted variable-index sets; absorbed (no clause contains
  /// another) and deduplicated. Empty vector means the query is certainly
  /// false on every sub-database.
  std::vector<std::vector<uint32_t>> clauses;

  /// True iff Dx alone satisfies the query (an empty clause existed); the
  /// clause list is then empty by convention and every sub-database counts.
  bool certainly_true = false;

  size_t num_variables() const { return variables.size(); }

  std::string ToString() const;
};

/// Builds the lineage by enumerating minimal supports of `query` in
/// Dn ∪ Dx (see EnumerateMinimalSupports for the supported query classes).
/// Throws std::invalid_argument for non-monotone queries or when the
/// support enumeration exceeds `cap`.
Lineage BuildLineage(const BooleanQuery& query, const PartitionedDatabase& db,
                     size_t cap = 200000);

}  // namespace shapley

#endif  // SHAPLEY_LINEAGE_LINEAGE_H_
