#include "shapley/lineage/lineage.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "shapley/common/macros.h"
#include "shapley/query/supports.h"

namespace shapley {

std::string Lineage::ToString() const {
  if (certainly_true) return "TRUE";
  if (clauses.empty()) return "FALSE";
  std::ostringstream os;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) os << " ∨ ";
    os << "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) os << "∧";
      os << "x" << clauses[i][j];
    }
    os << ")";
  }
  return os.str();
}

Lineage BuildLineage(const BooleanQuery& query, const PartitionedDatabase& db,
                     size_t cap) {
  Lineage lineage;
  lineage.variables = db.endogenous().facts();
  std::map<Fact, uint32_t> index;
  for (uint32_t i = 0; i < lineage.variables.size(); ++i) {
    index.emplace(lineage.variables[i], i);
  }

  Database all = db.AllFacts();
  std::vector<Database> supports = EnumerateMinimalSupports(query, all, cap);

  for (const Database& support : supports) {
    std::vector<uint32_t> clause;
    bool valid = true;
    for (const Fact& f : support.facts()) {
      auto it = index.find(f);
      if (it != index.end()) {
        clause.push_back(it->second);
      } else {
        // Must be exogenous (support ⊆ Dn ∪ Dx).
        SHAPLEY_CHECK_MSG(db.exogenous().Contains(f),
                          "support fact outside the database");
      }
      (void)valid;
    }
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    if (clause.empty()) {
      lineage.certainly_true = true;
      lineage.clauses.clear();
      return lineage;
    }
    lineage.clauses.push_back(std::move(clause));
  }

  // Dedupe + absorption: drop clauses that contain another clause.
  std::sort(lineage.clauses.begin(), lineage.clauses.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  lineage.clauses.erase(
      std::unique(lineage.clauses.begin(), lineage.clauses.end()),
      lineage.clauses.end());
  std::vector<std::vector<uint32_t>> kept;
  for (const auto& clause : lineage.clauses) {
    bool absorbed = false;
    for (const auto& small : kept) {
      if (std::includes(clause.begin(), clause.end(), small.begin(),
                        small.end())) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(clause);
  }
  lineage.clauses = std::move(kept);
  return lineage;
}

}  // namespace shapley
