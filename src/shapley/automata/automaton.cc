#include "shapley/automata/automaton.h"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

// Recursive Thompson construction; returns (start, accept) of the fragment.
struct Fragment {
  uint32_t start;
  uint32_t accept;
};

class ThompsonBuilder {
 public:
  explicit ThompsonBuilder(Nfa* nfa) : nfa_(nfa) {}

  uint32_t NewState() {
    nfa_->states.emplace_back();
    return static_cast<uint32_t>(nfa_->states.size() - 1);
  }

  SymbolId SymbolIdFor(const std::string& name) {
    for (size_t i = 0; i < nfa_->symbol_names.size(); ++i) {
      if (nfa_->symbol_names[i] == name) return static_cast<SymbolId>(i);
    }
    nfa_->symbol_names.push_back(name);
    return static_cast<SymbolId>(nfa_->symbol_names.size() - 1);
  }

  Fragment Build(const Regex& node) {
    switch (node.kind()) {
      case Regex::Kind::kSymbol: {
        uint32_t s = NewState(), t = NewState();
        nfa_->states[s].transitions.emplace(SymbolIdFor(node.symbol()), t);
        return {s, t};
      }
      case Regex::Kind::kEpsilon: {
        uint32_t s = NewState(), t = NewState();
        nfa_->states[s].epsilon.insert(t);
        return {s, t};
      }
      case Regex::Kind::kConcat: {
        Fragment a = Build(node.children()[0]);
        Fragment b = Build(node.children()[1]);
        nfa_->states[a.accept].epsilon.insert(b.start);
        return {a.start, b.accept};
      }
      case Regex::Kind::kUnion: {
        Fragment a = Build(node.children()[0]);
        Fragment b = Build(node.children()[1]);
        uint32_t s = NewState(), t = NewState();
        nfa_->states[s].epsilon.insert(a.start);
        nfa_->states[s].epsilon.insert(b.start);
        nfa_->states[a.accept].epsilon.insert(t);
        nfa_->states[b.accept].epsilon.insert(t);
        return {s, t};
      }
      case Regex::Kind::kStar: {
        Fragment a = Build(node.children()[0]);
        uint32_t s = NewState(), t = NewState();
        nfa_->states[s].epsilon.insert(a.start);
        nfa_->states[s].epsilon.insert(t);
        nfa_->states[a.accept].epsilon.insert(a.start);
        nfa_->states[a.accept].epsilon.insert(t);
        return {s, t};
      }
      case Regex::Kind::kPlus: {
        Fragment a = Build(node.children()[0]);
        uint32_t t = NewState();
        nfa_->states[a.accept].epsilon.insert(a.start);
        nfa_->states[a.accept].epsilon.insert(t);
        return {a.start, t};
      }
      case Regex::Kind::kOptional: {
        Fragment a = Build(node.children()[0]);
        uint32_t s = NewState(), t = NewState();
        nfa_->states[s].epsilon.insert(a.start);
        nfa_->states[s].epsilon.insert(t);
        nfa_->states[a.accept].epsilon.insert(t);
        return {s, t};
      }
    }
    SHAPLEY_CHECK_MSG(false, "unreachable regex kind");
    return {0, 0};
  }

 private:
  Nfa* nfa_;
};

}  // namespace

Nfa Nfa::FromRegex(const Regex& regex) {
  Nfa nfa;
  ThompsonBuilder builder(&nfa);
  Fragment f = builder.Build(regex);
  nfa.start = f.start;
  nfa.accept = f.accept;
  return nfa;
}

std::set<uint32_t> Nfa::EpsilonClosure(std::set<uint32_t> states_in) const {
  std::deque<uint32_t> work(states_in.begin(), states_in.end());
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    for (uint32_t t : states[s].epsilon) {
      if (states_in.insert(t).second) work.push_back(t);
    }
  }
  return states_in;
}

Dfa Dfa::FromNfa(const Nfa& nfa) {
  Dfa dfa;
  dfa.symbol_names_ = nfa.symbol_names;
  const size_t alphabet = nfa.symbol_names.size();

  std::map<std::set<uint32_t>, uint32_t> state_index;
  std::vector<std::set<uint32_t>> subsets;
  std::deque<uint32_t> work;

  auto intern = [&](std::set<uint32_t> subset) {
    auto [it, inserted] =
        state_index.emplace(subset, static_cast<uint32_t>(subsets.size()));
    if (inserted) {
      subsets.push_back(std::move(subset));
      dfa.transitions_.emplace_back(alphabet, kNoState);
      dfa.accepting_.push_back(false);
      work.push_back(it->second);
    }
    return it->second;
  };

  dfa.start_ = intern(nfa.EpsilonClosure({nfa.start}));
  while (!work.empty()) {
    uint32_t id = work.front();
    work.pop_front();
    const std::set<uint32_t> subset = subsets[id];  // Copy: vector may grow.
    dfa.accepting_[id] = subset.count(nfa.accept) > 0;
    for (SymbolId a = 0; a < alphabet; ++a) {
      std::set<uint32_t> next;
      for (uint32_t s : subset) {
        auto [lo, hi] = nfa.states[s].transitions.equal_range(a);
        for (auto it = lo; it != hi; ++it) next.insert(it->second);
      }
      if (next.empty()) continue;
      dfa.transitions_[id][a] = intern(nfa.EpsilonClosure(std::move(next)));
    }
  }

  // Trim to co-accessible states (everything is accessible by construction).
  const size_t n = dfa.transitions_.size();
  std::vector<std::vector<uint32_t>> reverse(n);
  for (uint32_t s = 0; s < n; ++s) {
    for (SymbolId a = 0; a < alphabet; ++a) {
      if (dfa.transitions_[s][a] != kNoState) {
        reverse[dfa.transitions_[s][a]].push_back(s);
      }
    }
  }
  std::vector<bool> useful(n, false);
  std::deque<uint32_t> queue;
  for (uint32_t s = 0; s < n; ++s) {
    if (dfa.accepting_[s]) {
      useful[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    for (uint32_t p : reverse[s]) {
      if (!useful[p]) {
        useful[p] = true;
        queue.push_back(p);
      }
    }
  }

  if (dfa.start_ == kNoState || !useful[dfa.start_]) {
    // Empty language.
    dfa.transitions_.clear();
    dfa.accepting_.clear();
    dfa.start_ = kNoState;
    return dfa;
  }

  std::vector<uint32_t> remap(n, kNoState);
  uint32_t next_id = 0;
  for (uint32_t s = 0; s < n; ++s) {
    if (useful[s]) remap[s] = next_id++;
  }
  Dfa trimmed;
  trimmed.symbol_names_ = dfa.symbol_names_;
  trimmed.transitions_.resize(next_id, std::vector<uint32_t>(alphabet, kNoState));
  trimmed.accepting_.resize(next_id, false);
  trimmed.start_ = remap[dfa.start_];
  for (uint32_t s = 0; s < n; ++s) {
    if (!useful[s]) continue;
    trimmed.accepting_[remap[s]] = dfa.accepting_[s];
    for (SymbolId a = 0; a < alphabet; ++a) {
      uint32_t t = dfa.transitions_[s][a];
      if (t != kNoState && useful[t]) {
        trimmed.transitions_[remap[s]][a] = remap[t];
      }
    }
  }
  return trimmed;
}

bool Dfa::Accepts(const std::vector<SymbolId>& word) const {
  if (AcceptsEmptyLanguage()) return false;
  uint32_t s = start_;
  for (SymbolId a : word) {
    if (a >= symbol_names_.size()) return false;
    s = transitions_[s][a];
    if (s == kNoState) return false;
  }
  return accepting_[s];
}

bool Dfa::AcceptsEpsilon() const {
  return !AcceptsEmptyLanguage() && accepting_[start_];
}

bool Dfa::IsFinite() const {
  // The trimmed DFA has only useful states, so any cycle pumps some word.
  const size_t n = transitions_.size();
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.push_back({root, 0});
    color[root] = 1;
    while (!stack.empty()) {
      auto& [s, edge] = stack.back();
      bool advanced = false;
      while (edge < symbol_names_.size()) {
        uint32_t t = transitions_[s][edge];
        ++edge;
        if (t == kNoState) continue;
        if (color[t] == 1) return false;  // Back edge: cycle.
        if (color[t] == 0) {
          color[t] = 1;
          stack.push_back({t, 0});
          advanced = true;
          break;
        }
      }
      if (!advanced && stack.back().second >= symbol_names_.size()) {
        color[stack.back().first] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::optional<size_t> Dfa::MaxWordLength() const {
  if (AcceptsEmptyLanguage()) return std::nullopt;
  if (!IsFinite()) return std::nullopt;
  // Longest path in a DAG via memoized DFS; states are all useful, so the
  // longest path from start to an accepting state is the max word length.
  const size_t n = transitions_.size();
  std::vector<int64_t> memo(n, -2);  // -2 = unvisited.
  // best[s]: longest distance from s to any accepting state (>= 0 since all
  // states are co-accessible).
  auto dfs = [&](auto&& self, uint32_t s) -> int64_t {
    if (memo[s] != -2) return memo[s];
    int64_t best = accepting_[s] ? 0 : -1;
    for (SymbolId a = 0; a < symbol_names_.size(); ++a) {
      uint32_t t = transitions_[s][a];
      if (t == kNoState) continue;
      int64_t sub = self(self, t);
      if (sub >= 0) best = std::max(best, sub + 1);
    }
    memo[s] = best;
    return best;
  };
  int64_t result = dfs(dfs, start_);
  SHAPLEY_CHECK(result >= 0);
  return static_cast<size_t>(result);
}

bool Dfa::HasWordOfLengthAtLeast(size_t k) const {
  if (AcceptsEmptyLanguage()) return false;
  if (!IsFinite()) return true;
  return *MaxWordLength() >= k;
}

std::optional<std::vector<SymbolId>> Dfa::ShortestWord() const {
  return ShortestWordOfLengthAtLeast(0);
}

std::optional<std::vector<SymbolId>> Dfa::ShortestWordOfLengthAtLeast(
    size_t k) const {
  if (AcceptsEmptyLanguage()) return std::nullopt;
  // BFS over (state, min(length, k)): accepting configurations are those
  // with an accepting state and saturated length counter.
  struct Node {
    uint32_t state;
    size_t progress;
  };
  const size_t n = transitions_.size();
  std::vector<std::vector<bool>> seen(n, std::vector<bool>(k + 1, false));
  std::vector<std::vector<std::pair<int64_t, SymbolId>>> parent(
      n, std::vector<std::pair<int64_t, SymbolId>>(k + 1, {-1, 0}));
  auto encode = [&](Node nd) { return static_cast<int64_t>(nd.state) * (k + 1) + nd.progress; };

  std::deque<Node> queue;
  queue.push_back({start_, 0});
  seen[start_][0] = true;
  while (!queue.empty()) {
    Node nd = queue.front();
    queue.pop_front();
    if (accepting_[nd.state] && nd.progress >= k) {
      // Reconstruct the word.
      std::vector<SymbolId> word;
      Node cur = nd;
      while (!(cur.state == start_ && cur.progress == 0)) {
        auto [enc, sym] = parent[cur.state][cur.progress];
        SHAPLEY_CHECK(enc >= 0);
        word.push_back(sym);
        cur.state = static_cast<uint32_t>(enc / (k + 1));
        cur.progress = static_cast<size_t>(enc % (k + 1));
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (SymbolId a = 0; a < symbol_names_.size(); ++a) {
      uint32_t t = transitions_[nd.state][a];
      if (t == kNoState) continue;
      Node next{t, std::min(nd.progress + 1, k)};
      if (!seen[next.state][next.progress]) {
        seen[next.state][next.progress] = true;
        parent[next.state][next.progress] = {encode(nd), a};
        queue.push_back(next);
      }
    }
  }
  return std::nullopt;
}

std::vector<std::vector<SymbolId>> Dfa::WordsUpToLength(size_t max_length,
                                                        size_t limit) const {
  std::vector<std::vector<SymbolId>> result;
  if (AcceptsEmptyLanguage()) return result;
  std::vector<SymbolId> current;
  auto dfs = [&](auto&& self, uint32_t s) -> void {
    if (accepting_[s]) {
      result.push_back(current);
      if (result.size() > limit) {
        throw std::invalid_argument("Dfa::WordsUpToLength: too many words");
      }
    }
    if (current.size() == max_length) return;
    for (SymbolId a = 0; a < symbol_names_.size(); ++a) {
      uint32_t t = transitions_[s][a];
      if (t == kNoState) continue;
      current.push_back(a);
      self(self, t);
      current.pop_back();
    }
  };
  dfs(dfs, start_);
  return result;
}

}  // namespace shapley
