#ifndef SHAPLEY_AUTOMATA_REGEX_H_
#define SHAPLEY_AUTOMATA_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace shapley {

/// AST for regular expressions over a relational alphabet, the languages of
/// RPQ path atoms (Section 2).
///
/// Grammar (precedence low to high):
///   union   := concat ('|' concat)*
///   concat  := postfix+                  (juxtaposition or '.')
///   postfix := primary ('*' | '+' | '?')*
///   primary := SYMBOL | 'eps' | '(' union ')'
/// Symbols are identifiers ([A-Za-z_][A-Za-z0-9_]*); 'eps' denotes the empty
/// word. Whitespace separates adjacent symbols.
class Regex {
 public:
  enum class Kind { kSymbol, kEpsilon, kConcat, kUnion, kStar, kPlus, kOptional };

  /// Parses the textual syntax above; throws std::invalid_argument on error.
  static Regex Parse(std::string_view text);

  /// Constructors for programmatic building.
  static Regex Symbol(std::string name);
  static Regex Epsilon();
  static Regex Concat(Regex a, Regex b);
  static Regex Union(Regex a, Regex b);
  static Regex Star(Regex a);
  static Regex Plus(Regex a);
  static Regex Optional(Regex a);

  Kind kind() const { return kind_; }
  const std::string& symbol() const { return symbol_; }
  const std::vector<Regex>& children() const { return children_; }

  /// All distinct symbol names used, in first-appearance order.
  std::vector<std::string> SymbolNames() const;

  std::string ToString() const;

 private:
  Regex() = default;

  Kind kind_ = Kind::kEpsilon;
  std::string symbol_;           // Only for kSymbol.
  std::vector<Regex> children_;  // 2 for Concat/Union, 1 for Star/Plus/Optional.
};

}  // namespace shapley

#endif  // SHAPLEY_AUTOMATA_REGEX_H_
