#ifndef SHAPLEY_AUTOMATA_AUTOMATON_H_
#define SHAPLEY_AUTOMATA_AUTOMATON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "shapley/automata/regex.h"

namespace shapley {

/// Alphabet symbols are dense indices into a name table (the RPQ machinery
/// later aligns them with relation ids of a Schema).
using SymbolId = uint32_t;

/// Nondeterministic finite automaton with epsilon moves (Thompson form:
/// single start, single accept).
struct Nfa {
  struct State {
    std::multimap<SymbolId, uint32_t> transitions;
    std::set<uint32_t> epsilon;
  };

  std::vector<State> states;
  uint32_t start = 0;
  uint32_t accept = 0;
  std::vector<std::string> symbol_names;  // SymbolId -> name.

  /// Thompson construction from a regex AST.
  static Nfa FromRegex(const Regex& regex);

  /// Epsilon closure of a state set.
  std::set<uint32_t> EpsilonClosure(std::set<uint32_t> states_in) const;
};

/// Deterministic finite automaton produced by subset construction and
/// trimmed to accessible & co-accessible states. Exposes the language
/// analyses the paper's RPQ results need:
///  * Corollary 4.3 branches on "L contains a word of length >= 3 / >= 2";
///  * Lemma B.1 builds a minimal support from any word of length >= 2;
///  * bounded RPQs are expanded into UCQs by enumerating the language.
class Dfa {
 public:
  /// Builds from an NFA (subset construction + trim). The result may have no
  /// states at all if the language is empty.
  static Dfa FromNfa(const Nfa& nfa);
  static Dfa FromRegex(const Regex& regex) { return FromNfa(Nfa::FromRegex(regex)); }

  size_t NumStates() const { return transitions_.size(); }
  const std::vector<std::string>& symbol_names() const { return symbol_names_; }

  bool AcceptsEmptyLanguage() const { return transitions_.empty(); }
  bool Accepts(const std::vector<SymbolId>& word) const;
  bool AcceptsEpsilon() const;

  /// True iff the language is finite (the trimmed DFA is acyclic).
  bool IsFinite() const;

  /// Length of the longest word if the language is finite.
  std::optional<size_t> MaxWordLength() const;

  /// True iff some word has length >= k (always true for infinite languages).
  bool HasWordOfLengthAtLeast(size_t k) const;

  /// A shortest word, or nullopt if the language is empty.
  std::optional<std::vector<SymbolId>> ShortestWord() const;

  /// A shortest word of length >= k, or nullopt if none exists.
  std::optional<std::vector<SymbolId>> ShortestWordOfLengthAtLeast(size_t k) const;

  /// All words of length <= max_length (lexicographic by symbol id). Throws
  /// std::invalid_argument if their number would exceed `limit`.
  std::vector<std::vector<SymbolId>> WordsUpToLength(size_t max_length,
                                                     size_t limit = 100000) const;

  /// Stepping interface for product constructions (RPQ evaluation walks the
  /// database graph and this automaton in lockstep). Step returns
  /// kNoTransition when the transition is undefined. Only valid when the
  /// language is nonempty.
  static constexpr uint32_t kNoTransition = UINT32_MAX;
  uint32_t StartState() const { return start_; }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }
  uint32_t Step(uint32_t state, SymbolId symbol) const {
    if (symbol >= symbol_names_.size()) return kNoTransition;
    return transitions_[state][symbol];
  }

 private:
  // transitions_[s][a] = next state or kNoState.
  static constexpr uint32_t kNoState = UINT32_MAX;
  std::vector<std::vector<uint32_t>> transitions_;
  std::vector<bool> accepting_;
  uint32_t start_ = kNoState;
  std::vector<std::string> symbol_names_;
};

}  // namespace shapley

#endif  // SHAPLEY_AUTOMATA_AUTOMATON_H_
