#include "shapley/automata/regex.h"

#include <cctype>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

class RegexParser {
 public:
  explicit RegexParser(std::string_view text) : text_(text) {}

  Regex Parse() {
    Regex result = ParseUnion();
    SkipSpace();
    if (pos_ < text_.size()) {
      throw std::invalid_argument("Regex: trailing input at position " +
                                  std::to_string(pos_) + " in '" +
                                  std::string(text_) + "'");
    }
    return result;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Regex ParseUnion() {
    Regex left = ParseConcat();
    while (Peek() == '|') {
      ++pos_;
      left = Regex::Union(std::move(left), ParseConcat());
    }
    return left;
  }

  bool AtPrimaryStart() {
    char c = Peek();
    return c == '(' || std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }

  Regex ParseConcat() {
    if (Peek() == '.') {
      throw std::invalid_argument("Regex: leading '.' at position " +
                                  std::to_string(pos_));
    }
    Regex left = ParsePostfix();
    while (true) {
      if (Peek() == '.') {
        ++pos_;
        left = Regex::Concat(std::move(left), ParsePostfix());
      } else if (AtPrimaryStart()) {
        left = Regex::Concat(std::move(left), ParsePostfix());
      } else {
        return left;
      }
    }
  }

  Regex ParsePostfix() {
    Regex node = ParsePrimary();
    while (true) {
      char c = Peek();
      if (c == '*') {
        ++pos_;
        node = Regex::Star(std::move(node));
      } else if (c == '+') {
        ++pos_;
        node = Regex::Plus(std::move(node));
      } else if (c == '?') {
        ++pos_;
        node = Regex::Optional(std::move(node));
      } else {
        return node;
      }
    }
  }

  Regex ParsePrimary() {
    char c = Peek();
    if (c == '(') {
      ++pos_;
      Regex inner = ParseUnion();
      if (Peek() != ')') {
        throw std::invalid_argument("Regex: missing ')' at position " +
                                    std::to_string(pos_));
      }
      ++pos_;
      return inner;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string name(text_.substr(start, pos_ - start));
      if (name == "eps") return Regex::Epsilon();
      return Regex::Symbol(std::move(name));
    }
    throw std::invalid_argument("Regex: unexpected character at position " +
                                std::to_string(pos_) + " in '" +
                                std::string(text_) + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void CollectSymbols(const Regex& node, std::vector<std::string>* out) {
  if (node.kind() == Regex::Kind::kSymbol) {
    for (const std::string& s : *out) {
      if (s == node.symbol()) return;
    }
    out->push_back(node.symbol());
    return;
  }
  for (const Regex& child : node.children()) CollectSymbols(child, out);
}

}  // namespace

Regex Regex::Parse(std::string_view text) { return RegexParser(text).Parse(); }

Regex Regex::Symbol(std::string name) {
  SHAPLEY_CHECK(!name.empty());
  Regex r;
  r.kind_ = Kind::kSymbol;
  r.symbol_ = std::move(name);
  return r;
}

Regex Regex::Epsilon() {
  Regex r;
  r.kind_ = Kind::kEpsilon;
  return r;
}

Regex Regex::Concat(Regex a, Regex b) {
  Regex r;
  r.kind_ = Kind::kConcat;
  r.children_.push_back(std::move(a));
  r.children_.push_back(std::move(b));
  return r;
}

Regex Regex::Union(Regex a, Regex b) {
  Regex r;
  r.kind_ = Kind::kUnion;
  r.children_.push_back(std::move(a));
  r.children_.push_back(std::move(b));
  return r;
}

Regex Regex::Star(Regex a) {
  Regex r;
  r.kind_ = Kind::kStar;
  r.children_.push_back(std::move(a));
  return r;
}

Regex Regex::Plus(Regex a) {
  Regex r;
  r.kind_ = Kind::kPlus;
  r.children_.push_back(std::move(a));
  return r;
}

Regex Regex::Optional(Regex a) {
  Regex r;
  r.kind_ = Kind::kOptional;
  r.children_.push_back(std::move(a));
  return r;
}

std::vector<std::string> Regex::SymbolNames() const {
  std::vector<std::string> out;
  CollectSymbols(*this, &out);
  return out;
}

std::string Regex::ToString() const {
  switch (kind_) {
    case Kind::kSymbol:
      return symbol_;
    case Kind::kEpsilon:
      return "eps";
    case Kind::kConcat:
      return "(" + children_[0].ToString() + " " + children_[1].ToString() + ")";
    case Kind::kUnion:
      return "(" + children_[0].ToString() + "|" + children_[1].ToString() + ")";
    case Kind::kStar:
      return children_[0].ToString() + "*";
    case Kind::kPlus:
      return children_[0].ToString() + "+";
    case Kind::kOptional:
      return children_[0].ToString() + "?";
  }
  return "?";
}

}  // namespace shapley
