#include "shapley/query/conjunction_query.h"

#include <stdexcept>

namespace shapley {

std::shared_ptr<const ConjunctionQuery> ConjunctionQuery::Create(
    QueryPtr left, QueryPtr right) {
  if (left == nullptr || right == nullptr) {
    throw std::invalid_argument("ConjunctionQuery: null operand");
  }
  return std::shared_ptr<const ConjunctionQuery>(
      new ConjunctionQuery(std::move(left), std::move(right)));
}

std::set<Constant> ConjunctionQuery::QueryConstants() const {
  std::set<Constant> result = left_->QueryConstants();
  auto rs = right_->QueryConstants();
  result.insert(rs.begin(), rs.end());
  return result;
}

std::string ConjunctionQuery::ToString() const {
  return "(" + left_->ToString() + ") ∧ (" + right_->ToString() + ")";
}

}  // namespace shapley
