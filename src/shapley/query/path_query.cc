#include "shapley/query/path_query.h"

#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

// Maps each DFA symbol to the schema relation of the same name (or nullopt).
std::vector<std::optional<RelationId>> SymbolRelations(const Dfa& dfa,
                                                       const Schema& schema) {
  std::vector<std::optional<RelationId>> result;
  result.reserve(dfa.symbol_names().size());
  for (const std::string& name : dfa.symbol_names()) {
    result.push_back(schema.FindRelation(name));
  }
  return result;
}

// Registers every symbol of `regex` as a binary relation in `schema`.
void RegisterSymbols(const Regex& regex, Schema* schema) {
  for (const std::string& name : regex.SymbolNames()) {
    schema->AddRelation(name, 2);
  }
}

// Builds the path CQ atoms for one word: src -w-> dst with fresh middles.
void AppendWordAtoms(const std::vector<SymbolId>& word, const Dfa& dfa,
                     const Schema& schema, Term src, Term dst,
                     std::vector<Atom>* atoms) {
  Term prev = src;
  for (size_t i = 0; i < word.size(); ++i) {
    Term next = (i + 1 == word.size())
                    ? dst
                    : Term(Variable::Fresh("p"));
    auto rel = schema.FindRelation(dfa.symbol_names()[word[i]]);
    SHAPLEY_CHECK(rel.has_value());
    atoms->push_back(Atom(*rel, {prev, next}));
    prev = next;
  }
}

}  // namespace

bool PathReachable(const Database& db, const Dfa& dfa, Constant src,
                   Constant dst) {
  if (dfa.AcceptsEmptyLanguage()) return false;
  if (src == dst && dfa.AcceptsEpsilon()) return true;
  SHAPLEY_CHECK(db.schema() != nullptr);
  auto symbol_rel = SymbolRelations(dfa, *db.schema());

  // Adjacency: constant -> list of (symbol, successor constant).
  std::map<Constant, std::vector<std::pair<SymbolId, Constant>>> adjacency;
  for (const Fact& f : db.facts()) {
    if (f.arity() != 2) continue;
    for (SymbolId a = 0; a < symbol_rel.size(); ++a) {
      if (symbol_rel[a].has_value() && *symbol_rel[a] == f.relation()) {
        adjacency[f.args()[0]].push_back({a, f.args()[1]});
      }
    }
  }

  // BFS over the product (constant, dfa state).
  std::deque<std::pair<Constant, uint32_t>> queue;
  std::set<std::pair<Constant, uint32_t>> seen;
  queue.push_back({src, dfa.StartState()});
  seen.insert({src, dfa.StartState()});
  while (!queue.empty()) {
    auto [c, s] = queue.front();
    queue.pop_front();
    if (c == dst && dfa.IsAccepting(s)) return true;
    auto it = adjacency.find(c);
    if (it == adjacency.end()) continue;
    for (auto [symbol, next_const] : it->second) {
      uint32_t next_state = dfa.Step(s, symbol);
      if (next_state == Dfa::kNoTransition) continue;
      if (seen.insert({next_const, next_state}).second) {
        queue.push_back({next_const, next_state});
      }
    }
  }
  return false;
}

RegularPathQuery::RegularPathQuery(std::shared_ptr<Schema> schema, Regex regex,
                                   Constant source, Constant target)
    : schema_(std::move(schema)),
      regex_(std::move(regex)),
      dfa_(Dfa::FromRegex(regex_)),
      source_(source),
      target_(target) {}

std::shared_ptr<const RegularPathQuery> RegularPathQuery::Create(
    std::shared_ptr<Schema> schema, Regex regex, Constant source,
    Constant target) {
  RegisterSymbols(regex, schema.get());
  return std::shared_ptr<const RegularPathQuery>(new RegularPathQuery(
      std::move(schema), std::move(regex), source, target));
}

UcqPtr RegularPathQuery::ExpandToUcq(size_t max_length, size_t limit) const {
  std::vector<CqPtr> disjuncts;
  for (const auto& word : dfa_.WordsUpToLength(max_length, limit)) {
    if (word.empty()) {
      if (source_ == target_) {
        disjuncts.push_back(ConjunctiveQuery::Create(schema_, {}));
      }
      continue;
    }
    std::vector<Atom> atoms;
    AppendWordAtoms(word, dfa_, *schema_, Term(source_), Term(target_), &atoms);
    disjuncts.push_back(ConjunctiveQuery::Create(schema_, std::move(atoms)));
  }
  if (disjuncts.empty()) {
    throw std::invalid_argument(
        "RegularPathQuery::ExpandToUcq: no word yields a satisfiable "
        "disjunct within the bound");
  }
  return UnionQuery::Create(std::move(disjuncts));
}

bool RegularPathQuery::Evaluate(const Database& db) const {
  return PathReachable(db, dfa_, source_, target_);
}

std::set<Constant> RegularPathQuery::QueryConstants() const {
  return {source_, target_};
}

std::string RegularPathQuery::ToString() const {
  std::ostringstream os;
  os << "[" << regex_.ToString() << "](" << source_ << "," << target_ << ")";
  return os.str();
}

ConjunctiveRegularPathQuery::ConjunctiveRegularPathQuery(
    std::shared_ptr<Schema> schema, std::vector<PathAtom> atoms)
    : schema_(std::move(schema)), atoms_(std::move(atoms)) {
  dfas_.reserve(atoms_.size());
  for (const PathAtom& atom : atoms_) {
    dfas_.push_back(Dfa::FromRegex(atom.regex));
  }
}

std::shared_ptr<const ConjunctiveRegularPathQuery>
ConjunctiveRegularPathQuery::Create(std::shared_ptr<Schema> schema,
                                    std::vector<PathAtom> atoms) {
  if (atoms.empty()) {
    throw std::invalid_argument("CRPQ: at least one path atom required");
  }
  for (const PathAtom& atom : atoms) {
    RegisterSymbols(atom.regex, schema.get());
  }
  return std::shared_ptr<const ConjunctiveRegularPathQuery>(
      new ConjunctiveRegularPathQuery(std::move(schema), std::move(atoms)));
}

std::set<Variable> ConjunctiveRegularPathQuery::Variables() const {
  std::set<Variable> result;
  for (const PathAtom& atom : atoms_) {
    if (atom.source.IsVariable()) result.insert(atom.source.variable());
    if (atom.target.IsVariable()) result.insert(atom.target.variable());
  }
  return result;
}

bool ConjunctiveRegularPathQuery::IsSelfJoinFree() const {
  std::set<std::string> seen;
  for (const PathAtom& atom : atoms_) {
    for (const std::string& name : atom.regex.SymbolNames()) {
      if (!seen.insert(name).second) return false;
    }
  }
  return true;
}

UcqPtr ConjunctiveRegularPathQuery::ExpandToUcq(size_t max_length,
                                                size_t limit) const {
  // Words per atom, then a cross product of choices.
  std::vector<std::vector<std::vector<SymbolId>>> words_per_atom;
  size_t total = 1;
  for (const Dfa& dfa : dfas_) {
    words_per_atom.push_back(dfa.WordsUpToLength(max_length, limit));
    total *= std::max<size_t>(words_per_atom.back().size(), 1);
    if (total > limit) {
      throw std::invalid_argument("CRPQ::ExpandToUcq: too many disjuncts");
    }
  }

  std::vector<CqPtr> disjuncts;
  std::vector<size_t> choice(atoms_.size(), 0);
  while (true) {
    std::vector<Atom> atoms;
    bool feasible = true;
    for (size_t i = 0; i < atoms_.size() && feasible; ++i) {
      if (words_per_atom[i].empty()) {
        feasible = false;
        break;
      }
      const auto& word = words_per_atom[i][choice[i]];
      if (word.empty()) {
        // Empty word: endpoints must coincide. Equality of two terms is
        // expressed by unifying them; we handle the simple cases and skip
        // infeasible ones (distinct constants).
        const PathAtom& pa = atoms_[i];
        if (pa.source.IsConstant() && pa.target.IsConstant()) {
          if (!(pa.source == pa.target)) feasible = false;
          continue;
        }
        // Variable endpoint(s): substituting one for the other would need
        // term rewriting across atoms; keep it sound by refusing expansion.
        throw std::invalid_argument(
            "CRPQ::ExpandToUcq: epsilon word with variable endpoint "
            "not supported");
      }
      AppendWordAtoms(word, dfas_[i], *schema_, atoms_[i].source,
                      atoms_[i].target, &atoms);
    }
    if (feasible) {
      disjuncts.push_back(ConjunctiveQuery::Create(schema_, std::move(atoms)));
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < choice.size()) {
      if (words_per_atom[pos].empty()) {
        ++pos;
        continue;
      }
      if (++choice[pos] < words_per_atom[pos].size()) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == choice.size()) break;
  }
  if (disjuncts.empty()) {
    throw std::invalid_argument("CRPQ::ExpandToUcq: no satisfiable disjunct");
  }
  return UnionQuery::Create(std::move(disjuncts));
}

bool ConjunctiveRegularPathQuery::Evaluate(const Database& db) const {
  // Candidate domain: constants of the database and of the query.
  std::set<Constant> domain_set = db.Constants();
  for (Constant c : QueryConstants()) domain_set.insert(c);
  std::vector<Constant> domain(domain_set.begin(), domain_set.end());

  std::vector<Variable> vars;
  for (Variable v : Variables()) vars.push_back(v);

  Assignment assignment;
  // Backtrack over variable assignments; check all fully-instantiated path
  // atoms as soon as both endpoints are bound.
  auto resolve = [&](Term t) -> std::optional<Constant> {
    if (t.IsConstant()) return t.constant();
    auto it = assignment.find(t.variable());
    if (it == assignment.end()) return std::nullopt;
    return it->second;
  };
  auto consistent = [&]() {
    for (size_t i = 0; i < atoms_.size(); ++i) {
      auto s = resolve(atoms_[i].source);
      auto t = resolve(atoms_[i].target);
      if (s.has_value() && t.has_value() &&
          !PathReachable(db, dfas_[i], *s, *t)) {
        return false;
      }
    }
    return true;
  };
  auto search = [&](auto&& self, size_t var_index) -> bool {
    if (!consistent()) return false;
    if (var_index == vars.size()) return true;
    for (Constant c : domain) {
      assignment[vars[var_index]] = c;
      if (self(self, var_index + 1)) return true;
    }
    assignment.erase(vars[var_index]);
    return false;
  };
  return search(search, 0);
}

std::set<Constant> ConjunctiveRegularPathQuery::QueryConstants() const {
  std::set<Constant> result;
  for (const PathAtom& atom : atoms_) {
    if (atom.source.IsConstant()) result.insert(atom.source.constant());
    if (atom.target.IsConstant()) result.insert(atom.target.constant());
  }
  return result;
}

std::string ConjunctiveRegularPathQuery::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) os << " ∧ ";
    os << "[" << atoms_[i].regex.ToString() << "](" << atoms_[i].source << ","
       << atoms_[i].target << ")";
  }
  return os.str();
}

std::shared_ptr<const UnionCrpq> UnionCrpq::Create(
    std::vector<CrpqPtr> disjuncts) {
  if (disjuncts.empty()) {
    throw std::invalid_argument("UnionCrpq: at least one disjunct required");
  }
  return std::shared_ptr<const UnionCrpq>(new UnionCrpq(std::move(disjuncts)));
}

bool UnionCrpq::Evaluate(const Database& db) const {
  for (const CrpqPtr& crpq : disjuncts_) {
    if (crpq->Evaluate(db)) return true;
  }
  return false;
}

std::set<Constant> UnionCrpq::QueryConstants() const {
  std::set<Constant> result;
  for (const CrpqPtr& crpq : disjuncts_) {
    auto cs = crpq->QueryConstants();
    result.insert(cs.begin(), cs.end());
  }
  return result;
}

std::string UnionCrpq::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) os << " ∨ ";
    os << "(" << disjuncts_[i]->ToString() << ")";
  }
  return os.str();
}

}  // namespace shapley
