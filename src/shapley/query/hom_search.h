#ifndef SHAPLEY_QUERY_HOM_SEARCH_H_
#define SHAPLEY_QUERY_HOM_SEARCH_H_

#include <functional>
#include <vector>

#include "shapley/data/database.h"
#include "shapley/query/atom.h"

namespace shapley {

/// Backtracking homomorphism search from an atom set into a database,
/// fixing constants (i.e. C-homomorphisms with C = all constants of the
/// atoms). The workhorse of CQ evaluation, minimal-support enumeration and
/// CQ core computation.
///
/// `on_match` receives each complete assignment; returning false stops the
/// enumeration early. Returns true iff at least one homomorphism was found.
bool ForEachHomomorphism(const std::vector<Atom>& atoms, const Database& db,
                         const std::function<bool(const Assignment&)>& on_match,
                         Assignment initial = {});

/// True iff some homomorphism exists (early-exit wrapper).
bool HomomorphismExists(const std::vector<Atom>& atoms, const Database& db,
                        const Assignment& initial = {});

/// True iff there is a homomorphism from `from` to `to` as *atom sets*
/// (variables of `to` are treated as distinct frozen constants, constants
/// are fixed). This is the hom-order test used by CQ core computation.
bool AtomSetHomomorphismExists(const std::vector<Atom>& from,
                               const std::vector<Atom>& to,
                               const std::shared_ptr<Schema>& schema);

}  // namespace shapley

#endif  // SHAPLEY_QUERY_HOM_SEARCH_H_
