#ifndef SHAPLEY_QUERY_ATOM_H_
#define SHAPLEY_QUERY_ATOM_H_

#include <compare>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "shapley/data/fact.h"
#include "shapley/data/schema.h"
#include "shapley/query/term.h"

namespace shapley {

/// A variable → constant assignment (the homomorphisms of Section 2,
/// restricted to the variables; constants are always fixed).
using Assignment = std::map<Variable, Constant>;

/// A relational atom R(t1, ..., tk) over variables and constants.
class Atom {
 public:
  Atom() = default;
  Atom(RelationId relation, std::vector<Term> terms);
  Atom(RelationId relation, std::initializer_list<Term> terms);

  RelationId relation() const { return relation_; }
  const std::vector<Term>& terms() const { return terms_; }
  size_t arity() const { return terms_.size(); }

  std::set<Variable> Variables() const;
  std::set<Constant> Constants() const;
  bool IsGround() const;

  /// The fact obtained by applying `assignment`; throws InternalError if
  /// some variable is unassigned.
  Fact Instantiate(const Assignment& assignment) const;

  /// Replaces a variable by a constant (used by the lifted engine's
  /// independent-project step and the shattering of query constants).
  Atom Substitute(Variable var, Constant value) const;

  /// Tries to extend `assignment` so this atom maps onto `fact`; returns
  /// false (leaving the assignment in a valid but partially-extended state —
  /// callers must restore from a copy) if unification fails.
  bool UnifyWith(const Fact& fact, Assignment* assignment) const;

  std::string ToString(const Schema& schema) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation_ == b.relation_ && a.terms_ == b.terms_;
  }
  friend std::strong_ordering operator<=>(const Atom& a, const Atom& b) {
    if (auto c = a.relation_ <=> b.relation_; c != 0) return c;
    return a.terms_ <=> b.terms_;
  }

 private:
  RelationId relation_ = 0;
  std::vector<Term> terms_;
};

}  // namespace shapley

#endif  // SHAPLEY_QUERY_ATOM_H_
