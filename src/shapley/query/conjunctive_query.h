#ifndef SHAPLEY_QUERY_CONJUNCTIVE_QUERY_H_
#define SHAPLEY_QUERY_CONJUNCTIVE_QUERY_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "shapley/query/atom.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// A Boolean conjunctive query — optionally with safely-negated atoms
/// (the sjf-CQ¬ class of Section 6.2): all variables are existentially
/// quantified, and D |= q iff some assignment maps every positive atom onto
/// a fact of D while no instantiated negative atom is in D.
///
/// Safe negation requires every variable of a negated atom to occur in some
/// positive atom; the constructor enforces this.
class ConjunctiveQuery : public BooleanQuery,
                         public std::enable_shared_from_this<ConjunctiveQuery> {
 public:
  /// Positive-only CQ.
  static std::shared_ptr<const ConjunctiveQuery> Create(
      std::shared_ptr<Schema> schema, std::vector<Atom> atoms);

  /// CQ with safely negated atoms; throws std::invalid_argument if a negated
  /// atom has a variable not covered by the positive part.
  static std::shared_ptr<const ConjunctiveQuery> CreateWithNegation(
      std::shared_ptr<Schema> schema, std::vector<Atom> positive,
      std::vector<Atom> negated);

  const std::vector<Atom>& atoms() const { return positive_; }
  const std::vector<Atom>& negated_atoms() const { return negated_; }
  bool HasNegation() const { return !negated_.empty(); }

  /// All variables of the query (positive and negative parts).
  std::set<Variable> Variables() const;

  /// The query with `var` replaced by `value` everywhere.
  std::shared_ptr<const ConjunctiveQuery> Substitute(Variable var,
                                                     Constant value) const;

  /// The canonical database (freeze each variable to a fresh constant),
  /// together with the assignment used. For a core (minimal) CQ this is a
  /// minimal support.
  Database Freeze(Assignment* frozen_assignment = nullptr) const;

  // BooleanQuery:
  bool Evaluate(const Database& db) const override;
  std::set<Constant> QueryConstants() const override;
  bool IsMonotone() const override { return negated_.empty(); }
  std::string ToString() const override;
  const std::shared_ptr<Schema>& schema() const override { return schema_; }

 private:
  ConjunctiveQuery(std::shared_ptr<Schema> schema, std::vector<Atom> positive,
                   std::vector<Atom> negated);

  std::shared_ptr<Schema> schema_;
  std::vector<Atom> positive_;
  std::vector<Atom> negated_;
};

using CqPtr = std::shared_ptr<const ConjunctiveQuery>;

}  // namespace shapley

#endif  // SHAPLEY_QUERY_CONJUNCTIVE_QUERY_H_
