#include "shapley/query/answers.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "shapley/common/macros.h"
#include "shapley/query/hom_search.h"

namespace shapley {

namespace {

void ValidateFreeVariables(const ConjunctiveQuery& query,
                           const std::vector<Variable>& free_vars) {
  std::set<Variable> vars = query.Variables();
  for (Variable v : free_vars) {
    if (vars.count(v) == 0) {
      throw std::invalid_argument("free variable '" + v.name() +
                                  "' does not occur in the query");
    }
  }
}

}  // namespace

std::vector<AnswerTuple> EnumerateAnswers(
    const ConjunctiveQuery& query, const std::vector<Variable>& free_vars,
    const Database& db) {
  ValidateFreeVariables(query, free_vars);
  std::set<AnswerTuple> answers;
  ForEachHomomorphism(query.atoms(), db, [&](const Assignment& assignment) {
    // Negated atoms block this assignment if instantiated in the database.
    for (const Atom& neg : query.negated_atoms()) {
      if (db.Contains(neg.Instantiate(assignment))) return true;
    }
    AnswerTuple tuple;
    tuple.reserve(free_vars.size());
    for (Variable v : free_vars) tuple.push_back(assignment.at(v));
    answers.insert(std::move(tuple));
    return true;
  });
  return std::vector<AnswerTuple>(answers.begin(), answers.end());
}

CqPtr BooleanizeForAnswer(const ConjunctiveQuery& query,
                          const std::vector<Variable>& free_vars,
                          const AnswerTuple& answer) {
  ValidateFreeVariables(query, free_vars);
  if (free_vars.size() != answer.size()) {
    throw std::invalid_argument(
        "answer tuple arity does not match the free-variable list");
  }
  if (free_vars.empty()) {
    return query.negated_atoms().empty()
               ? ConjunctiveQuery::Create(query.schema(), query.atoms())
               : ConjunctiveQuery::CreateWithNegation(
                     query.schema(), query.atoms(), query.negated_atoms());
  }
  CqPtr result = query.Substitute(free_vars[0], answer[0]);
  for (size_t i = 1; i < free_vars.size(); ++i) {
    result = result->Substitute(free_vars[i], answer[i]);
  }
  return result;
}

}  // namespace shapley
