#include "shapley/query/term.h"

#include <ostream>

#include "shapley/common/macros.h"

namespace shapley {

Variable Term::variable() const {
  SHAPLEY_CHECK(is_variable_);
  return Variable::FromId(id_);
}

Constant Term::constant() const {
  SHAPLEY_CHECK(!is_variable_);
  return Constant::FromId(id_);
}

std::string Term::ToString() const {
  return is_variable_ ? Variable::FromId(id_).name()
                      : Constant::FromId(id_).name();
}

std::ostream& operator<<(std::ostream& os, Term t) {
  return os << t.ToString();
}

}  // namespace shapley
