#include "shapley/query/supports.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "shapley/common/macros.h"
#include "shapley/query/conjunction_query.h"
#include "shapley/query/hom_search.h"

namespace shapley {

namespace {

void RequireMonotone(const BooleanQuery& query) {
  if (!query.IsMonotone()) {
    throw std::invalid_argument(
        "supports: minimal-support machinery requires a monotone query, got " +
        query.ToString());
  }
}

// Keeps only inclusion-minimal databases, deduplicated.
std::vector<Database> FilterMinimal(std::vector<Database> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Database& a, const Database& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a.facts() < b.facts();
            });
  std::vector<Database> result;
  for (const Database& c : candidates) {
    bool dominated = false;
    for (const Database& kept : result) {
      if (kept.IsSubsetOf(c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(c);
  }
  return result;
}

void CheckCap(size_t size, size_t cap) {
  if (size > cap) {
    throw std::invalid_argument(
        "EnumerateMinimalSupports: support count exceeds cap");
  }
}

// All homomorphism images of the disjunct's atoms in db.
std::vector<Database> HomomorphismImages(const ConjunctiveQuery& cq,
                                         const Database& db, size_t cap) {
  std::vector<Database> images;
  ForEachHomomorphism(cq.atoms(), db, [&](const Assignment& assignment) {
    Database image(db.schema());
    for (const Atom& atom : cq.atoms()) {
      image.Insert(atom.Instantiate(assignment));
    }
    images.push_back(std::move(image));
    CheckCap(images.size(), cap);
    return true;
  });
  return images;
}

// Minimal edge-sets supporting an accepting product walk from src to dst.
// Explores all walks that never revisit a (constant, state) pair; each
// minimal support is the edge set of such a walk (revisits can be cut).
std::vector<Database> PathSupports(const Database& db, const Dfa& dfa,
                                   Constant src, Constant dst, size_t cap) {
  std::vector<Database> found;
  if (dfa.AcceptsEmptyLanguage()) return found;
  if (src == dst && dfa.AcceptsEpsilon()) {
    found.push_back(Database(db.schema()));  // The empty support.
    return found;
  }

  // Adjacency with the originating fact attached.
  std::map<Constant, std::vector<std::pair<SymbolId, Fact>>> adjacency;
  for (const Fact& f : db.facts()) {
    if (f.arity() != 2) continue;
    for (SymbolId a = 0; a < dfa.symbol_names().size(); ++a) {
      auto rel = db.schema()->FindRelation(dfa.symbol_names()[a]);
      if (rel.has_value() && *rel == f.relation()) {
        adjacency[f.args()[0]].push_back({a, f});
      }
    }
  }

  std::set<std::pair<Constant, uint32_t>> on_walk;
  Database edges(db.schema());
  auto dfs = [&](auto&& self, Constant c, uint32_t s) -> void {
    if (c == dst && dfa.IsAccepting(s)) {
      // Record and stop extending: longer walks only add edges.
      found.push_back(edges);
      CheckCap(found.size(), cap);
      return;
    }
    auto it = adjacency.find(c);
    if (it == adjacency.end()) return;
    for (const auto& [symbol, fact] : it->second) {
      uint32_t next = dfa.Step(s, symbol);
      if (next == Dfa::kNoTransition) continue;
      Constant next_const = fact.args()[1];
      if (on_walk.count({next_const, next}) > 0) continue;
      on_walk.insert({next_const, next});
      bool inserted = edges.Insert(fact);
      self(self, next_const, next);
      if (inserted) edges.Remove(fact);
      on_walk.erase({next_const, next});
    }
  };
  on_walk.insert({src, dfa.StartState()});
  dfs(dfs, src, dfa.StartState());
  return found;
}

// Cross-product unions of per-part support lists.
std::vector<Database> UnionCombinations(
    const std::vector<std::vector<Database>>& parts,
    const std::shared_ptr<Schema>& schema, size_t cap) {
  std::vector<Database> result = {Database(schema)};
  for (const auto& part : parts) {
    std::vector<Database> next;
    for (const Database& prefix : result) {
      for (const Database& s : part) {
        next.push_back(prefix.Union(s));
        CheckCap(next.size(), cap);
      }
    }
    result = std::move(next);
    if (result.empty()) return result;  // Some part unsatisfiable.
  }
  return result;
}

std::vector<Database> EnumerateForCrpq(const ConjunctiveRegularPathQuery& crpq,
                                       const Database& db, size_t cap) {
  std::set<Constant> domain_set = db.Constants();
  for (Constant c : crpq.QueryConstants()) domain_set.insert(c);
  std::vector<Constant> domain(domain_set.begin(), domain_set.end());
  std::vector<Variable> vars;
  for (Variable v : crpq.Variables()) vars.push_back(v);

  std::vector<Database> candidates;
  Assignment assignment;
  auto resolve = [&](Term t) {
    return t.IsConstant() ? t.constant() : assignment.at(t.variable());
  };
  auto emit = [&]() {
    std::vector<std::vector<Database>> parts;
    for (size_t i = 0; i < crpq.path_atoms().size(); ++i) {
      parts.push_back(PathSupports(db, crpq.dfas()[i],
                                   resolve(crpq.path_atoms()[i].source),
                                   resolve(crpq.path_atoms()[i].target), cap));
      if (parts.back().empty()) return;  // Assignment infeasible.
    }
    for (Database& u : UnionCombinations(parts, db.schema(), cap)) {
      candidates.push_back(std::move(u));
      CheckCap(candidates.size(), cap);
    }
  };
  auto search = [&](auto&& self, size_t i) -> void {
    if (i == vars.size()) {
      emit();
      return;
    }
    for (Constant c : domain) {
      assignment[vars[i]] = c;
      self(self, i + 1);
    }
    assignment.erase(vars[i]);
  };
  search(search, 0);
  return candidates;
}

// Fallback: enumerate all subsets (only for small databases).
std::vector<Database> EnumerateBySubsets(const BooleanQuery& query,
                                         const Database& db, size_t cap) {
  if (db.size() > 24) {
    throw std::invalid_argument(
        "EnumerateMinimalSupports: generic fallback limited to 24 facts");
  }
  const auto& facts = db.facts();
  std::vector<Database> satisfying;
  for (uint64_t mask = 0; mask < (uint64_t{1} << facts.size()); ++mask) {
    Database subset(db.schema());
    for (size_t i = 0; i < facts.size(); ++i) {
      if (mask & (uint64_t{1} << i)) subset.Insert(facts[i]);
    }
    if (query.Evaluate(subset)) {
      satisfying.push_back(std::move(subset));
      CheckCap(satisfying.size(), cap);
    }
  }
  return satisfying;
}

}  // namespace

Database ShrinkToMinimalSupport(const BooleanQuery& query, Database db) {
  RequireMonotone(query);
  SHAPLEY_CHECK_MSG(query.Evaluate(db),
                    "ShrinkToMinimalSupport: db does not satisfy the query");
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fact& f : db.facts()) {
      Database smaller = db;
      smaller.Remove(f);
      if (query.Evaluate(smaller)) {
        db = std::move(smaller);
        changed = true;
        break;
      }
    }
  }
  return db;
}

bool IsMinimalSupport(const BooleanQuery& query, const Database& db) {
  RequireMonotone(query);
  if (!query.Evaluate(db)) return false;
  for (const Fact& f : db.facts()) {
    Database smaller = db;
    smaller.Remove(f);
    if (query.Evaluate(smaller)) return false;
  }
  return true;
}

std::vector<Database> EnumerateMinimalSupports(const BooleanQuery& query,
                                               const Database& db,
                                               size_t cap) {
  RequireMonotone(query);
  std::vector<Database> candidates;

  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    candidates = HomomorphismImages(*cq, db, cap);
  } else if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    for (const CqPtr& disjunct : ucq->disjuncts()) {
      auto images = HomomorphismImages(*disjunct, db, cap);
      candidates.insert(candidates.end(), images.begin(), images.end());
      CheckCap(candidates.size(), cap);
    }
  } else if (const auto* rpq = dynamic_cast<const RegularPathQuery*>(&query)) {
    candidates = PathSupports(db, rpq->dfa(), rpq->source(), rpq->target(), cap);
  } else if (const auto* crpq =
                 dynamic_cast<const ConjunctiveRegularPathQuery*>(&query)) {
    candidates = EnumerateForCrpq(*crpq, db, cap);
  } else if (const auto* ucrpq = dynamic_cast<const UnionCrpq*>(&query)) {
    for (const CrpqPtr& disjunct : ucrpq->disjuncts()) {
      auto subs = EnumerateForCrpq(*disjunct, db, cap);
      candidates.insert(candidates.end(), subs.begin(), subs.end());
      CheckCap(candidates.size(), cap);
    }
  } else if (const auto* conj = dynamic_cast<const ConjunctionQuery*>(&query)) {
    std::vector<std::vector<Database>> parts;
    parts.push_back(EnumerateMinimalSupports(*conj->left(), db, cap));
    parts.push_back(EnumerateMinimalSupports(*conj->right(), db, cap));
    candidates = UnionCombinations(parts, db.schema(), cap);
  } else {
    candidates = EnumerateBySubsets(query, db, cap);
  }

  return FilterMinimal(std::move(candidates));
}

CqPtr CoreOfCq(const ConjunctiveQuery& cq) {
  if (cq.HasNegation()) {
    throw std::invalid_argument("CoreOfCq: defined for positive CQs only");
  }
  // Deduplicate atoms first.
  std::vector<Atom> atoms = cq.atoms();
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());

  bool changed = true;
  while (changed && atoms.size() > 1) {
    changed = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      std::vector<Atom> smaller;
      for (size_t j = 0; j < atoms.size(); ++j) {
        if (j != i) smaller.push_back(atoms[j]);
      }
      // q ≡ q−α iff q → q−α (the reverse inclusion hom always exists).
      if (AtomSetHomomorphismExists(atoms, smaller, cq.schema())) {
        atoms = std::move(smaller);
        changed = true;
        break;
      }
    }
  }
  return ConjunctiveQuery::Create(cq.schema(), std::move(atoms));
}

std::optional<Database> CanonicalRpqSupport(const RegularPathQuery& rpq,
                                            size_t min_len) {
  if (rpq.source() == rpq.target() && rpq.dfa().AcceptsEpsilon()) {
    // The query is ⊤: its unique minimal support is the empty database, and
    // no path support is canonical.
    return Database(rpq.schema());
  }
  auto word = rpq.dfa().ShortestWordOfLengthAtLeast(std::max<size_t>(min_len, 1));
  if (!word.has_value()) return std::nullopt;
  Database path(rpq.schema());
  Constant prev = rpq.source();
  for (size_t i = 0; i < word->size(); ++i) {
    Constant next =
        (i + 1 == word->size()) ? rpq.target() : Constant::Fresh("m");
    auto rel = rpq.schema()->FindRelation(rpq.dfa().symbol_names()[(*word)[i]]);
    SHAPLEY_CHECK(rel.has_value());
    path.Insert(Fact(*rel, {prev, next}));
    prev = next;
  }
  return path;
}

std::vector<Database> CanonicalMinimalSupports(const BooleanQuery& query) {
  RequireMonotone(query);

  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    return {CoreOfCq(*cq)->Freeze()};
  }
  if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    std::vector<Database> result;
    for (const CqPtr& disjunct : ucq->disjuncts()) {
      Database frozen = CoreOfCq(*disjunct)->Freeze();
      result.push_back(ShrinkToMinimalSupport(query, std::move(frozen)));
    }
    return FilterMinimal(std::move(result));
  }
  if (const auto* rpq = dynamic_cast<const RegularPathQuery*>(&query)) {
    auto support = CanonicalRpqSupport(*rpq, 0);
    if (!support.has_value()) return {};
    return {*support};
  }
  if (const auto* crpq =
          dynamic_cast<const ConjunctiveRegularPathQuery*>(&query)) {
    // Freeze variable endpoints, lay a shortest-word path per atom, shrink.
    Assignment frozen;
    for (Variable v : crpq->Variables()) {
      frozen.emplace(v, Constant::Fresh(v.name()));
    }
    Database support(crpq->schema());
    for (size_t i = 0; i < crpq->path_atoms().size(); ++i) {
      const PathAtom& pa = crpq->path_atoms()[i];
      Constant src = pa.source.IsConstant() ? pa.source.constant()
                                            : frozen.at(pa.source.variable());
      Constant dst = pa.target.IsConstant() ? pa.target.constant()
                                            : frozen.at(pa.target.variable());
      auto word = crpq->dfas()[i].ShortestWord();
      if (!word.has_value()) return {};  // Unsatisfiable atom.
      if (word->empty() && !(src == dst)) {
        // Try a nonempty word instead (endpoints differ).
        word = crpq->dfas()[i].ShortestWordOfLengthAtLeast(1);
        if (!word.has_value()) return {};
      }
      Constant prev = src;
      for (size_t k = 0; k < word->size(); ++k) {
        Constant next = (k + 1 == word->size()) ? dst : Constant::Fresh("m");
        auto rel =
            crpq->schema()->FindRelation(crpq->dfas()[i].symbol_names()[(*word)[k]]);
        SHAPLEY_CHECK(rel.has_value());
        support.Insert(Fact(*rel, {prev, next}));
        prev = next;
      }
    }
    if (!crpq->Evaluate(support)) return {};
    return {ShrinkToMinimalSupport(*crpq, std::move(support))};
  }
  if (const auto* ucrpq = dynamic_cast<const UnionCrpq*>(&query)) {
    std::vector<Database> result;
    for (const CrpqPtr& disjunct : ucrpq->disjuncts()) {
      for (Database s : CanonicalMinimalSupports(*disjunct)) {
        result.push_back(ShrinkToMinimalSupport(query, std::move(s)));
      }
    }
    return FilterMinimal(std::move(result));
  }
  if (const auto* conj = dynamic_cast<const ConjunctionQuery*>(&query)) {
    std::vector<Database> left = CanonicalMinimalSupports(*conj->left());
    std::vector<Database> right = CanonicalMinimalSupports(*conj->right());
    std::vector<Database> result;
    for (const Database& l : left) {
      for (const Database& r : right) {
        Database u = l.Union(r);
        if (query.Evaluate(u)) {
          result.push_back(ShrinkToMinimalSupport(query, std::move(u)));
        }
      }
    }
    return FilterMinimal(std::move(result));
  }
  throw std::invalid_argument(
      "CanonicalMinimalSupports: unsupported query type");
}

}  // namespace shapley
