#include "shapley/query/union_query.h"

#include <sstream>
#include <stdexcept>

namespace shapley {

std::shared_ptr<const UnionQuery> UnionQuery::Create(
    std::vector<CqPtr> disjuncts) {
  if (disjuncts.empty()) {
    throw std::invalid_argument("UnionQuery: at least one disjunct required");
  }
  return std::shared_ptr<const UnionQuery>(new UnionQuery(std::move(disjuncts)));
}

bool UnionQuery::IsConstantFree() const {
  for (const CqPtr& cq : disjuncts_) {
    if (!cq->QueryConstants().empty()) return false;
  }
  return true;
}

bool UnionQuery::IsPositive() const {
  for (const CqPtr& cq : disjuncts_) {
    if (cq->HasNegation()) return false;
  }
  return true;
}

bool UnionQuery::Evaluate(const Database& db) const {
  for (const CqPtr& cq : disjuncts_) {
    if (cq->Evaluate(db)) return true;
  }
  return false;
}

std::set<Constant> UnionQuery::QueryConstants() const {
  std::set<Constant> result;
  for (const CqPtr& cq : disjuncts_) {
    auto cs = cq->QueryConstants();
    result.insert(cs.begin(), cs.end());
  }
  return result;
}

std::string UnionQuery::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) os << " ∨ ";
    os << "(" << disjuncts_[i]->ToString() << ")";
  }
  return os.str();
}

}  // namespace shapley
