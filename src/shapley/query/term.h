#ifndef SHAPLEY_QUERY_TERM_H_
#define SHAPLEY_QUERY_TERM_H_

#include <compare>
#include <iosfwd>
#include <string>

#include "shapley/data/symbol.h"

namespace shapley {

/// A term: either a variable or a constant (Section 2's Var ∪ Const).
class Term {
 public:
  Term() : is_variable_(false), id_(0) {}
  Term(Variable v) : is_variable_(true), id_(v.id()) {}    // NOLINT
  Term(Constant c) : is_variable_(false), id_(c.id()) {}   // NOLINT

  bool IsVariable() const { return is_variable_; }
  bool IsConstant() const { return !is_variable_; }

  /// Requires IsVariable() / IsConstant() respectively.
  Variable variable() const;
  Constant constant() const;

  std::string ToString() const;

  friend bool operator==(Term a, Term b) {
    return a.is_variable_ == b.is_variable_ && a.id_ == b.id_;
  }
  friend auto operator<=>(Term a, Term b) {
    if (auto c = a.is_variable_ <=> b.is_variable_; c != 0) return c;
    return a.id_ <=> b.id_;
  }
  friend std::ostream& operator<<(std::ostream& os, Term t);

  size_t Hash() const { return (size_t{id_} << 1) | (is_variable_ ? 1 : 0); }

 private:
  bool is_variable_;
  uint32_t id_;
};

}  // namespace shapley

template <>
struct std::hash<shapley::Term> {
  size_t operator()(shapley::Term t) const { return t.Hash(); }
};

#endif  // SHAPLEY_QUERY_TERM_H_
