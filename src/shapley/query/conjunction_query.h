#ifndef SHAPLEY_QUERY_CONJUNCTION_QUERY_H_
#define SHAPLEY_QUERY_CONJUNCTION_QUERY_H_

#include <memory>
#include <vector>

#include "shapley/query/boolean_query.h"

namespace shapley {

/// The conjunction q1 ∧ q2 of two arbitrary Boolean queries.
///
/// Lemma 4.3 reduces FGMC_q to SVC_{q ∧ q'} and Lemma 4.4 decomposes a query
/// into q1 ∧ q2; this class is the oracle-side query object for both.
class ConjunctionQuery : public BooleanQuery {
 public:
  static std::shared_ptr<const ConjunctionQuery> Create(QueryPtr left,
                                                        QueryPtr right);

  const QueryPtr& left() const { return left_; }
  const QueryPtr& right() const { return right_; }

  // BooleanQuery:
  bool Evaluate(const Database& db) const override {
    return left_->Evaluate(db) && right_->Evaluate(db);
  }
  std::set<Constant> QueryConstants() const override;
  bool IsMonotone() const override {
    return left_->IsMonotone() && right_->IsMonotone();
  }
  std::string ToString() const override;
  const std::shared_ptr<Schema>& schema() const override {
    return left_->schema();
  }

 private:
  ConjunctionQuery(QueryPtr left, QueryPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  QueryPtr left_;
  QueryPtr right_;
};

}  // namespace shapley

#endif  // SHAPLEY_QUERY_CONJUNCTION_QUERY_H_
