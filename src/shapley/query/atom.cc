#include "shapley/query/atom.h"

#include <sstream>

#include "shapley/common/macros.h"

namespace shapley {

Atom::Atom(RelationId relation, std::vector<Term> terms)
    : relation_(relation), terms_(std::move(terms)) {}

Atom::Atom(RelationId relation, std::initializer_list<Term> terms)
    : relation_(relation), terms_(terms) {}

std::set<Variable> Atom::Variables() const {
  std::set<Variable> result;
  for (Term t : terms_) {
    if (t.IsVariable()) result.insert(t.variable());
  }
  return result;
}

std::set<Constant> Atom::Constants() const {
  std::set<Constant> result;
  for (Term t : terms_) {
    if (t.IsConstant()) result.insert(t.constant());
  }
  return result;
}

bool Atom::IsGround() const {
  for (Term t : terms_) {
    if (t.IsVariable()) return false;
  }
  return true;
}

Fact Atom::Instantiate(const Assignment& assignment) const {
  std::vector<Constant> args;
  args.reserve(terms_.size());
  for (Term t : terms_) {
    if (t.IsConstant()) {
      args.push_back(t.constant());
    } else {
      auto it = assignment.find(t.variable());
      SHAPLEY_CHECK_MSG(it != assignment.end(),
                        "unassigned variable " << t.variable().name());
      args.push_back(it->second);
    }
  }
  return Fact(relation_, std::move(args));
}

Atom Atom::Substitute(Variable var, Constant value) const {
  std::vector<Term> terms;
  terms.reserve(terms_.size());
  for (Term t : terms_) {
    if (t.IsVariable() && t.variable() == var) {
      terms.push_back(Term(value));
    } else {
      terms.push_back(t);
    }
  }
  return Atom(relation_, std::move(terms));
}

bool Atom::UnifyWith(const Fact& fact, Assignment* assignment) const {
  if (fact.relation() != relation_ || fact.arity() != terms_.size()) {
    return false;
  }
  for (size_t i = 0; i < terms_.size(); ++i) {
    Term t = terms_[i];
    if (t.IsConstant()) {
      if (!(t.constant() == fact.args()[i])) return false;
    } else {
      auto [it, inserted] = assignment->emplace(t.variable(), fact.args()[i]);
      if (!inserted && !(it->second == fact.args()[i])) return false;
    }
  }
  return true;
}

std::string Atom::ToString(const Schema& schema) const {
  // Direct string building — rendered per request on the shard-key path.
  const std::string& relation = schema.name(relation_);
  std::string out;
  out.reserve(relation.size() + 2 + terms_.size() * 4);
  out += relation;
  out += '(';
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += ',';
    out += terms_[i].ToString();
  }
  out += ')';
  return out;
}

}  // namespace shapley
