#ifndef SHAPLEY_QUERY_BOOLEAN_QUERY_H_
#define SHAPLEY_QUERY_BOOLEAN_QUERY_H_

#include <memory>
#include <set>
#include <string>

#include "shapley/data/database.h"
#include "shapley/data/symbol.h"

namespace shapley {

/// Abstract Boolean query: a true/false property of databases (Section 2).
///
/// All problem engines (SVC, FGMC, PQE, ...) operate against this interface;
/// concrete classes are ConjunctiveQuery, UnionQuery, RegularPathQuery,
/// ConjunctiveRegularPathQuery, UnionCrpq and ConjunctionQuery.
class BooleanQuery {
 public:
  virtual ~BooleanQuery() = default;

  /// D |= q.
  virtual bool Evaluate(const Database& db) const = 0;

  /// The constants mentioned by the query — the set C relative to which the
  /// query is C-hom-closed (for the monotone classes of this library).
  virtual std::set<Constant> QueryConstants() const = 0;

  /// Monotone queries are closed under adding facts; every class here is
  /// monotone except conjunctive queries with negated atoms.
  virtual bool IsMonotone() const { return true; }

  virtual std::string ToString() const = 0;

  virtual const std::shared_ptr<Schema>& schema() const = 0;
};

/// Queries are immutable and shared freely across engines and reductions.
using QueryPtr = std::shared_ptr<const BooleanQuery>;

}  // namespace shapley

#endif  // SHAPLEY_QUERY_BOOLEAN_QUERY_H_
