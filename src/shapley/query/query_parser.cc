#include "shapley/query/query_parser.h"

#include <cctype>
#include <stdexcept>
#include <string>
#include <vector>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

bool IsVariableName(std::string_view name) {
  if (name.empty()) return false;
  char c = name[0];
  return c == 'u' || c == 'v' || c == 'w' || c == 'x' || c == 'y' || c == 'z';
}

class QueryScanner {
 public:
  QueryScanner(const std::shared_ptr<Schema>& schema, std::string_view text)
      : schema_(schema), text_(text) {}

  void SkipSeparators() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSeparators();
    return pos_ >= text_.size();
  }

  bool AtDisjunctionBar() {
    SkipSeparators();
    return pos_ < text_.size() && text_[pos_] == '|';
  }

  void ConsumeBar() {
    SHAPLEY_CHECK(AtDisjunctionBar());
    ++pos_;
  }

  // Parses one atom; sets *negated if prefixed with '!'.
  Atom ParseOneAtom(bool* negated) {
    SkipSeparators();
    *negated = false;
    if (pos_ < text_.size() && text_[pos_] == '!') {
      *negated = true;
      ++pos_;
    }
    std::string relation = ParseIdentifier("relation name");
    Expect('(');
    std::vector<Term> terms;
    while (true) {
      SkipSeparators();
      terms.push_back(ParseTerm());
      SkipSeparators();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        break;
      }
      if (pos_ >= text_.size()) {
        throw std::invalid_argument("ParseCq: unterminated atom '" + relation +
                                    "(...' in '" + std::string(text_) + "'");
      }
    }
    RelationId id =
        schema_->AddRelation(relation, static_cast<uint32_t>(terms.size()));
    return Atom(id, std::move(terms));
  }

 private:
  Term ParseTerm() {
    SkipSeparators();
    bool force_variable = false, force_constant = false;
    if (pos_ < text_.size() && text_[pos_] == '?') {
      force_variable = true;
      ++pos_;
    } else if (pos_ < text_.size() && text_[pos_] == '$') {
      force_constant = true;
      ++pos_;
    }
    std::string name = ParseIdentifier("term");
    if (force_variable || (!force_constant && IsVariableName(name))) {
      return Term(Variable::Named(name));
    }
    return Term(Constant::Named(name));
  }

  std::string ParseIdentifier(const char* what) {
    SkipSeparators();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '#' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (start == pos_) {
      throw std::invalid_argument(std::string("ParseCq: expected ") + what +
                                  " at position " + std::to_string(pos_) +
                                  " in '" + std::string(text_) + "'");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void Expect(char c) {
    SkipSeparators();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::invalid_argument(std::string("ParseCq: expected '") + c +
                                  "' at position " + std::to_string(pos_) +
                                  " in '" + std::string(text_) + "'");
    }
    ++pos_;
  }

  std::shared_ptr<Schema> schema_;
  std::string_view text_;
  size_t pos_ = 0;
};

CqPtr ParseOneCq(const std::shared_ptr<Schema>& schema, QueryScanner* scanner) {
  std::vector<Atom> positive, negated;
  while (!scanner->AtEnd() && !scanner->AtDisjunctionBar()) {
    bool neg = false;
    Atom atom = scanner->ParseOneAtom(&neg);
    (neg ? negated : positive).push_back(std::move(atom));
  }
  if (positive.empty() && negated.empty()) {
    throw std::invalid_argument("ParseCq: empty conjunct");
  }
  if (negated.empty()) return ConjunctiveQuery::Create(schema, std::move(positive));
  return ConjunctiveQuery::CreateWithNegation(schema, std::move(positive),
                                              std::move(negated));
}

}  // namespace

CqPtr ParseCq(const std::shared_ptr<Schema>& schema, std::string_view text) {
  QueryScanner scanner(schema, text);
  CqPtr cq = ParseOneCq(schema, &scanner);
  if (!scanner.AtEnd()) {
    throw std::invalid_argument("ParseCq: trailing input (use ParseUcq for "
                                "disjunctions) in '" +
                                std::string(text) + "'");
  }
  return cq;
}

UcqPtr ParseUcq(const std::shared_ptr<Schema>& schema, std::string_view text) {
  QueryScanner scanner(schema, text);
  std::vector<CqPtr> disjuncts;
  disjuncts.push_back(ParseOneCq(schema, &scanner));
  while (scanner.AtDisjunctionBar()) {
    scanner.ConsumeBar();
    disjuncts.push_back(ParseOneCq(schema, &scanner));
  }
  if (!scanner.AtEnd()) {
    throw std::invalid_argument("ParseUcq: trailing input in '" +
                                std::string(text) + "'");
  }
  return UnionQuery::Create(std::move(disjuncts));
}

Atom ParseAtom(const std::shared_ptr<Schema>& schema, std::string_view text) {
  QueryScanner scanner(schema, text);
  bool negated = false;
  Atom atom = scanner.ParseOneAtom(&negated);
  if (negated) {
    throw std::invalid_argument("ParseAtom: unexpected negation");
  }
  if (!scanner.AtEnd()) {
    throw std::invalid_argument("ParseAtom: trailing input");
  }
  return atom;
}

}  // namespace shapley
