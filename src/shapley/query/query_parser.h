#ifndef SHAPLEY_QUERY_QUERY_PARSER_H_
#define SHAPLEY_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "shapley/query/conjunctive_query.h"
#include "shapley/query/union_query.h"

namespace shapley {

/// Parses conjunctive queries and unions thereof from a compact textual
/// syntax mirroring the paper's notation:
///
///   "R(x,y), S(y,a)"                  — a CQ (atoms joined by , or whitespace)
///   "R(x,y) | S(x)"                   — a UCQ (disjuncts joined by '|')
///   "A(x), !S(x,y), B(y)"             — '!' negates an atom (safe negation)
///
/// Term convention (paper style): identifiers beginning with u, v, w, x, y
/// or z are variables; everything else is a constant. A '?' prefix forces a
/// variable ("?a"), and a '$' prefix forces a constant ("$x").
///
/// Unknown relation names are added to `schema` with the observed arity.
/// Throws std::invalid_argument on malformed input.
CqPtr ParseCq(const std::shared_ptr<Schema>& schema, std::string_view text);

/// Parses a UCQ; a single disjunct yields a one-disjunct union.
UcqPtr ParseUcq(const std::shared_ptr<Schema>& schema, std::string_view text);

/// Parses a single (possibly negated — the flag is returned separately) atom.
Atom ParseAtom(const std::shared_ptr<Schema>& schema, std::string_view text);

}  // namespace shapley

#endif  // SHAPLEY_QUERY_QUERY_PARSER_H_
