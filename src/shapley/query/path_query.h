#ifndef SHAPLEY_QUERY_PATH_QUERY_H_
#define SHAPLEY_QUERY_PATH_QUERY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "shapley/automata/automaton.h"
#include "shapley/query/boolean_query.h"
#include "shapley/query/term.h"
#include "shapley/query/union_query.h"

namespace shapley {

/// A path atom L(t, t') over a binary schema: a regular-language constraint
/// between two terms (Section 2).
struct PathAtom {
  Regex regex;
  Term source;
  Term target;
};

/// Product-automaton reachability: true iff the database contains a path
/// from `src` to `dst` labeled by a word of dfa's language. Symbols of the
/// DFA are matched to relations of `db`'s schema by name; unknown names
/// simply have no edges. Accepts with zero edges when src == dst and the
/// language contains the empty word.
bool PathReachable(const Database& db, const Dfa& dfa, Constant src,
                   Constant dst);

/// A Boolean regular path query L(a, b) with constant endpoints. {a,b}-hom-
/// closed; the central query class of Corollary 4.3 and [Khalil & Kimelfeld].
class RegularPathQuery : public BooleanQuery {
 public:
  static std::shared_ptr<const RegularPathQuery> Create(
      std::shared_ptr<Schema> schema, Regex regex, Constant source,
      Constant target);

  const Regex& regex() const { return regex_; }
  const Dfa& dfa() const { return dfa_; }
  Constant source() const { return source_; }
  Constant target() const { return target_; }

  /// If the language is finite (or truncated at `max_length`), the UCQ whose
  /// disjuncts are the label paths of each word. Exact when the language is
  /// finite and max_length >= MaxWordLength(). Throws std::invalid_argument
  /// if more than `limit` words would be produced.
  UcqPtr ExpandToUcq(size_t max_length, size_t limit = 4096) const;

  // BooleanQuery:
  bool Evaluate(const Database& db) const override;
  std::set<Constant> QueryConstants() const override;
  std::string ToString() const override;
  const std::shared_ptr<Schema>& schema() const override { return schema_; }

 private:
  RegularPathQuery(std::shared_ptr<Schema> schema, Regex regex,
                   Constant source, Constant target);

  std::shared_ptr<Schema> schema_;
  Regex regex_;
  Dfa dfa_;
  Constant source_;
  Constant target_;
};

using RpqPtr = std::shared_ptr<const RegularPathQuery>;

/// A Boolean conjunctive regular path query: an existentially quantified
/// conjunction of path atoms over a binary schema (Section 2).
class ConjunctiveRegularPathQuery : public BooleanQuery {
 public:
  static std::shared_ptr<const ConjunctiveRegularPathQuery> Create(
      std::shared_ptr<Schema> schema, std::vector<PathAtom> atoms);

  const std::vector<PathAtom>& path_atoms() const { return atoms_; }
  const std::vector<Dfa>& dfas() const { return dfas_; }

  std::set<Variable> Variables() const;

  /// True iff no two path atoms share an alphabet symbol (the sjf-CRPQ
  /// class of Corollary 4.6).
  bool IsSelfJoinFree() const;

  /// Expansion into a UCQ by enumerating each atom's words up to
  /// `max_length` and taking the cross product of choices. Exact when every
  /// language is finite and max_length bounds all of them.
  UcqPtr ExpandToUcq(size_t max_length, size_t limit = 4096) const;

  // BooleanQuery:
  bool Evaluate(const Database& db) const override;
  std::set<Constant> QueryConstants() const override;
  std::string ToString() const override;
  const std::shared_ptr<Schema>& schema() const override { return schema_; }

 private:
  ConjunctiveRegularPathQuery(std::shared_ptr<Schema> schema,
                              std::vector<PathAtom> atoms);

  std::shared_ptr<Schema> schema_;
  std::vector<PathAtom> atoms_;
  std::vector<Dfa> dfas_;  // Compiled per atom.
};

using CrpqPtr = std::shared_ptr<const ConjunctiveRegularPathQuery>;

/// A union of CRPQs.
class UnionCrpq : public BooleanQuery {
 public:
  static std::shared_ptr<const UnionCrpq> Create(std::vector<CrpqPtr> disjuncts);

  const std::vector<CrpqPtr>& disjuncts() const { return disjuncts_; }

  // BooleanQuery:
  bool Evaluate(const Database& db) const override;
  std::set<Constant> QueryConstants() const override;
  std::string ToString() const override;
  const std::shared_ptr<Schema>& schema() const override {
    return disjuncts_.front()->schema();
  }

 private:
  explicit UnionCrpq(std::vector<CrpqPtr> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  std::vector<CrpqPtr> disjuncts_;
};

using UcrpqPtr = std::shared_ptr<const UnionCrpq>;

}  // namespace shapley

#endif  // SHAPLEY_QUERY_PATH_QUERY_H_
