#ifndef SHAPLEY_QUERY_UNION_QUERY_H_
#define SHAPLEY_QUERY_UNION_QUERY_H_

#include <memory>
#include <vector>

#include "shapley/query/conjunctive_query.h"

namespace shapley {

/// A union of conjunctive queries q1 ∨ ... ∨ qk (Section 2). Disjuncts may
/// carry safe negation (giving unions of CQ¬, used in Section 6.2's DNF
/// machinery); the standard UCQ class has positive disjuncts only.
class UnionQuery : public BooleanQuery {
 public:
  /// Throws std::invalid_argument when `disjuncts` is empty (the empty
  /// union would be the unsatisfiable query, which no result here needs).
  static std::shared_ptr<const UnionQuery> Create(std::vector<CqPtr> disjuncts);

  const std::vector<CqPtr>& disjuncts() const { return disjuncts_; }

  bool IsConstantFree() const;
  bool IsPositive() const;

  // BooleanQuery:
  bool Evaluate(const Database& db) const override;
  std::set<Constant> QueryConstants() const override;
  bool IsMonotone() const override { return IsPositive(); }
  std::string ToString() const override;
  const std::shared_ptr<Schema>& schema() const override {
    return disjuncts_.front()->schema();
  }

 private:
  explicit UnionQuery(std::vector<CqPtr> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  std::vector<CqPtr> disjuncts_;
};

using UcqPtr = std::shared_ptr<const UnionQuery>;

}  // namespace shapley

#endif  // SHAPLEY_QUERY_UNION_QUERY_H_
