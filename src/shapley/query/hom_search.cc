#include "shapley/query/hom_search.h"

#include <algorithm>
#include <map>

#include "shapley/common/macros.h"

namespace shapley {

namespace {

// Chooses the next atom to match: prefers atoms with the most already-bound
// terms (fail-fast), breaking ties by fewer candidate facts.
size_t PickNextAtom(const std::vector<Atom>& atoms,
                    const std::vector<bool>& done,
                    const Assignment& assignment,
                    const std::map<RelationId, std::vector<Fact>>& by_relation) {
  size_t best = atoms.size();
  int64_t best_score = -1;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    int64_t bound = 0;
    for (Term t : atoms[i].terms()) {
      if (t.IsConstant() ||
          (t.IsVariable() && assignment.count(t.variable()) > 0)) {
        ++bound;
      }
    }
    auto it = by_relation.find(atoms[i].relation());
    int64_t candidates =
        it == by_relation.end() ? 0 : static_cast<int64_t>(it->second.size());
    // Lexicographic preference: more bound terms first, then fewer
    // candidates. Scale keeps the comparison single-valued.
    int64_t score = bound * 1000000 - candidates;
    if (best == atoms.size() || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

bool Search(const std::vector<Atom>& atoms,
            const std::map<RelationId, std::vector<Fact>>& by_relation,
            std::vector<bool>* done, size_t remaining, Assignment* assignment,
            const std::function<bool(const Assignment&)>& on_match,
            bool* found) {
  if (remaining == 0) {
    *found = true;
    return on_match(*assignment);
  }
  size_t idx = PickNextAtom(atoms, *done, *assignment, by_relation);
  SHAPLEY_CHECK(idx < atoms.size());
  (*done)[idx] = true;
  auto it = by_relation.find(atoms[idx].relation());
  if (it != by_relation.end()) {
    for (const Fact& fact : it->second) {
      Assignment extended = *assignment;
      if (!atoms[idx].UnifyWith(fact, &extended)) continue;
      Assignment saved = std::move(*assignment);
      *assignment = std::move(extended);
      bool keep_going = Search(atoms, by_relation, done, remaining - 1,
                               assignment, on_match, found);
      *assignment = std::move(saved);
      if (!keep_going) {
        (*done)[idx] = false;
        return false;
      }
    }
  }
  (*done)[idx] = false;
  return true;
}

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& atoms, const Database& db,
                         const std::function<bool(const Assignment&)>& on_match,
                         Assignment initial) {
  std::map<RelationId, std::vector<Fact>> by_relation;
  for (const Fact& f : db.facts()) by_relation[f.relation()].push_back(f);

  std::vector<bool> done(atoms.size(), false);
  bool found = false;
  Assignment assignment = std::move(initial);
  Search(atoms, by_relation, &done, atoms.size(), &assignment, on_match,
         &found);
  return found;
}

bool HomomorphismExists(const std::vector<Atom>& atoms, const Database& db,
                        const Assignment& initial) {
  return ForEachHomomorphism(
      atoms, db, [](const Assignment&) { return false; }, initial);
}

bool AtomSetHomomorphismExists(const std::vector<Atom>& from,
                               const std::vector<Atom>& to,
                               const std::shared_ptr<Schema>& schema) {
  // Freeze the variables of `to` into fresh constants and reuse the
  // database-homomorphism machinery. Fixed constants stay fixed because the
  // frozen facts keep them verbatim.
  std::map<Variable, Constant> frozen;
  Database frozen_db(schema);
  for (const Atom& atom : to) {
    std::vector<Constant> args;
    for (Term t : atom.terms()) {
      if (t.IsConstant()) {
        args.push_back(t.constant());
      } else {
        auto [it, inserted] = frozen.emplace(t.variable(), Constant());
        if (inserted) it->second = Constant::Fresh("frz_" + t.variable().name());
        args.push_back(it->second);
      }
    }
    frozen_db.Insert(Fact(atom.relation(), std::move(args)));
  }
  return HomomorphismExists(from, frozen_db);
}

}  // namespace shapley
