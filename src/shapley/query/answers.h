#ifndef SHAPLEY_QUERY_ANSWERS_H_
#define SHAPLEY_QUERY_ANSWERS_H_

#include <vector>

#include "shapley/data/database.h"
#include "shapley/query/conjunctive_query.h"

namespace shapley {

/// Non-Boolean queries (Remark 3.1 of the paper): a CQ with designated free
/// variables. The Shapley value of a fact *for a given answer tuple* is the
/// value for the Boolean query obtained by substituting the answer's
/// constants for the free variables — which is why results for queries
/// *with constants* matter even if one starts constant-free.

/// An answer: constants in the order of the free-variable list.
using AnswerTuple = std::vector<Constant>;

/// All answers of `query` with free variables `free_vars` over `db`
/// (distinct tuples, sorted). Throws std::invalid_argument if some free
/// variable does not occur in the query.
std::vector<AnswerTuple> EnumerateAnswers(const ConjunctiveQuery& query,
                                          const std::vector<Variable>& free_vars,
                                          const Database& db);

/// The Boolean query q[free_vars ↦ answer] (Remark 3.1's reduction).
/// Throws std::invalid_argument on arity mismatch.
CqPtr BooleanizeForAnswer(const ConjunctiveQuery& query,
                          const std::vector<Variable>& free_vars,
                          const AnswerTuple& answer);

}  // namespace shapley

#endif  // SHAPLEY_QUERY_ANSWERS_H_
