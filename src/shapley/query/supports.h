#ifndef SHAPLEY_QUERY_SUPPORTS_H_
#define SHAPLEY_QUERY_SUPPORTS_H_

#include <optional>
#include <vector>

#include "shapley/query/boolean_query.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/query/path_query.h"
#include "shapley/query/union_query.h"

namespace shapley {

/// Minimal-support machinery (Section 2: "we call D a minimal support for q
/// if D |= q and D' |̸= q for every D' ⊊ D").
///
/// All functions here require the query to be monotone ((C-)hom-closed);
/// they throw std::invalid_argument otherwise.

/// Greedy shrink of a satisfying database to one minimal support. Requires
/// db |= q. For monotone queries, single-fact removals suffice to certify
/// minimality.
Database ShrinkToMinimalSupport(const BooleanQuery& query, Database db);

/// True iff db |= q and no single-fact removal still satisfies q.
bool IsMinimalSupport(const BooleanQuery& query, const Database& db);

/// All minimal supports of `query` inside `db`.
///
/// Complete for ConjunctiveQuery / UnionQuery (homomorphism images filtered
/// to inclusion-minimal ones), RegularPathQuery (non-revisiting product
/// walks), ConjunctiveRegularPathQuery and ConjunctionQuery (pairwise
/// unions, filtered); other query types fall back to subset enumeration,
/// which throws std::invalid_argument if db has more than 24 facts.
/// Throws if more than `cap` supports would be collected.
std::vector<Database> EnumerateMinimalSupports(const BooleanQuery& query,
                                               const Database& db,
                                               size_t cap = 200000);

/// The core of a positive CQ: a minimal equivalent subquery, computed by
/// repeatedly dropping atoms whose removal preserves hom-equivalence.
/// Duplicated atoms are removed first. Throws for CQs with negation.
CqPtr CoreOfCq(const ConjunctiveQuery& cq);

/// Canonical minimal supports of the query "in the abstract":
///  * CQ        — the frozen core (always exactly one);
///  * UCQ       — one per disjunct (frozen disjunct cores, shrunk w.r.t. the
///                whole union), inclusion-filtered;
///  * RPQ       — a fresh simple path realizing a shortest word (see
///                `CanonicalRpqSupport` for the length-constrained variant);
///  * CRPQ      — per-atom shortest-word paths with frozen endpoints, shrunk;
///  * Conjunction — unions of the operands' canonical supports, shrunk.
/// Returns an empty vector when the query is trivially true (⊤) and a
/// support exists with no facts.
std::vector<Database> CanonicalMinimalSupports(const BooleanQuery& query);

/// A minimal support of an RPQ realizing a shortest word of length >= min_len
/// (Lemma B.1's construction): a fresh simple path. Returns nullopt when the
/// language has no such word. Requires: not (epsilon-accepting with
/// source == target) — that query is ⊤ and has the empty support.
std::optional<Database> CanonicalRpqSupport(const RegularPathQuery& rpq,
                                            size_t min_len);

}  // namespace shapley

#endif  // SHAPLEY_QUERY_SUPPORTS_H_
