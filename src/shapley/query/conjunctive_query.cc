#include "shapley/query/conjunctive_query.h"

#include <sstream>
#include <stdexcept>

#include "shapley/common/macros.h"
#include "shapley/query/hom_search.h"

namespace shapley {

ConjunctiveQuery::ConjunctiveQuery(std::shared_ptr<Schema> schema,
                                   std::vector<Atom> positive,
                                   std::vector<Atom> negated)
    : schema_(std::move(schema)),
      positive_(std::move(positive)),
      negated_(std::move(negated)) {}

std::shared_ptr<const ConjunctiveQuery> ConjunctiveQuery::Create(
    std::shared_ptr<Schema> schema, std::vector<Atom> atoms) {
  return std::shared_ptr<const ConjunctiveQuery>(
      new ConjunctiveQuery(std::move(schema), std::move(atoms), {}));
}

std::shared_ptr<const ConjunctiveQuery> ConjunctiveQuery::CreateWithNegation(
    std::shared_ptr<Schema> schema, std::vector<Atom> positive,
    std::vector<Atom> negated) {
  std::set<Variable> positive_vars;
  for (const Atom& atom : positive) {
    auto vars = atom.Variables();
    positive_vars.insert(vars.begin(), vars.end());
  }
  for (const Atom& atom : negated) {
    for (Variable v : atom.Variables()) {
      if (positive_vars.count(v) == 0) {
        throw std::invalid_argument(
            "ConjunctiveQuery: unsafe negation — variable '" + v.name() +
            "' occurs only in a negated atom");
      }
    }
  }
  return std::shared_ptr<const ConjunctiveQuery>(new ConjunctiveQuery(
      std::move(schema), std::move(positive), std::move(negated)));
}

std::set<Variable> ConjunctiveQuery::Variables() const {
  std::set<Variable> result;
  for (const Atom& atom : positive_) {
    auto vars = atom.Variables();
    result.insert(vars.begin(), vars.end());
  }
  for (const Atom& atom : negated_) {
    auto vars = atom.Variables();
    result.insert(vars.begin(), vars.end());
  }
  return result;
}

std::shared_ptr<const ConjunctiveQuery> ConjunctiveQuery::Substitute(
    Variable var, Constant value) const {
  std::vector<Atom> positive, negated;
  positive.reserve(positive_.size());
  negated.reserve(negated_.size());
  for (const Atom& atom : positive_) positive.push_back(atom.Substitute(var, value));
  for (const Atom& atom : negated_) negated.push_back(atom.Substitute(var, value));
  return std::shared_ptr<const ConjunctiveQuery>(new ConjunctiveQuery(
      schema_, std::move(positive), std::move(negated)));
}

Database ConjunctiveQuery::Freeze(Assignment* frozen_assignment) const {
  Assignment assignment;
  for (Variable v : Variables()) {
    assignment.emplace(v, Constant::Fresh(v.name()));
  }
  Database db(schema_);
  for (const Atom& atom : positive_) db.Insert(atom.Instantiate(assignment));
  if (frozen_assignment != nullptr) *frozen_assignment = std::move(assignment);
  return db;
}

bool ConjunctiveQuery::Evaluate(const Database& db) const {
  bool satisfied = false;
  ForEachHomomorphism(positive_, db, [&](const Assignment& assignment) {
    for (const Atom& neg : negated_) {
      if (db.Contains(neg.Instantiate(assignment))) {
        return true;  // This match is blocked; keep searching.
      }
    }
    satisfied = true;
    return false;  // Stop: found a witnessing assignment.
  });
  return satisfied;
}

std::set<Constant> ConjunctiveQuery::QueryConstants() const {
  std::set<Constant> result;
  for (const Atom& atom : positive_) {
    auto cs = atom.Constants();
    result.insert(cs.begin(), cs.end());
  }
  for (const Atom& atom : negated_) {
    auto cs = atom.Constants();
    result.insert(cs.begin(), cs.end());
  }
  return result;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out;
  bool first = true;
  for (const Atom& atom : positive_) {
    if (!first) out += " ∧ ";
    first = false;
    out += atom.ToString(*schema_);
  }
  for (const Atom& atom : negated_) {
    if (!first) out += " ∧ ";
    first = false;
    out += "¬";
    out += atom.ToString(*schema_);
  }
  if (first) out += "⊤";
  return out;
}

}  // namespace shapley
