#ifndef SHAPLEY_COMMON_VERSION_H_
#define SHAPLEY_COMMON_VERSION_H_

namespace shapley {

/// Build identity reported by GET /healthz (net/server.h, cluster/router.h)
/// so a router's health probe — and an operator's curl — can tell which
/// build answered without paying for a full /v1/stats snapshot. Bumped on
/// wire-visible changes.
inline constexpr const char* kShapleyVersion = "0.6.0";

}  // namespace shapley

#endif  // SHAPLEY_COMMON_VERSION_H_
