#ifndef SHAPLEY_COMMON_MACROS_H_
#define SHAPLEY_COMMON_MACROS_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace shapley {

/// Exception thrown when an internal invariant is violated. Distinct from
/// std::invalid_argument (which signals a caller error, e.g. a malformed query
/// string) so that tests can tell the two apart.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::ostringstream os;
  os << "SHAPLEY_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) os << " — " << message;
  throw InternalError(os.str());
}

}  // namespace internal
}  // namespace shapley

/// Always-on assertion for internal invariants. Throws InternalError on
/// failure; never compiled out (the library's correctness claims are the
/// point of the reproduction, so we keep the guard rails in release builds).
#define SHAPLEY_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::shapley::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                    \
  } while (false)

/// Assertion with a streamed message: SHAPLEY_CHECK_MSG(x > 0, "x=" << x).
#define SHAPLEY_CHECK_MSG(expr, stream_expr)                             \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream shapley_check_os_;                              \
      shapley_check_os_ << stream_expr;                                  \
      ::shapley::internal::CheckFailed(__FILE__, __LINE__, #expr,        \
                                       shapley_check_os_.str());         \
    }                                                                    \
  } while (false)

#endif  // SHAPLEY_COMMON_MACROS_H_
