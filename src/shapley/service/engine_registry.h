#ifndef SHAPLEY_SERVICE_ENGINE_REGISTRY_H_
#define SHAPLEY_SERVICE_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shapley/engines/capabilities.h"
#include "shapley/engines/svc.h"

namespace shapley {

/// Name → engine factory with capability metadata — the one place engine
/// dispatch lives (it replaces the ad-hoc --engine string switch the CLI
/// used to carry). The service consults the caps for routing and
/// pre-flight validation; factories produce a fresh instance per request,
/// so engines never share mutable state across concurrent requests.
class EngineRegistry {
 public:
  using Factory = std::function<std::shared_ptr<SvcEngine>()>;

  struct Entry {
    std::string name;
    std::string description;
    EngineCaps caps;
    Factory factory;
  };

  /// The built-in engines:
  ///   brute         — exhaustive 2^|Dn| sweep, any query class, |Dn| <= 25
  ///   permutations  — |Dn|! cross-validation oracle, |Dn| <= 9
  ///   lifted        — via-FGMC over the lifted safe plan (hierarchical
  ///                   sjf-CQs; the polynomial side of the dichotomy)
  ///   ddnnf         — via-FGMC over lineage + d-DNNF compilation
  ///                   (monotone queries; exact, worst-case exponential)
  ///   sampling      — Monte Carlo permutation sampling with Hoeffding
  ///                   (ε, δ) bounds (any query class; approximate —
  ///                   routed to only on request opt-in)
  static EngineRegistry Default();

  /// Adds or replaces an entry under entry.name.
  void Register(Entry entry);

  /// Null when unknown.
  const Entry* Find(const std::string& name) const;

  /// A fresh engine instance; throws SvcException(kInvalidRequest) listing
  /// the known names when `name` is unknown.
  std::shared_ptr<SvcEngine> Create(const std::string& name) const;

  /// The one "unknown engine 'x' (known: ...)" error — shared by Create's
  /// throw and the service's structured-response path.
  SvcError UnknownEngineError(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// True iff an engine with `caps` can serve `query` over a database with
/// `num_endogenous` players; on rejection, *reason (when non-null) gets a
/// one-line explanation. This is where capability metadata meets the
/// structural analysis (hierarchicalness, self-join-freeness, monotonicity).
bool CapsAdmit(const EngineCaps& caps, const BooleanQuery& query,
               size_t num_endogenous, std::string* reason = nullptr);

}  // namespace shapley

#endif  // SHAPLEY_SERVICE_ENGINE_REGISTRY_H_
