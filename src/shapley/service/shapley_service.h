#ifndef SHAPLEY_SERVICE_SHAPLEY_SERVICE_H_
#define SHAPLEY_SERVICE_SHAPLEY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "shapley/engines/svc.h"
#include "shapley/exec/exec_context.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/exec/thread_pool.h"
#include "shapley/service/engine_registry.h"
#include "shapley/service/request.h"
#include "shapley/service/verdict_cache.h"

namespace shapley {

struct ServiceOptions {
  /// Worker threads serving requests (and fanning each request's per-fact
  /// work). 0 → one per hardware thread. 1 keeps Submit() non-blocking but
  /// executes requests one at a time in submission order, with the
  /// engine-internal work serial too — the deterministic mode.
  size_t threads = 0;

  /// Share one OracleCache across every request the service ever serves.
  bool use_cache = true;
  size_t cache_max_entries = 1 << 16;
  size_t cache_max_bytes = size_t{512} << 20;

  /// |Dn| guard of the brute-force fallback on the #P-hard side of the
  /// dichotomy: larger instances fail with kCapacityExceeded instead of
  /// starting a 2^|Dn| sweep that cannot finish — unless the request opts
  /// into approximation (SvcRequest::allow_approx), in which case routing
  /// falls through to the sampling engine. Clipped to
  /// kBruteForceMaxEndogenous.
  size_t brute_force_max_facts = kBruteForceMaxEndogenous;

  /// Bound of the verdict-memoization LRU: classification is a pure
  /// function of the query, so repeated-query streams skip it entirely
  /// after the first request. 0 disables memoization.
  size_t verdict_cache_entries = 1024;
};

/// One coherent snapshot of a service's counters — what a monitoring
/// endpoint (net/server.h's GET /v1/stats) or an operator wants in a
/// single read: request flow, verdict-cache effectiveness, pool size and
/// shared-cache occupancy. Counters are sampled individually (each is
/// atomic; the snapshot is not a transaction across them), which is the
/// right fidelity for monitoring.
struct ServiceStats {
  size_t requests_submitted = 0;
  size_t requests_completed = 0;
  size_t requests_failed = 0;
  /// Accepted but not yet finished (queued or executing) — what a load
  /// balancer (the shard router) reads to see how busy a backend is.
  size_t requests_inflight = 0;
  size_t verdict_cache_hits = 0;
  size_t verdict_cache_misses = 0;
  size_t pool_threads = 0;
  size_t pool_tasks_executed = 0;
  /// Shared OracleCache occupancy/traffic; all zero when caching is off.
  size_t cache_entries = 0;
  size_t cache_bytes = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;
};

/// The serving front-end of the library — the paper's dichotomy turned
/// into a routing policy.
///
/// ShapleyService accepts typed SvcRequests and returns futures for typed
/// SvcResponses. Submit() is non-blocking: the request is queued on the
/// service's long-lived ThreadPool and executed when a worker frees up.
/// Every request is classified (ClassifySvcComplexity) and the verdict is
/// embedded in its response; unless overridden, the verdict also routes
/// the request — the lifted via-FGMC engine on the tractable hierarchical
/// sjf-CQ side, guarded brute force otherwise, and a structured SvcError
/// (never a stray exception) when neither applies. The pool, the
/// size-aware OracleCache and the registry are owned here as process-wide
/// shared state: one service instance is the intended lifetime for a whole
/// serving process, and `BatchSvcRunner` is a thin synchronous adapter
/// over it.
///
/// Thread-safety: Submit/SubmitBatch/Compute may be called from any number
/// of client threads concurrently. Engines are instantiated per request
/// from the registry, so no engine state is shared across requests (except
/// caller-provided engine_instance overrides, whose sharing discipline is
/// the caller's).
///
/// Failure discipline: Execute never throws — every failure (capacity,
/// unsupported class, deadline, cancellation, engine error) becomes
/// SvcResponse::error, so a worker thread can never die on a request and
/// future.get() never surprises the client with an engine exception.
class ShapleyService {
 public:
  explicit ShapleyService(ServiceOptions options = {},
                          EngineRegistry registry = EngineRegistry::Default());
  ~ShapleyService();

  ShapleyService(const ShapleyService&) = delete;
  ShapleyService& operator=(const ShapleyService&) = delete;

  /// Queues one request; non-blocking. The future is always eventually
  /// ready and never throws on get().
  std::future<SvcResponse> Submit(SvcRequest request);

  /// Queues many requests at once; futures in input order.
  std::vector<std::future<SvcResponse>> SubmitBatch(
      std::vector<SvcRequest> requests);

  /// Blocking convenience: executes the request inline on the calling
  /// thread (no queue hop; engine-internal work still fans across the
  /// pool when threads > 1).
  SvcResponse Compute(SvcRequest request);

  /// Stops accepting work; queued-but-unstarted requests resolve with
  /// kCancelled. Idempotent. Also called by the destructor, which then
  /// drains the pool.
  void Shutdown();

  const EngineRegistry& registry() const { return registry_; }
  const ServiceOptions& options() const { return options_; }

  /// The shared pool (never null; size options().threads resolved).
  ThreadPool* pool() { return pool_.get(); }
  /// The shared cache; null when options().use_cache is false.
  OracleCache* cache() { return cache_.get(); }

  size_t requests_submitted() const { return submitted_.load(); }
  size_t requests_completed() const { return completed_.load(); }
  size_t requests_failed() const { return failed_.load(); }
  size_t requests_inflight() const { return inflight_.load(); }

  /// Requests whose classification was served from the verdict cache.
  size_t verdict_cache_hits() const { return verdict_cache_.hits(); }
  size_t verdict_cache_misses() const { return verdict_cache_.misses(); }

  /// One-call counter snapshot (see ServiceStats) — the source of the
  /// network front's /v1/stats endpoint.
  ServiceStats Stats() const;

 private:
  SvcResponse Execute(const SvcRequest& request,
                      std::chrono::steady_clock::time_point submitted);

  /// Registry factory + shared-context install (pool when parallel, cache,
  /// d-DNNF circuit sharing).
  std::shared_ptr<SvcEngine> MakeConfiguredEngine(
      const EngineRegistry::Entry& entry) const;

  /// Dichotomy routing (exact engines first; the sampling engine only when
  /// the request allows approximation and nothing exact admits); on
  /// failure fills response->error and returns null.
  std::shared_ptr<SvcEngine> Route(const SvcRequest& request,
                                   size_t num_endogenous,
                                   SvcResponse* response) const;

  /// ClassifySvcComplexity through the verdict cache. When `recorder` is
  /// non-null, records the verdict-cache lookup as a "cache" span (with a
  /// hit=true|false attribute) nested under the caller's open span.
  DichotomyVerdict Classify(const BooleanQuery& query,
                            obs::TraceRecorder* recorder = nullptr);

  const ServiceOptions options_;
  const EngineRegistry registry_;
  std::unique_ptr<OracleCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  VerdictCache verdict_cache_;
  ExecContext context_;  ///< Installed on registry-created engines.
  std::atomic<bool> shutting_down_{false};
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> completed_{0};
  std::atomic<size_t> failed_{0};
  std::atomic<size_t> inflight_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_SERVICE_SHAPLEY_SERVICE_H_
