#include "shapley/service/shapley_service.h"

#include <algorithm>
#include <typeinfo>
#include <utility>

#include "shapley/analysis/classifier.h"
#include "shapley/approx/sampling.h"
#include "shapley/engines/fgmc.h"

namespace shapley {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// An immediately-ready future (used when the service refuses work without
/// touching the pool).
std::future<SvcResponse> ReadyFuture(SvcResponse response) {
  std::promise<SvcResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

/// values sorted by descending value, ties by fact order, first k.
std::vector<std::pair<Fact, BigRational>> TopK(
    const std::map<Fact, BigRational>& values, size_t k) {
  std::vector<std::pair<Fact, BigRational>> ranked(values.begin(),
                                                   values.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return b.second < a.second;
                     return a.first < b.first;
                   });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace

std::string ToString(SvcMode mode) {
  switch (mode) {
    case SvcMode::kAllValues:
      return "all-values";
    case SvcMode::kMaxValue:
      return "max-value";
    case SvcMode::kTopK:
      return "top-k";
    case SvcMode::kClassifyOnly:
      return "classify-only";
  }
  return "?";
}

ShapleyService::ShapleyService(ServiceOptions options, EngineRegistry registry)
    : options_(options),
      registry_(std::move(registry)),
      verdict_cache_(options.verdict_cache_entries) {
  if (options_.use_cache) {
    cache_ = std::make_unique<OracleCache>(options_.cache_max_entries,
                                           options_.cache_max_bytes);
  }
  size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  // Engine-internal fan-out only pays off with real parallelism; with one
  // worker the engines run their serial (deterministic-order) paths.
  context_ =
      ExecContext{threads > 1 ? pool_.get() : nullptr, cache_.get()};
}

ShapleyService::~ShapleyService() {
  Shutdown();
  pool_.reset();  // Drains queued requests (each resolves kCancelled).
}

void ShapleyService::Shutdown() { shutting_down_.store(true); }

ServiceStats ShapleyService::Stats() const {
  ServiceStats stats;
  stats.requests_submitted = submitted_.load(std::memory_order_relaxed);
  stats.requests_completed = completed_.load(std::memory_order_relaxed);
  stats.requests_failed = failed_.load(std::memory_order_relaxed);
  stats.requests_inflight = inflight_.load(std::memory_order_relaxed);
  stats.verdict_cache_hits = verdict_cache_.hits();
  stats.verdict_cache_misses = verdict_cache_.misses();
  stats.pool_threads = pool_->num_threads();
  stats.pool_tasks_executed = pool_->tasks_executed();
  if (cache_ != nullptr) {
    stats.cache_entries = cache_->size();
    stats.cache_bytes = cache_->bytes_used();
    stats.cache_hits = cache_->hits();
    stats.cache_misses = cache_->misses();
    stats.cache_evictions = cache_->evictions();
  }
  return stats;
}

std::future<SvcResponse> ShapleyService::Submit(SvcRequest request) {
  const Clock::time_point submitted = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shutting_down_.load()) {
    SvcResponse response;
    response.mode = request.mode;
    response.error = SvcError{SvcErrorCode::kCancelled,
                              "service is shutting down", ""};
    failed_.fetch_add(1, std::memory_order_relaxed);
    return ReadyFuture(std::move(response));
  }
  auto shared = std::make_shared<SvcRequest>(std::move(request));
  inflight_.fetch_add(1, std::memory_order_relaxed);
  return pool_->Submit(
      [this, shared, submitted] { return Execute(*shared, submitted); });
}

std::vector<std::future<SvcResponse>> ShapleyService::SubmitBatch(
    std::vector<SvcRequest> requests) {
  std::vector<std::future<SvcResponse>> futures;
  futures.reserve(requests.size());
  for (SvcRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

SvcResponse ShapleyService::Compute(SvcRequest request) {
  const Clock::time_point submitted = Clock::now();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_relaxed);
  return Execute(request, submitted);
}

std::shared_ptr<SvcEngine> ShapleyService::MakeConfiguredEngine(
    const EngineRegistry::Entry& entry) const {
  std::shared_ptr<SvcEngine> engine = entry.factory();
  engine->set_exec_context(context_);
  // A d-DNNF-backed oracle additionally shares compiled circuits through
  // the cache (one compilation serves FGMC, PQE and repeated probes).
  if (auto* via_fgmc = dynamic_cast<SvcViaFgmc*>(engine.get())) {
    if (auto* lineage =
            dynamic_cast<LineageFgmc*>(via_fgmc->oracle().get())) {
      lineage->set_circuit_cache(cache_.get());
    }
  }
  return engine;
}

namespace {

// Routing preference among admitting engines: class specialists first
// (their restriction certifies a polynomial algorithm — the tractable side
// of the dichotomy), then guarded exhaustive engines (cheap and exact for
// small instances of any class), then compilation-based engines (exact,
// but worst-case exponential behind a node cap), and approximate engines
// strictly last — an estimate never shadows an available exact answer.
int RoutePreference(const EngineCaps& caps) {
  if (caps.approximate) return 3;
  if (caps.hierarchical_sjf_cq_only) return 0;
  if (caps.all_query_classes) return 1;
  return 2;
}

}  // namespace

std::shared_ptr<SvcEngine> ShapleyService::Route(const SvcRequest& request,
                                                 size_t num_endogenous,
                                                 SvcResponse* response) const {
  // Scan the whole registry by capability, so Register()-ing an engine
  // extends routing without touching this code. The exhaustive engines
  // additionally honor the service-level fallback guard: beyond it they
  // are not "an engine", they are a sweep that cannot finish. Approximate
  // engines are exempt from that guard (their cost is the sample budget)
  // but require the request's explicit opt-in.
  const EngineRegistry::Entry* best = nullptr;
  for (const std::string& name : registry_.Names()) {
    const EngineRegistry::Entry* entry = registry_.Find(name);
    if (entry->caps.approximate && !request.allow_approx) continue;
    if (entry->caps.all_query_classes && !entry->caps.approximate &&
        num_endogenous > options_.brute_force_max_facts) {
      continue;
    }
    if (!CapsAdmit(entry->caps, *request.query, num_endogenous, nullptr)) {
      continue;
    }
    if (best == nullptr ||
        RoutePreference(entry->caps) < RoutePreference(best->caps)) {
      best = entry;
    }
  }
  if (best == nullptr) {
    std::string message =
        "no registered engine admits |Dn| = " +
        std::to_string(num_endogenous) + " for [" +
        response->verdict.query_class + "] (exhaustive fallback guard: " +
        std::to_string(std::min(options_.brute_force_max_facts,
                                kBruteForceMaxEndogenous)) +
        "): " + response->verdict.justification;
    if (!request.allow_approx) {
      message +=
          " — set allow_approx to fall through to the sampling engine's "
          "(eps, delta) estimates";
    }
    response->error =
        SvcError{SvcErrorCode::kCapacityExceeded, std::move(message), ""};
    return nullptr;
  }
  response->routed_by_classifier = true;
  return MakeConfiguredEngine(*best);
}

DichotomyVerdict ShapleyService::Classify(const BooleanQuery& query,
                                          obs::TraceRecorder* recorder) {
  // Key by dynamic type + text: two query classes could conceivably print
  // alike, and the verdict depends on the class.
  const std::string key =
      std::string(typeid(query).name()) + '\x1f' + query.ToString();
  DichotomyVerdict verdict;
  if (recorder != nullptr) recorder->Begin("cache");
  const bool hit = verdict_cache_.Lookup(key, &verdict);
  if (recorder != nullptr) {
    recorder->Attr("hit", hit ? "true" : "false");
    recorder->End();
  }
  if (hit) return verdict;
  try {
    verdict = ClassifySvcComplexity(query);
  } catch (const std::exception& e) {
    // An honest kUnknown: classification failing must not take the
    // request down with it — routing falls back to the guarded
    // brute-force path. NOT cached: the throw may be transient (e.g.
    // allocation pressure), and pinning "unclassified" would misroute
    // every later request of a genuinely tractable query.
    verdict = DichotomyVerdict{};
    verdict.query_class = "unclassified";
    verdict.justification = std::string("classifier failed: ") + e.what();
    return verdict;
  }
  verdict_cache_.Insert(key, verdict);
  return verdict;
}

SvcResponse ShapleyService::Execute(const SvcRequest& request,
                                    Clock::time_point submitted) {
  const Clock::time_point start = Clock::now();
  SvcResponse response;
  response.mode = request.mode;
  response.stats.queue_ms = MsBetween(submitted, start);

  // Opt-in tracing via a hierarchical span recorder: "route" covers
  // classification + engine selection and encloses the verdict-"cache"
  // lookup; "engine" covers the engine run(s) and is decomposed further by
  // the engines themselves through ExecContext::trace (compile/delta/
  // accumulate, per-checkpoint sampling rounds). A fronting server injects
  // its own recorder (rooted at "backend", wrapping decode/encode too) and
  // owns Finish(); the in-process path records into a local "service" root
  // and ships the finished tree on the response. Untraced requests carry
  // recorder == nullptr end to end — no allocation, no locking.
  std::unique_ptr<obs::TraceRecorder> owned_recorder;
  obs::TraceRecorder* recorder = request.recorder;
  if (request.trace && recorder == nullptr) {
    owned_recorder =
        std::make_unique<obs::TraceRecorder>("service", request.trace_context);
    recorder = owned_recorder.get();
  }

  auto finish = [&](SvcResponse&& done) -> SvcResponse {
    done.stats.exec_ms = MsBetween(start, Clock::now());
    if (owned_recorder != nullptr) done.trace = owned_recorder->Finish();
    (done.ok() ? completed_ : failed_).fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return std::move(done);
  };
  auto fail = [&](SvcErrorCode code, std::string message,
                  std::string engine = "") -> SvcResponse {
    response.error = SvcError{code, std::move(message), std::move(engine)};
    return finish(std::move(response));
  };

  if (shutting_down_.load()) {
    return fail(SvcErrorCode::kCancelled, "service is shutting down");
  }
  if (request.cancel != nullptr && request.cancel->load()) {
    return fail(SvcErrorCode::kCancelled, "request was cancelled");
  }
  if (request.deadline.has_value() && start > *request.deadline) {
    return fail(SvcErrorCode::kDeadlineExceeded,
                "deadline passed " +
                    std::to_string(MsBetween(*request.deadline, start)) +
                    " ms before execution started");
  }
  if (request.query == nullptr) {
    return fail(SvcErrorCode::kInvalidRequest, "request has no query");
  }

  // A caller-owned engine instance bypasses routing, so the classifier's
  // verdict would be dead weight computed per request — skip it (this is
  // the BatchSvcRunner path, which must not pay costs the historical
  // runner never paid). Every routed or registry-named request is
  // classified and carries the verdict in its response.
  // "route" spans classification + engine selection; Classify nests the
  // verdict-cache lookup under it as a "cache" child. Every exit from the
  // selection block closes the span — a fronting recorder outlives this
  // call and must get its stack back balanced.
  if (recorder != nullptr) recorder->Begin("route");
  auto end_route = [&] {
    if (recorder != nullptr) recorder->End();
  };
  if (request.engine_instance == nullptr ||
      request.mode == SvcMode::kClassifyOnly) {
    response.verdict = Classify(*request.query, recorder);
  } else {
    response.verdict.query_class = "unclassified";
    response.verdict.justification =
        "classification skipped: caller-supplied engine instance";
  }
  if (request.mode == SvcMode::kClassifyOnly) {
    end_route();
    return finish(std::move(response));
  }

  const size_t n = request.db.NumEndogenous();
  std::shared_ptr<SvcEngine> engine;
  if (request.engine_instance != nullptr) {
    engine = request.engine_instance;
  } else if (!request.engine.empty()) {
    const EngineRegistry::Entry* entry = registry_.Find(request.engine);
    if (entry == nullptr) {
      SvcError unknown = registry_.UnknownEngineError(request.engine);
      end_route();
      return fail(unknown.code, unknown.message);
    }
    std::string reason;
    if (!CapsAdmit(entry->caps, *request.query, n, &reason)) {
      const SvcErrorCode code = n > entry->caps.max_endogenous
                                    ? SvcErrorCode::kCapacityExceeded
                                    : SvcErrorCode::kUnsupportedQuery;
      end_route();
      return fail(code, reason, entry->name);
    }
    engine = MakeConfiguredEngine(*entry);
  } else {
    engine = Route(request, n, &response);
    if (engine == nullptr) {
      end_route();
      return finish(std::move(response));
    }
  }
  end_route();
  auto run_engine = [&](const std::shared_ptr<SvcEngine>& chosen) {
    response.engine = chosen->name();
    // The recorder rides into the engine's deep paths on a per-request
    // copy of the shared ExecContext — only for engines this service just
    // created (a caller-owned instance's context is the caller's, and may
    // be shared across concurrent requests).
    if (recorder != nullptr && request.engine_instance == nullptr) {
      ExecContext traced = context_;
      traced.trace = recorder;
      chosen->set_exec_context(traced);
    }
    // Registry-created sampling engines take the request's (ε, δ, seed)
    // contract plus its cancel token and deadline, so a long sweep stays
    // abortable mid-run; caller-owned engine instances are called as-is
    // (the caller configured them).
    auto* sampler = dynamic_cast<SamplingSvc*>(chosen.get());
    if (sampler != nullptr && request.engine_instance == nullptr) {
      sampler->set_params(request.approx);
      sampler->set_cancel(request.cancel);
      sampler->set_deadline(request.deadline);
    }
    try {
      switch (request.mode) {
        case SvcMode::kAllValues:
          response.values = chosen->AllValues(*request.query, request.db);
          break;
        case SvcMode::kMaxValue:
          response.ranked.push_back(
              chosen->MaxValue(*request.query, request.db));
          break;
        case SvcMode::kTopK:
          response.ranked =
              TopK(chosen->AllValues(*request.query, request.db),
                   request.top_k);
          break;
        case SvcMode::kClassifyOnly:
          break;  // Handled above.
      }
      // Estimates must be labeled as such: every answer an approximate
      // engine produced carries the realized (samples, half-width,
      // confidence) next to the values.
      if (sampler != nullptr) response.approx = sampler->last_info();
    } catch (const SvcException& e) {
      SvcError error = e.error();
      if (error.engine.empty()) error.engine = response.engine;
      response.error = std::move(error);
      response.raw_exception = std::current_exception();
    } catch (const std::invalid_argument& e) {
      response.error =
          SvcError{SvcErrorCode::kInvalidRequest, e.what(), response.engine};
      response.raw_exception = std::current_exception();
    } catch (const std::exception& e) {
      response.error =
          SvcError{SvcErrorCode::kEngineFailure, e.what(), response.engine};
      response.raw_exception = std::current_exception();
    } catch (...) {
      // The "future.get() never throws" contract must hold even for
      // throws outside the std::exception hierarchy.
      response.error = SvcError{SvcErrorCode::kEngineFailure,
                                "non-standard exception", response.engine};
      response.raw_exception = std::current_exception();
    }
  };

  // Oracle-cache traffic attributed to THIS request's engine run: deltas
  // of the shared cache's counters across the span, attached as engine-
  // span attributes (the per-table aggregates feed /metrics separately).
  size_t cache_hits_before = 0, cache_misses_before = 0;
  if (recorder != nullptr) {
    recorder->Begin("engine");
    if (cache_ != nullptr) {
      cache_hits_before = cache_->hits();
      cache_misses_before = cache_->misses();
    }
  }
  run_engine(engine);

  // The allow_approx promise is "complete instead of refuse", and it must
  // survive an exact engine dying on capacity at *run* time too (e.g. the
  // d-DNNF compiler blowing its node cap on an instance routing could not
  // pre-screen): retry once with an admitting approximate engine. Only on
  // auto-routed requests — explicit overrides asked for that engine,
  // capacity error and all.
  if (!response.ok() &&
      response.error->code == SvcErrorCode::kCapacityExceeded &&
      request.allow_approx && request.engine.empty() &&
      request.engine_instance == nullptr && !engine->caps().approximate) {
    for (const std::string& name : registry_.Names()) {
      const EngineRegistry::Entry* entry = registry_.Find(name);
      if (!entry->caps.approximate) continue;
      if (!CapsAdmit(entry->caps, *request.query, n, nullptr)) continue;
      response.error.reset();
      response.raw_exception = nullptr;
      response.values.clear();
      response.ranked.clear();
      run_engine(MakeConfiguredEngine(*entry));
      break;
    }
  }
  // One span covers the engine run INCLUDING the approx capacity retry —
  // it is the request's total engine time, which is what the latency
  // histograms want.
  if (recorder != nullptr) {
    recorder->Attr("engine", response.engine);
    if (cache_ != nullptr) {
      recorder->Attr("cache_hits",
                     std::to_string(cache_->hits() - cache_hits_before));
      recorder->Attr("cache_misses",
                     std::to_string(cache_->misses() - cache_misses_before));
    }
    recorder->End();
  }
  return finish(std::move(response));
}

}  // namespace shapley
