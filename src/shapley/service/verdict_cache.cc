#include "shapley/service/verdict_cache.h"

namespace shapley {

bool VerdictCache::Lookup(const std::string& key, DichotomyVerdict* out) {
  if (max_entries_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string_view(key));
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->verdict;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void VerdictCache::Insert(const std::string& key,
                          const DichotomyVerdict& verdict) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {  // Concurrent classification landed first.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, verdict});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  while (lru_.size() > max_entries_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
  }
}

size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace shapley
