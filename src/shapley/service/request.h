#ifndef SHAPLEY_SERVICE_REQUEST_H_
#define SHAPLEY_SERVICE_REQUEST_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "shapley/analysis/classifier.h"
#include "shapley/approx/approx.h"
#include "shapley/arith/big_rational.h"
#include "shapley/data/partitioned_database.h"
#include "shapley/engines/svc.h"
#include "shapley/engines/svc_error.h"
#include "shapley/obs/trace.h"
#include "shapley/query/boolean_query.h"

namespace shapley {

/// What a request asks of the service.
enum class SvcMode {
  kAllValues,     ///< Shapley value of every endogenous fact.
  kMaxValue,      ///< One fact of maximum value (Section 6.3).
  kTopK,          ///< The top_k highest-valued facts, descending.
  kClassifyOnly,  ///< Just the dichotomy verdict — no engine runs.
};

std::string ToString(SvcMode mode);

/// Cooperative cancellation flag, shared between a client and any number of
/// its in-flight requests. Setting it fails not-yet-started requests with
/// SvcErrorCode::kCancelled (requests already executing run to completion —
/// the exact engines have no safe preemption points).
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken MakeCancelToken() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// One typed request: a Boolean query over a partitioned database, plus
/// serving directives. Requests are self-contained values — they can be
/// built on any thread and freely share queries/schemas/facts.
struct SvcRequest {
  QueryPtr query;
  PartitionedDatabase db;
  SvcMode mode = SvcMode::kAllValues;

  /// kTopK only: how many facts to return (clipped to |Dn|).
  size_t top_k = 3;

  /// Engine override by registry name ("brute", "lifted", "ddnnf",
  /// "permutations"). Empty = automatic dichotomy routing: the classifier
  /// verdict picks the lifted via-FGMC engine on the tractable hierarchical
  /// sjf-CQ side and falls back to guarded brute force otherwise.
  std::string engine;

  /// Strongest override: a caller-owned engine instance, called as-is. The
  /// service does not install its shared ExecContext on it — the caller
  /// manages the instance's context and its thread-safety across requests —
  /// and skips classification (the verdict would not route anything), so
  /// the response's verdict reads "unclassified". This is how
  /// BatchSvcRunner preserves its historical behavior and cost profile.
  std::shared_ptr<SvcEngine> engine_instance;

  /// Opt-in to approximation: when set and no exact engine admits the
  /// instance (the #P-hard side of the dichotomy beyond the exhaustive
  /// guard), routing falls through to the Monte Carlo sampling engine
  /// instead of failing with kCapacityExceeded. The response then carries
  /// the (ε, δ) contract actually delivered in SvcResponse::approx.
  /// Exact engines are always preferred when any admits the instance.
  bool allow_approx = false;

  /// The approximation contract (ε, δ, seed, sample budget) used when the
  /// sampling engine serves this request — via allow_approx fallback or an
  /// explicit engine = "sampling" override.
  ApproxParams approx;

  /// Absolute deadline; a request past it when dequeued fails with
  /// kDeadlineExceeded without running its engine.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Optional cancellation token (see CancelToken).
  CancelToken cancel;

  /// Opt-in per-request tracing: the layers serving this request build a
  /// hierarchical span tree — decode → route(cache) → engine(compile /
  /// delta / accumulate, or per-checkpoint sampling rounds) → encode —
  /// into SvcResponse::trace, and the wire response carries it as a
  /// "trace" block. Off by default: an untraced request allocates no
  /// recorder and takes no trace lock anywhere on the hot path.
  bool trace = false;

  /// Cluster-propagated trace identity (obs/trace.h): set when the wire
  /// request carried a `"trace"` OBJECT (the router stamps one on traced
  /// requests it forwards), zero otherwise. Only meaningful with
  /// trace == true.
  obs::TraceContext trace_context;

  /// Process-local recorder injected by a fronting layer (the HTTP server
  /// owns the root span so decode/encode enclose the service's spans).
  /// When set, the service records into it and leaves SvcResponse::trace
  /// empty — the owner finishes the tree. Never serialized; like `cancel`,
  /// this member does not cross the wire.
  obs::TraceRecorder* recorder = nullptr;

  /// Convenience: deadline = now + budget.
  SvcRequest& WithTimeout(std::chrono::milliseconds budget) {
    deadline = std::chrono::steady_clock::now() + budget;
    return *this;
  }
};

/// Per-request timing, attached to every response.
struct RequestStats {
  double queue_ms = 0.0;  ///< Submit → execution start (time in the queue).
  double exec_ms = 0.0;   ///< Execution start → response ready.
};

/// The service's answer. Every response — success or failure — carries the
/// classifier verdict for its query: the dichotomy is part of the answer,
/// not a hidden routing detail.
struct SvcResponse {
  SvcMode mode = SvcMode::kAllValues;

  /// Dichotomy verdict of ClassifySvcComplexity (always populated once the
  /// request parsed; default-initialized kUnknown for malformed requests).
  DichotomyVerdict verdict;

  /// Name of the engine that served the request ("" when none ran).
  std::string engine;
  /// True when the engine was picked by dichotomy routing rather than a
  /// per-request override.
  bool routed_by_classifier = false;

  /// kAllValues result.
  std::map<Fact, BigRational> values;
  /// kMaxValue (size 1) / kTopK (size <= top_k) results, by descending
  /// value; ties broken by fact order for determinism.
  std::vector<std::pair<Fact, BigRational>> ranked;

  /// Populated iff an approximate engine served the request: the realized
  /// sample count, certified half-width and confidence (see ApproxInfo).
  /// Absent on every exact answer — its presence IS the "this value is an
  /// estimate" marker.
  std::optional<ApproxInfo> approx;

  std::optional<SvcError> error;
  /// The engine exception behind `error`, when one was caught (null for
  /// front-end failures: deadline, cancellation, routing). Lets synchronous
  /// adapters rethrow exactly what the engine threw.
  std::exception_ptr raw_exception;
  RequestStats stats;

  /// Populated iff the request opted in (SvcRequest::trace) and no
  /// fronting layer injected its own recorder: the span tree recorded
  /// while serving this request. Volatile by nature (like `stats`) —
  /// record/replay comparisons strip it.
  std::optional<obs::RequestTrace> trace;

  bool ok() const { return !error.has_value(); }
};

}  // namespace shapley

#endif  // SHAPLEY_SERVICE_REQUEST_H_
