#include "shapley/service/engine_registry.h"

#include <sstream>
#include <utility>

#include "shapley/analysis/structure.h"
#include "shapley/approx/sampling.h"
#include "shapley/engines/fgmc.h"
#include "shapley/query/conjunctive_query.h"

namespace shapley {

EngineRegistry EngineRegistry::Default() {
  EngineRegistry registry;
  registry.Register(
      {"brute", "exhaustive 2^|Dn| subset sweep (any query class)",
       BruteForceSvc().caps(),
       [] { return std::make_shared<BruteForceSvc>(); }});
  registry.Register(
      {"permutations", "|Dn|! permutation sweep (tiny cross-validation)",
       PermutationSvc().caps(),
       [] { return std::make_shared<PermutationSvc>(); }});
  registry.Register(
      {"lifted",
       "SVC via lifted safe-plan FGMC (hierarchical sjf-CQ, polynomial)",
       LiftedFgmc().caps(), [] {
         return std::make_shared<SvcViaFgmc>(std::make_shared<LiftedFgmc>());
       }});
  registry.Register(
      {"ddnnf", "SVC via lineage + d-DNNF compilation (monotone queries)",
       LineageFgmc().caps(), [] {
         return std::make_shared<SvcViaFgmc>(std::make_shared<LineageFgmc>());
       }});
  registry.Register(
      {"sampling",
       "Monte Carlo permutation sampling with (eps, delta) bounds — "
       "strategies: hoeffding (fixed count), bernstein (empirical-Bernstein "
       "sequential stopping), stratified (antithetic position strata + "
       "sequential stopping) (any query class; approximate, opt-in, "
       "seed-deterministic)",
       SamplingSvc().caps(), [] { return std::make_shared<SamplingSvc>(); }});
  return registry;
}

void EngineRegistry::Register(Entry entry) {
  std::string name = entry.name;
  entries_.insert_or_assign(std::move(name), std::move(entry));
}

const EngineRegistry::Entry* EngineRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::shared_ptr<SvcEngine> EngineRegistry::Create(
    const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) throw SvcException(UnknownEngineError(name));
  return entry->factory();
}

SvcError EngineRegistry::UnknownEngineError(const std::string& name) const {
  std::ostringstream os;
  os << "unknown engine '" << name << "' (known:";
  for (const std::string& known : Names()) os << ' ' << known;
  os << ')';
  return {SvcErrorCode::kInvalidRequest, os.str(), ""};
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool CapsAdmit(const EngineCaps& caps, const BooleanQuery& query,
               size_t num_endogenous, std::string* reason) {
  auto reject = [&](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (num_endogenous > caps.max_endogenous) {
    return reject("|Dn| = " + std::to_string(num_endogenous) +
                  " exceeds the engine's capacity of " +
                  std::to_string(caps.max_endogenous) + " endogenous facts");
  }
  if (caps.all_query_classes) return true;
  if (caps.monotone_only) {
    if (!query.IsMonotone()) {
      return reject("engine handles monotone queries only");
    }
    return true;
  }
  if (caps.hierarchical_sjf_cq_only) {
    const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query);
    if (cq == nullptr) {
      return reject("engine handles conjunctive queries only");
    }
    if (cq->HasNegation()) {
      return reject("engine handles positive CQs only");
    }
    if (!IsSelfJoinFree(*cq)) {
      return reject("engine requires a self-join-free CQ");
    }
    if (!IsHierarchical(*cq)) {
      return reject("engine requires a hierarchical CQ");
    }
    return true;
  }
  return reject("engine declares no supported query class");
}

}  // namespace shapley
