#ifndef SHAPLEY_SERVICE_VERDICT_CACHE_H_
#define SHAPLEY_SERVICE_VERDICT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "shapley/analysis/classifier.h"

namespace shapley {

/// A small bounded LRU cache of dichotomy verdicts, keyed by query
/// identity. Classification is a pure function of the query (its class
/// membership, hierarchicalness, self-join-freeness — nothing about the
/// database), so on a high-QPS stream of repeated queries the service can
/// skip reclassification entirely; this takes the structural analysis off
/// the per-request hot path.
///
/// Thread-safe; `max_entries == 0` disables the cache (every Lookup
/// misses, Insert is a no-op), which is also the safe degenerate mode.
class VerdictCache {
 public:
  explicit VerdictCache(size_t max_entries) : max_entries_(max_entries) {}

  /// Copies the cached verdict for `key` into *out; false on miss.
  bool Lookup(const std::string& key, DichotomyVerdict* out);

  /// Records a verdict; evicts the least recently used beyond the bound.
  void Insert(const std::string& key, const DichotomyVerdict& verdict);

  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  struct Entry {
    std::string key;
    DichotomyVerdict verdict;
  };

  const size_t max_entries_;
  mutable std::mutex mutex_;
  /// Front = most recently used; the index views the entry-owned key
  /// (stable across splices).
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace shapley

#endif  // SHAPLEY_SERVICE_VERDICT_CACHE_H_
