#ifndef SHAPLEY_NET_CODEC_H_
#define SHAPLEY_NET_CODEC_H_

#include <memory>
#include <optional>
#include <string>

#include "shapley/data/schema.h"
#include "shapley/net/json.h"
#include "shapley/service/request.h"

namespace shapley::net {

/// The ONE canonical wire format of the serving stack: SvcRequest and
/// SvcResponse to/from JSON. The CLI's --json output, the HTTP server, the
/// client library and the benches all go through these four functions, so
/// a value has exactly one serialized form everywhere.
///
/// Request wire shape (top-level unknown fields are REJECTED — a typo like
/// "epsilonn" must fail loudly, not silently run with defaults):
///
///   {
///     "query": "R(?x), S(?x,?y), !T(?y)",          // CLI query syntax
///     "database": {"endogenous": ["R(a)", ...],    // CLI fact syntax
///                  "exogenous":  ["T(b)", ...]},
///     "mode": "all-values" | "max-value" | "top-k" | "classify-only",
///     "top_k": 3,                                   // optional
///     "engine": "lifted",                           // optional override
///     "allow_approx": true,                         // optional
///     "approx": {"epsilon": 0.05, "delta": 0.05,    // optional
///                "seed": 1, "max_samples": 0,
///                "strategy": "hoeffding"},
///     "timeout_ms": 500,                            // optional, relative
///     "trace": true                                 // optional, opt-in
///       // — or, cluster-propagated, the trace CONTEXT the sender wants
///       // this request recorded under (the shard router stamps one on
///       // every traced request it forwards, so backend subtrees graft
///       // into ONE cluster-wide tree):
///     "trace": {"trace_id": "<32 hex>", "parent_span": "<16 hex>"}
///   }
///
/// Queries are carried as parser text with every term prefix made explicit
/// ('?' variable, '$' constant), so the encoding is independent of the
/// u–z naming convention and always re-parses to the same query.
/// Deadlines cross the wire as a RELATIVE timeout_ms (an absolute
/// steady_clock point is meaningless in another process); the decoder
/// re-anchors it at decode time. engine_instance and cancel tokens are
/// process-local by nature and never serialize.
///
/// Response wire shape (values as exact "p/q" strings — BigRational
/// round-trips bit-identically; "approx_value" is a display convenience):
///
///   {
///     "mode": "...", "status": 200,
///     "verdict": {"tractability": "FP", "query_class": "...",
///                 "justification": "...", "fgmc_svc_equivalent": true},
///     "engine": "lifted", "routed_by_classifier": true,
///     "values": [{"fact": "R(a)", "value": "1/3",
///                 "approx_value": 0.33333...}, ...],
///     "ranked": [...],                              // max-value / top-k
///     "approx": {... full ApproxInfo ...},          // only on estimates
///     "error": {"code": "capacity-exceeded", "status": 413,
///               "message": "...", "engine": ""},    // only on failure
///     "trace": {"trace_id": "<32 hex>",             // only when requested
///               "root": {"name": "backend", "start_ms": 0, "ms": ...,
///                        "attrs": {"k": "v", ...},  // omitted when empty
///                        "children": [{...}, ...]}},// omitted when empty
///     "stats": {"queue_ms": ..., "exec_ms": ...}
///   }
///
/// The trace block is a SPAN TREE (obs/trace.h): start_ms is the offset
/// from the parent span's start, so child spans nest within their parent's
/// [start, end) by construction and a router can graft a backend's tree
/// under its hop span without comparing clocks across processes.
///
/// FORWARD COMPATIBILITY: the two decode paths deliberately differ.
/// DecodeRequest stays STRICT (unknown fields are rejected — a client typo
/// must fail loudly). DecodeResponse IGNORES unknown fields at every level
/// (top level, verdict, approx, error, stats, values[]): a response comes
/// from a trusted server, and an older client — or the shard router
/// proxying for one — must tolerate fields a newer backend adds. The
/// router additionally forwards response bodies verbatim (raw bytes, not
/// decode→re-encode), so unknown fields survive the proxy hop unchanged.

/// HTTP-style status for a structured error code — the mapping the README
/// documents and the server sends:
///   invalid-request    → 400   unsupported-query  → 422
///   capacity-exceeded  → 413   deadline-exceeded  → 504
///   cancelled          → 499   engine-failure     → 500
///   upstream-unavailable → 503
/// (ok → 200.)
int HttpStatusFor(SvcErrorCode code);

/// Inverse of ToString(SvcErrorCode); nullopt for unknown names.
std::optional<SvcErrorCode> ParseSvcErrorCode(const std::string& name);

/// Inverse of ToString(SvcMode); nullopt for unknown names.
std::optional<SvcMode> ParseSvcMode(const std::string& name);

/// Canonical parser-ready text of a CQ or UCQ (the classes the wire — and
/// the CLI — speak); nullopt for query classes without a textual syntax
/// (path queries, conjunction nodes, ...).
std::optional<std::string> CanonicalQueryText(const BooleanQuery& query);

/// Encodes a request. Throws SvcException(kInvalidRequest) when the query
/// has no canonical text (see CanonicalQueryText) — a request that cannot
/// cross the wire must fail at the sender, loudly.
Json EncodeRequest(const SvcRequest& request);

/// A decoded request plus the schema its facts/atoms were interned into
/// (fresh per decode: the wire is the only coupling between processes).
struct DecodedRequest {
  SvcRequest request;
  std::shared_ptr<Schema> schema;
};

/// Decodes a request; on any malformed input (bad JSON types, unknown
/// fields, unparsable query/fact text, bad mode/strategy names) returns a
/// structured kInvalidRequest instead of throwing — the server maps it
/// straight to a 400 response. `out` is valid only on nullopt.
std::optional<SvcError> DecodeRequest(const Json& json, DecodedRequest* out);

/// Encodes a response; `schema` renders the facts.
Json EncodeResponse(const SvcResponse& response, const Schema& schema);

/// Decodes a response, interning facts into `schema` (use the schema the
/// request was built against so Fact keys compare equal to local results).
/// Malformed input yields kInvalidRequest; `out` is valid only on nullopt.
std::optional<SvcError> DecodeResponse(const Json& json,
                                       const std::shared_ptr<Schema>& schema,
                                       SvcResponse* out);

/// One span subtree as wire JSON ({"name", "start_ms", "ms", "attrs"?,
/// "children"?}).
Json EncodeTraceSpan(const obs::TraceSpan& span);

/// The full response "trace" block ({"trace_id"?, "root"}). trace_id is
/// emitted only for a valid (non-zero) context.
Json EncodeTrace(const obs::RequestTrace& trace);

/// Inverse of EncodeTraceSpan, response-tolerant: unknown members are
/// ignored, known members keep strict types, "name" is required (a
/// nameless span is corruption, not evolution). False on malformed input.
bool DecodeTraceSpan(const Json& json, obs::TraceSpan* out);

/// Inverse of EncodeTrace; nullopt on malformed input.
std::optional<obs::RequestTrace> DecodeTrace(const Json& trace_json);

/// Installs (or replaces) the "trace" block of an ALREADY-ENCODED
/// response, in place. This exists because only the server can measure
/// spans around EncodeResponse itself ("encode"), and because the router
/// replaces a backend's block with the grafted cluster-wide tree.
void SetTraceBlock(Json* encoded_response, const obs::RequestTrace& trace);

/// Rewrites the "trace" member of an ALREADY-ENCODED request to the
/// cluster-propagation OBJECT form carrying `context` (adding the member
/// if absent) — how the router stamps its identity onto a traced request
/// before forwarding. Untraced requests are never patched: the router
/// forwards their bytes verbatim.
void SetRequestTraceContext(Json* encoded_request,
                            const obs::TraceContext& context);

}  // namespace shapley::net

#endif  // SHAPLEY_NET_CODEC_H_
