#ifndef SHAPLEY_NET_CLIENT_H_
#define SHAPLEY_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "shapley/net/codec.h"
#include "shapley/net/http.h"
#include "shapley/net/json.h"
#include "shapley/service/request.h"

namespace shapley::net {

struct ClientOptions {
  /// Per-read timeout. Generous by default: an exact engine may legitimately
  /// think for a while before the response starts.
  int read_timeout_ms = 60'000;
  size_t max_body_bytes = 64 * 1024 * 1024;
  /// Dial attempts per EnsureConnected (≥ 1). The first attempt is
  /// immediate; each later one waits out ReconnectBackoff::DelayMs first.
  int connect_attempts = 4;
  /// Backoff schedule (see ReconnectBackoff): attempt k ≥ 1 waits a
  /// jittered delay in [cap/2, cap] with cap = min(base·2^(k−1), max).
  int base_backoff_ms = 10;
  int max_backoff_ms = 250;
  /// Jitter seed. The schedule is a pure function of (seed, attempt) —
  /// deterministic for tests, while different clients (different seeds)
  /// still spread their retries instead of dialing in lockstep.
  uint64_t backoff_seed = 0;
};

/// The client's reconnect schedule: capped exponential backoff with
/// deterministic equal-jitter. DelayMs(0) is 0 (first dial is free);
/// DelayMs(k) for k ≥ 1 is drawn from [cap/2, cap], cap =
/// min(base·2^(k−1), max), with the draw a pure SplitMix64 function of
/// (seed, k) — the same seed replays the same schedule bit for bit, and
/// distinct seeds decorrelate, so a fleet of clients losing one backend
/// does not thundering-herd its replacement.
class ReconnectBackoff {
 public:
  ReconnectBackoff(int base_ms, int max_ms, uint64_t seed)
      : base_ms_(base_ms), max_ms_(max_ms), seed_(seed) {}

  int DelayMs(size_t attempt) const;

 private:
  int base_ms_;
  int max_ms_;
  uint64_t seed_;
};

/// Blocking HTTP client for the Shapley network front — the library the
/// CLI's `call` command, the tests and the throughput bench talk through.
/// One client = one keep-alive connection, re-established transparently
/// when the server closed it between calls. Not thread-safe; use one
/// client per thread (the load generator does exactly that).
///
/// Error discipline mirrors the service: anything the SERVER answered —
/// including 4xx/5xx — decodes into the returned SvcResponse (the
/// structured SvcError is inside, exactly as the in-process API returns
/// it). Only TRANSPORT failures (connect refused, connection died
/// mid-message, undecodable payload) throw std::runtime_error: there is no
/// response to return, truthfully, in those cases.
class ShapleyClient {
 public:
  ShapleyClient(std::string host, uint16_t port, ClientOptions options = {});
  ~ShapleyClient();

  ShapleyClient(const ShapleyClient&) = delete;
  ShapleyClient& operator=(const ShapleyClient&) = delete;

  /// POST /v1/compute. The request's query/database are serialized through
  /// net/codec; the response's facts are re-interned into the request's
  /// own schema, so returned Fact keys compare equal to local ones.
  SvcResponse Compute(const SvcRequest& request);

  /// POST /v1/batch: all requests in one round-trip; the server streams
  /// results in completion order and this call reassembles them into INPUT
  /// order before returning (the id tags carry the correspondence).
  std::vector<SvcResponse> ComputeBatch(
      const std::vector<SvcRequest>& requests);

  /// GET /v1/engines and /v1/stats, as parsed JSON.
  Json Engines();
  Json Stats();

  /// Raw proxy surface — the shard router's path. Bodies cross VERBATIM in
  /// both directions (no decode→re-encode round trip), so fields this
  /// build does not know about survive the hop unchanged.

  /// POST /v1/compute with `body` as-is; returns the raw response body and
  /// sets *status to the HTTP status.
  std::string RawCompute(const std::string& body, int* status);

  /// POST /v1/batch with `body` as-is; `on_line` receives each ndjson line
  /// verbatim (without its trailing newline) as it streams in. Throws
  /// std::runtime_error on transport failure — possibly after some lines
  /// were already delivered; the caller tracks which ids it has seen.
  void RawBatch(const std::string& body,
                const std::function<void(const std::string& line)>& on_line);

  /// GET `target` (e.g. "/v1/stats", "/healthz") as-is; returns the raw
  /// response body and sets *status.
  std::string RawGet(const std::string& target, int* status);

  /// The HTTP status of the last Compute/Engines/Stats call (batch: 200).
  int last_status() const { return last_status_; }

 private:
  /// One request/response exchange, reconnecting once if the keep-alive
  /// connection had gone away. Returns the raw body.
  HttpResponse RoundTrip(const std::string& method, const std::string& target,
                         const std::string& body, bool* chunked,
                         std::unique_ptr<SocketReader>* reader_out);
  bool EnsureConnected();

  const std::string host_;
  const uint16_t port_;
  const ClientOptions options_;
  Socket socket_;
  std::unique_ptr<SocketReader> reader_;
  int last_status_ = 0;
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_CLIENT_H_
