#ifndef SHAPLEY_NET_CLIENT_H_
#define SHAPLEY_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shapley/net/codec.h"
#include "shapley/net/http.h"
#include "shapley/net/json.h"
#include "shapley/service/request.h"

namespace shapley::net {

struct ClientOptions {
  /// Per-read timeout. Generous by default: an exact engine may legitimately
  /// think for a while before the response starts.
  int read_timeout_ms = 60'000;
  size_t max_body_bytes = 64 * 1024 * 1024;
};

/// Blocking HTTP client for the Shapley network front — the library the
/// CLI's `call` command, the tests and the throughput bench talk through.
/// One client = one keep-alive connection, re-established transparently
/// when the server closed it between calls. Not thread-safe; use one
/// client per thread (the load generator does exactly that).
///
/// Error discipline mirrors the service: anything the SERVER answered —
/// including 4xx/5xx — decodes into the returned SvcResponse (the
/// structured SvcError is inside, exactly as the in-process API returns
/// it). Only TRANSPORT failures (connect refused, connection died
/// mid-message, undecodable payload) throw std::runtime_error: there is no
/// response to return, truthfully, in those cases.
class ShapleyClient {
 public:
  ShapleyClient(std::string host, uint16_t port, ClientOptions options = {});
  ~ShapleyClient();

  ShapleyClient(const ShapleyClient&) = delete;
  ShapleyClient& operator=(const ShapleyClient&) = delete;

  /// POST /v1/compute. The request's query/database are serialized through
  /// net/codec; the response's facts are re-interned into the request's
  /// own schema, so returned Fact keys compare equal to local ones.
  SvcResponse Compute(const SvcRequest& request);

  /// POST /v1/batch: all requests in one round-trip; the server streams
  /// results in completion order and this call reassembles them into INPUT
  /// order before returning (the id tags carry the correspondence).
  std::vector<SvcResponse> ComputeBatch(
      const std::vector<SvcRequest>& requests);

  /// GET /v1/engines and /v1/stats, as parsed JSON.
  Json Engines();
  Json Stats();

  /// The HTTP status of the last Compute/Engines/Stats call (batch: 200).
  int last_status() const { return last_status_; }

 private:
  /// One request/response exchange, reconnecting once if the keep-alive
  /// connection had gone away. Returns the raw body.
  HttpResponse RoundTrip(const std::string& method, const std::string& target,
                         const std::string& body, bool* chunked,
                         std::unique_ptr<SocketReader>* reader_out);
  bool EnsureConnected();

  const std::string host_;
  const uint16_t port_;
  const ClientOptions options_;
  Socket socket_;
  std::unique_ptr<SocketReader> reader_;
  int last_status_ = 0;
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_CLIENT_H_
