#ifndef SHAPLEY_NET_JSON_H_
#define SHAPLEY_NET_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shapley::net {

/// A small self-contained JSON value — parser and writer in one type, no
/// external dependency (the same precedent as the self-contained SplitMix64
/// of approx/rng.h: the wire protocol must not pull a library the container
/// may not have).
///
/// Design points that matter to the wire protocol:
///  - numbers are stored as their RAW TOKEN TEXT. Writing a uint64 seed or
///    a shortest-round-trip double re-emits exactly the characters that
///    were parsed (or that ToChars produced), so encode→decode→encode is
///    bit-identical — the codec tests pin that down;
///  - objects are ordered (insertion order preserved, emitted verbatim), so
///    an encoding is canonical: one SvcRequest has exactly one wire form;
///  - parsing is strict RFC 8259 (no trailing commas, no comments, no bare
///    NaN/Infinity) with a nesting-depth cap, so malformed or adversarial
///    input fails with a position-tagged error instead of crashing or
///    recursing the stack away.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Ordered members; duplicate keys are a parse error.
  using Object = std::vector<std::pair<std::string, Json>>;

  /// Maximum array/object nesting the parser accepts ("[[[[..." must fail
  /// cleanly, not overflow the stack).
  static constexpr size_t kMaxDepth = 64;

  Json() = default;  ///< null

  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Number(double value);    ///< Shortest round-trip form.
  static Json Number(int64_t value);
  static Json Number(uint64_t value);
  /// A number from its raw literal, emitted verbatim by Dump(). The caller
  /// owns validity (the parser passes only grammar-checked slices here).
  static Json NumberToken(std::string raw_literal);
  static Json Str(std::string value);
  static Json Arr(Array items = {});
  static Json Obj(Object members = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed views; nullopt / nullptr when the kind (or numeric range) does
  /// not match — decoders turn that into structured errors, never a crash.
  std::optional<bool> IfBool() const;
  std::optional<double> IfDouble() const;
  std::optional<int64_t> IfInt64() const;
  std::optional<uint64_t> IfUint64() const;
  const std::string* IfString() const;
  const Array* IfArray() const;
  const Object* IfObject() const;

  /// Object member lookup (first match); null when absent or not an object.
  const Json* Find(std::string_view key) const;
  /// Mutable lookup for patching a member IN PLACE (Set appends — using it
  /// on an existing key would emit a duplicate).
  Json* FindMutable(std::string_view key);

  /// Builder conveniences (no-ops on the wrong kind are bugs; they assert
  /// via the kind checks in debug use — keep construction well-typed).
  Json& Set(std::string key, Json value);  ///< Appends to an object.
  Json& Push(Json value);                  ///< Appends to an array.

  /// Compact canonical serialization: `{"a":1,"b":[true,null]}` — no
  /// whitespace, members in insertion order, numbers verbatim.
  std::string Dump() const;

  /// Strict parse of exactly one JSON document (trailing non-whitespace is
  /// an error). On failure returns nullopt and, when `error` is non-null,
  /// a one-line "byte N: reason" message.
  static std::optional<Json> Parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  /// kNumber: the raw literal; kString: the decoded text.
  std::string scalar_;
  Array array_;
  Object object_;

  void DumpTo(std::string* out) const;
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_JSON_H_
