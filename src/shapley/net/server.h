#ifndef SHAPLEY_NET_SERVER_H_
#define SHAPLEY_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shapley/net/http.h"
#include "shapley/service/shapley_service.h"

namespace shapley::obs {
class MetricsRegistry;
class RequestLogWriter;
}  // namespace shapley::obs

namespace shapley::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the OS picks; read the result from HttpServer::port().
  uint16_t port = 0;
  /// Concurrent connections beyond this are answered 503 and closed —
  /// back-pressure at the door instead of unbounded thread growth.
  size_t max_connections = 64;
  /// Request bodies beyond this are refused 413 without being read in.
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Idle-read timeout per request on a keep-alive connection; an idle
  /// connection past it is closed (408 if mid-message).
  int read_timeout_ms = 10'000;
  /// Reported by GET /healthz ("backend" for a ShapleyService front,
  /// "router" for the shard router) so a probe can tell what it reached.
  std::string role = "backend";

  /// Metrics registry behind GET /metrics. Not owned; must outlive the
  /// server. Null → the server creates and owns a private registry, so
  /// /metrics always answers. The shard router passes its own registry
  /// here to fold router counters and transport counters into one scrape.
  obs::MetricsRegistry* metrics = nullptr;

  /// Request capture for record/replay (obs/reqlog.h). Not owned; must
  /// outlive the server. When set, every POST request body is appended
  /// verbatim — BEFORE decoding, so malformed requests replay too. Null →
  /// no capture (the default; logging costs one mutexed file write per
  /// request).
  obs::RequestLogWriter* request_log = nullptr;
};

/// Snapshot of an HttpServer's connection-level counters, handed to the
/// handler so /v1/stats (and /v1/cluster) can report the transport layer
/// alongside whatever the handler itself tracks.
struct ServerCounters {
  size_t connections_accepted = 0;
  size_t connections_rejected = 0;
  size_t connections_live = 0;
  size_t requests_served = 0;
};

/// The application half of HttpServer: the transport (accept loop,
/// keep-alive, limits, drain) is fixed; WHAT the endpoints do is this
/// interface. ServiceHandler serves a ShapleyService (the classic single
/// backend); cluster/router.h plugs in a scatter/gather proxy instead.
class HttpHandler {
 public:
  virtual ~HttpHandler() = default;

  /// One request → one (possibly chunk-streamed) response write on
  /// `socket`. Returning false ends the connection. GET /healthz never
  /// reaches the handler — the server answers it itself.
  virtual bool Handle(Socket* socket, const HttpRequest& request,
                      bool keep_alive, const ServerCounters& counters) = 0;
};

/// A response body for failures raised by the HTTP layer itself (no
/// service round-trip happened): same wire shape as every other error, so
/// clients have exactly one error format to handle.
std::string FrontEndErrorBody(SvcErrorCode code, std::string message);

/// Writes one Content-Length JSON response. Returns SendAll's verdict.
bool WriteJsonResponse(Socket* socket, int status, const std::string& body,
                       bool keep_alive);

/// The HttpHandler serving a ShapleyService — the piece that turns the
/// in-process serving layer (exact engines, dichotomy routing, the (ε, δ)
/// sampling subsystem, caches, deadlines) into an actual network service.
///
/// Endpoints (wire formats in net/codec.h):
///   POST /v1/compute  one SvcRequest JSON → one SvcResponse JSON; the
///                     HTTP status is 200 on success, else the mapped
///                     SvcError status (HttpStatusFor)
///   POST /v1/batch    {"requests": [r0, r1, ...]} → chunked
///                     application/x-ndjson: one response line per
///                     request IN COMPLETION ORDER, each tagged with its
///                     zero-based "id" — a slow exact instance never
///                     head-of-line-blocks a fast one behind it
///   GET  /v1/engines  the registry: names, descriptions, capabilities
///   GET  /v1/stats    ServiceStats snapshot (+ server connection counters)
class ServiceHandler : public HttpHandler {
 public:
  /// `service` outlives the handler; not owned.
  explicit ServiceHandler(ShapleyService* service) : service_(service) {}

  bool Handle(Socket* socket, const HttpRequest& request, bool keep_alive,
              const ServerCounters& counters) override;

  /// Attaches a metrics registry (not owned; outlives the handler):
  /// registers the ServiceStats scrape collector and starts observing the
  /// shapley_request_latency_ms{engine,mode,strategy} and
  /// shapley_queue_depth histograms per request. HttpServer calls this for
  /// its owned handler; an externally-hosted handler may call it directly.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  bool HandleCompute(Socket* socket, const HttpRequest& request,
                     bool keep_alive);
  bool HandleBatch(Socket* socket, const HttpRequest& request,
                   bool keep_alive);
  bool HandleEngines(Socket* socket, bool keep_alive);
  bool HandleStats(Socket* socket, bool keep_alive,
                   const ServerCounters& counters);

  /// Latency-histogram observation for one finished request: labels come
  /// from the RESPONSE (engine that actually served it, realized strategy),
  /// so routing decisions are visible in the series breakdown.
  void ObserveRequest(const SvcResponse& response, double wall_ms);
  /// Queue-depth observation at request arrival.
  void ObserveArrival();

  ShapleyService* service_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// The TCP/HTTP front: accept loop, per-connection threads, keep-alive,
/// body/connection limits and the shutdown drain. Requests are dispatched
/// to an HttpHandler; the classic constructor wraps a ShapleyService in a
/// ServiceHandler, the handler constructor hosts anything else (the shard
/// router).
///
/// The server answers GET /healthz itself — 200 with
/// {"status": "ok", "version": kShapleyVersion, "role": options.role} —
/// so a health probe costs no handler (or service) work at all. GET
/// /metrics is answered the same way (Prometheus text exposition of the
/// server's registry), so a scrape works even when the handler is wedged.
///
/// Execution model: one acceptor thread plus one thread per live
/// connection (bounded by max_connections; the service's own pool does the
/// actual computing, so connection threads are thin I/O loops that block
/// on futures). Connections are keep-alive by default.
///
/// Shutdown discipline: Stop() closes the door (no new connections), asks
/// every connection loop to finish THE REQUEST IT IS SERVING, streams
/// those responses out, and joins — in-flight work is drained, never
/// dropped. Requests arriving after Stop() get "Connection: close".
/// Abort() is the opposite contract: a crash simulation for failover
/// tests — it shutdowns every connection BOTH ways, so in-flight
/// responses fail to write and clients see the stream die mid-flight.
class HttpServer {
 public:
  /// `service` outlives the server; not owned. Wraps it in an owned
  /// ServiceHandler.
  HttpServer(ShapleyService* service, ServerOptions options = {});
  /// `handler` outlives the server; not owned.
  HttpServer(HttpHandler* handler, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the acceptor. Throws std::runtime_error
  /// when the address cannot be bound.
  void Start();

  /// Graceful drain (see above). Idempotent; also run by the destructor.
  void Stop();

  /// Hard kill: stops accepting and shutdowns every live connection in
  /// BOTH directions, so in-flight writes fail immediately — from a
  /// client's view the process crashed mid-response. For failover tests;
  /// production shutdown is Stop().
  void Abort();

  bool running() const { return running_.load(); }
  /// The bound port (after Start(); ephemeral requests resolve here).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  size_t connections_accepted() const { return accepted_.load(); }
  size_t connections_rejected() const { return rejected_.load(); }
  size_t requests_served() const { return served_.load(); }
  ServerCounters counters() const;

  /// The registry behind GET /metrics — options().metrics when provided,
  /// else the server's own. Never null.
  obs::MetricsRegistry* metrics() { return metrics_; }

 private:
  /// Resolves metrics_ (options or owned), registers shapley_build_info
  /// and the transport-counter collector. Ctor-only.
  void SetUpMetrics();
  void HaltConnections(bool both_directions);
  void AcceptLoop();
  /// Thread body: runs the connection loop, then registers itself as
  /// finished (reaped by the acceptor, or by Stop()).
  void RunConnection(uint64_t id, Socket socket);
  void ConnectionLoop(Socket* socket);
  /// Joins every finished connection thread (near-instant joins).
  void ReapFinished();

  std::unique_ptr<HttpHandler> owned_handler_;
  HttpHandler* handler_;
  const ServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;  ///< Never null after construction.
  Socket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> live_connections_{0};
  std::atomic<size_t> accepted_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> served_{0};

  /// Connection registry. Threads are REAPED as connections finish (the
  /// acceptor joins them between accepts), so a long-lived server does
  /// not accumulate one zombie thread handle per connection ever served.
  /// conn_fds_ tracks each live connection's socket so Stop() can
  /// shutdown(SHUT_RD) it — which unblocks an idle keep-alive read
  /// immediately while still letting the in-flight response write out.
  /// Ordering discipline: a connection removes its fd from the registry
  /// BEFORE closing it, so Stop() never shutdowns a reused descriptor.
  std::mutex conns_mutex_;
  uint64_t next_conn_id_ = 0;
  std::map<uint64_t, std::thread> conn_threads_;
  std::map<uint64_t, int> conn_fds_;
  std::vector<uint64_t> finished_conns_;
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_SERVER_H_
