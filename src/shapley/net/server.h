#ifndef SHAPLEY_NET_SERVER_H_
#define SHAPLEY_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "shapley/exec/thread_pool.h"
#include "shapley/net/event_loop.h"
#include "shapley/net/http.h"
#include "shapley/obs/flight.h"
#include "shapley/obs/heavy.h"
#include "shapley/obs/slowlog.h"
#include "shapley/service/shapley_service.h"

namespace shapley::obs {
class MetricsRegistry;
class RequestLogWriter;
}  // namespace shapley::obs

namespace shapley::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the OS picks; read the result from HttpServer::port().
  uint16_t port = 0;
  /// Concurrent connections beyond this are answered 503 and closed —
  /// back-pressure at the door. The event loop makes a connection cost one
  /// fd + parser state (not an OS thread), so the default is generous.
  size_t max_connections = 1024;
  /// Request bodies beyond this are refused 413 without being read in.
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Idle-read timeout per request on a keep-alive connection; an idle
  /// connection past it is closed.
  int read_timeout_ms = 10'000;
  /// A connection with queued response bytes but no write progress for
  /// this long is disconnected (slow-reader disconnect).
  int write_stall_timeout_ms = 10'000;
  /// Per-connection output-queue cap: a handler producing faster than its
  /// peer reads blocks once the queue holds this much (bounded memory).
  size_t max_output_queue_bytes = 4 * 1024 * 1024;
  /// Worker threads of the dispatch pool (the threads handlers run on;
  /// they block on service futures, the service's own pool computes).
  /// 0 = max(8, hardware_concurrency) — enough thin waiters that modest
  /// request concurrency is never serialized on a small machine.
  size_t dispatch_threads = 0;
  /// Use the portable poll() readiness backend even where epoll exists
  /// (tests exercise the fallback path with this).
  bool force_poll = false;
  /// Reported by GET /healthz ("backend" for a ShapleyService front,
  /// "router" for the shard router) so a probe can tell what it reached.
  std::string role = "backend";

  /// Metrics registry behind GET /metrics. Not owned; must outlive the
  /// server. Null → the server creates and owns a private registry, so
  /// /metrics always answers. The shard router passes its own registry
  /// here to fold router counters and transport counters into one scrape.
  obs::MetricsRegistry* metrics = nullptr;

  /// Request capture for record/replay (obs/reqlog.h). Not owned; must
  /// outlive the server. When set, every POST request body is appended
  /// verbatim — BEFORE decoding, so malformed requests replay too. Null →
  /// no capture (the default; logging costs one mutexed file write per
  /// request).
  obs::RequestLogWriter* request_log = nullptr;

  /// Always-on debug instruments (the DebugDeck below; GET /v1/debug/*).
  /// Flight-recorder ring slots — how many recent request digests survive.
  size_t flight_capacity = 1024;
  /// Heavy-hitter sketch capacity (tracked keys per sketch).
  size_t heavy_k = 32;
  /// Requests at or above this wall time get their verbatim body promoted
  /// into the slow-log; <= 0 disables slow capture.
  double slow_threshold_ms = 250.0;
  /// Slow-log ring capacity (captured outliers resident at once).
  size_t slowlog_capacity = 32;
};

/// Snapshot of an HttpServer's connection-level counters, handed to the
/// handler so /v1/stats (and /v1/cluster) can report the transport layer
/// alongside whatever the handler itself tracks.
struct ServerCounters {
  size_t connections_accepted = 0;
  size_t connections_rejected = 0;
  size_t connections_live = 0;
  size_t requests_served = 0;
};

/// The application half of HttpServer: the transport (event loop,
/// keep-alive, limits, drain) is fixed; WHAT the endpoints do is this
/// interface. ServiceHandler serves a ShapleyService (the classic single
/// backend); cluster/router.h plugs in a scatter/gather proxy instead.
class HttpHandler {
 public:
  virtual ~HttpHandler() = default;

  /// One request → one (possibly chunk-streamed) response write through
  /// `writer`. Runs on a DISPATCH-POOL thread (never the loop thread), so
  /// blocking on service futures is fine. Returning false ends the
  /// connection. GET /healthz never reaches the handler — the server
  /// answers it itself.
  virtual bool Handle(ResponseWriter* writer, const HttpRequest& request,
                      bool keep_alive, const ServerCounters& counters) = 0;
};

/// The always-on debug instruments of one serving process — a flight
/// recorder of recent request digests, two heavy-hitter sketches (by
/// canonical shard key and by classifier query class), and the slow-log of
/// captured outlier bodies. One deck per process: the service-hosting
/// HttpServer creates and owns one; the shard router builds its own and
/// serves it through the same /v1/debug/* surface.
struct DebugDeck {
  explicit DebugDeck(const ServerOptions& options)
      : flight(options.flight_capacity),
        hot_keys(options.heavy_k),
        hot_classes(options.heavy_k),
        slow(options.slow_threshold_ms, options.slowlog_capacity) {}

  obs::FlightRecorder flight;
  obs::SpaceSaving hot_keys;     ///< Keyed by canonical shard key.
  obs::SpaceSaving hot_classes;  ///< Keyed by dichotomy query class.
  obs::SlowLog slow;
};

/// The request-derived identity of a digest, computed from the DECODED
/// request BEFORE it moves into the service (everything response-derived —
/// engine, strategy, samples — is read off the response at record time).
struct RequestDigestKeys {
  std::string shard_key;  ///< cluster::ShardKeyFor; "" without a query.
  uint64_t shard_key_hash = 0;
};

RequestDigestKeys DigestKeysFor(const SvcRequest& request);

/// Records one served request into every always-on instrument of `deck`
/// (flight digest + both sketches). Returns true when the request was slow
/// enough to capture — the CALLER then materializes the body and calls
/// CaptureSlow, so the hot path never copies a body that was not slow.
/// Null deck → no-op, returns false.
bool RecordServedRequest(DebugDeck* deck, const RequestDigestKeys& keys,
                         const std::string& target,
                         const SvcResponse& response, int status,
                         double wall_ms, const std::string& trace_id);

/// Promotes one slow request — `body` is the VERBATIM wire bytes, so the
/// entry replays bit-identically — into the deck's slow-log.
void CaptureSlow(DebugDeck* deck, const RequestDigestKeys& keys,
                 const std::string& target, std::string body,
                 const SvcResponse& response, int status, double wall_ms,
                 const std::string& trace_id);

/// The GET /v1/debug/* response bodies (canonical member order; every
/// timestamp a RELATIVE offset — see obs/replay.h on what comparisons
/// strip). Shared by the backend handler and the router's own endpoints.
std::string DebugFlightBody(const DebugDeck& deck);
std::string DebugHotBody(const DebugDeck& deck, const std::string& role);
std::string DebugSlowBody(const DebugDeck& deck);

/// Registers the scrape-time collector exposing the deck as the
/// shapley_flight_* / shapley_heavy_* / shapley_slowlog_* families, role-
/// labeled so a router and a backend sharing a dashboard stay disjoint.
void RegisterDebugDeckMetrics(obs::MetricsRegistry* metrics, DebugDeck* deck,
                              const std::string& role);

/// A response body for failures raised by the HTTP layer itself (no
/// service round-trip happened): same wire shape as every other error, so
/// clients have exactly one error format to handle.
std::string FrontEndErrorBody(SvcErrorCode code, std::string message);

/// Writes one Content-Length JSON response. Returns SendAll's verdict.
bool WriteJsonResponse(ResponseWriter* writer, int status,
                       const std::string& body, bool keep_alive);

/// The HttpHandler serving a ShapleyService — the piece that turns the
/// in-process serving layer (exact engines, dichotomy routing, the (ε, δ)
/// sampling subsystem, caches, deadlines) into an actual network service.
///
/// Endpoints (wire formats in net/codec.h):
///   POST /v1/compute  one SvcRequest JSON → one SvcResponse JSON; the
///                     HTTP status is 200 on success, else the mapped
///                     SvcError status (HttpStatusFor)
///   POST /v1/batch    {"requests": [r0, r1, ...]} → chunked
///                     application/x-ndjson: one response line per
///                     request IN COMPLETION ORDER, each tagged with its
///                     zero-based "id" — a slow exact instance never
///                     head-of-line-blocks a fast one behind it
///   GET  /v1/engines  the registry: names, descriptions, capabilities
///   GET  /v1/stats    ServiceStats snapshot (+ server connection counters)
///   GET  /v1/debug/flight|hot|slow  the attached DebugDeck (set_debug)
class ServiceHandler : public HttpHandler {
 public:
  /// `service` outlives the handler; not owned.
  explicit ServiceHandler(ShapleyService* service) : service_(service) {}

  bool Handle(ResponseWriter* writer, const HttpRequest& request,
              bool keep_alive, const ServerCounters& counters) override;

  /// Attaches a metrics registry (not owned; outlives the handler):
  /// registers the ServiceStats scrape collector and starts observing the
  /// shapley_request_latency_ms{engine,mode,strategy} and
  /// shapley_queue_depth histograms per request. HttpServer calls this for
  /// its owned handler; an externally-hosted handler may call it directly.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attaches the always-on debug deck (not owned; outlives the handler).
  /// Every served request records a flight digest + sketch hits; requests
  /// past the slow threshold capture their verbatim body. HttpServer calls
  /// this with its owned deck; null detaches (debug endpoints answer 404).
  void set_debug(DebugDeck* deck) { deck_ = deck; }

 private:
  bool HandleCompute(ResponseWriter* writer, const HttpRequest& request,
                     bool keep_alive);
  bool HandleBatch(ResponseWriter* writer, const HttpRequest& request,
                   bool keep_alive);
  bool HandleEngines(ResponseWriter* writer, bool keep_alive);
  bool HandleStats(ResponseWriter* writer, bool keep_alive,
                   const ServerCounters& counters);
  bool HandleDebug(ResponseWriter* writer, const HttpRequest& request,
                   bool keep_alive);

  /// Latency-histogram observation for one finished request: labels come
  /// from the RESPONSE (engine that actually served it, realized strategy),
  /// so routing decisions are visible in the series breakdown.
  void ObserveRequest(const SvcResponse& response, double wall_ms);
  /// Queue-depth observation at request arrival.
  void ObserveArrival();

  ShapleyService* service_;
  obs::MetricsRegistry* metrics_ = nullptr;
  DebugDeck* deck_ = nullptr;
};

/// The TCP/HTTP front: an epoll (poll-fallback) event loop multiplexing
/// the listener and every connection on ONE thread (net/event_loop.h),
/// with requests dispatched to a small worker pool. Keep-alive,
/// body/connection limits, write-side backpressure and the shutdown drain
/// are the transport's job; an HttpHandler supplies the endpoints — the
/// classic constructor wraps a ShapleyService in a ServiceHandler, the
/// handler constructor hosts anything else (the shard router).
///
/// The server answers GET /healthz itself — 200 with
/// {"status": "ok", "version": kShapleyVersion, "role": options.role} —
/// ON THE LOOP THREAD, so a health probe costs no handler (or service)
/// work and never queues behind dispatched requests. GET /metrics is
/// answered the same way (Prometheus text exposition of the server's
/// registry), so a scrape works even when the handler pool is wedged.
///
/// Execution model: one loop thread owns every fd and runs each
/// connection's state machine (read-accumulate → parse → dispatch →
/// write-drain); fully-parsed requests are handed to the dispatch pool
/// (options.dispatch_threads thin waiters — the service's own pool does
/// the actual computing). While a request is in flight its connection's
/// read side is not watched: pipelined keep-alive bytes wait buffered and
/// are served the moment the response completes. A thousand idle
/// keep-alive connections therefore cost a thousand fds, not a thousand
/// OS threads.
///
/// Shutdown discipline: Stop() closes the door (no new connections), cuts
/// idle keep-alive connections immediately, finishes every DISPATCHED
/// request, streams those responses out, and joins — in-flight work is
/// drained, never dropped. Abort() is the opposite contract: a crash
/// simulation for failover tests — it shutdowns every connection BOTH
/// ways, so in-flight responses fail to write and clients see the stream
/// die mid-flight.
class HttpServer {
 public:
  /// `service` outlives the server; not owned. Wraps it in an owned
  /// ServiceHandler.
  HttpServer(ShapleyService* service, ServerOptions options = {});
  /// `handler` outlives the server; not owned.
  HttpServer(HttpHandler* handler, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the loop thread + dispatch pool. Throws
  /// std::runtime_error when the address cannot be bound.
  void Start();

  /// Graceful drain (see above). Idempotent; also run by the destructor.
  void Stop();

  /// Hard kill: stops accepting and shutdowns every live connection in
  /// BOTH directions, so in-flight writes fail immediately — from a
  /// client's view the process crashed mid-response. For failover tests;
  /// production shutdown is Stop().
  void Abort();

  bool running() const { return running_.load(); }
  /// The bound port (after Start(); ephemeral requests resolve here).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  ServerCounters counters() const;
  size_t connections_accepted() const {
    return counters().connections_accepted;
  }
  size_t connections_rejected() const {
    return counters().connections_rejected;
  }
  size_t requests_served() const { return served_.load(); }

  /// The registry behind GET /metrics — options().metrics when provided,
  /// else the server's own. Never null.
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// The always-on debug deck behind GET /v1/debug/* — owned and wired by
  /// the service constructor; null for a handler-hosted server (the host,
  /// e.g. the shard router, brings its own deck).
  DebugDeck* debug_deck() { return owned_deck_.get(); }

 private:
  /// Resolves metrics_ (options or owned), registers shapley_build_info,
  /// the transport-counter collector and the shapley_server_eventloop_*
  /// collector. Ctor-only.
  void SetUpMetrics();
  /// The event loop's request callback (LOOP THREAD): answers /healthz,
  /// /metrics inline; dispatches everything else to the pool.
  EventLoop::Disposition OnRequest(uint64_t conn_id, HttpRequest&& request,
                                   std::shared_ptr<ConnWriter> writer);

  std::unique_ptr<HttpHandler> owned_handler_;
  std::unique_ptr<DebugDeck> owned_deck_;  ///< Service ctor only.
  HttpHandler* handler_;
  const ServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;  ///< Never null after construction.
  std::unique_ptr<EventLoop> loop_;
  /// The loop as seen by scrape collectors (which may run on any thread
  /// while Start() swaps loop_): null until Start() completes.
  std::atomic<EventLoop*> loop_ptr_{nullptr};
  std::unique_ptr<ThreadPool> dispatch_pool_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> served_{0};
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_SERVER_H_
