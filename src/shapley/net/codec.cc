#include "shapley/net/codec.h"

#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/query/conjunctive_query.h"
#include "shapley/query/query_parser.h"
#include "shapley/query/union_query.h"

namespace shapley::net {

namespace {

using Clock = std::chrono::steady_clock;

SvcError Invalid(std::string message) {
  return SvcError{SvcErrorCode::kInvalidRequest, std::move(message), ""};
}

/// Strictness helper: every decoder lists the fields it understands and
/// rejects the rest — a misspelled "epsilonn" must fail loudly, not run
/// with silent defaults.
std::optional<SvcError> RejectUnknownFields(
    const Json& json, std::initializer_list<std::string_view> known,
    const char* where) {
  const Json::Object* members = json.IfObject();
  if (members == nullptr) {
    return Invalid(std::string(where) + ": expected a JSON object");
  }
  for (const auto& [key, unused] : *members) {
    bool ok = false;
    for (std::string_view name : known) {
      if (key == name) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return Invalid(std::string(where) + ": unknown field \"" + key + "\"");
    }
  }
  return std::nullopt;
}

/// '?x' / '$a': the prefix makes variable-vs-constant explicit, so the
/// canonical text re-parses identically regardless of the u–z naming
/// convention the bare syntax would apply.
void AppendAtomText(const Atom& atom, const Schema& schema, bool negated,
                    std::string* out) {
  if (negated) out->push_back('!');
  *out += schema.name(atom.relation());
  out->push_back('(');
  for (size_t i = 0; i < atom.terms().size(); ++i) {
    if (i > 0) out->push_back(',');
    const Term& term = atom.terms()[i];
    out->push_back(term.IsVariable() ? '?' : '$');
    *out += term.ToString();
  }
  out->push_back(')');
}

std::optional<std::string> CanonicalCqText(const ConjunctiveQuery& cq) {
  const Schema& schema = *cq.schema();
  std::string out;
  bool first = true;
  for (const Atom& atom : cq.atoms()) {
    if (!first) out += ", ";
    first = false;
    AppendAtomText(atom, schema, /*negated=*/false, &out);
  }
  for (const Atom& atom : cq.negated_atoms()) {
    if (!first) out += ", ";
    first = false;
    AppendAtomText(atom, schema, /*negated=*/true, &out);
  }
  // The empty conjunction ⊤ has no parser syntax.
  if (first) return std::nullopt;
  return out;
}

Json EncodeApproxParams(const ApproxParams& params) {
  Json approx;
  approx.Set("epsilon", Json::Number(params.epsilon));
  approx.Set("delta", Json::Number(params.delta));
  approx.Set("seed", Json::Number(params.seed));
  approx.Set("max_samples", Json::Number(uint64_t{params.max_samples}));
  approx.Set("strategy", Json::Str(shapley::ToString(params.strategy)));
  return approx;
}

std::optional<SvcError> DecodeApproxParams(const Json& json,
                                           ApproxParams* out) {
  if (auto err = RejectUnknownFields(
          json, {"epsilon", "delta", "seed", "max_samples", "strategy"},
          "approx")) {
    return err;
  }
  if (const Json* epsilon = json.Find("epsilon")) {
    std::optional<double> value = epsilon->IfDouble();
    if (!value.has_value()) return Invalid("approx.epsilon: expected a number");
    out->epsilon = *value;
  }
  if (const Json* delta = json.Find("delta")) {
    std::optional<double> value = delta->IfDouble();
    if (!value.has_value()) return Invalid("approx.delta: expected a number");
    out->delta = *value;
  }
  if (const Json* seed = json.Find("seed")) {
    std::optional<uint64_t> value = seed->IfUint64();
    if (!value.has_value()) {
      return Invalid("approx.seed: expected an unsigned integer");
    }
    out->seed = *value;
  }
  if (const Json* max_samples = json.Find("max_samples")) {
    std::optional<uint64_t> value = max_samples->IfUint64();
    if (!value.has_value()) {
      return Invalid("approx.max_samples: expected an unsigned integer");
    }
    out->max_samples = static_cast<size_t>(*value);
  }
  if (const Json* strategy = json.Find("strategy")) {
    const std::string* name = strategy->IfString();
    if (name == nullptr) return Invalid("approx.strategy: expected a string");
    std::optional<ApproxStrategy> parsed = ParseApproxStrategy(*name);
    if (!parsed.has_value()) {
      return Invalid("approx.strategy: unknown strategy \"" + *name +
                     "\" (known: hoeffding bernstein stratified)");
    }
    out->strategy = *parsed;
  }
  return std::nullopt;
}

Json EncodeValueEntry(const Fact& fact, const BigRational& value,
                      const Schema& schema) {
  Json entry;
  entry.Set("fact", Json::Str(fact.ToString(schema)));
  entry.Set("value", Json::Str(value.ToString()));
  // Display convenience only; the exact "value" string is authoritative
  // and the decoder ignores this member.
  entry.Set("approx_value", Json::Number(value.ToDouble()));
  return entry;
}

std::optional<SvcError> DecodeValueEntry(
    const Json& json, const std::shared_ptr<Schema>& schema, Fact* fact,
    BigRational* value) {
  // Response path: unknown fields are IGNORED, not rejected (see
  // DecodeResponse) — a newer server may annotate entries.
  if (json.IfObject() == nullptr) {
    return Invalid("values[]: expected a JSON object");
  }
  const Json* fact_json = json.Find("fact");
  const Json* value_json = json.Find("value");
  const std::string* fact_text =
      fact_json != nullptr ? fact_json->IfString() : nullptr;
  const std::string* value_text =
      value_json != nullptr ? value_json->IfString() : nullptr;
  if (fact_text == nullptr || value_text == nullptr) {
    return Invalid("values[]: expected string \"fact\" and \"value\"");
  }
  try {
    *fact = ParseFact(schema, *fact_text);
    const size_t slash = value_text->find('/');
    if (slash == std::string::npos) {
      *value = BigRational(BigInt::FromString(*value_text));
    } else {
      *value = BigRational(BigInt::FromString(value_text->substr(0, slash)),
                           BigInt::FromString(value_text->substr(slash + 1)));
    }
  } catch (const std::exception& e) {
    return Invalid(std::string("values[]: ") + e.what());
  }
  return std::nullopt;
}

std::optional<Tractability> ParseTractability(const std::string& name) {
  if (name == "FP") return Tractability::kFP;
  if (name == "#P-hard") return Tractability::kSharpPHard;
  if (name == "unknown") return Tractability::kUnknown;
  return std::nullopt;
}

/// Typed field readers used by the response decoder (absent → default).
bool ReadString(const Json& json, std::string_view key, std::string* out) {
  const Json* field = json.Find(key);
  if (field == nullptr) return true;
  const std::string* value = field->IfString();
  if (value == nullptr) return false;
  *out = *value;
  return true;
}

bool ReadBool(const Json& json, std::string_view key, bool* out) {
  const Json* field = json.Find(key);
  if (field == nullptr) return true;
  std::optional<bool> value = field->IfBool();
  if (!value.has_value()) return false;
  *out = *value;
  return true;
}

bool ReadDouble(const Json& json, std::string_view key, double* out) {
  const Json* field = json.Find(key);
  if (field == nullptr) return true;
  std::optional<double> value = field->IfDouble();
  if (!value.has_value()) return false;
  *out = *value;
  return true;
}

bool ReadSize(const Json& json, std::string_view key, size_t* out) {
  const Json* field = json.Find(key);
  if (field == nullptr) return true;
  std::optional<uint64_t> value = field->IfUint64();
  if (!value.has_value()) return false;
  *out = static_cast<size_t>(*value);
  return true;
}

bool ReadU64(const Json& json, std::string_view key, uint64_t* out) {
  const Json* field = json.Find(key);
  if (field == nullptr) return true;
  std::optional<uint64_t> value = field->IfUint64();
  if (!value.has_value()) return false;
  *out = *value;
  return true;
}

}  // namespace

int HttpStatusFor(SvcErrorCode code) {
  switch (code) {
    case SvcErrorCode::kInvalidRequest:
      return 400;
    case SvcErrorCode::kCapacityExceeded:
      return 413;  // Payload (instance) too large for every admitted engine.
    case SvcErrorCode::kUnsupportedQuery:
      return 422;  // Well-formed, but no engine handles the class.
    case SvcErrorCode::kCancelled:
      return 499;  // Client closed request (nginx convention).
    case SvcErrorCode::kDeadlineExceeded:
      return 504;
    case SvcErrorCode::kEngineFailure:
      return 500;
    case SvcErrorCode::kUpstreamUnavailable:
      return 503;  // The fleet behind a proxy is down; retry later.
    case SvcErrorCode::kRequestTimeout:
      return 408;  // The client never finished sending its request.
  }
  return 500;
}

std::optional<SvcErrorCode> ParseSvcErrorCode(const std::string& name) {
  for (SvcErrorCode code :
       {SvcErrorCode::kCapacityExceeded, SvcErrorCode::kUnsupportedQuery,
        SvcErrorCode::kDeadlineExceeded, SvcErrorCode::kCancelled,
        SvcErrorCode::kInvalidRequest, SvcErrorCode::kEngineFailure,
        SvcErrorCode::kUpstreamUnavailable, SvcErrorCode::kRequestTimeout}) {
    if (shapley::ToString(code) == name) return code;
  }
  return std::nullopt;
}

std::optional<SvcMode> ParseSvcMode(const std::string& name) {
  for (SvcMode mode : {SvcMode::kAllValues, SvcMode::kMaxValue, SvcMode::kTopK,
                       SvcMode::kClassifyOnly}) {
    if (shapley::ToString(mode) == name) return mode;
  }
  return std::nullopt;
}

std::optional<std::string> CanonicalQueryText(const BooleanQuery& query) {
  if (const auto* cq = dynamic_cast<const ConjunctiveQuery*>(&query)) {
    return CanonicalCqText(*cq);
  }
  if (const auto* ucq = dynamic_cast<const UnionQuery*>(&query)) {
    std::string out;
    for (size_t i = 0; i < ucq->disjuncts().size(); ++i) {
      std::optional<std::string> disjunct =
          CanonicalCqText(*ucq->disjuncts()[i]);
      if (!disjunct.has_value()) return std::nullopt;
      if (i > 0) out += " | ";
      out += *disjunct;
    }
    return out;
  }
  return std::nullopt;  // Path queries etc. have no parser syntax.
}

Json EncodeRequest(const SvcRequest& request) {
  if (request.query == nullptr) {
    throw SvcException(Invalid("encode: request has no query"));
  }
  std::optional<std::string> query_text = CanonicalQueryText(*request.query);
  if (!query_text.has_value()) {
    throw SvcException(
        Invalid("encode: query class has no canonical wire text (only CQ / "
                "UCQ cross the wire)"));
  }
  const Schema& schema = *request.db.schema();

  Json database;
  Json endogenous = Json::Arr();
  for (const Fact& fact : request.db.endogenous().facts()) {
    endogenous.Push(Json::Str(fact.ToString(schema)));
  }
  Json exogenous = Json::Arr();
  for (const Fact& fact : request.db.exogenous().facts()) {
    exogenous.Push(Json::Str(fact.ToString(schema)));
  }
  database.Set("endogenous", std::move(endogenous));
  database.Set("exogenous", std::move(exogenous));

  Json json;
  json.Set("query", Json::Str(std::move(*query_text)));
  json.Set("database", std::move(database));
  json.Set("mode", Json::Str(shapley::ToString(request.mode)));
  if (request.mode == SvcMode::kTopK) {
    json.Set("top_k", Json::Number(uint64_t{request.top_k}));
  }
  if (!request.engine.empty()) json.Set("engine", Json::Str(request.engine));
  if (request.allow_approx) json.Set("allow_approx", Json::Bool(true));
  if (request.trace) {
    if (request.trace_context.valid()) {
      // Cluster-propagated form: the receiver must record under this
      // identity so its subtree grafts into the sender's tree.
      Json trace;
      trace.Set("trace_id", Json::Str(request.trace_context.TraceIdHex()));
      trace.Set("parent_span",
                Json::Str(obs::HexU64(request.trace_context.parent_span)));
      json.Set("trace", std::move(trace));
    } else {
      json.Set("trace", Json::Bool(true));
    }
  }
  json.Set("approx", EncodeApproxParams(request.approx));
  if (request.deadline.has_value()) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        *request.deadline - Clock::now());
    json.Set("timeout_ms",
             Json::Number(uint64_t{remaining.count() > 0
                                       ? static_cast<uint64_t>(remaining.count())
                                       : 0}));
  }
  return json;
}

std::optional<SvcError> DecodeRequest(const Json& json, DecodedRequest* out) {
  if (auto err = RejectUnknownFields(
          json,
          {"query", "database", "mode", "top_k", "engine", "allow_approx",
           "trace", "approx", "timeout_ms"},
          "request")) {
    return err;
  }
  DecodedRequest decoded;
  decoded.schema = Schema::Create();

  const Json* query = json.Find("query");
  const std::string* query_text = query != nullptr ? query->IfString() : nullptr;
  if (query_text == nullptr) {
    return Invalid("request.query: expected a query string");
  }
  try {
    UcqPtr parsed = ParseUcq(decoded.schema, *query_text);
    decoded.request.query = parsed->disjuncts().size() == 1
                                ? QueryPtr(parsed->disjuncts()[0])
                                : QueryPtr(parsed);
  } catch (const std::exception& e) {
    return Invalid(std::string("request.query: ") + e.what());
  }

  const Json* database = json.Find("database");
  if (database == nullptr) {
    return Invalid("request.database: missing");
  }
  if (auto err = RejectUnknownFields(*database, {"endogenous", "exogenous"},
                                     "request.database")) {
    return err;
  }
  auto parse_facts = [&](const char* key,
                         std::vector<Fact>* facts) -> std::optional<SvcError> {
    const Json* array = database->Find(key);
    if (array == nullptr) return std::nullopt;  // Absent = empty.
    const Json::Array* items = array->IfArray();
    if (items == nullptr) {
      return Invalid(std::string("request.database.") + key +
                     ": expected an array of fact strings");
    }
    for (const Json& item : *items) {
      const std::string* text = item.IfString();
      if (text == nullptr) {
        return Invalid(std::string("request.database.") + key +
                       ": expected an array of fact strings");
      }
      try {
        facts->push_back(ParseFact(decoded.schema, *text));
      } catch (const std::exception& e) {
        return Invalid(std::string("request.database.") + key + ": " +
                       e.what());
      }
    }
    return std::nullopt;
  };
  std::vector<Fact> endogenous, exogenous;
  if (auto err = parse_facts("endogenous", &endogenous)) return err;
  if (auto err = parse_facts("exogenous", &exogenous)) return err;
  decoded.request.db =
      PartitionedDatabase(Database(decoded.schema, std::move(endogenous)),
                          Database(decoded.schema, std::move(exogenous)));

  const Json* mode = json.Find("mode");
  const std::string* mode_name = mode != nullptr ? mode->IfString() : nullptr;
  if (mode_name == nullptr) {
    return Invalid("request.mode: expected one of all-values, max-value, "
                   "top-k, classify-only");
  }
  std::optional<SvcMode> parsed_mode = ParseSvcMode(*mode_name);
  if (!parsed_mode.has_value()) {
    return Invalid("request.mode: unknown mode \"" + *mode_name + "\"");
  }
  decoded.request.mode = *parsed_mode;

  if (const Json* top_k = json.Find("top_k")) {
    std::optional<uint64_t> value = top_k->IfUint64();
    if (!value.has_value() || *value == 0) {
      return Invalid("request.top_k: expected a positive integer");
    }
    decoded.request.top_k = static_cast<size_t>(*value);
  }
  if (const Json* engine = json.Find("engine")) {
    const std::string* name = engine->IfString();
    if (name == nullptr) return Invalid("request.engine: expected a string");
    decoded.request.engine = *name;
  }
  if (const Json* allow = json.Find("allow_approx")) {
    std::optional<bool> value = allow->IfBool();
    if (!value.has_value()) {
      return Invalid("request.allow_approx: expected a boolean");
    }
    decoded.request.allow_approx = *value;
  }
  if (const Json* trace = json.Find("trace")) {
    if (std::optional<bool> value = trace->IfBool()) {
      decoded.request.trace = *value;
    } else if (trace->IfObject() != nullptr) {
      // The cluster-propagation form: strict like every other request
      // member — a typo in a context field must fail loudly.
      if (auto err = RejectUnknownFields(*trace, {"trace_id", "parent_span"},
                                         "request.trace")) {
        return err;
      }
      const Json* id = trace->Find("trace_id");
      const std::string* id_text = id != nullptr ? id->IfString() : nullptr;
      std::optional<std::pair<uint64_t, uint64_t>> parsed_id =
          id_text != nullptr ? obs::ParseTraceIdHex(*id_text) : std::nullopt;
      if (!parsed_id.has_value()) {
        return Invalid(
            "request.trace.trace_id: expected 32 lowercase hex chars");
      }
      decoded.request.trace_context.trace_hi = parsed_id->first;
      decoded.request.trace_context.trace_lo = parsed_id->second;
      if (const Json* parent = trace->Find("parent_span")) {
        const std::string* text = parent->IfString();
        std::optional<uint64_t> span =
            text != nullptr ? obs::ParseHexU64(*text) : std::nullopt;
        if (!span.has_value()) {
          return Invalid(
              "request.trace.parent_span: expected 16 lowercase hex chars");
        }
        decoded.request.trace_context.parent_span = *span;
      }
      decoded.request.trace = true;
    } else {
      return Invalid("request.trace: expected a boolean or a context object");
    }
  }
  if (const Json* approx = json.Find("approx")) {
    if (auto err = DecodeApproxParams(*approx, &decoded.request.approx)) {
      return err;
    }
  }
  if (const Json* timeout = json.Find("timeout_ms")) {
    std::optional<uint64_t> ms = timeout->IfUint64();
    if (!ms.has_value()) {
      return Invalid("request.timeout_ms: expected an unsigned integer");
    }
    // Re-anchored here: the wire carries a budget, not an absolute point.
    decoded.request.deadline =
        Clock::now() + std::chrono::milliseconds(*ms);
  }

  *out = std::move(decoded);
  return std::nullopt;
}

Json EncodeResponse(const SvcResponse& response, const Schema& schema) {
  Json json;
  json.Set("mode", Json::Str(shapley::ToString(response.mode)));
  json.Set("status",
           Json::Number(int64_t{response.ok()
                                    ? 200
                                    : HttpStatusFor(response.error->code)}));

  Json verdict;
  verdict.Set("tractability",
              Json::Str(shapley::ToString(response.verdict.tractability)));
  verdict.Set("query_class", Json::Str(response.verdict.query_class));
  verdict.Set("justification", Json::Str(response.verdict.justification));
  verdict.Set("fgmc_svc_equivalent",
              Json::Bool(response.verdict.fgmc_svc_equivalent));
  json.Set("verdict", std::move(verdict));

  json.Set("engine", Json::Str(response.engine));
  json.Set("routed_by_classifier", Json::Bool(response.routed_by_classifier));

  if (!response.values.empty()) {
    Json values = Json::Arr();
    for (const auto& [fact, value] : response.values) {
      values.Push(EncodeValueEntry(fact, value, schema));
    }
    json.Set("values", std::move(values));
  }
  if (!response.ranked.empty()) {
    Json ranked = Json::Arr();
    for (const auto& [fact, value] : response.ranked) {
      ranked.Push(EncodeValueEntry(fact, value, schema));
    }
    json.Set("ranked", std::move(ranked));
  }

  if (response.approx.has_value()) {
    const ApproxInfo& info = *response.approx;
    Json approx;
    approx.Set("epsilon", Json::Number(info.epsilon));
    approx.Set("delta", Json::Number(info.delta));
    approx.Set("seed", Json::Number(info.seed));
    approx.Set("samples", Json::Number(uint64_t{info.samples}));
    approx.Set("half_width", Json::Number(info.half_width));
    approx.Set("confidence", Json::Number(info.confidence));
    approx.Set("range", Json::Number(info.range));
    approx.Set("memo_hits", Json::Number(uint64_t{info.memo_hits}));
    approx.Set("strategy", Json::Str(info.strategy));
    approx.Set("hoeffding_baseline",
               Json::Number(uint64_t{info.hoeffding_baseline}));
    approx.Set("checkpoints", Json::Number(uint64_t{info.checkpoints}));
    approx.Set("facts_retired", Json::Number(uint64_t{info.facts_retired}));
    Json ranges = Json::Arr();
    for (double r : info.fact_ranges) ranges.Push(Json::Number(r));
    approx.Set("fact_ranges", std::move(ranges));
    Json samples = Json::Arr();
    for (size_t s : info.fact_samples) samples.Push(Json::Number(uint64_t{s}));
    approx.Set("fact_samples", std::move(samples));
    Json widths = Json::Arr();
    for (double w : info.fact_half_widths) widths.Push(Json::Number(w));
    approx.Set("fact_half_widths", std::move(widths));
    json.Set("approx", std::move(approx));
  }

  if (response.error.has_value()) {
    Json error;
    error.Set("code", Json::Str(shapley::ToString(response.error->code)));
    error.Set("status",
              Json::Number(int64_t{HttpStatusFor(response.error->code)}));
    error.Set("message", Json::Str(response.error->message));
    error.Set("engine", Json::Str(response.error->engine));
    json.Set("error", std::move(error));
  }

  if (response.trace.has_value()) {
    json.Set("trace", EncodeTrace(*response.trace));
  }

  Json stats;
  stats.Set("queue_ms", Json::Number(response.stats.queue_ms));
  stats.Set("exec_ms", Json::Number(response.stats.exec_ms));
  json.Set("stats", std::move(stats));
  return json;
}

Json EncodeTraceSpan(const obs::TraceSpan& span) {
  Json json;
  json.Set("name", Json::Str(span.name));
  json.Set("start_ms", Json::Number(span.start_ms));
  json.Set("ms", Json::Number(span.ms));
  if (!span.attrs.empty()) {
    Json attrs;
    for (const auto& [key, value] : span.attrs) {
      attrs.Set(key, Json::Str(value));
    }
    json.Set("attrs", std::move(attrs));
  }
  if (!span.children.empty()) {
    Json children = Json::Arr();
    for (const obs::TraceSpan& child : span.children) {
      children.Push(EncodeTraceSpan(child));
    }
    json.Set("children", std::move(children));
  }
  return json;
}

Json EncodeTrace(const obs::RequestTrace& trace) {
  Json json;
  if (trace.context.valid()) {
    json.Set("trace_id", Json::Str(trace.context.TraceIdHex()));
  }
  json.Set("root", EncodeTraceSpan(trace.root));
  return json;
}

bool DecodeTraceSpan(const Json& json, obs::TraceSpan* out) {
  if (json.IfObject() == nullptr) return false;
  obs::TraceSpan span;
  // "name" is REQUIRED — a nameless span is corruption, not a new field;
  // the timing members are tolerated when absent (they default to 0).
  if (!ReadString(json, "name", &span.name) || span.name.empty() ||
      !ReadDouble(json, "start_ms", &span.start_ms) ||
      !ReadDouble(json, "ms", &span.ms)) {
    return false;
  }
  if (const Json* attrs = json.Find("attrs")) {
    const Json::Object* members = attrs->IfObject();
    if (members == nullptr) return false;
    for (const auto& [key, value] : *members) {
      const std::string* text = value.IfString();
      if (text == nullptr) return false;
      span.attrs.emplace_back(key, *text);
    }
  }
  if (const Json* children = json.Find("children")) {
    const Json::Array* items = children->IfArray();
    if (items == nullptr) return false;
    for (const Json& item : *items) {
      obs::TraceSpan child;
      if (!DecodeTraceSpan(item, &child)) return false;
      span.children.push_back(std::move(child));
    }
  }
  *out = std::move(span);
  return true;
}

std::optional<obs::RequestTrace> DecodeTrace(const Json& trace_json) {
  if (trace_json.IfObject() == nullptr) return std::nullopt;
  obs::RequestTrace trace;
  if (const Json* id = trace_json.Find("trace_id")) {
    const std::string* text = id->IfString();
    std::optional<std::pair<uint64_t, uint64_t>> parsed =
        text != nullptr ? obs::ParseTraceIdHex(*text) : std::nullopt;
    if (!parsed.has_value()) return std::nullopt;
    trace.context.trace_hi = parsed->first;
    trace.context.trace_lo = parsed->second;
  }
  if (const Json* root = trace_json.Find("root")) {
    if (!DecodeTraceSpan(*root, &trace.root)) return std::nullopt;
  }
  return trace;
}

void SetTraceBlock(Json* encoded_response, const obs::RequestTrace& trace) {
  Json block = EncodeTrace(trace);
  if (Json* existing = encoded_response->FindMutable("trace")) {
    *existing = std::move(block);
  } else {
    encoded_response->Set("trace", std::move(block));
  }
}

void SetRequestTraceContext(Json* encoded_request,
                            const obs::TraceContext& context) {
  Json block;
  block.Set("trace_id", Json::Str(context.TraceIdHex()));
  block.Set("parent_span", Json::Str(obs::HexU64(context.parent_span)));
  if (Json* existing = encoded_request->FindMutable("trace")) {
    *existing = std::move(block);
  } else {
    encoded_request->Set("trace", std::move(block));
  }
}

std::optional<SvcError> DecodeResponse(const Json& json,
                                       const std::shared_ptr<Schema>& schema,
                                       SvcResponse* out) {
  // FORWARD COMPATIBILITY: unlike the request path (where an unknown field
  // is a client typo that must fail loudly), unknown RESPONSE fields are
  // ignored — a newer server, or a newer backend behind the shard router,
  // may legitimately annotate responses with fields this build predates.
  // Known fields keep their strict type checks; the router passes the raw
  // line through untouched, so nothing is lost either way.
  if (json.IfObject() == nullptr) {
    return Invalid("response: expected a JSON object");
  }
  SvcResponse response;

  std::string mode_name = shapley::ToString(SvcMode::kAllValues);
  if (!ReadString(json, "mode", &mode_name)) {
    return Invalid("response.mode: expected a string");
  }
  std::optional<SvcMode> mode = ParseSvcMode(mode_name);
  if (!mode.has_value()) {
    return Invalid("response.mode: unknown mode \"" + mode_name + "\"");
  }
  response.mode = *mode;

  if (const Json* verdict = json.Find("verdict")) {
    if (verdict->IfObject() == nullptr) {
      return Invalid("response.verdict: expected a JSON object");
    }
    std::string tractability = "unknown";
    if (!ReadString(*verdict, "tractability", &tractability) ||
        !ReadString(*verdict, "query_class", &response.verdict.query_class) ||
        !ReadString(*verdict, "justification",
                    &response.verdict.justification) ||
        !ReadBool(*verdict, "fgmc_svc_equivalent",
                  &response.verdict.fgmc_svc_equivalent)) {
      return Invalid("response.verdict: malformed field types");
    }
    std::optional<Tractability> parsed = ParseTractability(tractability);
    if (!parsed.has_value()) {
      return Invalid("response.verdict.tractability: unknown \"" +
                     tractability + "\"");
    }
    response.verdict.tractability = *parsed;
  }

  if (!ReadString(json, "engine", &response.engine) ||
      !ReadBool(json, "routed_by_classifier",
                &response.routed_by_classifier)) {
    return Invalid("response: malformed engine/routed_by_classifier");
  }

  if (const Json* values = json.Find("values")) {
    const Json::Array* items = values->IfArray();
    if (items == nullptr) return Invalid("response.values: expected an array");
    for (const Json& item : *items) {
      Fact fact;
      BigRational value;
      if (auto err = DecodeValueEntry(item, schema, &fact, &value)) return err;
      response.values.emplace(std::move(fact), std::move(value));
    }
  }
  if (const Json* ranked = json.Find("ranked")) {
    const Json::Array* items = ranked->IfArray();
    if (items == nullptr) return Invalid("response.ranked: expected an array");
    for (const Json& item : *items) {
      Fact fact;
      BigRational value;
      if (auto err = DecodeValueEntry(item, schema, &fact, &value)) return err;
      response.ranked.emplace_back(std::move(fact), std::move(value));
    }
  }

  if (const Json* approx = json.Find("approx")) {
    if (approx->IfObject() == nullptr) {
      return Invalid("response.approx: expected a JSON object");
    }
    ApproxInfo info;
    if (!ReadDouble(*approx, "epsilon", &info.epsilon) ||
        !ReadDouble(*approx, "delta", &info.delta) ||
        !ReadU64(*approx, "seed", &info.seed) ||
        !ReadSize(*approx, "samples", &info.samples) ||
        !ReadDouble(*approx, "half_width", &info.half_width) ||
        !ReadDouble(*approx, "confidence", &info.confidence) ||
        !ReadDouble(*approx, "range", &info.range) ||
        !ReadSize(*approx, "memo_hits", &info.memo_hits) ||
        !ReadString(*approx, "strategy", &info.strategy) ||
        !ReadSize(*approx, "hoeffding_baseline", &info.hoeffding_baseline) ||
        !ReadSize(*approx, "checkpoints", &info.checkpoints) ||
        !ReadSize(*approx, "facts_retired", &info.facts_retired)) {
      return Invalid("response.approx: malformed field types");
    }
    auto read_doubles = [&](const char* key, std::vector<double>* out_vec)
        -> std::optional<SvcError> {
      const Json* array = approx->Find(key);
      if (array == nullptr) return std::nullopt;
      const Json::Array* items = array->IfArray();
      if (items == nullptr) {
        return Invalid(std::string("response.approx.") + key +
                       ": expected an array of numbers");
      }
      for (const Json& item : *items) {
        std::optional<double> value = item.IfDouble();
        if (!value.has_value()) {
          return Invalid(std::string("response.approx.") + key +
                         ": expected an array of numbers");
        }
        out_vec->push_back(*value);
      }
      return std::nullopt;
    };
    if (auto err = read_doubles("fact_ranges", &info.fact_ranges)) return err;
    if (auto err = read_doubles("fact_half_widths", &info.fact_half_widths)) {
      return err;
    }
    if (const Json* array = approx->Find("fact_samples")) {
      const Json::Array* items = array->IfArray();
      if (items == nullptr) {
        return Invalid("response.approx.fact_samples: expected an array");
      }
      for (const Json& item : *items) {
        std::optional<uint64_t> value = item.IfUint64();
        if (!value.has_value()) {
          return Invalid("response.approx.fact_samples: expected integers");
        }
        info.fact_samples.push_back(static_cast<size_t>(*value));
      }
    }
    response.approx = std::move(info);
  }

  if (const Json* error = json.Find("error")) {
    if (error->IfObject() == nullptr) {
      return Invalid("response.error: expected a JSON object");
    }
    SvcError decoded_error;
    std::string code_name = shapley::ToString(SvcErrorCode::kEngineFailure);
    if (!ReadString(*error, "code", &code_name) ||
        !ReadString(*error, "message", &decoded_error.message) ||
        !ReadString(*error, "engine", &decoded_error.engine)) {
      return Invalid("response.error: malformed field types");
    }
    std::optional<SvcErrorCode> code = ParseSvcErrorCode(code_name);
    if (!code.has_value()) {
      return Invalid("response.error.code: unknown code \"" + code_name +
                     "\"");
    }
    decoded_error.code = *code;
    response.error = std::move(decoded_error);
  }

  if (const Json* stats = json.Find("stats")) {
    if (stats->IfObject() == nullptr) {
      return Invalid("response.stats: expected a JSON object");
    }
    if (!ReadDouble(*stats, "queue_ms", &response.stats.queue_ms) ||
        !ReadDouble(*stats, "exec_ms", &response.stats.exec_ms)) {
      return Invalid("response.stats: malformed field types");
    }
  }

  if (const Json* trace = json.Find("trace")) {
    std::optional<obs::RequestTrace> decoded_trace = DecodeTrace(*trace);
    if (!decoded_trace.has_value()) {
      return Invalid("response.trace: malformed span tree");
    }
    response.trace = std::move(*decoded_trace);
  }

  *out = std::move(response);
  return std::nullopt;
}

}  // namespace shapley::net
