#ifndef SHAPLEY_NET_HTTP_H_
#define SHAPLEY_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shapley::net {

/// POSIX-socket + HTTP/1.1 plumbing shared by the server (net/server.h)
/// and the client library (net/client.h). Deliberately minimal: exactly
/// the slice of HTTP the wire protocol needs — request/status lines,
/// headers, Content-Length and chunked bodies, keep-alive — implemented
/// over blocking sockets with poll()-based read timeouts. No TLS, no
/// compression, no external dependency.

/// Where a response goes. Handlers write through this interface so the
/// same handler code serves both transports: a plain blocking Socket
/// (SocketWriter) and the event loop's per-connection bounded output queue
/// (EventLoop's writer), which adds write-side backpressure and slow-reader
/// disconnection behind the same call.
class ResponseWriter {
 public:
  virtual ~ResponseWriter() = default;

  /// Writes (or queues) the whole buffer. False when the connection is
  /// gone — the caller abandons the response and ends the connection.
  virtual bool SendAll(std::string_view data) = 0;
};

/// RAII file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Writes the whole buffer (handling partial writes and EINTR); false on
  /// any hard error (the peer is gone — the caller drops the connection).
  bool SendAll(std::string_view data);

 private:
  int fd_ = -1;
};

/// ResponseWriter over a borrowed blocking Socket — the classic transport
/// (client-side tests, direct handler invocation).
class SocketWriter : public ResponseWriter {
 public:
  explicit SocketWriter(Socket* socket) : socket_(socket) {}
  bool SendAll(std::string_view data) override {
    return socket_->SendAll(data);
  }

 private:
  Socket* socket_;
};

/// Connects TCP to host:port (numeric or resolvable host). Invalid socket
/// + error message on failure.
Socket ConnectTcp(const std::string& host, uint16_t port, std::string* error);

/// Listening TCP socket bound to host:port (port 0 = ephemeral);
/// *bound_port receives the actual port. Invalid socket + message on
/// failure.
Socket ListenTcp(const std::string& host, uint16_t port, int backlog,
                 uint16_t* bound_port, std::string* error);

/// Buffered reader over a socket with a per-read-call timeout. All Read*
/// methods return false on timeout, EOF or error; Eof()/TimedOut()
/// distinguish the clean cases.
class SocketReader {
 public:
  SocketReader(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  /// One CRLF- (or bare-LF-) terminated line, terminator stripped; fails
  /// when the line exceeds `max_len` (header bombs must not grow memory).
  bool ReadLine(std::string* line, size_t max_len = 64 * 1024);
  /// Exactly `n` bytes appended to *out.
  bool ReadExact(size_t n, std::string* out);

  bool Eof() const { return eof_; }
  bool TimedOut() const { return timed_out_; }

 private:
  bool FillBuffer();

  int fd_;
  int timeout_ms_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
  bool timed_out_ = false;
};

using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup; nullptr when absent.
const std::string* FindHeader(const HttpHeaders& headers,
                              std::string_view name);

struct HttpRequest {
  std::string method;   // "GET", "POST"
  std::string target;   // "/v1/compute"
  std::string version;  // "HTTP/1.1"
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  int status = 0;
  std::string reason;
  HttpHeaders headers;
  std::string body;  // Filled by ReadHttpResponse; empty for chunked heads.
};

enum class HttpReadResult {
  kOk,
  kClosed,     ///< Clean EOF before the first byte of a message.
  kTimeout,    ///< The read timeout elapsed mid-message (or before one).
  kTooLarge,   ///< Declared or actual body beyond the caller's cap.
  kMalformed,  ///< Anything else that is not HTTP.
};

/// Reads one full request (head + Content-Length body; chunked requests are
/// kMalformed — the protocol never sends them). `max_body` caps the body.
HttpReadResult ReadHttpRequest(SocketReader* reader, size_t max_body,
                               HttpRequest* out);

/// Reads a status line + headers, then the body: Content-Length bodies are
/// read fully into out->body; a chunked body is left UNREAD (the caller
/// streams it with ReadChunk) and `*chunked` is set.
HttpReadResult ReadHttpResponse(SocketReader* reader, size_t max_body,
                                HttpResponse* out, bool* chunked);

/// One chunk of a chunked body into *chunk (empty + true on the terminal
/// 0-chunk, after consuming the trailing CRLF). False on malformed input.
bool ReadChunk(SocketReader* reader, size_t max_chunk, std::string* chunk,
               bool* done);

/// Serialized message head + body writers.
std::string SerializeRequest(const HttpRequest& request);
/// `extra_headers` land verbatim after the defaults. With content_length
/// (>= 0) the body is framed by Content-Length; the caller sends the body.
std::string SerializeResponseHead(int status, std::string_view content_type,
                                  long content_length, bool keep_alive,
                                  const HttpHeaders& extra_headers = {});
/// One chunk frame (size line + payload + CRLF); empty payload = terminal.
std::string ChunkFrame(std::string_view payload);

/// Standard reason phrase ("OK", "Bad Request", ...; "Unknown" otherwise).
const char* ReasonPhrase(int status);

/// Incremental (non-blocking) request parser for the event loop: bytes go
/// in as they arrive off the socket, one state-machine step per call — no
/// thread ever blocks waiting for the rest of a message. Enforces the same
/// strict grammar as the blocking ReadHttpRequest (they share helpers):
/// request lines are exactly three space-separated fields, sizes must
/// consume their full token, duplicate Content-Length headers are rejected,
/// Transfer-Encoding requests are rejected, header count and line length
/// are capped.
enum class HttpParseStatus {
  kNeedMore,   ///< Message incomplete; feed more bytes.
  kDone,       ///< One full request parsed; Take() it, then Reset().
  kMalformed,  ///< Not HTTP (or forbidden framing). Connection must close.
  kTooLarge,   ///< Declared body beyond max_body. Connection must close.
};

class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_body, size_t max_line = 64 * 1024)
      : max_body_(max_body), max_line_(max_line) {}

  /// Consumes as much of `data` as the current message needs; *consumed
  /// reports how many bytes were eaten THIS call (pipelined followers stay
  /// untouched in the caller's buffer). After kDone the parser stops
  /// eating until Reset().
  HttpParseStatus Consume(std::string_view data, size_t* consumed);

  /// The parsed request; valid exactly once after kDone.
  HttpRequest Take() { return std::move(request_); }

  /// Ready for the next pipelined request on the same connection.
  void Reset();

  /// True when a message is partially buffered (head bytes or an
  /// incomplete body) — a shutdown mid-message is a client cut off, not an
  /// idle keep-alive close.
  bool mid_message() const {
    return phase_ != Phase::kRequestLine || !line_.empty();
  }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kDone };

  HttpParseStatus ProcessLine();

  size_t max_body_;
  size_t max_line_;
  Phase phase_ = Phase::kRequestLine;
  std::string line_;
  size_t body_needed_ = 0;
  size_t header_count_ = 0;
  HttpRequest request_;
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_HTTP_H_
