#ifndef SHAPLEY_NET_HTTP_H_
#define SHAPLEY_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shapley::net {

/// POSIX-socket + HTTP/1.1 plumbing shared by the server (net/server.h)
/// and the client library (net/client.h). Deliberately minimal: exactly
/// the slice of HTTP the wire protocol needs — request/status lines,
/// headers, Content-Length and chunked bodies, keep-alive — implemented
/// over blocking sockets with poll()-based read timeouts. No TLS, no
/// compression, no external dependency.

/// RAII file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Writes the whole buffer (handling partial writes and EINTR); false on
  /// any hard error (the peer is gone — the caller drops the connection).
  bool SendAll(std::string_view data);

 private:
  int fd_ = -1;
};

/// Connects TCP to host:port (numeric or resolvable host). Invalid socket
/// + error message on failure.
Socket ConnectTcp(const std::string& host, uint16_t port, std::string* error);

/// Listening TCP socket bound to host:port (port 0 = ephemeral);
/// *bound_port receives the actual port. Invalid socket + message on
/// failure.
Socket ListenTcp(const std::string& host, uint16_t port, int backlog,
                 uint16_t* bound_port, std::string* error);

/// Buffered reader over a socket with a per-read-call timeout. All Read*
/// methods return false on timeout, EOF or error; Eof()/TimedOut()
/// distinguish the clean cases.
class SocketReader {
 public:
  SocketReader(int fd, int timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

  /// One CRLF- (or bare-LF-) terminated line, terminator stripped; fails
  /// when the line exceeds `max_len` (header bombs must not grow memory).
  bool ReadLine(std::string* line, size_t max_len = 64 * 1024);
  /// Exactly `n` bytes appended to *out.
  bool ReadExact(size_t n, std::string* out);

  bool Eof() const { return eof_; }
  bool TimedOut() const { return timed_out_; }

 private:
  bool FillBuffer();

  int fd_;
  int timeout_ms_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
  bool timed_out_ = false;
};

using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup; nullptr when absent.
const std::string* FindHeader(const HttpHeaders& headers,
                              std::string_view name);

struct HttpRequest {
  std::string method;   // "GET", "POST"
  std::string target;   // "/v1/compute"
  std::string version;  // "HTTP/1.1"
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  int status = 0;
  std::string reason;
  HttpHeaders headers;
  std::string body;  // Filled by ReadHttpResponse; empty for chunked heads.
};

enum class HttpReadResult {
  kOk,
  kClosed,     ///< Clean EOF before the first byte of a message.
  kTimeout,    ///< The read timeout elapsed mid-message (or before one).
  kTooLarge,   ///< Declared or actual body beyond the caller's cap.
  kMalformed,  ///< Anything else that is not HTTP.
};

/// Reads one full request (head + Content-Length body; chunked requests are
/// kMalformed — the protocol never sends them). `max_body` caps the body.
HttpReadResult ReadHttpRequest(SocketReader* reader, size_t max_body,
                               HttpRequest* out);

/// Reads a status line + headers, then the body: Content-Length bodies are
/// read fully into out->body; a chunked body is left UNREAD (the caller
/// streams it with ReadChunk) and `*chunked` is set.
HttpReadResult ReadHttpResponse(SocketReader* reader, size_t max_body,
                                HttpResponse* out, bool* chunked);

/// One chunk of a chunked body into *chunk (empty + true on the terminal
/// 0-chunk, after consuming the trailing CRLF). False on malformed input.
bool ReadChunk(SocketReader* reader, size_t max_chunk, std::string* chunk,
               bool* done);

/// Serialized message head + body writers.
std::string SerializeRequest(const HttpRequest& request);
/// `extra_headers` land verbatim after the defaults. With content_length
/// (>= 0) the body is framed by Content-Length; the caller sends the body.
std::string SerializeResponseHead(int status, std::string_view content_type,
                                  long content_length, bool keep_alive,
                                  const HttpHeaders& extra_headers = {});
/// One chunk frame (size line + payload + CRLF); empty payload = terminal.
std::string ChunkFrame(std::string_view payload);

/// Standard reason phrase ("OK", "Bad Request", ...; "Unknown" otherwise).
const char* ReasonPhrase(int status);

}  // namespace shapley::net

#endif  // SHAPLEY_NET_HTTP_H_
