#include "shapley/net/server.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "shapley/cluster/shard_map.h"
#include "shapley/common/version.h"
#include "shapley/net/codec.h"
#include "shapley/net/json.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/obs/metrics.h"
#include "shapley/obs/phase_metrics.h"
#include "shapley/obs/reqlog.h"
#include "shapley/obs/stats_json.h"
#include "shapley/obs/trace.h"

namespace shapley::net {

std::string FrontEndErrorBody(SvcErrorCode code, std::string message) {
  SvcResponse response;
  response.error = SvcError{code, std::move(message), ""};
  // No schema is needed: a front-end error has no facts to render.
  auto schema = Schema::Create();
  return EncodeResponse(response, *schema).Dump();
}

bool WriteJsonResponse(ResponseWriter* writer, int status,
                       const std::string& body, bool keep_alive) {
  return writer->SendAll(
      SerializeResponseHead(status, "application/json",
                            static_cast<long>(body.size()), keep_alive) +
      body);
}

// ---------------------------------------------------------------------------
// DebugDeck — always-on instruments and their /v1/debug/* renderings
// ---------------------------------------------------------------------------

RequestDigestKeys DigestKeysFor(const SvcRequest& request) {
  // The shard key is the canonical, process-independent identity of the
  // instance (cluster/shard_map.h) — the SAME key the router shards by, so
  // a backend's hot list and the router's fleet view name identical keys.
  RequestDigestKeys keys;
  keys.shard_key = cluster::ShardKeyFor(request);
  keys.shard_key_hash = cluster::StableHash64(keys.shard_key);
  return keys;
}

bool RecordServedRequest(DebugDeck* deck, const RequestDigestKeys& keys,
                         const std::string& target,
                         const SvcResponse& response, int status,
                         double wall_ms, const std::string& trace_id) {
  if (deck == nullptr) return false;
  obs::FlightDigest digest;
  digest.target = target;
  digest.shard_key_hash = keys.shard_key_hash;
  digest.engine = response.engine;
  digest.mode = shapley::ToString(response.mode);
  digest.strategy = response.approx.has_value()
                        ? response.approx->strategy
                        : (response.engine.empty() ? "" : "exact");
  digest.status = status;
  digest.latency_us = static_cast<uint64_t>(wall_ms * 1000.0);
  digest.samples = response.approx.has_value() ? response.approx->samples : 0;
  digest.cache_hits =
      response.approx.has_value() ? response.approx->memo_hits : 0;
  digest.trace_id = trace_id;
  deck->flight.Record(std::move(digest));
  if (!keys.shard_key.empty()) deck->hot_keys.Record(keys.shard_key);
  deck->hot_classes.Record(response.verdict.query_class.empty()
                               ? "unclassified"
                               : response.verdict.query_class);
  return deck->slow.ShouldCapture(wall_ms);
}

void CaptureSlow(DebugDeck* deck, const RequestDigestKeys& keys,
                 const std::string& target, std::string body,
                 const SvcResponse& response, int status, double wall_ms,
                 const std::string& trace_id) {
  if (deck == nullptr) return;
  obs::SlowEntry entry;
  entry.target = target;
  entry.body = std::move(body);
  entry.latency_ms = wall_ms;
  entry.status = status;
  entry.engine = response.engine;
  entry.mode = shapley::ToString(response.mode);
  entry.strategy = response.approx.has_value()
                       ? response.approx->strategy
                       : (response.engine.empty() ? "" : "exact");
  entry.shard_key_hash = keys.shard_key_hash;
  entry.trace_id = trace_id;
  deck->slow.Capture(std::move(entry));
}

std::string DebugFlightBody(const DebugDeck& deck) {
  Json entries = Json::Arr();
  for (const obs::FlightRecorder::Entry& entry : deck.flight.Snapshot()) {
    Json line;
    line.Set("seq", Json::Number(entry.seq));
    line.Set("t_ms", Json::Number(entry.digest.t_ms));
    line.Set("target", Json::Str(entry.digest.target));
    line.Set("shard_key_hash", Json::Number(entry.digest.shard_key_hash));
    line.Set("engine", Json::Str(entry.digest.engine));
    line.Set("mode", Json::Str(entry.digest.mode));
    line.Set("strategy", Json::Str(entry.digest.strategy));
    line.Set("status", Json::Number(int64_t{entry.digest.status}));
    line.Set("latency_us", Json::Number(entry.digest.latency_us));
    line.Set("samples", Json::Number(entry.digest.samples));
    line.Set("cache_hits", Json::Number(entry.digest.cache_hits));
    line.Set("trace_id", Json::Str(entry.digest.trace_id));
    entries.Push(std::move(line));
  }
  Json body;
  body.Set("uptime_ms", Json::Number(deck.flight.UptimeMs()));
  body.Set("capacity", Json::Number(uint64_t{deck.flight.capacity()}));
  body.Set("recorded", Json::Number(deck.flight.total_recorded()));
  body.Set("dropped", Json::Number(deck.flight.dropped()));
  body.Set("entries", std::move(entries));
  return body.Dump();
}

std::string DebugHotBody(const DebugDeck& deck, const std::string& role) {
  Json sketches;
  sketches.Set("shard_key",
               obs::HeavySummaryJson(deck.hot_keys.Summary()));
  sketches.Set("query_class",
               obs::HeavySummaryJson(deck.hot_classes.Summary()));
  Json body;
  body.Set("role", Json::Str(role));
  body.Set("sketches", std::move(sketches));
  return body.Dump();
}

std::string DebugSlowBody(const DebugDeck& deck) {
  Json entries = Json::Arr();
  for (const obs::SlowEntry& entry : deck.slow.Snapshot()) {
    entries.Push(obs::SlowEntryJson(entry));
  }
  Json body;
  body.Set("threshold_ms", Json::Number(deck.slow.threshold_ms()));
  body.Set("capacity", Json::Number(uint64_t{deck.slow.capacity()}));
  body.Set("captured", Json::Number(deck.slow.total_captured()));
  body.Set("entries", std::move(entries));
  return body.Dump();
}

void RegisterDebugDeckMetrics(obs::MetricsRegistry* metrics, DebugDeck* deck,
                              const std::string& role) {
  metrics->AddCollector([metrics, deck, role] {
    const obs::Labels role_labels{{"role", role}};
    metrics
        ->GetCounter("shapley_flight_recorded_total",
                     "Request digests recorded by the flight recorder",
                     role_labels)
        ->Set(deck->flight.total_recorded());
    metrics
        ->GetCounter("shapley_flight_dropped_total",
                     "Digests overwritten before any snapshot (ring wrap)",
                     role_labels)
        ->Set(deck->flight.dropped());
    metrics
        ->GetGauge("shapley_flight_capacity",
                   "Digest slots of the flight ring", role_labels)
        ->Set(static_cast<double>(deck->flight.capacity()));
    auto expose_sketch = [&](const char* name,
                             const obs::SpaceSaving& sketch) {
      const obs::Labels labels{{"role", role}, {"sketch", name}};
      metrics
          ->GetCounter("shapley_heavy_recorded_total",
                       "Keys recorded into the heavy-hitter sketch", labels)
          ->Set(sketch.total());
      metrics
          ->GetCounter("shapley_heavy_evictions_total",
                       "Space-Saving admissions that displaced a tracked "
                       "key",
                       labels)
          ->Set(sketch.evictions());
      metrics
          ->GetGauge("shapley_heavy_keys_tracked",
                     "Keys currently tracked (≤ k)", labels)
          ->Set(static_cast<double>(sketch.keys_tracked()));
    };
    expose_sketch("shard_key", deck->hot_keys);
    expose_sketch("query_class", deck->hot_classes);
    metrics
        ->GetCounter("shapley_slowlog_captured_total",
                     "Requests past the slow threshold whose bodies were "
                     "captured",
                     role_labels)
        ->Set(deck->slow.total_captured());
    metrics
        ->GetGauge("shapley_slowlog_threshold_ms",
                   "Latency at or above which a request is captured",
                   role_labels)
        ->Set(deck->slow.threshold_ms());
    metrics
        ->GetGauge(
            "shapley_slowlog_entries",
            "Captured outliers resident in the slow-log ring", role_labels)
        ->Set(static_cast<double>(
            std::min<uint64_t>(deck->slow.total_captured(),
                               deck->slow.capacity())));
  });
}

// ---------------------------------------------------------------------------
// ServiceHandler
// ---------------------------------------------------------------------------

bool ServiceHandler::Handle(ResponseWriter* writer, const HttpRequest& request,
                            bool keep_alive, const ServerCounters& counters) {
  if (request.target == "/v1/compute") {
    if (request.method != "POST") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use POST on /v1/compute"),
                               keep_alive);
    }
    return HandleCompute(writer, request, keep_alive);
  }
  if (request.target == "/v1/batch") {
    if (request.method != "POST") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use POST on /v1/batch"),
                               keep_alive);
    }
    return HandleBatch(writer, request, keep_alive);
  }
  if (request.target == "/v1/engines") {
    if (request.method != "GET") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on /v1/engines"),
                               keep_alive);
    }
    return HandleEngines(writer, keep_alive);
  }
  if (request.target == "/v1/stats") {
    if (request.method != "GET") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on /v1/stats"),
                               keep_alive);
    }
    return HandleStats(writer, keep_alive, counters);
  }
  if (request.target == "/v1/debug/flight" ||
      request.target == "/v1/debug/hot" ||
      request.target == "/v1/debug/slow") {
    if (request.method != "GET") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on " +
                                                     request.target),
                               keep_alive);
    }
    return HandleDebug(writer, request, keep_alive);
  }
  return WriteJsonResponse(
      writer, 404,
      FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                        "unknown endpoint " + request.target),
      keep_alive);
}

bool ServiceHandler::HandleDebug(ResponseWriter* writer,
                                 const HttpRequest& request, bool keep_alive) {
  if (deck_ == nullptr) {
    return WriteJsonResponse(
        writer, 404,
        FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                          "no debug deck attached to this handler"),
        keep_alive);
  }
  std::string body;
  if (request.target == "/v1/debug/flight") {
    body = DebugFlightBody(*deck_);
  } else if (request.target == "/v1/debug/hot") {
    body = DebugHotBody(*deck_, "backend");
  } else {
    body = DebugSlowBody(*deck_);
  }
  return WriteJsonResponse(writer, 200, body, keep_alive);
}

void ServiceHandler::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  // Deep-path phase histograms (fed by traced requests) are registered
  // eagerly so the families are grep-able on a zero-traffic scrape.
  obs::RegisterPhaseMetrics(metrics_);
  // Per-table oracle-cache traffic, scraped straight off the cache's
  // lock-free counters (names disjoint from the shapley_service_cache_*
  // aggregates below, which stay for dashboard continuity).
  if (OracleCache* cache = service_->cache(); cache != nullptr) {
    obs::MetricsRegistry* cache_registry = metrics_;
    metrics_->AddCollector([cache, cache_registry] {
      const OracleCache::Stats stats = cache->PerTableStats();
      auto expose = [cache_registry](const char* table,
                                     const OracleCache::TableStats& t) {
        const obs::Labels labels = {{"table", table}};
        cache_registry
            ->GetCounter("shapley_cache_hits_total",
                         "Oracle-cache hits by table", labels)
            ->Set(t.hits);
        cache_registry
            ->GetCounter("shapley_cache_misses_total",
                         "Oracle-cache misses by table", labels)
            ->Set(t.misses);
        cache_registry
            ->GetCounter("shapley_cache_inserts_total",
                         "Oracle-cache entries made resident, by table",
                         labels)
            ->Set(t.inserts);
        cache_registry
            ->GetCounter("shapley_cache_evictions_total",
                         "Oracle-cache LRU evictions by table", labels)
            ->Set(t.evictions);
      };
      expose("counts", stats.counts);
      expose("circuits", stats.circuits);
      expose("memos", stats.memos);
    });
  }
  // The ServiceStats snapshot crosses into the exposition at scrape time:
  // counters mirror via Set() from ONE snapshot, so a scrape's components
  // are as coherent as Stats() itself, and the conservation gauge below is
  // computed from the same snapshot the components came from.
  ShapleyService* service = service_;
  obs::MetricsRegistry* registry = metrics_;
  metrics_->AddCollector([service, registry] {
    const ServiceStats s = service->Stats();
    registry
        ->GetCounter("shapley_service_requests_submitted_total",
                     "Requests accepted by the service")
        ->Set(s.requests_submitted);
    registry
        ->GetCounter("shapley_service_requests_completed_total",
                     "Requests finished successfully")
        ->Set(s.requests_completed);
    registry
        ->GetCounter("shapley_service_requests_failed_total",
                     "Requests finished with a structured error")
        ->Set(s.requests_failed);
    registry
        ->GetGauge("shapley_service_requests_inflight",
                   "Requests accepted but not yet finished")
        ->Set(static_cast<double>(s.requests_inflight));
    registry
        ->GetCounter("shapley_service_verdict_cache_hits_total",
                     "Classifications served from the verdict cache")
        ->Set(s.verdict_cache_hits);
    registry
        ->GetCounter("shapley_service_verdict_cache_misses_total",
                     "Classifications computed fresh")
        ->Set(s.verdict_cache_misses);
    registry
        ->GetGauge("shapley_service_pool_threads",
                   "Worker threads of the service pool")
        ->Set(static_cast<double>(s.pool_threads));
    registry
        ->GetCounter("shapley_service_pool_tasks_executed_total",
                     "Tasks executed by the service pool")
        ->Set(s.pool_tasks_executed);
    registry
        ->GetGauge("shapley_service_cache_entries",
                   "Entries resident in the shared oracle cache")
        ->Set(static_cast<double>(s.cache_entries));
    registry
        ->GetGauge("shapley_service_cache_bytes",
                   "Bytes resident in the shared oracle cache")
        ->Set(static_cast<double>(s.cache_bytes));
    registry
        ->GetCounter("shapley_service_cache_hits_total",
                     "Oracle-cache hits")
        ->Set(s.cache_hits);
    registry
        ->GetCounter("shapley_service_cache_misses_total",
                     "Oracle-cache misses")
        ->Set(s.cache_misses);
    registry
        ->GetCounter("shapley_service_cache_evictions_total",
                     "Oracle-cache evictions")
        ->Set(s.cache_evictions);
    registry
        ->GetGauge("shapley_service_stats_conservation_error",
                   "submitted - (completed + failed + inflight); 0 at "
                   "quiescence (self-check, from one snapshot)")
        ->Set(static_cast<double>(obs::StatsConservationError(s)));
  });
}

void ServiceHandler::ObserveArrival() {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetHistogram("shapley_queue_depth",
                     "Service inflight requests sampled at request arrival",
                     obs::DepthBuckets())
      ->Observe(static_cast<double>(service_->requests_inflight()));
}

void ServiceHandler::ObserveRequest(const SvcResponse& response,
                                    double wall_ms) {
  if (metrics_ == nullptr) return;
  // Labels describe what actually SERVED the request: "none" when no
  // engine ran (classify-only, refused), "exact" when the answer carries
  // no approximation contract.
  const std::string engine = response.engine.empty() ? "none"
                                                     : response.engine;
  const std::string strategy =
      response.approx.has_value() ? response.approx->strategy : "exact";
  metrics_
      ->GetHistogram("shapley_request_latency_ms",
                     "Wall time from request decode to response encode",
                     obs::LatencyBucketsMs(),
                     {{"engine", engine},
                      {"mode", shapley::ToString(response.mode)},
                      {"strategy", strategy}})
      ->Observe(wall_ms);
}

bool ServiceHandler::HandleCompute(ResponseWriter* writer,
                                   const HttpRequest& request,
                                   bool keep_alive) {
  const auto arrival = std::chrono::steady_clock::now();
  const obs::SpanTimer wall_timer;
  obs::SpanTimer decode_timer;
  std::string parse_error;
  std::optional<Json> json = Json::Parse(request.body, &parse_error);
  if (!json.has_value()) {
    return WriteJsonResponse(writer, 400,
                             FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "bad JSON: " + parse_error),
                             keep_alive);
  }
  DecodedRequest decoded;
  if (std::optional<SvcError> error = DecodeRequest(*json, &decoded)) {
    SvcResponse response;
    response.error = std::move(error);
    auto schema = Schema::Create();
    return WriteJsonResponse(writer, HttpStatusFor(response.error->code),
                             EncodeResponse(response, *schema).Dump(),
                             keep_alive);
  }
  const double decode_ms = decode_timer.ElapsedMs();
  // Digest identity comes off the decoded request NOW — Compute consumes
  // the request, and the always-on instruments record after it returns.
  const RequestDigestKeys digest_keys =
      deck_ != nullptr ? DigestKeysFor(decoded.request) : RequestDigestKeys{};
  ObserveArrival();
  // Recorder allocated ONLY for traced requests — the untraced hot path
  // carries a null pointer end to end. The root span is backdated to the
  // request's arrival so the decode measurement (taken before we knew the
  // request wanted tracing) slots in with honest offsets; the context
  // comes off the wire when the router propagated one, else is derived
  // deterministically from the request bytes.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (decoded.request.trace) {
    obs::TraceContext context = decoded.request.trace_context;
    if (!context.valid()) context = obs::TraceContext::Derive(request.body);
    recorder =
        std::make_unique<obs::TraceRecorder>("backend", context, arrival);
    recorder->AddClosed("decode", 0.0, decode_ms);
    decoded.request.recorder = recorder.get();
  }
  // Blocking Compute on the dispatch-pool thread: the service's pool does
  // the fan-out; this thread is exactly the client's wait.
  SvcResponse response = service_->Compute(std::move(decoded.request));
  const int status =
      response.ok() ? 200 : HttpStatusFor(response.error->code);
  if (recorder != nullptr) recorder->Begin("encode");
  Json body = EncodeResponse(response, *decoded.schema);
  if (recorder != nullptr) {
    // The encode span can only close AFTER encoding — the finished tree is
    // patched into the already-built body, and its spans feed the
    // aggregate phase histograms so /metrics and the trace block agree.
    recorder->End();
    const obs::RequestTrace trace = recorder->Finish();
    if (metrics_ != nullptr) obs::ObserveTracePhases(metrics_, trace.root);
    SetTraceBlock(&body, trace);
  }
  const double wall_ms = wall_timer.ElapsedMs();
  ObserveRequest(response, wall_ms);
  const std::string trace_id =
      recorder != nullptr ? recorder->context().TraceIdHex() : "";
  if (RecordServedRequest(deck_, digest_keys, request.target, response,
                          status, wall_ms, trace_id)) {
    CaptureSlow(deck_, digest_keys, request.target, request.body, response,
                status, wall_ms, trace_id);
  }
  return WriteJsonResponse(writer, status, body.Dump(), keep_alive);
}

bool ServiceHandler::HandleBatch(ResponseWriter* writer,
                                 const HttpRequest& request, bool keep_alive) {
  std::string parse_error;
  std::optional<Json> json = Json::Parse(request.body, &parse_error);
  if (!json.has_value()) {
    return WriteJsonResponse(writer, 400,
                             FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "bad JSON: " + parse_error),
                             keep_alive);
  }
  const Json* requests = json->Find("requests");
  const Json::Array* items =
      requests != nullptr ? requests->IfArray() : nullptr;
  if (items == nullptr) {
    return WriteJsonResponse(writer, 400,
                             FrontEndErrorBody(
                                 SvcErrorCode::kInvalidRequest,
                                 "batch: expected {\"requests\": [...]}"),
                             keep_alive);
  }

  // Decode everything first; per-request decode failures become tagged
  // error lines in the stream (one bad request must not sink its batch).
  const obs::SpanTimer batch_timer;
  struct Slot {
    std::shared_ptr<Schema> schema;
    std::future<SvcResponse> future;
    std::optional<SvcResponse> immediate;  // Decode failures.
    std::unique_ptr<obs::TraceRecorder> recorder;  // Traced items only.
    RequestDigestKeys digest_keys;  // Taken before the request moves.
    double decode_ms = 0.0;
    bool streamed = false;
  };
  std::vector<Slot> slots(items->size());
  // The service pool holds a raw pointer INTO each slot (the recorder) for
  // as long as its compute runs, so the slots must outlive every submitted
  // future — including on the early-return paths where the connection died
  // mid-batch. This guard drains whatever is still in flight before the
  // vector can be destroyed. (future.get() invalidates the future, so only
  // genuinely outstanding computes are waited on.)
  struct DrainInFlight {
    std::vector<Slot>* slots;
    ~DrainInFlight() {
      for (Slot& slot : *slots) {
        if (slot.future.valid() && !slot.streamed) slot.future.wait();
      }
    }
  } drain{&slots};
  for (size_t i = 0; i < items->size(); ++i) {
    const auto slot_arrival = std::chrono::steady_clock::now();
    obs::SpanTimer decode_timer;
    DecodedRequest decoded;
    if (std::optional<SvcError> error = DecodeRequest((*items)[i], &decoded)) {
      SvcResponse response;
      response.error = std::move(error);
      slots[i].schema = Schema::Create();
      slots[i].immediate = std::move(response);
    } else {
      slots[i].decode_ms = decode_timer.ElapsedMs();
      slots[i].schema = decoded.schema;
      if (decoded.request.trace) {
        obs::TraceContext context = decoded.request.trace_context;
        if (!context.valid()) {
          context = obs::TraceContext::Derive((*items)[i].Dump());
        }
        slots[i].recorder = std::make_unique<obs::TraceRecorder>(
            "backend", context, slot_arrival);
        slots[i].recorder->AddClosed("decode", 0.0, slots[i].decode_ms);
        decoded.request.recorder = slots[i].recorder.get();
      }
      if (deck_ != nullptr) {
        slots[i].digest_keys = DigestKeysFor(decoded.request);
      }
      ObserveArrival();
      slots[i].future = service_->Submit(std::move(decoded.request));
    }
  }

  // Stream in COMPLETION order: chunked ndjson, each line tagged "id".
  if (!writer->SendAll(SerializeResponseHead(
          200, "application/x-ndjson", /*content_length=*/-1, keep_alive))) {
    return false;
  }
  auto stream_one = [&](size_t i, SvcResponse& response) {
    obs::TraceRecorder* recorder = slots[i].recorder.get();
    if (recorder != nullptr) recorder->Begin("encode");
    Json line = EncodeResponse(response, *slots[i].schema);
    if (recorder != nullptr) {
      recorder->End();
      const obs::RequestTrace trace = recorder->Finish();
      if (metrics_ != nullptr) obs::ObserveTracePhases(metrics_, trace.root);
      SetTraceBlock(&line, trace);
    }
    // Per-slot latency is CLIENT-OBSERVED: batch arrival to this line
    // streaming out (queueing behind siblings included).
    const double item_wall_ms = batch_timer.ElapsedMs();
    ObserveRequest(response, item_wall_ms);
    const int item_status =
        response.ok() ? 200 : HttpStatusFor(response.error->code);
    const std::string trace_id =
        slots[i].recorder != nullptr
            ? slots[i].recorder->context().TraceIdHex()
            : "";
    // A slow batch ITEM captures under /v1/compute with its own single-
    // request body ((*items)[i] re-emits the item's bytes verbatim — raw
    // number tokens and member order are preserved), so the captured
    // outlier replays standalone, without dragging its batch siblings in.
    if (RecordServedRequest(deck_, slots[i].digest_keys, "/v1/compute",
                            response, item_status, item_wall_ms, trace_id)) {
      CaptureSlow(deck_, slots[i].digest_keys, "/v1/compute",
                  (*items)[i].Dump(), response, item_status, item_wall_ms,
                  trace_id);
    }
    // The id leads the object so a human tailing the stream sees it first.
    Json tagged;
    tagged.Set("id", Json::Number(uint64_t{i}));
    for (auto& [key, value] : *line.IfObject()) {
      tagged.Set(key, value);
    }
    return writer->SendAll(ChunkFrame(tagged.Dump() + "\n"));
  };

  size_t remaining = slots.size();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].immediate.has_value()) {
      if (!stream_one(i, *slots[i].immediate)) return false;
      slots[i].streamed = true;
      --remaining;
    }
  }
  while (remaining > 0) {
    bool progressed = false;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].streamed) continue;
      if (slots[i].future.wait_for(std::chrono::milliseconds(0)) ==
          std::future_status::ready) {
        SvcResponse response = slots[i].future.get();
        if (!stream_one(i, response)) return false;
        slots[i].streamed = true;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed && remaining > 0) {
      // Nothing ready: block on the first outstanding future instead of
      // spinning. 25 ms keeps completion-order latency invisible while a
      // minutes-long instance costs ~40 wake-ups/s, not ~500.
      for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].streamed) {
          slots[i].future.wait_for(std::chrono::milliseconds(25));
          break;
        }
      }
    }
  }
  return writer->SendAll(ChunkFrame(""));  // Terminal chunk.
}

bool ServiceHandler::HandleEngines(ResponseWriter* writer, bool keep_alive) {
  Json engines = Json::Arr();
  const EngineRegistry& registry = service_->registry();
  for (const std::string& name : registry.Names()) {
    const EngineRegistry::Entry* entry = registry.Find(name);
    Json engine;
    engine.Set("name", Json::Str(entry->name));
    engine.Set("description", Json::Str(entry->description));
    Json caps;
    caps.Set("all_query_classes", Json::Bool(entry->caps.all_query_classes));
    caps.Set("monotone_only", Json::Bool(entry->caps.monotone_only));
    caps.Set("hierarchical_sjf_cq_only",
             Json::Bool(entry->caps.hierarchical_sjf_cq_only));
    caps.Set("approximate", Json::Bool(entry->caps.approximate));
    if (entry->caps.max_endogenous != std::numeric_limits<size_t>::max()) {
      caps.Set("max_endogenous",
               Json::Number(uint64_t{entry->caps.max_endogenous}));
    }
    if (!entry->caps.error_model.empty()) {
      caps.Set("error_model", Json::Str(entry->caps.error_model));
    }
    engine.Set("caps", std::move(caps));
    engines.Push(std::move(engine));
  }
  Json body;
  body.Set("engines", std::move(engines));
  return WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
}

bool ServiceHandler::HandleStats(ResponseWriter* writer, bool keep_alive,
                                 const ServerCounters& counters) {
  // Serialization goes through the ONE shared stats codec (obs/stats_json)
  // — the same path the router's fleet-sum and ExecStats::ToJson use, with
  // the key order pinned byte-stable by a test.
  Json body;
  body.Set("service", obs::ServiceStatsJson(service_->Stats()));
  body.Set("server", obs::ServerCountersJson(counters));
  return WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(ShapleyService* service, ServerOptions options)
    : owned_handler_(std::make_unique<ServiceHandler>(service)),
      handler_(owned_handler_.get()),
      options_(std::move(options)) {
  SetUpMetrics();
  auto* service_handler = static_cast<ServiceHandler*>(owned_handler_.get());
  service_handler->set_metrics(metrics_);
  // The always-on debug deck: flight ring + sketches + slow-log, recorded
  // on every request this handler serves and scraped as the
  // shapley_flight_* / shapley_heavy_* / shapley_slowlog_* families.
  owned_deck_ = std::make_unique<DebugDeck>(options_);
  service_handler->set_debug(owned_deck_.get());
  RegisterDebugDeckMetrics(metrics_, owned_deck_.get(), options_.role);
}

HttpServer::HttpServer(HttpHandler* handler, ServerOptions options)
    : handler_(handler), options_(std::move(options)) {
  SetUpMetrics();
}

void HttpServer::SetUpMetrics() {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  metrics_
      ->GetGauge("shapley_build_info",
                 "Build identity; the value is always 1",
                 {{"version", kShapleyVersion}, {"role", options_.role}})
      ->Set(1.0);
  // Transport counters mirror into the scrape labeled by role, so a router
  // and a backend sharing a dashboard produce DISJOINT series even though
  // the family names coincide.
  metrics_->AddCollector([this] {
    const ServerCounters c = counters();
    const obs::Labels role{{"role", options_.role}};
    metrics_
        ->GetCounter("shapley_server_connections_accepted_total",
                     "Connections accepted by the HTTP front", role)
        ->Set(c.connections_accepted);
    metrics_
        ->GetCounter("shapley_server_connections_rejected_total",
                     "Connections refused at the connection limit", role)
        ->Set(c.connections_rejected);
    metrics_
        ->GetGauge("shapley_server_connections_live",
                   "Connections currently open", role)
        ->Set(static_cast<double>(c.connections_live));
    metrics_
        ->GetCounter("shapley_server_requests_served_total",
                     "HTTP requests served (all endpoints)", role)
        ->Set(c.requests_served);
  });
  // The readiness loop's own counters: wake-ups, dispatch depth,
  // backpressure events — the signals that distinguish "the loop is busy"
  // from "the pool is busy" from "a peer is not reading".
  metrics_->AddCollector([this] {
    EventLoop* loop = loop_ptr_.load();
    if (loop == nullptr) return;
    const EventLoopStats s = loop->stats();
    const obs::Labels role{{"role", options_.role}};
    metrics_
        ->GetCounter("shapley_server_eventloop_wakeups_total",
                     "Poller returns of the event loop", role)
        ->Set(s.wakeups);
    metrics_
        ->GetCounter("shapley_server_eventloop_events_total",
                     "Readiness events handled by the event loop", role)
        ->Set(s.events);
    metrics_
        ->GetCounter("shapley_server_eventloop_requests_parsed_total",
                     "Full HTTP requests parsed off the wire", role)
        ->Set(s.requests);
    metrics_
        ->GetCounter("shapley_server_eventloop_pipelined_requests_total",
                     "Requests served from buffered bytes with no new read "
                     "event (keep-alive pipelining)",
                     role)
        ->Set(s.pipelined);
    metrics_
        ->GetCounter("shapley_server_eventloop_dispatches_total",
                     "Requests handed to the dispatch pool", role)
        ->Set(s.dispatches);
    metrics_
        ->GetCounter("shapley_server_eventloop_deferred_writes_total",
                     "Response writes that hit EAGAIN and queued for the "
                     "loop to drain",
                     role)
        ->Set(s.deferred_writes);
    metrics_
        ->GetCounter("shapley_server_eventloop_slow_reader_disconnects_total",
                     "Connections cut for making no write progress with "
                     "queued output",
                     role)
        ->Set(s.slow_reader_disconnects);
    metrics_
        ->GetCounter("shapley_server_eventloop_read_timeouts_total",
                     "Connections cut at the idle-read timeout", role)
        ->Set(s.read_timeouts);
    metrics_
        ->GetGauge("shapley_server_eventloop_dispatch_inflight",
                   "Requests dispatched to the pool and not yet completed",
                   role)
        ->Set(static_cast<double>(s.dispatch_inflight));
    metrics_
        ->GetGauge("shapley_server_eventloop_output_queue_bytes",
                   "Bytes queued across all per-connection output queues",
                   role)
        ->Set(static_cast<double>(s.output_queue_bytes));
    metrics_
        ->GetGauge("shapley_server_eventloop_using_epoll",
                   "1 when the epoll backend multiplexes this server, 0 for "
                   "the poll() fallback",
                   role)
        ->Set(s.using_epoll ? 1.0 : 0.0);
  });
}

HttpServer::~HttpServer() {
  Stop();
  loop_ptr_.store(nullptr);
}

void HttpServer::Start() {
  std::string error;
  Socket listener = ListenTcp(options_.host, options_.port, /*backlog=*/128,
                              &port_, &error);
  if (!listener.valid()) {
    throw std::runtime_error("HttpServer: " + error);
  }
  loop_ptr_.store(nullptr);
  loop_.reset();
  size_t threads = options_.dispatch_threads;
  if (threads == 0) {
    // Dispatch workers are thin waiters (they block on service futures),
    // so over-provisioning relative to cores is the POINT: request
    // concurrency must not be serialized on a small machine.
    threads = std::max<size_t>(
        8, static_cast<size_t>(std::thread::hardware_concurrency()));
  }
  dispatch_pool_ = std::make_unique<ThreadPool>(threads);

  EventLoopOptions loop_options;
  loop_options.max_connections = options_.max_connections;
  loop_options.read_timeout_ms = options_.read_timeout_ms;
  loop_options.write_stall_timeout_ms = options_.write_stall_timeout_ms;
  loop_options.max_output_queue_bytes = options_.max_output_queue_bytes;
  loop_options.max_body_bytes = options_.max_body_bytes;
  loop_options.force_poll = options_.force_poll;
  // The loop answers protocol-level failures from prebuilt buffers — no
  // allocation, no handler, no pool round-trip.
  {
    const std::string body = FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "malformed HTTP request");
    loop_options.response_400 =
        SerializeResponseHead(400, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }
  {
    // capacity-exceeded, matching the 413 transport status and the README
    // table ("body over the server limit").
    const std::string body = FrontEndErrorBody(
        SvcErrorCode::kCapacityExceeded,
        "request body exceeds the server limit of " +
            std::to_string(options_.max_body_bytes) + " bytes");
    loop_options.response_413 =
        SerializeResponseHead(413, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }
  {
    const std::string body = FrontEndErrorBody(
        SvcErrorCode::kCapacityExceeded,
        "server at its connection limit (" +
            std::to_string(options_.max_connections) + ") — retry");
    loop_options.response_503 =
        SerializeResponseHead(503, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }
  {
    // A connection idle past the read timeout with a PARTIAL request gets
    // told so before the close; an idle keep-alive connection between
    // requests still closes silently (event_loop.cc SweepTimeouts).
    const std::string body = FrontEndErrorBody(
        SvcErrorCode::kRequestTimeout,
        "no complete request within the read timeout of " +
            std::to_string(options_.read_timeout_ms) + " ms");
    loop_options.response_408 =
        SerializeResponseHead(408, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }

  loop_ = std::make_unique<EventLoop>(
      std::move(loop_options),
      [this](uint64_t conn_id, HttpRequest&& request,
             std::shared_ptr<ConnWriter> writer) {
        return OnRequest(conn_id, std::move(request), std::move(writer));
      });
  running_.store(true);
  stopping_.store(false);
  loop_->Start(std::move(listener));
  loop_ptr_.store(loop_.get());
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Order matters: the loop's drain needs the pool alive (dispatched
  // requests finish and report completion); the pool's destructor then
  // joins workers that have nothing left to do.
  if (loop_ != nullptr) loop_->Stop();
  dispatch_pool_.reset();
}

void HttpServer::Abort() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Crash simulation: the loop shutdowns every connection RDWR, so the
  // in-flight response WRITE fails too — a client streaming a batch sees
  // the connection die mid-stream exactly as if the process had been
  // killed.
  if (loop_ != nullptr) loop_->Abort();
  dispatch_pool_.reset();
}

ServerCounters HttpServer::counters() const {
  ServerCounters counters;
  if (EventLoop* loop = loop_ptr_.load()) {
    const EventLoopStats s = loop->stats();
    counters.connections_accepted = s.accepted;
    counters.connections_rejected = s.rejected;
    counters.connections_live = s.connections_live;
  }
  counters.requests_served = served_.load();
  return counters;
}

EventLoop::Disposition HttpServer::OnRequest(
    uint64_t conn_id, HttpRequest&& request,
    std::shared_ptr<ConnWriter> writer) {
  // The drain contract: a request PARSED before Stop() is served and its
  // response written; the connection then closes instead of re-arming.
  const bool draining = stopping_.load();
  const std::string* connection = FindHeader(request.headers, "Connection");
  const bool client_wants_close =
      connection != nullptr &&
      (*connection == "close" || *connection == "Close");
  const bool keep_alive =
      !draining && !client_wants_close && request.version == "HTTP/1.1";

  // Counted BEFORE the response is written: a client that has read its
  // response (and then asks /v1/stats, or a test that asserts counters)
  // must already see this request in the tally.
  served_.fetch_add(1, std::memory_order_relaxed);

  // Record/replay capture: the VERBATIM body, before any decode — a
  // malformed request must replay to the identical error response.
  if (options_.request_log != nullptr && request.method == "POST") {
    options_.request_log->Append(request.target, request.body);
  }

  if (request.target == "/healthz") {
    // Answered ON THE LOOP THREAD: a router probing a backend's health
    // must get a response even when the dispatch pool (or the service
    // behind it) is busy to the gills.
    std::string wire;
    if (request.method != "GET") {
      const std::string body = FrontEndErrorBody(
          SvcErrorCode::kInvalidRequest, "use GET on /healthz");
      wire = SerializeResponseHead(405, "application/json",
                                   static_cast<long>(body.size()),
                                   keep_alive) +
             body;
    } else {
      Json body;
      body.Set("status", Json::Str("ok"));
      body.Set("version", Json::Str(kShapleyVersion));
      body.Set("role", Json::Str(options_.role));
      const std::string text = body.Dump();
      wire = SerializeResponseHead(200, "application/json",
                                   static_cast<long>(text.size()),
                                   keep_alive) +
             text;
    }
    loop_->Respond(conn_id, wire);
    return keep_alive ? EventLoop::Disposition::kInlineKeep
                      : EventLoop::Disposition::kInlineClose;
  }
  if (request.target == "/metrics") {
    // Answered at the transport layer like /healthz: a scrape must work
    // even when the handler (or the fleet behind a router) is wedged.
    std::string wire;
    if (request.method != "GET") {
      const std::string body = FrontEndErrorBody(
          SvcErrorCode::kInvalidRequest, "use GET on /metrics");
      wire = SerializeResponseHead(405, "application/json",
                                   static_cast<long>(body.size()),
                                   keep_alive) +
             body;
    } else {
      const std::string text = metrics_->RenderPrometheus();
      wire = SerializeResponseHead(200, "text/plain; version=0.0.4",
                                   static_cast<long>(text.size()),
                                   keep_alive) +
             text;
    }
    loop_->Respond(conn_id, wire);
    return keep_alive ? EventLoop::Disposition::kInlineKeep
                      : EventLoop::Disposition::kInlineClose;
  }

  // Everything else runs on the dispatch pool; the worker reports back to
  // the loop when the response is fully produced (possibly still queued in
  // the connection's output buffer — the loop drains that part).
  auto shared_request = std::make_shared<HttpRequest>(std::move(request));
  dispatch_pool_->Submit(
      [this, conn_id, writer, shared_request, keep_alive] {
        bool alive = false;
        try {
          alive = handler_->Handle(writer.get(), *shared_request, keep_alive,
                                   counters());
        } catch (...) {
          alive = false;  // A throwing handler must not take the loop down.
        }
        loop_->CompleteDispatch(conn_id, alive && keep_alive);
      });
  return EventLoop::Disposition::kDispatched;
}

}  // namespace shapley::net
