#include "shapley/net/server.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "shapley/common/version.h"
#include "shapley/net/codec.h"
#include "shapley/net/json.h"
#include "shapley/exec/oracle_cache.h"
#include "shapley/obs/metrics.h"
#include "shapley/obs/phase_metrics.h"
#include "shapley/obs/reqlog.h"
#include "shapley/obs/stats_json.h"
#include "shapley/obs/trace.h"

namespace shapley::net {

std::string FrontEndErrorBody(SvcErrorCode code, std::string message) {
  SvcResponse response;
  response.error = SvcError{code, std::move(message), ""};
  // No schema is needed: a front-end error has no facts to render.
  auto schema = Schema::Create();
  return EncodeResponse(response, *schema).Dump();
}

bool WriteJsonResponse(ResponseWriter* writer, int status,
                       const std::string& body, bool keep_alive) {
  return writer->SendAll(
      SerializeResponseHead(status, "application/json",
                            static_cast<long>(body.size()), keep_alive) +
      body);
}

// ---------------------------------------------------------------------------
// ServiceHandler
// ---------------------------------------------------------------------------

bool ServiceHandler::Handle(ResponseWriter* writer, const HttpRequest& request,
                            bool keep_alive, const ServerCounters& counters) {
  if (request.target == "/v1/compute") {
    if (request.method != "POST") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use POST on /v1/compute"),
                               keep_alive);
    }
    return HandleCompute(writer, request, keep_alive);
  }
  if (request.target == "/v1/batch") {
    if (request.method != "POST") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use POST on /v1/batch"),
                               keep_alive);
    }
    return HandleBatch(writer, request, keep_alive);
  }
  if (request.target == "/v1/engines") {
    if (request.method != "GET") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on /v1/engines"),
                               keep_alive);
    }
    return HandleEngines(writer, keep_alive);
  }
  if (request.target == "/v1/stats") {
    if (request.method != "GET") {
      return WriteJsonResponse(writer, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on /v1/stats"),
                               keep_alive);
    }
    return HandleStats(writer, keep_alive, counters);
  }
  return WriteJsonResponse(
      writer, 404,
      FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                        "unknown endpoint " + request.target),
      keep_alive);
}

void ServiceHandler::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  // Deep-path phase histograms (fed by traced requests) are registered
  // eagerly so the families are grep-able on a zero-traffic scrape.
  obs::RegisterPhaseMetrics(metrics_);
  // Per-table oracle-cache traffic, scraped straight off the cache's
  // lock-free counters (names disjoint from the shapley_service_cache_*
  // aggregates below, which stay for dashboard continuity).
  if (OracleCache* cache = service_->cache(); cache != nullptr) {
    obs::MetricsRegistry* cache_registry = metrics_;
    metrics_->AddCollector([cache, cache_registry] {
      const OracleCache::Stats stats = cache->PerTableStats();
      auto expose = [cache_registry](const char* table,
                                     const OracleCache::TableStats& t) {
        const obs::Labels labels = {{"table", table}};
        cache_registry
            ->GetCounter("shapley_cache_hits_total",
                         "Oracle-cache hits by table", labels)
            ->Set(t.hits);
        cache_registry
            ->GetCounter("shapley_cache_misses_total",
                         "Oracle-cache misses by table", labels)
            ->Set(t.misses);
        cache_registry
            ->GetCounter("shapley_cache_inserts_total",
                         "Oracle-cache entries made resident, by table",
                         labels)
            ->Set(t.inserts);
        cache_registry
            ->GetCounter("shapley_cache_evictions_total",
                         "Oracle-cache LRU evictions by table", labels)
            ->Set(t.evictions);
      };
      expose("counts", stats.counts);
      expose("circuits", stats.circuits);
      expose("memos", stats.memos);
    });
  }
  // The ServiceStats snapshot crosses into the exposition at scrape time:
  // counters mirror via Set() from ONE snapshot, so a scrape's components
  // are as coherent as Stats() itself, and the conservation gauge below is
  // computed from the same snapshot the components came from.
  ShapleyService* service = service_;
  obs::MetricsRegistry* registry = metrics_;
  metrics_->AddCollector([service, registry] {
    const ServiceStats s = service->Stats();
    registry
        ->GetCounter("shapley_service_requests_submitted_total",
                     "Requests accepted by the service")
        ->Set(s.requests_submitted);
    registry
        ->GetCounter("shapley_service_requests_completed_total",
                     "Requests finished successfully")
        ->Set(s.requests_completed);
    registry
        ->GetCounter("shapley_service_requests_failed_total",
                     "Requests finished with a structured error")
        ->Set(s.requests_failed);
    registry
        ->GetGauge("shapley_service_requests_inflight",
                   "Requests accepted but not yet finished")
        ->Set(static_cast<double>(s.requests_inflight));
    registry
        ->GetCounter("shapley_service_verdict_cache_hits_total",
                     "Classifications served from the verdict cache")
        ->Set(s.verdict_cache_hits);
    registry
        ->GetCounter("shapley_service_verdict_cache_misses_total",
                     "Classifications computed fresh")
        ->Set(s.verdict_cache_misses);
    registry
        ->GetGauge("shapley_service_pool_threads",
                   "Worker threads of the service pool")
        ->Set(static_cast<double>(s.pool_threads));
    registry
        ->GetCounter("shapley_service_pool_tasks_executed_total",
                     "Tasks executed by the service pool")
        ->Set(s.pool_tasks_executed);
    registry
        ->GetGauge("shapley_service_cache_entries",
                   "Entries resident in the shared oracle cache")
        ->Set(static_cast<double>(s.cache_entries));
    registry
        ->GetGauge("shapley_service_cache_bytes",
                   "Bytes resident in the shared oracle cache")
        ->Set(static_cast<double>(s.cache_bytes));
    registry
        ->GetCounter("shapley_service_cache_hits_total",
                     "Oracle-cache hits")
        ->Set(s.cache_hits);
    registry
        ->GetCounter("shapley_service_cache_misses_total",
                     "Oracle-cache misses")
        ->Set(s.cache_misses);
    registry
        ->GetCounter("shapley_service_cache_evictions_total",
                     "Oracle-cache evictions")
        ->Set(s.cache_evictions);
    registry
        ->GetGauge("shapley_service_stats_conservation_error",
                   "submitted - (completed + failed + inflight); 0 at "
                   "quiescence (self-check, from one snapshot)")
        ->Set(static_cast<double>(obs::StatsConservationError(s)));
  });
}

void ServiceHandler::ObserveArrival() {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetHistogram("shapley_queue_depth",
                     "Service inflight requests sampled at request arrival",
                     obs::DepthBuckets())
      ->Observe(static_cast<double>(service_->requests_inflight()));
}

void ServiceHandler::ObserveRequest(const SvcResponse& response,
                                    double wall_ms) {
  if (metrics_ == nullptr) return;
  // Labels describe what actually SERVED the request: "none" when no
  // engine ran (classify-only, refused), "exact" when the answer carries
  // no approximation contract.
  const std::string engine = response.engine.empty() ? "none"
                                                     : response.engine;
  const std::string strategy =
      response.approx.has_value() ? response.approx->strategy : "exact";
  metrics_
      ->GetHistogram("shapley_request_latency_ms",
                     "Wall time from request decode to response encode",
                     obs::LatencyBucketsMs(),
                     {{"engine", engine},
                      {"mode", shapley::ToString(response.mode)},
                      {"strategy", strategy}})
      ->Observe(wall_ms);
}

bool ServiceHandler::HandleCompute(ResponseWriter* writer,
                                   const HttpRequest& request,
                                   bool keep_alive) {
  const auto arrival = std::chrono::steady_clock::now();
  const obs::SpanTimer wall_timer;
  obs::SpanTimer decode_timer;
  std::string parse_error;
  std::optional<Json> json = Json::Parse(request.body, &parse_error);
  if (!json.has_value()) {
    return WriteJsonResponse(writer, 400,
                             FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "bad JSON: " + parse_error),
                             keep_alive);
  }
  DecodedRequest decoded;
  if (std::optional<SvcError> error = DecodeRequest(*json, &decoded)) {
    SvcResponse response;
    response.error = std::move(error);
    auto schema = Schema::Create();
    return WriteJsonResponse(writer, HttpStatusFor(response.error->code),
                             EncodeResponse(response, *schema).Dump(),
                             keep_alive);
  }
  const double decode_ms = decode_timer.ElapsedMs();
  ObserveArrival();
  // Recorder allocated ONLY for traced requests — the untraced hot path
  // carries a null pointer end to end. The root span is backdated to the
  // request's arrival so the decode measurement (taken before we knew the
  // request wanted tracing) slots in with honest offsets; the context
  // comes off the wire when the router propagated one, else is derived
  // deterministically from the request bytes.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (decoded.request.trace) {
    obs::TraceContext context = decoded.request.trace_context;
    if (!context.valid()) context = obs::TraceContext::Derive(request.body);
    recorder =
        std::make_unique<obs::TraceRecorder>("backend", context, arrival);
    recorder->AddClosed("decode", 0.0, decode_ms);
    decoded.request.recorder = recorder.get();
  }
  // Blocking Compute on the dispatch-pool thread: the service's pool does
  // the fan-out; this thread is exactly the client's wait.
  SvcResponse response = service_->Compute(std::move(decoded.request));
  const int status =
      response.ok() ? 200 : HttpStatusFor(response.error->code);
  if (recorder != nullptr) recorder->Begin("encode");
  Json body = EncodeResponse(response, *decoded.schema);
  if (recorder != nullptr) {
    // The encode span can only close AFTER encoding — the finished tree is
    // patched into the already-built body, and its spans feed the
    // aggregate phase histograms so /metrics and the trace block agree.
    recorder->End();
    const obs::RequestTrace trace = recorder->Finish();
    if (metrics_ != nullptr) obs::ObserveTracePhases(metrics_, trace.root);
    SetTraceBlock(&body, trace);
  }
  ObserveRequest(response, wall_timer.ElapsedMs());
  return WriteJsonResponse(writer, status, body.Dump(), keep_alive);
}

bool ServiceHandler::HandleBatch(ResponseWriter* writer,
                                 const HttpRequest& request, bool keep_alive) {
  std::string parse_error;
  std::optional<Json> json = Json::Parse(request.body, &parse_error);
  if (!json.has_value()) {
    return WriteJsonResponse(writer, 400,
                             FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "bad JSON: " + parse_error),
                             keep_alive);
  }
  const Json* requests = json->Find("requests");
  const Json::Array* items =
      requests != nullptr ? requests->IfArray() : nullptr;
  if (items == nullptr) {
    return WriteJsonResponse(writer, 400,
                             FrontEndErrorBody(
                                 SvcErrorCode::kInvalidRequest,
                                 "batch: expected {\"requests\": [...]}"),
                             keep_alive);
  }

  // Decode everything first; per-request decode failures become tagged
  // error lines in the stream (one bad request must not sink its batch).
  const obs::SpanTimer batch_timer;
  struct Slot {
    std::shared_ptr<Schema> schema;
    std::future<SvcResponse> future;
    std::optional<SvcResponse> immediate;  // Decode failures.
    std::unique_ptr<obs::TraceRecorder> recorder;  // Traced items only.
    double decode_ms = 0.0;
    bool streamed = false;
  };
  std::vector<Slot> slots(items->size());
  // The service pool holds a raw pointer INTO each slot (the recorder) for
  // as long as its compute runs, so the slots must outlive every submitted
  // future — including on the early-return paths where the connection died
  // mid-batch. This guard drains whatever is still in flight before the
  // vector can be destroyed. (future.get() invalidates the future, so only
  // genuinely outstanding computes are waited on.)
  struct DrainInFlight {
    std::vector<Slot>* slots;
    ~DrainInFlight() {
      for (Slot& slot : *slots) {
        if (slot.future.valid() && !slot.streamed) slot.future.wait();
      }
    }
  } drain{&slots};
  for (size_t i = 0; i < items->size(); ++i) {
    const auto slot_arrival = std::chrono::steady_clock::now();
    obs::SpanTimer decode_timer;
    DecodedRequest decoded;
    if (std::optional<SvcError> error = DecodeRequest((*items)[i], &decoded)) {
      SvcResponse response;
      response.error = std::move(error);
      slots[i].schema = Schema::Create();
      slots[i].immediate = std::move(response);
    } else {
      slots[i].decode_ms = decode_timer.ElapsedMs();
      slots[i].schema = decoded.schema;
      if (decoded.request.trace) {
        obs::TraceContext context = decoded.request.trace_context;
        if (!context.valid()) {
          context = obs::TraceContext::Derive((*items)[i].Dump());
        }
        slots[i].recorder = std::make_unique<obs::TraceRecorder>(
            "backend", context, slot_arrival);
        slots[i].recorder->AddClosed("decode", 0.0, slots[i].decode_ms);
        decoded.request.recorder = slots[i].recorder.get();
      }
      ObserveArrival();
      slots[i].future = service_->Submit(std::move(decoded.request));
    }
  }

  // Stream in COMPLETION order: chunked ndjson, each line tagged "id".
  if (!writer->SendAll(SerializeResponseHead(
          200, "application/x-ndjson", /*content_length=*/-1, keep_alive))) {
    return false;
  }
  auto stream_one = [&](size_t i, SvcResponse& response) {
    obs::TraceRecorder* recorder = slots[i].recorder.get();
    if (recorder != nullptr) recorder->Begin("encode");
    Json line = EncodeResponse(response, *slots[i].schema);
    if (recorder != nullptr) {
      recorder->End();
      const obs::RequestTrace trace = recorder->Finish();
      if (metrics_ != nullptr) obs::ObserveTracePhases(metrics_, trace.root);
      SetTraceBlock(&line, trace);
    }
    // Per-slot latency is CLIENT-OBSERVED: batch arrival to this line
    // streaming out (queueing behind siblings included).
    ObserveRequest(response, batch_timer.ElapsedMs());
    // The id leads the object so a human tailing the stream sees it first.
    Json tagged;
    tagged.Set("id", Json::Number(uint64_t{i}));
    for (auto& [key, value] : *line.IfObject()) {
      tagged.Set(key, value);
    }
    return writer->SendAll(ChunkFrame(tagged.Dump() + "\n"));
  };

  size_t remaining = slots.size();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].immediate.has_value()) {
      if (!stream_one(i, *slots[i].immediate)) return false;
      slots[i].streamed = true;
      --remaining;
    }
  }
  while (remaining > 0) {
    bool progressed = false;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].streamed) continue;
      if (slots[i].future.wait_for(std::chrono::milliseconds(0)) ==
          std::future_status::ready) {
        SvcResponse response = slots[i].future.get();
        if (!stream_one(i, response)) return false;
        slots[i].streamed = true;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed && remaining > 0) {
      // Nothing ready: block on the first outstanding future instead of
      // spinning. 25 ms keeps completion-order latency invisible while a
      // minutes-long instance costs ~40 wake-ups/s, not ~500.
      for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].streamed) {
          slots[i].future.wait_for(std::chrono::milliseconds(25));
          break;
        }
      }
    }
  }
  return writer->SendAll(ChunkFrame(""));  // Terminal chunk.
}

bool ServiceHandler::HandleEngines(ResponseWriter* writer, bool keep_alive) {
  Json engines = Json::Arr();
  const EngineRegistry& registry = service_->registry();
  for (const std::string& name : registry.Names()) {
    const EngineRegistry::Entry* entry = registry.Find(name);
    Json engine;
    engine.Set("name", Json::Str(entry->name));
    engine.Set("description", Json::Str(entry->description));
    Json caps;
    caps.Set("all_query_classes", Json::Bool(entry->caps.all_query_classes));
    caps.Set("monotone_only", Json::Bool(entry->caps.monotone_only));
    caps.Set("hierarchical_sjf_cq_only",
             Json::Bool(entry->caps.hierarchical_sjf_cq_only));
    caps.Set("approximate", Json::Bool(entry->caps.approximate));
    if (entry->caps.max_endogenous != std::numeric_limits<size_t>::max()) {
      caps.Set("max_endogenous",
               Json::Number(uint64_t{entry->caps.max_endogenous}));
    }
    if (!entry->caps.error_model.empty()) {
      caps.Set("error_model", Json::Str(entry->caps.error_model));
    }
    engine.Set("caps", std::move(caps));
    engines.Push(std::move(engine));
  }
  Json body;
  body.Set("engines", std::move(engines));
  return WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
}

bool ServiceHandler::HandleStats(ResponseWriter* writer, bool keep_alive,
                                 const ServerCounters& counters) {
  // Serialization goes through the ONE shared stats codec (obs/stats_json)
  // — the same path the router's fleet-sum and ExecStats::ToJson use, with
  // the key order pinned byte-stable by a test.
  Json body;
  body.Set("service", obs::ServiceStatsJson(service_->Stats()));
  body.Set("server", obs::ServerCountersJson(counters));
  return WriteJsonResponse(writer, 200, body.Dump(), keep_alive);
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(ShapleyService* service, ServerOptions options)
    : owned_handler_(std::make_unique<ServiceHandler>(service)),
      handler_(owned_handler_.get()),
      options_(std::move(options)) {
  SetUpMetrics();
  static_cast<ServiceHandler*>(owned_handler_.get())->set_metrics(metrics_);
}

HttpServer::HttpServer(HttpHandler* handler, ServerOptions options)
    : handler_(handler), options_(std::move(options)) {
  SetUpMetrics();
}

void HttpServer::SetUpMetrics() {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  metrics_
      ->GetGauge("shapley_build_info",
                 "Build identity; the value is always 1",
                 {{"version", kShapleyVersion}, {"role", options_.role}})
      ->Set(1.0);
  // Transport counters mirror into the scrape labeled by role, so a router
  // and a backend sharing a dashboard produce DISJOINT series even though
  // the family names coincide.
  metrics_->AddCollector([this] {
    const ServerCounters c = counters();
    const obs::Labels role{{"role", options_.role}};
    metrics_
        ->GetCounter("shapley_server_connections_accepted_total",
                     "Connections accepted by the HTTP front", role)
        ->Set(c.connections_accepted);
    metrics_
        ->GetCounter("shapley_server_connections_rejected_total",
                     "Connections refused at the connection limit", role)
        ->Set(c.connections_rejected);
    metrics_
        ->GetGauge("shapley_server_connections_live",
                   "Connections currently open", role)
        ->Set(static_cast<double>(c.connections_live));
    metrics_
        ->GetCounter("shapley_server_requests_served_total",
                     "HTTP requests served (all endpoints)", role)
        ->Set(c.requests_served);
  });
  // The readiness loop's own counters: wake-ups, dispatch depth,
  // backpressure events — the signals that distinguish "the loop is busy"
  // from "the pool is busy" from "a peer is not reading".
  metrics_->AddCollector([this] {
    EventLoop* loop = loop_ptr_.load();
    if (loop == nullptr) return;
    const EventLoopStats s = loop->stats();
    const obs::Labels role{{"role", options_.role}};
    metrics_
        ->GetCounter("shapley_server_eventloop_wakeups_total",
                     "Poller returns of the event loop", role)
        ->Set(s.wakeups);
    metrics_
        ->GetCounter("shapley_server_eventloop_events_total",
                     "Readiness events handled by the event loop", role)
        ->Set(s.events);
    metrics_
        ->GetCounter("shapley_server_eventloop_requests_parsed_total",
                     "Full HTTP requests parsed off the wire", role)
        ->Set(s.requests);
    metrics_
        ->GetCounter("shapley_server_eventloop_pipelined_requests_total",
                     "Requests served from buffered bytes with no new read "
                     "event (keep-alive pipelining)",
                     role)
        ->Set(s.pipelined);
    metrics_
        ->GetCounter("shapley_server_eventloop_dispatches_total",
                     "Requests handed to the dispatch pool", role)
        ->Set(s.dispatches);
    metrics_
        ->GetCounter("shapley_server_eventloop_deferred_writes_total",
                     "Response writes that hit EAGAIN and queued for the "
                     "loop to drain",
                     role)
        ->Set(s.deferred_writes);
    metrics_
        ->GetCounter("shapley_server_eventloop_slow_reader_disconnects_total",
                     "Connections cut for making no write progress with "
                     "queued output",
                     role)
        ->Set(s.slow_reader_disconnects);
    metrics_
        ->GetCounter("shapley_server_eventloop_read_timeouts_total",
                     "Connections cut at the idle-read timeout", role)
        ->Set(s.read_timeouts);
    metrics_
        ->GetGauge("shapley_server_eventloop_dispatch_inflight",
                   "Requests dispatched to the pool and not yet completed",
                   role)
        ->Set(static_cast<double>(s.dispatch_inflight));
    metrics_
        ->GetGauge("shapley_server_eventloop_output_queue_bytes",
                   "Bytes queued across all per-connection output queues",
                   role)
        ->Set(static_cast<double>(s.output_queue_bytes));
    metrics_
        ->GetGauge("shapley_server_eventloop_using_epoll",
                   "1 when the epoll backend multiplexes this server, 0 for "
                   "the poll() fallback",
                   role)
        ->Set(s.using_epoll ? 1.0 : 0.0);
  });
}

HttpServer::~HttpServer() {
  Stop();
  loop_ptr_.store(nullptr);
}

void HttpServer::Start() {
  std::string error;
  Socket listener = ListenTcp(options_.host, options_.port, /*backlog=*/128,
                              &port_, &error);
  if (!listener.valid()) {
    throw std::runtime_error("HttpServer: " + error);
  }
  loop_ptr_.store(nullptr);
  loop_.reset();
  size_t threads = options_.dispatch_threads;
  if (threads == 0) {
    // Dispatch workers are thin waiters (they block on service futures),
    // so over-provisioning relative to cores is the POINT: request
    // concurrency must not be serialized on a small machine.
    threads = std::max<size_t>(
        8, static_cast<size_t>(std::thread::hardware_concurrency()));
  }
  dispatch_pool_ = std::make_unique<ThreadPool>(threads);

  EventLoopOptions loop_options;
  loop_options.max_connections = options_.max_connections;
  loop_options.read_timeout_ms = options_.read_timeout_ms;
  loop_options.write_stall_timeout_ms = options_.write_stall_timeout_ms;
  loop_options.max_output_queue_bytes = options_.max_output_queue_bytes;
  loop_options.max_body_bytes = options_.max_body_bytes;
  loop_options.force_poll = options_.force_poll;
  // The loop answers protocol-level failures from prebuilt buffers — no
  // allocation, no handler, no pool round-trip.
  {
    const std::string body = FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "malformed HTTP request");
    loop_options.response_400 =
        SerializeResponseHead(400, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }
  {
    // capacity-exceeded, matching the 413 transport status and the README
    // table ("body over the server limit").
    const std::string body = FrontEndErrorBody(
        SvcErrorCode::kCapacityExceeded,
        "request body exceeds the server limit of " +
            std::to_string(options_.max_body_bytes) + " bytes");
    loop_options.response_413 =
        SerializeResponseHead(413, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }
  {
    const std::string body = FrontEndErrorBody(
        SvcErrorCode::kCapacityExceeded,
        "server at its connection limit (" +
            std::to_string(options_.max_connections) + ") — retry");
    loop_options.response_503 =
        SerializeResponseHead(503, "application/json",
                              static_cast<long>(body.size()),
                              /*keep_alive=*/false) +
        body;
  }

  loop_ = std::make_unique<EventLoop>(
      std::move(loop_options),
      [this](uint64_t conn_id, HttpRequest&& request,
             std::shared_ptr<ConnWriter> writer) {
        return OnRequest(conn_id, std::move(request), std::move(writer));
      });
  running_.store(true);
  stopping_.store(false);
  loop_->Start(std::move(listener));
  loop_ptr_.store(loop_.get());
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Order matters: the loop's drain needs the pool alive (dispatched
  // requests finish and report completion); the pool's destructor then
  // joins workers that have nothing left to do.
  if (loop_ != nullptr) loop_->Stop();
  dispatch_pool_.reset();
}

void HttpServer::Abort() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Crash simulation: the loop shutdowns every connection RDWR, so the
  // in-flight response WRITE fails too — a client streaming a batch sees
  // the connection die mid-stream exactly as if the process had been
  // killed.
  if (loop_ != nullptr) loop_->Abort();
  dispatch_pool_.reset();
}

ServerCounters HttpServer::counters() const {
  ServerCounters counters;
  if (EventLoop* loop = loop_ptr_.load()) {
    const EventLoopStats s = loop->stats();
    counters.connections_accepted = s.accepted;
    counters.connections_rejected = s.rejected;
    counters.connections_live = s.connections_live;
  }
  counters.requests_served = served_.load();
  return counters;
}

EventLoop::Disposition HttpServer::OnRequest(
    uint64_t conn_id, HttpRequest&& request,
    std::shared_ptr<ConnWriter> writer) {
  // The drain contract: a request PARSED before Stop() is served and its
  // response written; the connection then closes instead of re-arming.
  const bool draining = stopping_.load();
  const std::string* connection = FindHeader(request.headers, "Connection");
  const bool client_wants_close =
      connection != nullptr &&
      (*connection == "close" || *connection == "Close");
  const bool keep_alive =
      !draining && !client_wants_close && request.version == "HTTP/1.1";

  // Counted BEFORE the response is written: a client that has read its
  // response (and then asks /v1/stats, or a test that asserts counters)
  // must already see this request in the tally.
  served_.fetch_add(1, std::memory_order_relaxed);

  // Record/replay capture: the VERBATIM body, before any decode — a
  // malformed request must replay to the identical error response.
  if (options_.request_log != nullptr && request.method == "POST") {
    options_.request_log->Append(request.target, request.body);
  }

  if (request.target == "/healthz") {
    // Answered ON THE LOOP THREAD: a router probing a backend's health
    // must get a response even when the dispatch pool (or the service
    // behind it) is busy to the gills.
    std::string wire;
    if (request.method != "GET") {
      const std::string body = FrontEndErrorBody(
          SvcErrorCode::kInvalidRequest, "use GET on /healthz");
      wire = SerializeResponseHead(405, "application/json",
                                   static_cast<long>(body.size()),
                                   keep_alive) +
             body;
    } else {
      Json body;
      body.Set("status", Json::Str("ok"));
      body.Set("version", Json::Str(kShapleyVersion));
      body.Set("role", Json::Str(options_.role));
      const std::string text = body.Dump();
      wire = SerializeResponseHead(200, "application/json",
                                   static_cast<long>(text.size()),
                                   keep_alive) +
             text;
    }
    loop_->Respond(conn_id, wire);
    return keep_alive ? EventLoop::Disposition::kInlineKeep
                      : EventLoop::Disposition::kInlineClose;
  }
  if (request.target == "/metrics") {
    // Answered at the transport layer like /healthz: a scrape must work
    // even when the handler (or the fleet behind a router) is wedged.
    std::string wire;
    if (request.method != "GET") {
      const std::string body = FrontEndErrorBody(
          SvcErrorCode::kInvalidRequest, "use GET on /metrics");
      wire = SerializeResponseHead(405, "application/json",
                                   static_cast<long>(body.size()),
                                   keep_alive) +
             body;
    } else {
      const std::string text = metrics_->RenderPrometheus();
      wire = SerializeResponseHead(200, "text/plain; version=0.0.4",
                                   static_cast<long>(text.size()),
                                   keep_alive) +
             text;
    }
    loop_->Respond(conn_id, wire);
    return keep_alive ? EventLoop::Disposition::kInlineKeep
                      : EventLoop::Disposition::kInlineClose;
  }

  // Everything else runs on the dispatch pool; the worker reports back to
  // the loop when the response is fully produced (possibly still queued in
  // the connection's output buffer — the loop drains that part).
  auto shared_request = std::make_shared<HttpRequest>(std::move(request));
  dispatch_pool_->Submit(
      [this, conn_id, writer, shared_request, keep_alive] {
        bool alive = false;
        try {
          alive = handler_->Handle(writer.get(), *shared_request, keep_alive,
                                   counters());
        } catch (...) {
          alive = false;  // A throwing handler must not take the loop down.
        }
        loop_->CompleteDispatch(conn_id, alive && keep_alive);
      });
  return EventLoop::Disposition::kDispatched;
}

}  // namespace shapley::net
