#include "shapley/net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <future>
#include <limits>
#include <stdexcept>
#include <utility>

#include "shapley/common/version.h"
#include "shapley/net/codec.h"
#include "shapley/net/json.h"

namespace shapley::net {

std::string FrontEndErrorBody(SvcErrorCode code, std::string message) {
  SvcResponse response;
  response.error = SvcError{code, std::move(message), ""};
  // No schema is needed: a front-end error has no facts to render.
  auto schema = Schema::Create();
  return EncodeResponse(response, *schema).Dump();
}

bool WriteJsonResponse(Socket* socket, int status, const std::string& body,
                       bool keep_alive) {
  return socket->SendAll(
      SerializeResponseHead(status, "application/json",
                            static_cast<long>(body.size()), keep_alive) +
      body);
}

// ---------------------------------------------------------------------------
// ServiceHandler
// ---------------------------------------------------------------------------

bool ServiceHandler::Handle(Socket* socket, const HttpRequest& request,
                            bool keep_alive, const ServerCounters& counters) {
  if (request.target == "/v1/compute") {
    if (request.method != "POST") {
      return WriteJsonResponse(socket, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use POST on /v1/compute"),
                               keep_alive);
    }
    return HandleCompute(socket, request, keep_alive);
  }
  if (request.target == "/v1/batch") {
    if (request.method != "POST") {
      return WriteJsonResponse(socket, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use POST on /v1/batch"),
                               keep_alive);
    }
    return HandleBatch(socket, request, keep_alive);
  }
  if (request.target == "/v1/engines") {
    if (request.method != "GET") {
      return WriteJsonResponse(socket, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on /v1/engines"),
                               keep_alive);
    }
    return HandleEngines(socket, keep_alive);
  }
  if (request.target == "/v1/stats") {
    if (request.method != "GET") {
      return WriteJsonResponse(socket, 405,
                               FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "use GET on /v1/stats"),
                               keep_alive);
    }
    return HandleStats(socket, keep_alive, counters);
  }
  return WriteJsonResponse(
      socket, 404,
      FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                        "unknown endpoint " + request.target),
      keep_alive);
}

bool ServiceHandler::HandleCompute(Socket* socket, const HttpRequest& request,
                                   bool keep_alive) {
  std::string parse_error;
  std::optional<Json> json = Json::Parse(request.body, &parse_error);
  if (!json.has_value()) {
    return WriteJsonResponse(socket, 400,
                             FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "bad JSON: " + parse_error),
                             keep_alive);
  }
  DecodedRequest decoded;
  if (std::optional<SvcError> error = DecodeRequest(*json, &decoded)) {
    SvcResponse response;
    response.error = std::move(error);
    auto schema = Schema::Create();
    return WriteJsonResponse(socket, HttpStatusFor(response.error->code),
                             EncodeResponse(response, *schema).Dump(),
                             keep_alive);
  }
  // Blocking Compute on the connection thread: the service's pool does the
  // fan-out; this thread is exactly the client's wait.
  SvcResponse response = service_->Compute(std::move(decoded.request));
  const int status =
      response.ok() ? 200 : HttpStatusFor(response.error->code);
  return WriteJsonResponse(socket, status,
                           EncodeResponse(response, *decoded.schema).Dump(),
                           keep_alive);
}

bool ServiceHandler::HandleBatch(Socket* socket, const HttpRequest& request,
                                 bool keep_alive) {
  std::string parse_error;
  std::optional<Json> json = Json::Parse(request.body, &parse_error);
  if (!json.has_value()) {
    return WriteJsonResponse(socket, 400,
                             FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                               "bad JSON: " + parse_error),
                             keep_alive);
  }
  const Json* requests = json->Find("requests");
  const Json::Array* items =
      requests != nullptr ? requests->IfArray() : nullptr;
  if (items == nullptr) {
    return WriteJsonResponse(socket, 400,
                             FrontEndErrorBody(
                                 SvcErrorCode::kInvalidRequest,
                                 "batch: expected {\"requests\": [...]}"),
                             keep_alive);
  }

  // Decode everything first; per-request decode failures become tagged
  // error lines in the stream (one bad request must not sink its batch).
  struct Slot {
    std::shared_ptr<Schema> schema;
    std::future<SvcResponse> future;
    std::optional<SvcResponse> immediate;  // Decode failures.
    bool streamed = false;
  };
  std::vector<Slot> slots(items->size());
  for (size_t i = 0; i < items->size(); ++i) {
    DecodedRequest decoded;
    if (std::optional<SvcError> error = DecodeRequest((*items)[i], &decoded)) {
      SvcResponse response;
      response.error = std::move(error);
      slots[i].schema = Schema::Create();
      slots[i].immediate = std::move(response);
    } else {
      slots[i].schema = decoded.schema;
      slots[i].future = service_->Submit(std::move(decoded.request));
    }
  }

  // Stream in COMPLETION order: chunked ndjson, each line tagged "id".
  if (!socket->SendAll(SerializeResponseHead(
          200, "application/x-ndjson", /*content_length=*/-1, keep_alive))) {
    return false;
  }
  auto stream_one = [&](size_t i, const SvcResponse& response) {
    Json line = EncodeResponse(response, *slots[i].schema);
    // The id leads the object so a human tailing the stream sees it first.
    Json tagged;
    tagged.Set("id", Json::Number(uint64_t{i}));
    for (auto& [key, value] : *line.IfObject()) {
      tagged.Set(key, value);
    }
    return socket->SendAll(ChunkFrame(tagged.Dump() + "\n"));
  };

  size_t remaining = slots.size();
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].immediate.has_value()) {
      if (!stream_one(i, *slots[i].immediate)) return false;
      slots[i].streamed = true;
      --remaining;
    }
  }
  while (remaining > 0) {
    bool progressed = false;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].streamed) continue;
      if (slots[i].future.wait_for(std::chrono::milliseconds(0)) ==
          std::future_status::ready) {
        const SvcResponse response = slots[i].future.get();
        if (!stream_one(i, response)) return false;
        slots[i].streamed = true;
        --remaining;
        progressed = true;
      }
    }
    if (!progressed && remaining > 0) {
      // Nothing ready: block on the first outstanding future instead of
      // spinning. 25 ms keeps completion-order latency invisible while a
      // minutes-long instance costs ~40 wake-ups/s, not ~500.
      for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].streamed) {
          slots[i].future.wait_for(std::chrono::milliseconds(25));
          break;
        }
      }
    }
  }
  return socket->SendAll(ChunkFrame(""));  // Terminal chunk.
}

bool ServiceHandler::HandleEngines(Socket* socket, bool keep_alive) {
  Json engines = Json::Arr();
  const EngineRegistry& registry = service_->registry();
  for (const std::string& name : registry.Names()) {
    const EngineRegistry::Entry* entry = registry.Find(name);
    Json engine;
    engine.Set("name", Json::Str(entry->name));
    engine.Set("description", Json::Str(entry->description));
    Json caps;
    caps.Set("all_query_classes", Json::Bool(entry->caps.all_query_classes));
    caps.Set("monotone_only", Json::Bool(entry->caps.monotone_only));
    caps.Set("hierarchical_sjf_cq_only",
             Json::Bool(entry->caps.hierarchical_sjf_cq_only));
    caps.Set("approximate", Json::Bool(entry->caps.approximate));
    if (entry->caps.max_endogenous != std::numeric_limits<size_t>::max()) {
      caps.Set("max_endogenous",
               Json::Number(uint64_t{entry->caps.max_endogenous}));
    }
    if (!entry->caps.error_model.empty()) {
      caps.Set("error_model", Json::Str(entry->caps.error_model));
    }
    engine.Set("caps", std::move(caps));
    engines.Push(std::move(engine));
  }
  Json body;
  body.Set("engines", std::move(engines));
  return WriteJsonResponse(socket, 200, body.Dump(), keep_alive);
}

bool ServiceHandler::HandleStats(Socket* socket, bool keep_alive,
                                 const ServerCounters& counters) {
  const ServiceStats stats = service_->Stats();
  Json service;
  service.Set("requests_submitted",
              Json::Number(uint64_t{stats.requests_submitted}));
  service.Set("requests_completed",
              Json::Number(uint64_t{stats.requests_completed}));
  service.Set("requests_failed",
              Json::Number(uint64_t{stats.requests_failed}));
  service.Set("requests_inflight",
              Json::Number(uint64_t{stats.requests_inflight}));
  service.Set("verdict_cache_hits",
              Json::Number(uint64_t{stats.verdict_cache_hits}));
  service.Set("verdict_cache_misses",
              Json::Number(uint64_t{stats.verdict_cache_misses}));
  service.Set("pool_threads", Json::Number(uint64_t{stats.pool_threads}));
  service.Set("pool_tasks_executed",
              Json::Number(uint64_t{stats.pool_tasks_executed}));
  service.Set("cache_entries", Json::Number(uint64_t{stats.cache_entries}));
  service.Set("cache_bytes", Json::Number(uint64_t{stats.cache_bytes}));
  service.Set("cache_hits", Json::Number(uint64_t{stats.cache_hits}));
  service.Set("cache_misses", Json::Number(uint64_t{stats.cache_misses}));
  service.Set("cache_evictions",
              Json::Number(uint64_t{stats.cache_evictions}));
  Json server;
  server.Set("connections_accepted",
             Json::Number(uint64_t{counters.connections_accepted}));
  server.Set("connections_rejected",
             Json::Number(uint64_t{counters.connections_rejected}));
  server.Set("connections_live",
             Json::Number(uint64_t{counters.connections_live}));
  server.Set("requests_served",
             Json::Number(uint64_t{counters.requests_served}));
  Json body;
  body.Set("service", std::move(service));
  body.Set("server", std::move(server));
  return WriteJsonResponse(socket, 200, body.Dump(), keep_alive);
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(ShapleyService* service, ServerOptions options)
    : owned_handler_(std::make_unique<ServiceHandler>(service)),
      handler_(owned_handler_.get()),
      options_(std::move(options)) {}

HttpServer::HttpServer(HttpHandler* handler, ServerOptions options)
    : handler_(handler), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start() {
  std::string error;
  listener_ = ListenTcp(options_.host, options_.port, /*backlog=*/128, &port_,
                        &error);
  if (!listener_.valid()) {
    throw std::runtime_error("HttpServer: " + error);
  }
  running_.store(true);
  stopping_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Drain: a connection mid-request finishes it and writes the response
  // (SHUT_RD only closes the READ side); an IDLE keep-alive connection is
  // parked in poll() waiting for its next request and would otherwise hold
  // the join until its read timeout — SHUT_RD turns that wait into an
  // immediate EOF.
  HaltConnections(/*both_directions=*/false);
}

void HttpServer::Abort() {
  if (!running_.exchange(false)) return;
  // Crash simulation: SHUT_RDWR makes the in-flight response WRITE fail
  // too, so a client streaming a batch sees the connection die mid-stream
  // exactly as if the process had been killed.
  HaltConnections(/*both_directions=*/true);
}

void HttpServer::HaltConnections(bool both_directions) {
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const int how = both_directions ? SHUT_RDWR : SHUT_RD;
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, how);
    for (auto& [id, thread] : conn_threads_) threads.push_back(std::move(thread));
    conn_threads_.clear();
    finished_conns_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

ServerCounters HttpServer::counters() const {
  ServerCounters counters;
  counters.connections_accepted = accepted_.load();
  counters.connections_rejected = rejected_.load();
  counters.connections_live = live_connections_.load();
  counters.requests_served = served_.load();
  return counters;
}

void HttpServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (uint64_t id : finished_conns_) {
      auto it = conn_threads_.find(id);
      if (it != conn_threads_.end()) {
        done.push_back(std::move(it->second));
        conn_threads_.erase(it);
      }
    }
    finished_conns_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();  // Near-instant: it already exited.
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    // Finished connections are joined here, between accepts, so the
    // registry holds live threads only — a long-lived server serving
    // millions of connections stays at O(live) thread handles.
    ReapFinished();
    // Poll with a short timeout instead of blocking accept(): Stop() only
    // has to flip the flag, no cross-thread socket shutdown subtleties.
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    Socket socket(fd);
    if (stopping_.load()) break;  // Arrived in the closing window.
    if (live_connections_.load() >= options_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      const std::string body = FrontEndErrorBody(
          SvcErrorCode::kCapacityExceeded,
          "server at its connection limit (" +
              std::to_string(options_.max_connections) + ") — retry");
      socket.SendAll(SerializeResponseHead(503, "application/json",
                                           static_cast<long>(body.size()),
                                           /*keep_alive=*/false) +
                     body);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    live_connections_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const uint64_t id = next_conn_id_++;
    conn_fds_[id] = socket.fd();
    conn_threads_[id] = std::thread(
        [this, id, s = std::move(socket)]() mutable {
          RunConnection(id, std::move(s));
        });
  }
}

void HttpServer::RunConnection(uint64_t id, Socket socket) {
  ConnectionLoop(&socket);
  {
    // Deregister the fd BEFORE the Socket destructor closes it: Stop()
    // shutdowns only fds still in the registry, so it can never touch a
    // descriptor number the kernel has already handed to someone else.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_fds_.erase(id);
    finished_conns_.push_back(id);
  }
  live_connections_.fetch_sub(1);
}

void HttpServer::ConnectionLoop(Socket* socket_ptr) {
  Socket& socket = *socket_ptr;
  SocketReader reader(socket.fd(), options_.read_timeout_ms);
  while (true) {
    HttpRequest request;
    const HttpReadResult result =
        ReadHttpRequest(&reader, options_.max_body_bytes, &request);
    if (result == HttpReadResult::kClosed) break;
    if (result == HttpReadResult::kTimeout) {
      // Idle keep-alive connections just close; a timeout mid-message gets
      // the 408 courtesy first.
      break;
    }
    if (result == HttpReadResult::kTooLarge) {
      // capacity-exceeded, matching the 413 transport status and the
      // README table ("body over the server limit").
      const std::string body = FrontEndErrorBody(
          SvcErrorCode::kCapacityExceeded,
          "request body exceeds the server limit of " +
              std::to_string(options_.max_body_bytes) + " bytes");
      socket.SendAll(SerializeResponseHead(413, "application/json",
                                           static_cast<long>(body.size()),
                                           /*keep_alive=*/false) +
                     body);
      break;
    }
    if (result == HttpReadResult::kMalformed) {
      const std::string body = FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                                                 "malformed HTTP request");
      socket.SendAll(SerializeResponseHead(400, "application/json",
                                           static_cast<long>(body.size()),
                                           /*keep_alive=*/false) +
                     body);
      break;
    }

    // The drain contract: a request READ before Stop() is served and its
    // response written; the connection then closes instead of looping.
    const bool draining = stopping_.load();
    const std::string* connection =
        FindHeader(request.headers, "Connection");
    const bool client_wants_close =
        connection != nullptr && (*connection == "close" ||
                                  *connection == "Close");
    const bool keep_alive = !draining && !client_wants_close &&
                            request.version == "HTTP/1.1";

    // Counted BEFORE the response is written: a client that has read its
    // response (and then asks /v1/stats, or a test that asserts counters)
    // must already see this request in the tally.
    served_.fetch_add(1, std::memory_order_relaxed);

    bool alive;
    if (request.target == "/healthz") {
      // Answered at the transport layer: a router probing a backend's
      // health must get a response even when the handler (or the service
      // behind it) is busy to the gills.
      if (request.method != "GET") {
        alive = WriteJsonResponse(
            &socket, 405,
            FrontEndErrorBody(SvcErrorCode::kInvalidRequest,
                              "use GET on /healthz"),
            keep_alive);
      } else {
        Json body;
        body.Set("status", Json::Str("ok"));
        body.Set("version", Json::Str(kShapleyVersion));
        body.Set("role", Json::Str(options_.role));
        alive = WriteJsonResponse(&socket, 200, body.Dump(), keep_alive);
      }
    } else {
      alive = handler_->Handle(&socket, request, keep_alive, counters());
    }
    if (!alive) break;
    if (!keep_alive) break;
  }
}

}  // namespace shapley::net
