#ifndef SHAPLEY_NET_EVENT_LOOP_H_
#define SHAPLEY_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "shapley/net/http.h"

namespace shapley::net {

/// The readiness core of the network front: ONE loop thread multiplexing
/// the listener and every connection fd through epoll (poll() fallback),
/// instead of one OS thread per socket. Each connection runs a small state
/// machine:
///
///   read-accumulate → parse (HttpRequestParser) → dispatch → write-drain
///
/// Reads are non-blocking and incremental; a fully-parsed request is handed
/// to the server's callback ON THE LOOP THREAD, which either answers it
/// inline (transport endpoints: /healthz, /metrics, 400/413/503) or
/// dispatches it to a worker pool and later reports completion. While a
/// request is being served the connection's read side is not watched —
/// pipelined keep-alive bytes wait in the input buffer and are parsed the
/// moment the response finishes (no unbounded buffering of an aggressive
/// pipeliner).
///
/// Write-side backpressure: every connection owns a BOUNDED output queue.
/// A worker writing a response appends through ConnWriter; when the peer
/// reads slower than the handler produces, the queue fills and the worker
/// BLOCKS until the loop drains it (bounded memory per connection), and a
/// peer that stops reading altogether is disconnected after
/// write_stall_timeout_ms (slow-reader disconnect) — the blocked worker
/// then fails fast. The loop thread itself never blocks on a write.
struct EventLoopOptions {
  size_t max_connections = 1024;
  int read_timeout_ms = 10'000;         ///< Idle/mid-message read cutoff.
  int write_stall_timeout_ms = 10'000;  ///< No write progress → disconnect.
  /// Per-connection output-queue cap: a producer past it blocks until the
  /// loop drains; the loop (which must not block) disconnects instead.
  size_t max_output_queue_bytes = 4 * 1024 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;
  /// Use the portable poll() backend even where epoll is available (the
  /// fallback must stay honest — tests run both).
  bool force_poll = false;
  /// Prebuilt full wire responses (head + body) the loop answers itself;
  /// all four imply Connection: close.
  std::string response_400;  ///< Malformed HTTP.
  std::string response_413;  ///< Declared body beyond max_body_bytes.
  std::string response_503;  ///< Accepted beyond max_connections.
  /// Read timeout with a PARTIAL request buffered: the peer started
  /// sending and stalled, so it gets told (408) before the close. An idle
  /// keep-alive connection BETWEEN requests still closes silently — there
  /// is nothing to answer. Empty → every read timeout closes silently.
  std::string response_408;
};

/// Monotone counters + live gauges of the loop, mirrored into the
/// shapley_server_eventloop_* metric families by the server.
struct EventLoopStats {
  uint64_t wakeups = 0;       ///< Poller returns (epoll_wait/poll calls).
  uint64_t events = 0;        ///< Readiness events handled.
  uint64_t accepted = 0;
  uint64_t rejected = 0;      ///< 503 at the connection cap.
  uint64_t requests = 0;      ///< Full requests parsed (incl. pipelined).
  uint64_t pipelined = 0;     ///< Follow-up requests parsed from buffered
                              ///< bytes with no intervening read event.
  uint64_t dispatches = 0;    ///< Requests handed to the worker pool.
  uint64_t deferred_writes = 0;  ///< Writes that hit EAGAIN and queued.
  uint64_t slow_reader_disconnects = 0;
  uint64_t read_timeouts = 0;
  size_t connections_live = 0;
  size_t dispatch_inflight = 0;      ///< Dispatched, not yet completed.
  size_t output_queue_bytes = 0;     ///< Queued across all connections.
  bool using_epoll = false;
};

class EventLoop;

namespace internal {

/// Write-side state of one connection, shared between the loop thread and
/// whatever worker thread is serving the connection's current request.
/// The loop owns the fd; workers only ever touch it under `mutex` and only
/// while `closed` is false.
struct ConnShared {
  std::mutex mutex;
  std::condition_variable drained;
  EventLoop* loop = nullptr;
  uint64_t id = 0;
  int fd = -1;
  bool closed = false;
  std::string pending;   ///< Queued output; loop flushes on writability.
  size_t pending_off = 0;
  size_t cap = 0;
  std::chrono::steady_clock::time_point last_write_progress;
};

/// Readiness-poller seam: epoll on Linux, poll() everywhere (and on Linux
/// under force_poll, so the fallback is exercised by the test fleet).
class Poller {
 public:
  struct Event {
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  virtual ~Poller() = default;
  virtual void Add(int fd, uint64_t tag, bool read, bool write) = 0;
  virtual void Update(int fd, uint64_t tag, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  /// Fills *out; returns false only on unrecoverable poller failure.
  virtual bool Wait(int timeout_ms, std::vector<Event>* out) = 0;
  virtual bool using_epoll() const = 0;
};

std::unique_ptr<Poller> MakePoller(bool force_poll);

}  // namespace internal

/// ResponseWriter a dispatched worker writes its response through: bytes
/// go to the peer directly while the socket keeps up, and into the
/// connection's bounded output queue (flushed by the loop on EPOLLOUT)
/// when it does not. Blocks the WORKER when the queue is full; returns
/// false once the connection is gone. Holds the connection's shared write
/// state, so it stays safe to call even after the loop dropped the
/// connection (it just fails).
class ConnWriter : public ResponseWriter {
 public:
  explicit ConnWriter(std::shared_ptr<internal::ConnShared> shared)
      : shared_(std::move(shared)) {}

  bool SendAll(std::string_view data) override;

 private:
  std::shared_ptr<internal::ConnShared> shared_;
};

class EventLoop {
 public:
  /// What the request callback decided (it runs on the loop thread):
  enum class Disposition {
    kInlineKeep,   ///< Response queued via Respond(); keep the connection.
    kInlineClose,  ///< Response queued; close once the bytes drained.
    kDispatched,   ///< Taken by a worker; CompleteDispatch() will follow.
  };

  /// Called on the LOOP THREAD for every fully-parsed request. `writer` is
  /// valid only for kDispatched (pass it to the worker; it owns shared
  /// state, not the loop's connection entry).
  using RequestFn = std::function<Disposition(
      uint64_t conn_id, HttpRequest&& request,
      std::shared_ptr<ConnWriter> writer)>;

  EventLoop(EventLoopOptions options, RequestFn on_request);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Takes the bound listener and spawns the loop thread.
  void Start(Socket listener);

  /// Graceful drain: stop accepting, cut idle connections immediately,
  /// finish every dispatched request, flush its response, then join.
  /// Idempotent.
  void Stop();

  /// Crash simulation: shutdown(SHUT_RDWR) every connection so in-flight
  /// writes fail mid-stream, then join once the (failing) dispatched
  /// handlers finish. Idempotent against Stop().
  void Abort();

  /// Queues an inline response for `conn_id` (LOOP THREAD ONLY — the
  /// request callback's path for transport-answered endpoints). Never
  /// blocks: a queue past its cap disconnects the slow reader instead.
  void Respond(uint64_t conn_id, std::string_view data);

  /// Reports a dispatched request finished (any thread). keep_open=false
  /// drains the remaining output and closes.
  void CompleteDispatch(uint64_t conn_id, bool keep_open);

  /// Wakes the loop so it re-arms writability for a connection whose
  /// worker just queued bytes (called by ConnWriter; any thread).
  void RequestFlush(uint64_t conn_id);

  EventLoopStats stats() const;

 private:
  enum class ConnState { kReading, kDispatched, kDraining };

  struct Conn {
    uint64_t id = 0;
    Socket socket;
    std::shared_ptr<internal::ConnShared> shared;
    HttpRequestParser parser;
    std::string inbuf;
    size_t inpos = 0;
    ConnState state = ConnState::kReading;
    bool want_read = false;
    bool want_write = false;
    bool close_after_drain = false;
    std::chrono::steady_clock::time_point last_read_activity;

    Conn(uint64_t id, Socket socket, size_t max_body)
        : id(id), socket(std::move(socket)), parser(max_body) {}
  };

  struct Command {
    enum class Kind { kFlush, kComplete } kind;
    uint64_t conn_id;
    bool keep_open;
  };

  void Run();
  void Wake();
  void AcceptReady();
  void ReadReady(Conn* conn);
  /// Parses every complete request buffered for `conn`; dispatches or
  /// answers inline. `from_completion` marks requests served without a new
  /// read event (pipelining).
  void DrainParsed(Conn* conn, bool from_completion);
  /// Flushes the shared pending queue; arms/disarms writability.
  void FlushWrites(Conn* conn);
  void CloseConn(uint64_t conn_id);
  void UpdateInterest(Conn* conn, bool read, bool write);
  void SweepTimeouts();
  void HandleCommands();
  bool ShouldExit();

  const EventLoopOptions options_;
  const RequestFn on_request_;

  std::unique_ptr<internal::Poller> poller_;
  Socket listener_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> aborting_{false};

  std::mutex commands_mutex_;
  std::vector<Command> commands_;

  uint64_t next_conn_id_ = 16;  // 1 = listener tag, 2 = wakeup tag.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  size_t dispatch_inflight_ = 0;  // Loop thread only.

  // Stats: written by the loop thread (and workers for queue bytes), read
  // by any scrape.
  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> events_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> pipelined_{0};
  std::atomic<uint64_t> dispatches_{0};
  std::atomic<uint64_t> deferred_writes_{0};
  std::atomic<uint64_t> slow_reader_disconnects_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<size_t> connections_live_{0};
  std::atomic<size_t> dispatch_inflight_stat_{0};
  std::atomic<size_t> output_queue_bytes_{0};

  friend class ConnWriter;
};

}  // namespace shapley::net

#endif  // SHAPLEY_NET_EVENT_LOOP_H_
