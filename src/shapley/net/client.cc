#include "shapley/net/client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "shapley/approx/rng.h"

namespace shapley::net {

namespace {

/// Transport failures throw: there is no server response to hand back.
[[noreturn]] void ThrowTransport(const std::string& what) {
  throw std::runtime_error("ShapleyClient: " + what);
}

SvcResponse DecodeOrThrow(const std::string& body,
                          const std::shared_ptr<Schema>& schema) {
  std::string parse_error;
  std::optional<Json> json = Json::Parse(body, &parse_error);
  if (!json.has_value()) {
    ThrowTransport("undecodable response body: " + parse_error);
  }
  SvcResponse response;
  if (std::optional<SvcError> error =
          DecodeResponse(*json, schema, &response)) {
    ThrowTransport("malformed response: " + error->message);
  }
  return response;
}

}  // namespace

int ReconnectBackoff::DelayMs(size_t attempt) const {
  if (attempt == 0) return 0;
  // cap = min(base·2^(k−1), max), grown in uint64 so a large attempt
  // count cannot overflow past the cap.
  uint64_t cap = static_cast<uint64_t>(std::max(base_ms_, 1));
  const uint64_t max = static_cast<uint64_t>(std::max(max_ms_, 1));
  for (size_t k = 1; k < attempt && cap < max; ++k) cap *= 2;
  cap = std::min(cap, max);
  // Equal jitter: keep at least half the cap (a real pause) and draw the
  // rest from a SplitMix64 stream keyed by (seed, attempt) — pure, so the
  // schedule replays identically and is unit-testable.
  const uint64_t half = cap / 2;
  SplitMix64 rng(MixSeed(seed_, attempt));
  return static_cast<int>(half + rng.NextBelow(cap - half + 1));
}

ShapleyClient::ShapleyClient(std::string host, uint16_t port,
                             ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

ShapleyClient::~ShapleyClient() = default;

bool ShapleyClient::EnsureConnected() {
  // Both halves must be live: the reader is loaned out (and not returned)
  // while a batch response streams, after which the connection restarts.
  if (socket_.valid() && reader_ != nullptr) return true;
  socket_.Close();
  reader_.reset();
  // Dial with the backoff schedule: a backend restarting (or a listen
  // queue momentarily full) deserves a few spaced attempts, not an
  // instant failure — but attempts are capped, so a DEAD backend still
  // fails in bounded time and the router can move on to a fallback shard.
  const ReconnectBackoff backoff(options_.base_backoff_ms,
                                 options_.max_backoff_ms,
                                 options_.backoff_seed);
  const int attempts = std::max(options_.connect_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const int delay = backoff.DelayMs(static_cast<size_t>(attempt));
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    std::string error;
    socket_ = ConnectTcp(host_, port_, &error);
    if (socket_.valid()) {
      reader_ = std::make_unique<SocketReader>(socket_.fd(),
                                               options_.read_timeout_ms);
      return true;
    }
  }
  return false;
}

HttpResponse ShapleyClient::RoundTrip(
    const std::string& method, const std::string& target,
    const std::string& body, bool* chunked,
    std::unique_ptr<SocketReader>* reader_out) {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.headers = {{"Host", host_ + ":" + std::to_string(port_)},
                     {"Accept", "application/json"}};
  if (method == "POST") {
    request.headers.emplace_back("Content-Type", "application/json");
  }
  request.body = body;
  const std::string wire = SerializeRequest(request);

  // One transparent retry: a keep-alive peer may have closed the idle
  // connection since the last call — that is not an error, just reconnect.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool fresh = !socket_.valid();
    if (!EnsureConnected()) {
      ThrowTransport("cannot connect to " + host_ + ":" +
                     std::to_string(port_));
    }
    if (!socket_.SendAll(wire)) {
      socket_.Close();
      reader_.reset();
      if (fresh) ThrowTransport("send failed on a fresh connection");
      continue;
    }
    HttpResponse response;
    const HttpReadResult result = ReadHttpResponse(
        reader_.get(), options_.max_body_bytes, &response, chunked);
    if (result == HttpReadResult::kOk) {
      const std::string* connection =
          FindHeader(response.headers, "Connection");
      const bool server_closes =
          connection != nullptr && *connection == "close";
      if (reader_out != nullptr) {
        *reader_out = std::move(reader_);  // Chunk streaming borrows it.
        if (server_closes) socket_.Close();
      } else if (server_closes || *chunked) {
        socket_.Close();
        reader_.reset();
      }
      return response;
    }
    socket_.Close();
    reader_.reset();
    if (result == HttpReadResult::kClosed && !fresh) continue;
    if (result == HttpReadResult::kTimeout) {
      ThrowTransport("read timeout after " +
                     std::to_string(options_.read_timeout_ms) + " ms");
    }
    if (result == HttpReadResult::kTooLarge) {
      ThrowTransport("response beyond max_body_bytes");
    }
    ThrowTransport("connection failed mid-response");
  }
  ThrowTransport("server closed the connection twice in a row");
}

SvcResponse ShapleyClient::Compute(const SvcRequest& request) {
  const std::shared_ptr<Schema> schema = request.db.schema();
  const std::string body = EncodeRequest(request).Dump();
  bool chunked = false;
  HttpResponse http =
      RoundTrip("POST", "/v1/compute", body, &chunked, nullptr);
  if (chunked) ThrowTransport("/v1/compute answered with a chunked body");
  last_status_ = http.status;
  return DecodeOrThrow(http.body, schema);
}

std::vector<SvcResponse> ShapleyClient::ComputeBatch(
    const std::vector<SvcRequest>& requests) {
  Json batch_array = Json::Arr();
  for (const SvcRequest& request : requests) {
    batch_array.Push(EncodeRequest(request));
  }
  Json batch;
  batch.Set("requests", std::move(batch_array));

  bool chunked = false;
  std::unique_ptr<SocketReader> reader;
  HttpResponse http =
      RoundTrip("POST", "/v1/batch", batch.Dump(), &chunked, &reader);
  last_status_ = http.status;
  if (!chunked) {
    // Whole-batch refusals (bad envelope JSON) come back unchunked; raise
    // the structured message — there are no per-request responses to give.
    auto schema = Schema::Create();
    SvcResponse error = DecodeOrThrow(http.body, schema);
    ThrowTransport("batch refused: " + (error.error.has_value()
                                            ? error.error->message
                                            : http.body));
  }

  // However streaming ends — cleanly or by throw — the connection has
  // protocol state we will not resync; drop it so the next call redials.
  struct ConnectionDropper {
    Socket* socket;
    ~ConnectionDropper() { socket->Close(); }
  } dropper{&socket_};

  // Reassemble completion-order lines into input order via the id tags.
  std::vector<SvcResponse> responses(requests.size());
  std::vector<bool> seen(requests.size(), false);
  std::string pending;  // ndjson lines may straddle chunk boundaries.
  bool done = false;
  std::string chunk;
  while (!done) {
    if (!ReadChunk(reader.get(), options_.max_body_bytes, &chunk, &done)) {
      ThrowTransport("batch stream died mid-way");
    }
    pending += chunk;
    size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string parse_error;
      std::optional<Json> json = Json::Parse(line, &parse_error);
      if (!json.has_value()) {
        ThrowTransport("undecodable batch line: " + parse_error);
      }
      const Json* id_json = json->Find("id");
      std::optional<uint64_t> id =
          id_json != nullptr ? id_json->IfUint64() : std::nullopt;
      if (!id.has_value() || *id >= requests.size()) {
        ThrowTransport("batch line with a bad id");
      }
      // Strip the tag and decode with the matching request's schema.
      Json untagged;
      for (const auto& [key, value] : *json->IfObject()) {
        if (key != "id") untagged.Set(key, value);
      }
      SvcResponse response;
      if (std::optional<SvcError> error = DecodeResponse(
              untagged, requests[*id].db.schema(), &response)) {
        ThrowTransport("malformed batch response: " + error->message);
      }
      responses[*id] = std::move(response);
      seen[*id] = true;
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (!seen[i]) {
      ThrowTransport("batch stream ended without response " +
                     std::to_string(i));
    }
  }
  return responses;
}

Json ShapleyClient::Engines() {
  bool chunked = false;
  HttpResponse http = RoundTrip("GET", "/v1/engines", "", &chunked, nullptr);
  last_status_ = http.status;
  std::string parse_error;
  std::optional<Json> json = Json::Parse(http.body, &parse_error);
  if (!json.has_value()) ThrowTransport("bad /v1/engines body: " + parse_error);
  return *json;
}

Json ShapleyClient::Stats() {
  bool chunked = false;
  HttpResponse http = RoundTrip("GET", "/v1/stats", "", &chunked, nullptr);
  last_status_ = http.status;
  std::string parse_error;
  std::optional<Json> json = Json::Parse(http.body, &parse_error);
  if (!json.has_value()) ThrowTransport("bad /v1/stats body: " + parse_error);
  return *json;
}

std::string ShapleyClient::RawCompute(const std::string& body, int* status) {
  bool chunked = false;
  HttpResponse http =
      RoundTrip("POST", "/v1/compute", body, &chunked, nullptr);
  if (chunked) ThrowTransport("/v1/compute answered with a chunked body");
  last_status_ = http.status;
  if (status != nullptr) *status = http.status;
  return std::move(http.body);
}

void ShapleyClient::RawBatch(
    const std::string& body,
    const std::function<void(const std::string& line)>& on_line) {
  bool chunked = false;
  std::unique_ptr<SocketReader> reader;
  HttpResponse http = RoundTrip("POST", "/v1/batch", body, &chunked, &reader);
  last_status_ = http.status;
  if (!chunked) {
    ThrowTransport("batch refused: " + http.body);
  }

  // However streaming ends — cleanly or by throw — the connection has
  // protocol state we will not resync; drop it so the next call redials.
  struct ConnectionDropper {
    Socket* socket;
    ~ConnectionDropper() { socket->Close(); }
  } dropper{&socket_};

  std::string pending;  // ndjson lines may straddle chunk boundaries.
  bool done = false;
  std::string chunk;
  while (!done) {
    if (!ReadChunk(reader.get(), options_.max_body_bytes, &chunk, &done)) {
      ThrowTransport("batch stream died mid-way");
    }
    pending += chunk;
    size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (line.empty()) continue;
      on_line(line);
    }
  }
}

std::string ShapleyClient::RawGet(const std::string& target, int* status) {
  bool chunked = false;
  HttpResponse http = RoundTrip("GET", target, "", &chunked, nullptr);
  if (chunked) ThrowTransport(target + " answered with a chunked body");
  last_status_ = http.status;
  if (status != nullptr) *status = http.status;
  return std::move(http.body);
}

}  // namespace shapley::net
