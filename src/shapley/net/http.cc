#include "shapley/net/http.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace shapley::net {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::SendAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Socket ConnectTcp(const std::string& host, uint16_t port, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                               &result);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "getaddrinfo(" + host + "): " + gai_strerror(rc);
    }
    return Socket();
  }
  Socket socket;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      socket = Socket(fd);
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(result);
  if (!socket.valid() && error != nullptr) {
    *error = "connect(" + host + ":" + port_text +
             "): " + std::strerror(errno);
  }
  return socket;
}

Socket ListenTcp(const std::string& host, uint16_t port, int backlog,
                 uint16_t* bound_port, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &result);
  if (rc != 0) {
    if (error != nullptr) {
      *error = "getaddrinfo(" + host + "): " + gai_strerror(rc);
    }
    return Socket();
  }
  Socket socket;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      socket = Socket(fd);
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(result);
  if (!socket.valid()) {
    if (error != nullptr) {
      *error = "bind/listen(" + host + ":" + port_text +
               "): " + std::strerror(errno);
    }
    return socket;
  }
  if (bound_port != nullptr) {
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      if (addr.ss_family == AF_INET) {
        *bound_port =
            ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        *bound_port =
            ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
      }
    }
  }
  return socket;
}

bool SocketReader::FillBuffer() {
  if (eof_) return false;
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms_);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) {
      timed_out_ = true;
      return false;
    }
    break;
  }
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }
}

bool SocketReader::ReadLine(std::string* line, size_t max_len) {
  while (true) {
    const size_t nl = buffer_.find('\n', pos_);
    if (nl != std::string::npos) {
      size_t end = nl;
      if (end > pos_ && buffer_[end - 1] == '\r') --end;
      if (end - pos_ > max_len) return false;
      line->assign(buffer_, pos_, end - pos_);
      pos_ = nl + 1;
      // Compact the consumed prefix occasionally so a long-lived keep-alive
      // connection does not accumulate every message it ever read.
      if (pos_ > 64 * 1024) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    if (buffer_.size() - pos_ > max_len) return false;
    if (!FillBuffer()) return false;
  }
}

bool SocketReader::ReadExact(size_t n, std::string* out) {
  while (buffer_.size() - pos_ < n) {
    if (!FillBuffer()) return false;
  }
  out->append(buffer_, pos_, n);
  pos_ += n;
  if (pos_ > 64 * 1024) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

const std::string* FindHeader(const HttpHeaders& headers,
                              std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

namespace {

/// Strict size parse: the WHOLE token must be digits of `base`. Trailing
/// garbage is rejected — "12abc" must not read as 12 (a proxy that parses
/// it differently is a request-smuggling vector), and a chunk-size line
/// "ffzz" must not read as 255.
bool ParseSize(std::string_view text, int base, size_t* out) {
  size_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc() || ptr != text.data() + text.size() || text.empty()) {
    return false;
  }
  *out = value;
  return true;
}

/// Chunk-size line: hex size with an optional ";extension" stripped first;
/// everything before the extension must parse as hex IN FULL.
bool ParseChunkSize(std::string_view line, size_t* out) {
  const size_t semi = line.find(';');
  if (semi != std::string_view::npos) line = line.substr(0, semi);
  return ParseSize(line, 16, out);
}

enum class ContentLength { kAbsent, kOk, kMalformed };

/// Content-Length extraction with duplicate rejection: a message carrying
/// more than one Content-Length header is malformed, full stop. Resolving
/// to the first (what a naive FindHeader does) is how request smuggling
/// starts once a proxy fronts this server and resolves to the LAST.
ContentLength ContentLengthOf(const HttpHeaders& headers, size_t* out) {
  const std::string* found = nullptr;
  for (const auto& [key, value] : headers) {
    if (!EqualsIgnoreCase(key, "Content-Length")) continue;
    if (found != nullptr) return ContentLength::kMalformed;
    found = &value;
  }
  if (found == nullptr) return ContentLength::kAbsent;
  if (!ParseSize(*found, 10, out)) return ContentLength::kMalformed;
  return ContentLength::kOk;
}

/// "METHOD SP target SP version" — EXACTLY three non-empty fields. A
/// target containing a space ("GET /a b HTTP/1.1") must be rejected, not
/// silently re-assembled by a first-space/last-space split.
bool ParseRequestLine(const std::string& line, HttpRequest* out) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  if (line.find(' ', sp2 + 1) != std::string::npos) return false;
  if (sp2 + 1 == line.size()) return false;
  out->method = line.substr(0, sp1);
  out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = line.substr(sp2 + 1);
  return out->version == "HTTP/1.1" || out->version == "HTTP/1.0";
}

/// One "Name: value" header line (leading value whitespace stripped).
bool ParseHeaderLine(const std::string& line, HttpHeaders* headers) {
  const size_t colon = line.find(':');
  if (colon == std::string::npos) return false;
  std::string name = line.substr(0, colon);
  size_t start = colon + 1;
  while (start < line.size() && line[start] == ' ') ++start;
  headers->emplace_back(std::move(name), line.substr(start));
  return true;
}

/// "Name: value" lines until the blank line; false on malformed input.
bool ReadHeaders(SocketReader* reader, HttpHeaders* headers) {
  std::string line;
  // 100 headers is far beyond anything the protocol sends; the cap stops
  // header floods.
  for (int i = 0; i < 100; ++i) {
    if (!reader->ReadLine(&line)) return false;
    if (line.empty()) return true;
    if (!ParseHeaderLine(line, headers)) return false;
  }
  return false;
}

}  // namespace

HttpReadResult ReadHttpRequest(SocketReader* reader, size_t max_body,
                               HttpRequest* out) {
  std::string line;
  if (!reader->ReadLine(&line)) {
    if (reader->TimedOut()) return HttpReadResult::kTimeout;
    return reader->Eof() ? HttpReadResult::kClosed : HttpReadResult::kMalformed;
  }
  // "POST /v1/compute HTTP/1.1" — exactly three fields, strictly.
  if (!ParseRequestLine(line, out)) return HttpReadResult::kMalformed;
  if (!ReadHeaders(reader, &out->headers)) {
    return reader->TimedOut() ? HttpReadResult::kTimeout
                              : HttpReadResult::kMalformed;
  }
  const std::string* te = FindHeader(out->headers, "Transfer-Encoding");
  if (te != nullptr) return HttpReadResult::kMalformed;  // Never sent to us.
  size_t length = 0;
  switch (ContentLengthOf(out->headers, &length)) {
    case ContentLength::kAbsent:
      return HttpReadResult::kOk;  // GETs carry no body.
    case ContentLength::kMalformed:
      return HttpReadResult::kMalformed;
    case ContentLength::kOk:
      break;
  }
  if (length > max_body) return HttpReadResult::kTooLarge;
  if (!reader->ReadExact(length, &out->body)) {
    return reader->TimedOut() ? HttpReadResult::kTimeout
                              : HttpReadResult::kMalformed;
  }
  return HttpReadResult::kOk;
}

HttpReadResult ReadHttpResponse(SocketReader* reader, size_t max_body,
                                HttpResponse* out, bool* chunked) {
  *chunked = false;
  std::string line;
  if (!reader->ReadLine(&line)) {
    if (reader->TimedOut()) return HttpReadResult::kTimeout;
    return reader->Eof() ? HttpReadResult::kClosed : HttpReadResult::kMalformed;
  }
  // "HTTP/1.1 200 OK"
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return HttpReadResult::kMalformed;
  const size_t sp2 = line.find(' ', sp1 + 1);
  const std::string status_text =
      line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                    : sp2 - sp1 - 1);
  size_t status = 0;
  if (!ParseSize(status_text, 10, &status) || status < 100 || status > 599) {
    return HttpReadResult::kMalformed;
  }
  out->status = static_cast<int>(status);
  if (sp2 != std::string::npos) out->reason = line.substr(sp2 + 1);
  if (!ReadHeaders(reader, &out->headers)) {
    return reader->TimedOut() ? HttpReadResult::kTimeout
                              : HttpReadResult::kMalformed;
  }
  const std::string* te = FindHeader(out->headers, "Transfer-Encoding");
  if (te != nullptr && EqualsIgnoreCase(*te, "chunked")) {
    *chunked = true;  // Caller streams with ReadChunk.
    return HttpReadResult::kOk;
  }
  size_t length = 0;
  switch (ContentLengthOf(out->headers, &length)) {
    case ContentLength::kAbsent:
      return HttpReadResult::kOk;
    case ContentLength::kMalformed:
      return HttpReadResult::kMalformed;
    case ContentLength::kOk:
      break;
  }
  if (length > max_body) return HttpReadResult::kTooLarge;
  if (!reader->ReadExact(length, &out->body)) {
    return reader->TimedOut() ? HttpReadResult::kTimeout
                              : HttpReadResult::kMalformed;
  }
  return HttpReadResult::kOk;
}

bool ReadChunk(SocketReader* reader, size_t max_chunk, std::string* chunk,
               bool* done) {
  chunk->clear();
  *done = false;
  std::string line;
  if (!reader->ReadLine(&line)) return false;
  size_t size = 0;
  // Chunk extensions (";...") are permitted by the RFC and stripped; the
  // size before them must be hex IN FULL ("ffzz" is malformed, not 255).
  if (!ParseChunkSize(line, &size)) return false;
  if (size > max_chunk) return false;
  if (size == 0) {
    // Terminal chunk; consume the final CRLF (no trailers in this protocol).
    if (!reader->ReadLine(&line) || !line.empty()) return false;
    *done = true;
    return true;
  }
  if (!reader->ReadExact(size, chunk)) return false;
  if (!reader->ReadLine(&line) || !line.empty()) return false;
  return true;
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  if (!request.body.empty() || request.method == "POST") {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string SerializeResponseHead(int status, std::string_view content_type,
                                  long content_length, bool keep_alive,
                                  const HttpHeaders& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\n";
  if (content_length >= 0) {
    out += "Content-Length: " + std::to_string(content_length) + "\r\n";
  } else {
    out += "Transfer-Encoding: chunked\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string ChunkFrame(std::string_view payload) {
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", payload.size());
  std::string out = size_line;
  out += payload;
  out += "\r\n";
  if (payload.empty()) out = "0\r\n\r\n";
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Entity";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

// ---------------------------------------------------------------------------
// HttpRequestParser — incremental request parsing for the event loop.
// ---------------------------------------------------------------------------

void HttpRequestParser::Reset() {
  phase_ = Phase::kRequestLine;
  line_.clear();
  body_needed_ = 0;
  header_count_ = 0;
  request_ = HttpRequest{};
}

HttpParseStatus HttpRequestParser::ProcessLine() {
  // line_ holds one complete line, CRLF already stripped.
  switch (phase_) {
    case Phase::kRequestLine:
      if (!ParseRequestLine(line_, &request_)) {
        return HttpParseStatus::kMalformed;
      }
      phase_ = Phase::kHeaders;
      return HttpParseStatus::kNeedMore;
    case Phase::kHeaders: {
      if (!line_.empty()) {
        if (++header_count_ > 100 ||
            !ParseHeaderLine(line_, &request_.headers)) {
          return HttpParseStatus::kMalformed;
        }
        return HttpParseStatus::kNeedMore;
      }
      // Blank line: the head is complete — resolve the body framing with
      // the same strict rules as the blocking reader.
      if (FindHeader(request_.headers, "Transfer-Encoding") != nullptr) {
        return HttpParseStatus::kMalformed;  // Requests never chunk to us.
      }
      switch (ContentLengthOf(request_.headers, &body_needed_)) {
        case ContentLength::kMalformed:
          return HttpParseStatus::kMalformed;
        case ContentLength::kAbsent:
          phase_ = Phase::kDone;
          return HttpParseStatus::kDone;
        case ContentLength::kOk:
          break;
      }
      if (body_needed_ > max_body_) return HttpParseStatus::kTooLarge;
      if (body_needed_ == 0) {
        phase_ = Phase::kDone;
        return HttpParseStatus::kDone;
      }
      request_.body.reserve(body_needed_);
      phase_ = Phase::kBody;
      return HttpParseStatus::kNeedMore;
    }
    case Phase::kBody:
    case Phase::kDone:
      break;  // Not line-driven.
  }
  return HttpParseStatus::kMalformed;
}

HttpParseStatus HttpRequestParser::Consume(std::string_view data,
                                           size_t* consumed) {
  *consumed = 0;
  while (true) {
    if (phase_ == Phase::kDone) return HttpParseStatus::kDone;
    if (phase_ == Phase::kBody) {
      const size_t want = body_needed_ - request_.body.size();
      const size_t take = std::min(want, data.size() - *consumed);
      request_.body.append(data.data() + *consumed, take);
      *consumed += take;
      if (request_.body.size() < body_needed_) {
        return HttpParseStatus::kNeedMore;
      }
      phase_ = Phase::kDone;
      return HttpParseStatus::kDone;
    }
    // Head phases are line-driven: accumulate up to the next LF.
    const size_t nl = data.find('\n', *consumed);
    if (nl == std::string_view::npos) {
      line_.append(data.data() + *consumed, data.size() - *consumed);
      *consumed = data.size();
      // A head line that never ends is a header bomb, not slow input.
      return line_.size() > max_line_ ? HttpParseStatus::kMalformed
                                      : HttpParseStatus::kNeedMore;
    }
    line_.append(data.data() + *consumed, nl - *consumed);
    *consumed = nl + 1;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (line_.size() > max_line_) return HttpParseStatus::kMalformed;
    const HttpParseStatus status = ProcessLine();
    line_.clear();
    if (status != HttpParseStatus::kNeedMore) return status;
  }
}

}  // namespace shapley::net
