#include "shapley/net/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace shapley::net {

namespace {

/// Shortest round-trip formatting via std::to_chars: re-parsing the text
/// yields the identical double, and equal doubles always print alike —
/// both halves of the codec's bit-identical contract.
std::string DoubleToText(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf.
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, ptr);
}

}  // namespace

Json Json::Bool(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = DoubleToText(value);
  if (j.scalar_ == "null") j.kind_ = Kind::kNull;
  return j;
}

Json Json::Number(int64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(value);
  return j;
}

Json Json::Number(uint64_t value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::to_string(value);
  return j;
}

Json Json::NumberToken(std::string raw_literal) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::move(raw_literal);
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(value);
  return j;
}

Json Json::Arr(Array items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(items);
  return j;
}

Json Json::Obj(Object members) {
  Json j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(members);
  return j;
}

std::optional<bool> Json::IfBool() const {
  if (kind_ != Kind::kBool) return std::nullopt;
  return bool_;
}

std::optional<double> Json::IfDouble() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  // from_chars, not strtod: strtod honors LC_NUMERIC, so a host process
  // under a comma-decimal locale would silently read "0.05" as 0.
  // from_chars is locale-independent and the exact inverse of the
  // to_chars the writer uses, and accepts every RFC 8259 literal the
  // parser admitted.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(scalar_.data(),
                                   scalar_.data() + scalar_.size(), value);
  if (ec == std::errc::result_out_of_range) {
    // Representable-overflow literals clamp like strtod would (±HUGE_VAL
    // keeps the sign); the codec's fields never legitimately get here.
    return scalar_[0] == '-' ? -std::numeric_limits<double>::infinity()
                             : std::numeric_limits<double>::infinity();
  }
  if (ec != std::errc() || ptr != scalar_.data() + scalar_.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<int64_t> Json::IfInt64() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(scalar_.data(),
                                   scalar_.data() + scalar_.size(), value);
  if (ec != std::errc() || ptr != scalar_.data() + scalar_.size()) {
    return std::nullopt;  // Fractional, exponent form, or out of range.
  }
  return value;
}

std::optional<uint64_t> Json::IfUint64() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(scalar_.data(),
                                   scalar_.data() + scalar_.size(), value);
  if (ec != std::errc() || ptr != scalar_.data() + scalar_.size()) {
    return std::nullopt;
  }
  return value;
}

const std::string* Json::IfString() const {
  return kind_ == Kind::kString ? &scalar_ : nullptr;
}

const Json::Array* Json::IfArray() const {
  return kind_ == Kind::kArray ? &array_ : nullptr;
}

const Json::Object* Json::IfObject() const {
  return kind_ == Kind::kObject ? &object_ : nullptr;
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json* Json::FindMutable(std::string_view key) {
  if (kind_ != Kind::kObject) return nullptr;
  for (auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::Set(std::string key, Json value) {
  kind_ = Kind::kObject;
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

// ----------------------------------------------------------------- writer --

namespace {

void EscapeInto(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char ch : text) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          out->push_back(ch);  // UTF-8 passes through untouched.
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      *out += scalar_;
      break;
    case Kind::kString:
      EscapeInto(scalar_, out);
      break;
    case Kind::kArray:
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    case Kind::kObject:
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        EscapeInto(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      break;
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// ----------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Run(std::string* error) {
    std::optional<Json> value = ParseValue(0);
    if (!value.has_value()) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = At("trailing characters after the document");
      }
      return std::nullopt;
    }
    return value;
  }

 private:
  std::string At(const std::string& reason) const {
    return "byte " + std::to_string(pos_) + ": " + reason;
  }

  std::optional<Json> Fail(const std::string& reason) {
    if (error_.empty()) error_ = At(reason);
    return std::nullopt;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue(size_t depth) {
    if (depth > Json::kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char ch = text_[pos_];
    if (ch == '{') return ParseObject(depth);
    if (ch == '[') return ParseArray(depth);
    if (ch == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) return std::nullopt;
      return Json::Str(std::move(*s));
    }
    if (ConsumeWord("true")) return Json::Bool(true);
    if (ConsumeWord("false")) return Json::Bool(false);
    if (ConsumeWord("null")) return Json::Null();
    return ParseNumber();
  }

  std::optional<Json> ParseObject(size_t depth) {
    Consume('{');
    Json::Object members;
    SkipSpace();
    if (Consume('}')) return Json::Obj(std::move(members));
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected a string key");
      }
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) return std::nullopt;
      for (const auto& [name, unused] : members) {
        if (name == *key) return Fail("duplicate key \"" + *key + "\"");
      }
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after key");
      std::optional<Json> value = ParseValue(depth + 1);
      if (!value.has_value()) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Json::Obj(std::move(members));
      return Fail("expected ',' or '}' in object");
    }
  }

  std::optional<Json> ParseArray(size_t depth) {
    Consume('[');
    Json::Array items;
    SkipSpace();
    if (Consume(']')) return Json::Arr(std::move(items));
    while (true) {
      std::optional<Json> value = ParseValue(depth + 1);
      if (!value.has_value()) return std::nullopt;
      items.push_back(std::move(*value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Json::Arr(std::move(items));
      return Fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
        return std::nullopt;
      }
      const unsigned char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch < 0x20) {
        Fail("raw control character in string");
        return std::nullopt;
      }
      if (ch != '\\') {
        out.push_back(static_cast<char>(ch));
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("dangling escape");
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::optional<uint32_t> cp = ParseHex4();
          if (!cp.has_value()) return std::nullopt;
          // Surrogate pair → one code point.
          if (*cp >= 0xD800 && *cp <= 0xDBFF) {
            if (!ConsumeWord("\\u")) {
              Fail("lone high surrogate");
              return std::nullopt;
            }
            std::optional<uint32_t> low = ParseHex4();
            if (!low.has_value()) return std::nullopt;
            if (*low < 0xDC00 || *low > 0xDFFF) {
              Fail("invalid low surrogate");
              return std::nullopt;
            }
            *cp = 0x10000 + ((*cp - 0xD800) << 10) + (*low - 0xDC00);
          } else if (*cp >= 0xDC00 && *cp <= 0xDFFF) {
            Fail("lone low surrogate");
            return std::nullopt;
          }
          AppendUtf8(*cp, &out);
          break;
        }
        default:
          Fail("unknown escape");
          return std::nullopt;
      }
    }
  }

  std::optional<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return std::nullopt;
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = text_[pos_++];
      value <<= 4;
      if (ch >= '0' && ch <= '9') {
        value |= static_cast<uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        value |= static_cast<uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        value |= static_cast<uint32_t>(ch - 'A' + 10);
      } else {
        Fail("non-hex digit in \\u escape");
        return std::nullopt;
      }
    }
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<Json> ParseNumber() {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // Validated here, then stored as the RAW slice — what Dump() re-emits.
    const size_t start = pos_;
    Consume('-');
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected digits after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digits");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return Json::NumberToken(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::Parse(std::string_view text, std::string* error) {
  Parser parser(text);
  return parser.Run(error);
}

}  // namespace shapley::net
