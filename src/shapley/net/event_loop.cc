#include "shapley/net/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace shapley::net {

namespace internal {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

#if defined(__linux__)

class EpollPoller : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  void Add(int fd, uint64_t tag, bool read, bool write) override {
    epoll_event ev = Event_(tag, read, write);
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void Update(int fd, uint64_t tag, bool read, bool write) override {
    epoll_event ev = Event_(tag, read, write);
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  bool Wait(int timeout_ms, std::vector<Event>* out) override {
    out->clear();
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return false;
    for (int i = 0; i < n; ++i) {
      Event event;
      event.tag = events[i].data.u64;
      event.readable = (events[i].events & EPOLLIN) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.hangup =
          (events[i].events & (EPOLLHUP | EPOLLRDHUP | EPOLLERR)) != 0;
      out->push_back(event);
    }
    return true;
  }

  bool using_epoll() const override { return true; }

 private:
  static epoll_event Event_(uint64_t tag, bool read, bool write) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u) | EPOLLRDHUP;
    ev.data.u64 = tag;
    return ev;
  }

  int epfd_;
};

#endif  // defined(__linux__)

/// Portable poll(2) backend: a flat pollfd array with swap-erase removal.
/// O(n) per wait is perfectly fine at the connection counts a single
/// process serves; the point is identical SEMANTICS to the epoll backend.
class PollPoller : public Poller {
 public:
  void Add(int fd, uint64_t tag, bool read, bool write) override {
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, Events_(read, write), 0});
    tags_.push_back(tag);
  }

  void Update(int fd, uint64_t tag, bool read, bool write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    fds_[it->second].events = Events_(read, write);
    tags_[it->second] = tag;
  }

  void Remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const size_t i = it->second;
    const size_t last = fds_.size() - 1;
    if (i != last) {
      fds_[i] = fds_[last];
      tags_[i] = tags_[last];
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
    tags_.pop_back();
    index_.erase(it);
  }

  bool Wait(int timeout_ms, std::vector<Event>* out) override {
    out->clear();
    int n;
    do {
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return false;
    for (size_t i = 0; i < fds_.size() && n > 0; ++i) {
      if (fds_[i].revents == 0) continue;
      --n;
      Event event;
      event.tag = tags_[i];
      event.readable = (fds_[i].revents & POLLIN) != 0;
      event.writable = (fds_[i].revents & POLLOUT) != 0;
      event.hangup =
          (fds_[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out->push_back(event);
    }
    return true;
  }

  bool using_epoll() const override { return false; }

 private:
  static short Events_(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::vector<uint64_t> tags_;
  std::unordered_map<int, size_t> index_;
};

}  // namespace

std::unique_ptr<Poller> MakePoller(bool force_poll) {
#if defined(__linux__)
  if (!force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) return epoll;
  }
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace internal

namespace {

constexpr uint64_t kListenerTag = 1;
constexpr uint64_t kWakeTag = 2;
constexpr int kWaitMs = 200;

}  // namespace

// ---------------------------------------------------------------------------
// ConnWriter — the worker-side response path.
// ---------------------------------------------------------------------------

bool ConnWriter::SendAll(std::string_view data) {
  internal::ConnShared& shared = *shared_;
  std::unique_lock<std::mutex> lock(shared.mutex);
  size_t off = 0;
  while (off < data.size()) {
    if (shared.closed) return false;
    if (shared.pending.size() == shared.pending_off) {
      // Queue empty: write straight to the socket while the peer keeps up
      // — the common case costs no loop round-trip at all.
      const ssize_t n = ::send(shared.fd, data.data() + off,
                               data.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        shared.last_write_progress = std::chrono::steady_clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        // Peer gone: the loop reaps the connection when the request
        // completes; this response is abandoned.
        shared.closed = true;
        return false;
      }
      shared.loop->deferred_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    const size_t queued = shared.pending.size() - shared.pending_off;
    if (queued >= shared.cap) {
      // BOUNDED output queue: the producer blocks until the loop drains
      // below the cap (or the slow reader is disconnected) — a stalled
      // peer can pin at most `cap` bytes of this process, never the whole
      // response stream.
      shared.drained.wait(lock);
      continue;
    }
    const size_t take = std::min(shared.cap - queued, data.size() - off);
    if (queued == 0) {
      shared.last_write_progress = std::chrono::steady_clock::now();
    }
    shared.pending.append(data.data() + off, take);
    off += take;
    shared.loop->output_queue_bytes_.fetch_add(take,
                                               std::memory_order_relaxed);
    shared.loop->RequestFlush(shared.id);
  }
  return true;
}

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

EventLoop::EventLoop(EventLoopOptions options, RequestFn on_request)
    : options_(std::move(options)), on_request_(std::move(on_request)) {}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::Start(Socket listener) {
  listener_ = std::move(listener);
  internal::SetNonBlocking(listener_.fd());
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    listener_.Close();
    return;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  internal::SetNonBlocking(wake_read_fd_);
  internal::SetNonBlocking(wake_write_fd_);
  poller_ = internal::MakePoller(options_.force_poll);
  poller_->Add(listener_.fd(), kListenerTag, /*read=*/true, /*write=*/false);
  poller_->Add(wake_read_fd_, kWakeTag, /*read=*/true, /*write=*/false);
  running_.store(true);
  stopping_.store(false);
  aborting_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  Wake();
  if (thread_.joinable()) thread_.join();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
}

void EventLoop::Abort() {
  aborting_.store(true);
  Stop();
}

void EventLoop::Wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  // EAGAIN means a wake-up is already pending — exactly what we need.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void EventLoop::RequestFlush(uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> lock(commands_mutex_);
    commands_.push_back(
        Command{Command::Kind::kFlush, conn_id, /*keep_open=*/true});
  }
  Wake();
}

void EventLoop::CompleteDispatch(uint64_t conn_id, bool keep_open) {
  {
    std::lock_guard<std::mutex> lock(commands_mutex_);
    commands_.push_back(
        Command{Command::Kind::kComplete, conn_id, keep_open});
  }
  Wake();
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats stats;
  stats.wakeups = wakeups_.load(std::memory_order_relaxed);
  stats.events = events_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.pipelined = pipelined_.load(std::memory_order_relaxed);
  stats.dispatches = dispatches_.load(std::memory_order_relaxed);
  stats.deferred_writes = deferred_writes_.load(std::memory_order_relaxed);
  stats.slow_reader_disconnects =
      slow_reader_disconnects_.load(std::memory_order_relaxed);
  stats.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  stats.connections_live = connections_live_.load(std::memory_order_relaxed);
  stats.dispatch_inflight =
      dispatch_inflight_stat_.load(std::memory_order_relaxed);
  stats.output_queue_bytes =
      output_queue_bytes_.load(std::memory_order_relaxed);
  stats.using_epoll = poller_ != nullptr && poller_->using_epoll();
  return stats;
}

void EventLoop::Run() {
  std::vector<internal::Poller::Event> events;
  bool stop_applied = false;
  while (true) {
    HandleCommands();
    const bool stopping = stopping_.load();
    if (stopping && !stop_applied) {
      stop_applied = true;
      // Close the door and cut every connection that is not serving a
      // request: idle keep-alive waits end NOW, not at their read timeout.
      poller_->Remove(listener_.fd());
      listener_.Close();
      const bool aborting = aborting_.load();
      std::vector<uint64_t> cut;
      for (auto& [id, conn] : conns_) {
        if (aborting) {
          // Crash simulation: fail the write side too, so a response being
          // streamed dies mid-flight from the client's point of view.
          std::lock_guard<std::mutex> lock(conn->shared->mutex);
          conn->shared->closed = true;
          if (conn->shared->fd >= 0) {
            ::shutdown(conn->shared->fd, SHUT_RDWR);
          }
          conn->shared->drained.notify_all();
        }
        if (conn->state == ConnState::kReading || aborting) {
          cut.push_back(id);
        }
      }
      for (uint64_t id : cut) {
        auto it = conns_.find(id);
        // Dispatched connections keep their entry until the worker
        // completes (the bookkeeping must survive), even under abort.
        if (it != conns_.end() &&
            it->second->state != ConnState::kDispatched) {
          CloseConn(id);
        }
      }
    }
    if (stop_applied && ShouldExit()) break;

    if (!poller_->Wait(kWaitMs, &events)) break;
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    for (const internal::Poller::Event& event : events) {
      events_.fetch_add(1, std::memory_order_relaxed);
      if (event.tag == kListenerTag) {
        if (!stopping_.load()) AcceptReady();
        continue;
      }
      if (event.tag == kWakeTag) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(event.tag);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (event.writable) {
        FlushWrites(conn);
        if (conns_.find(event.tag) == conns_.end()) continue;
      }
      if (event.readable && conn->state == ConnState::kReading) {
        ReadReady(conn);
        if (conns_.find(event.tag) == conns_.end()) continue;
      }
      if (event.hangup && conn->state == ConnState::kReading) {
        CloseConn(event.tag);
      }
    }
    SweepTimeouts();
  }
  // Loop exit: whatever is left (abort leftovers) goes down hard.
  std::vector<uint64_t> leftover;
  leftover.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) leftover.push_back(id);
  for (uint64_t id : leftover) CloseConn(id);
  listener_.Close();
}

bool EventLoop::ShouldExit() {
  if (aborting_.load()) return dispatch_inflight_ == 0;
  // Graceful: every dispatched request completed AND every connection
  // (including ones still draining their final response) is gone.
  return dispatch_inflight_ == 0 && conns_.empty();
}

void EventLoop::HandleCommands() {
  std::vector<Command> commands;
  {
    std::lock_guard<std::mutex> lock(commands_mutex_);
    commands.swap(commands_);
  }
  for (const Command& command : commands) {
    auto it = conns_.find(command.conn_id);
    if (command.kind == Command::Kind::kComplete) {
      if (dispatch_inflight_ > 0) --dispatch_inflight_;
      dispatch_inflight_stat_.store(dispatch_inflight_,
                                    std::memory_order_relaxed);
      if (it == conns_.end()) continue;  // Closed under the worker.
      Conn* conn = it->second.get();
      bool peer_gone;
      {
        std::lock_guard<std::mutex> lock(conn->shared->mutex);
        peer_gone = conn->shared->closed;
      }
      if (peer_gone) {
        CloseConn(command.conn_id);
        continue;
      }
      if (!command.keep_open || stopping_.load()) {
        conn->state = ConnState::kDraining;
        conn->close_after_drain = true;
        FlushWrites(conn);
        continue;
      }
      // Keep-alive re-arm: a pipelined follow-up may already be buffered —
      // serve it without waiting for another byte off the wire.
      conn->state = ConnState::kReading;
      conn->last_read_activity = std::chrono::steady_clock::now();
      DrainParsed(conn, /*from_completion=*/true);
    } else {  // kFlush
      if (it == conns_.end()) continue;
      FlushWrites(it->second.get());
    }
  }
}

void EventLoop::AcceptReady() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (or a transient accept error): back to the poller.
    }
    Socket socket(fd);
    internal::SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (conns_.size() >= options_.max_connections) {
      // Back-pressure at the door: a prebuilt 503, best effort — the
      // loop never blocks for a peer that will not read it.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      [[maybe_unused]] const ssize_t n =
          ::send(fd, options_.response_503.data(),
                 options_.response_503.size(), MSG_NOSIGNAL);
      continue;  // Socket closes on scope exit.
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(id, std::move(socket),
                                       options_.max_body_bytes);
    conn->shared = std::make_shared<internal::ConnShared>();
    conn->shared->loop = this;
    conn->shared->id = id;
    conn->shared->fd = fd;
    conn->shared->cap = options_.max_output_queue_bytes;
    conn->shared->last_write_progress = std::chrono::steady_clock::now();
    conn->last_read_activity = conn->shared->last_write_progress;
    conn->want_read = true;
    conn->want_write = false;
    poller_->Add(fd, id, /*read=*/true, /*write=*/false);
    conns_[id] = std::move(conn);
    connections_live_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void EventLoop::UpdateInterest(Conn* conn, bool read, bool write) {
  if (conn->want_read == read && conn->want_write == write) return;
  conn->want_read = read;
  conn->want_write = write;
  poller_->Update(conn->socket.fd(), conn->id, read, write);
}

void EventLoop::ReadReady(Conn* conn) {
  const uint64_t id = conn->id;
  bool eof = false;
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->socket.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      conn->last_read_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(id);  // Hard transport error.
    return;
  }
  DrainParsed(conn, /*from_completion=*/false);
  if (conns_.find(id) == conns_.end()) return;
  if (eof && conn->state == ConnState::kReading) {
    // Clean keep-alive close, or a client cut off mid-message — either
    // way there is no request left to serve on this connection.
    CloseConn(id);
  }
}

void EventLoop::DrainParsed(Conn* conn, bool from_completion) {
  const uint64_t id = conn->id;
  size_t parsed_here = 0;
  while (conn->state == ConnState::kReading) {
    const std::string_view data(conn->inbuf.data() + conn->inpos,
                                conn->inbuf.size() - conn->inpos);
    size_t consumed = 0;
    const HttpParseStatus status = conn->parser.Consume(data, &consumed);
    conn->inpos += consumed;
    if (conn->inpos > 64 * 1024) {
      conn->inbuf.erase(0, conn->inpos);
      conn->inpos = 0;
    }
    if (status == HttpParseStatus::kNeedMore) break;
    if (status == HttpParseStatus::kMalformed ||
        status == HttpParseStatus::kTooLarge) {
      Respond(id, status == HttpParseStatus::kMalformed
                      ? options_.response_400
                      : options_.response_413);
      if (conns_.find(id) == conns_.end()) return;  // Respond may close.
      conn->state = ConnState::kDraining;
      conn->close_after_drain = true;
      break;
    }
    // One full request.
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (from_completion || parsed_here > 0) {
      pipelined_.fetch_add(1, std::memory_order_relaxed);
    }
    ++parsed_here;
    HttpRequest request = conn->parser.Take();
    conn->parser.Reset();
    auto writer = std::make_shared<ConnWriter>(conn->shared);
    const Disposition disposition =
        on_request_(id, std::move(request), std::move(writer));
    if (conns_.find(id) == conns_.end()) return;  // Inline send may close.
    if (disposition == Disposition::kDispatched) {
      conn->state = ConnState::kDispatched;
      ++dispatch_inflight_;
      dispatch_inflight_stat_.store(dispatch_inflight_,
                                    std::memory_order_relaxed);
      dispatches_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (disposition == Disposition::kInlineClose) {
      conn->state = ConnState::kDraining;
      conn->close_after_drain = true;
      break;
    }
    // kInlineKeep: loop — a pipelined follower may already be buffered.
  }
  // Re-arm the poller for whatever the connection now needs.
  bool queued;
  {
    std::lock_guard<std::mutex> lock(conn->shared->mutex);
    queued = conn->shared->pending.size() > conn->shared->pending_off;
  }
  switch (conn->state) {
    case ConnState::kReading:
      UpdateInterest(conn, /*read=*/true, /*write=*/queued);
      break;
    case ConnState::kDispatched:
      UpdateInterest(conn, /*read=*/false, /*write=*/queued);
      break;
    case ConnState::kDraining:
      UpdateInterest(conn, /*read=*/false, /*write=*/true);
      FlushWrites(conn);  // May close (queue empty → immediate).
      break;
  }
}

void EventLoop::Respond(uint64_t conn_id, std::string_view data) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->shared->mutex);
    internal::ConnShared& shared = *conn->shared;
    if (shared.closed) return;
    size_t off = 0;
    if (shared.pending.size() == shared.pending_off) {
      while (off < data.size()) {
        const ssize_t n = ::send(shared.fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
          off += static_cast<size_t>(n);
          shared.last_write_progress = std::chrono::steady_clock::now();
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN → queue the rest; hard error → overflow below.
      }
    }
    if (off < data.size()) {
      const size_t queued = shared.pending.size() - shared.pending_off;
      if (queued + (data.size() - off) > shared.cap) {
        // The LOOP never blocks: a peer that cannot absorb even the
        // bounded queue of transport responses is a slow reader.
        overflow = true;
      } else {
        if (queued == 0) {
          shared.last_write_progress = std::chrono::steady_clock::now();
          deferred_writes_.fetch_add(1, std::memory_order_relaxed);
        }
        shared.pending.append(data.data() + off, data.size() - off);
        output_queue_bytes_.fetch_add(data.size() - off,
                                      std::memory_order_relaxed);
      }
    }
  }
  if (overflow) {
    slow_reader_disconnects_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(conn_id);
    return;
  }
  bool queued_now;
  {
    std::lock_guard<std::mutex> lock(conn->shared->mutex);
    queued_now = conn->shared->pending.size() > conn->shared->pending_off;
  }
  if (queued_now) {
    UpdateInterest(conn, conn->want_read, /*write=*/true);
  }
}

void EventLoop::FlushWrites(Conn* conn) {
  const uint64_t id = conn->id;
  internal::ConnShared& shared = *conn->shared;
  bool dead = false;
  bool empty;
  {
    std::lock_guard<std::mutex> lock(shared.mutex);
    if (shared.closed) {
      dead = true;
    } else {
      while (shared.pending_off < shared.pending.size()) {
        const ssize_t n =
            ::send(shared.fd, shared.pending.data() + shared.pending_off,
                   shared.pending.size() - shared.pending_off, MSG_NOSIGNAL);
        if (n > 0) {
          shared.pending_off += static_cast<size_t>(n);
          output_queue_bytes_.fetch_sub(static_cast<size_t>(n),
                                        std::memory_order_relaxed);
          shared.last_write_progress = std::chrono::steady_clock::now();
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        dead = true;  // Peer gone mid-response.
        break;
      }
      if (shared.pending_off == shared.pending.size()) {
        shared.pending.clear();
        shared.pending_off = 0;
      } else if (shared.pending_off > 64 * 1024) {
        shared.pending.erase(0, shared.pending_off);
        shared.pending_off = 0;
      }
    }
    empty = shared.pending.empty();
    // A blocked producer resumes as soon as the queue has visible space.
    shared.drained.notify_all();
  }
  if (dead) {
    if (conn->state == ConnState::kDispatched) {
      // The worker still owns the request; fail its writes and let the
      // completion command reap the connection.
      std::lock_guard<std::mutex> lock(shared.mutex);
      shared.closed = true;
      shared.drained.notify_all();
    } else {
      CloseConn(id);
    }
    return;
  }
  if (empty && conn->state == ConnState::kDraining &&
      conn->close_after_drain) {
    CloseConn(id);
    return;
  }
  UpdateInterest(conn, conn->want_read, /*write=*/!empty);
}

void EventLoop::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  {
    std::lock_guard<std::mutex> lock(conn->shared->mutex);
    conn->shared->closed = true;
    conn->shared->fd = -1;
    const size_t queued =
        conn->shared->pending.size() - conn->shared->pending_off;
    if (queued > 0) {
      output_queue_bytes_.fetch_sub(queued, std::memory_order_relaxed);
    }
    conn->shared->pending.clear();
    conn->shared->pending_off = 0;
    conn->shared->drained.notify_all();
  }
  if (conn->socket.valid()) poller_->Remove(conn->socket.fd());
  conn->socket.Close();
  conns_.erase(it);
  connections_live_.store(conns_.size(), std::memory_order_relaxed);
}

void EventLoop::SweepTimeouts() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<uint64_t> idle;
  std::vector<uint64_t> stalled;
  for (const auto& [id, conn] : conns_) {
    if (conn->state == ConnState::kReading &&
        now - conn->last_read_activity >
            std::chrono::milliseconds(options_.read_timeout_ms)) {
      idle.push_back(id);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn->shared->mutex);
    const bool queued =
        conn->shared->pending.size() > conn->shared->pending_off;
    if (queued &&
        now - conn->shared->last_write_progress >
            std::chrono::milliseconds(options_.write_stall_timeout_ms)) {
      stalled.push_back(id);
    }
  }
  for (uint64_t id : idle) {
    read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    // A peer that STARTED a request and stalled gets told before the
    // close (the prebuilt 408); an idle keep-alive connection between
    // requests has nothing outstanding and still closes silently.
    if (conn->parser.mid_message() && !options_.response_408.empty()) {
      Respond(id, options_.response_408);
      if (conns_.find(id) == conns_.end()) continue;  // Respond may close.
      conn->state = ConnState::kDraining;
      conn->close_after_drain = true;
      UpdateInterest(conn, /*read=*/false, /*write=*/true);
      FlushWrites(conn);  // Queue empty → immediate close.
    } else {
      CloseConn(id);
    }
  }
  for (uint64_t id : stalled) {
    // Slow-reader disconnect: the peer stopped draining its responses;
    // cutting it releases the queue AND unblocks a producer stuck in
    // ConnWriter::SendAll.
    slow_reader_disconnects_.fetch_add(1, std::memory_order_relaxed);
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    if (it->second->state == ConnState::kDispatched) {
      std::lock_guard<std::mutex> lock(it->second->shared->mutex);
      it->second->shared->closed = true;
      if (it->second->shared->fd >= 0) {
        ::shutdown(it->second->shared->fd, SHUT_RDWR);
      }
      it->second->shared->drained.notify_all();
    } else {
      CloseConn(id);
    }
  }
}

}  // namespace shapley::net
