// Regular path queries on a graph database: which road segments matter for
// reachability? Classifies the query by the RPQ dichotomy (Corollary 4.3)
// and computes the Shapley value of every edge.

#include <iostream>

#include "shapley/analysis/classifier.h"
#include "shapley/data/parser.h"
#include "shapley/engines/svc.h"
#include "shapley/query/path_query.h"

int main() {
  using namespace shapley;

  auto schema = Schema::Create();
  // A small road network: 'road' edges, plus a 'ferry' shortcut.
  Database network = ParseDatabase(schema,
      "road(depot, a1) road(a1, a2) road(a2, port) "
      "road(depot, b1) road(b1, port) "
      "ferry(depot, port)");

  // Reachability from depot to port by roads only, or roads then a ferry:
  // L = road road* | ferry.
  RpqPtr query = RegularPathQuery::Create(
      schema, Regex::Parse("road road* | ferry"),
      Constant::Named("depot"), Constant::Named("port"));

  std::cout << "Query: " << query->ToString() << "\n";
  std::cout << "Network: " << network.ToString() << "\n";
  std::cout << "Dichotomy: " << ToString(ClassifySvcComplexity(*query))
            << "\n\n";
  std::cout << "Reachable today? "
            << (query->Evaluate(network) ? "yes" : "no") << "\n\n";

  PartitionedDatabase db = PartitionedDatabase::AllEndogenous(network);
  BruteForceSvc svc;
  std::cout << "Shapley value of each segment (responsibility for "
               "reachability):\n";
  for (const auto& [fact, value] : svc.AllValues(*query, db)) {
    std::cout << "  " << fact.ToString(*schema) << " = " << value.ToString()
              << "  (~" << value.ToDouble() << ")\n";
  }

  std::cout << "\nNote: the ferry (a one-hop alternative) and the two-hop "
               "b-route carry\nmore value per edge than the three-hop "
               "a-route, matching intuition.\n";
  return 0;
}
