// Tour of the ShapleyService serving API (service/shapley_service.h):
// one long-lived service, typed requests submitted asynchronously, typed
// responses with the dichotomy verdict attached, structured errors instead
// of exceptions, and automatic classifier-driven engine routing.
//
// Run: build/example_service_demo

#include <chrono>
#include <iostream>
#include <vector>

#include "shapley/data/parser.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

using namespace shapley;

namespace {

QueryPtr Parse(const std::shared_ptr<Schema>& schema, const char* text) {
  UcqPtr ucq = ParseUcq(schema, text);
  if (ucq->disjuncts().size() == 1) return ucq->disjuncts()[0];
  return ucq;
}

void Show(const char* label, const std::shared_ptr<Schema>& schema,
          const SvcResponse& response) {
  std::cout << "--- " << label << " ---\n"
            << "  mode:    " << ToString(response.mode) << "\n"
            << "  verdict: " << ToString(response.verdict) << "\n";
  if (!response.engine.empty()) {
    std::cout << "  engine:  " << response.engine
              << (response.routed_by_classifier ? " (classifier-routed)"
                                                : " (override)")
              << "\n";
  }
  if (!response.ok()) {
    std::cout << "  error:   " << response.error->ToString() << "\n";
    return;
  }
  for (const auto& [fact, value] : response.values) {
    std::cout << "  " << fact.ToString(*schema) << " = " << value.ToString()
              << "\n";
  }
  for (const auto& [fact, value] : response.ranked) {
    std::cout << "  " << fact.ToString(*schema) << " = " << value.ToString()
              << "\n";
  }
}

}  // namespace

int main() {
  auto schema = Schema::Create();

  // One service for the whole process: it owns the thread pool and the
  // size-aware oracle cache every request shares.
  ServiceOptions options;
  options.threads = 4;
  ShapleyService service(options);

  // The dichotomy in routing form. "R(x), S(x,y)" is a hierarchical
  // sjf-CQ — the classifier proves SVC is poly-time (a matter of counting)
  // and the service picks the lifted FGMC engine. "R(x), S(x,y), T(y)" is
  // the classic non-hierarchical query — #P-hard, served by guarded brute
  // force instead.
  QueryPtr easy = Parse(schema, "R(x), S(x,y)");
  QueryPtr hard = Parse(schema, "R(x), S(x,y), T(y)");
  PartitionedDatabase db = ParsePartitionedDatabase(
      schema, "R(a) R(b) S(a,c) S(b,c) T(c) | S(a,d)");

  // Submit() is non-blocking; futures resolve as pool workers finish.
  SvcRequest easy_request;
  easy_request.query = easy;
  easy_request.db = db;

  SvcRequest hard_request;
  hard_request.query = hard;
  hard_request.db = db;
  hard_request.mode = SvcMode::kTopK;
  hard_request.top_k = 2;

  std::vector<std::future<SvcResponse>> futures;
  futures.push_back(service.Submit(easy_request));
  futures.push_back(service.Submit(hard_request));
  Show("hierarchical sjf-CQ, AllValues (auto → lifted)", schema,
       futures[0].get());
  Show("non-hierarchical CQ, TopK(2) (auto → brute force)", schema,
       futures[1].get());

  // ClassifyOnly: the verdict without running any engine.
  SvcRequest classify;
  classify.query = hard;
  classify.mode = SvcMode::kClassifyOnly;
  Show("classify-only", schema, service.Compute(classify));

  // Per-request override: force the d-DNNF pipeline.
  SvcRequest ddnnf_request;
  ddnnf_request.query = easy;
  ddnnf_request.db = db;
  ddnnf_request.engine = "ddnnf";
  Show("override engine=ddnnf", schema, service.Compute(ddnnf_request));

  // Structured failure: an unsupported override is an error value, not an
  // exception out of a worker thread.
  SvcRequest unsupported;
  unsupported.query = hard;  // Non-hierarchical: the lifted plan refuses.
  unsupported.db = db;
  unsupported.engine = "lifted";
  Show("override engine=lifted on a non-hierarchical query", schema,
       service.Compute(unsupported));

  // Deadlines: a request that missed its budget fails fast.
  SvcRequest late;
  late.query = easy;
  late.db = db;
  late.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  Show("already-expired deadline", schema, service.Compute(late));

  std::cout << "--- service counters ---\n"
            << "  submitted: " << service.requests_submitted() << "\n"
            << "  completed: " << service.requests_completed() << "\n"
            << "  failed:    " << service.requests_failed() << "\n";
  if (service.cache() != nullptr) {
    std::cout << "  cache:     " << service.cache()->size() << " entries, "
              << service.cache()->bytes_used() << " bytes, "
              << service.cache()->hits() << " hits\n";
  }
  return 0;
}
