// The paper's headline result, end to end: for connected (hom-closed)
// queries, Shapley value computation and fixed-size generalized model
// counting are the *same problem* (FGMC_q ≡poly SVC_q, Corollary 4.1).
//
// This program runs both directions of the equivalence on one instance:
//   forward  (Claim A.1):  SVC from an FGMC oracle;
//   backward (Lemma 4.1):  FGMC from an SVC oracle, through the Figure 2
//                          construction and the Pascal linear system.

#include <iostream>

#include "shapley/analysis/witnesses.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;

  auto schema = Schema::Create();
  CqPtr query = ParseCq(schema, "Follows(x,y), Endorses(y,z)");
  PartitionedDatabase db = ParsePartitionedDatabase(schema,
      "Follows(ann,bob) Follows(cat,bob) Endorses(bob,dan) "
      "| Endorses(bob,eve)");

  std::cout << "Query:    " << query->ToString() << "\n";
  std::cout << "Database: " << db.ToString() << "\n\n";

  // ---- Forward: SVC through counting (Claim A.1). ----
  SvcViaFgmc svc_via_counting(std::make_shared<BruteForceFgmc>());
  Fact probe = ParseFact(schema, "Follows(ann,bob)");
  std::cout << "Sh(Follows(ann,bob)) via the FGMC oracle: "
            << svc_via_counting.Value(*query, db, probe).ToString() << "\n";
  BruteForceSvc direct_svc;
  std::cout << "Sh(Follows(ann,bob)) directly:            "
            << direct_svc.Value(*query, db, probe).ToString() << "\n\n";

  // ---- Backward: FGMC through Shapley values (Lemma 4.1). ----
  auto witness = CertifyPseudoConnected(*query);
  if (!witness.has_value()) {
    std::cerr << "query unexpectedly not certified pseudo-connected\n";
    return 1;
  }
  std::cout << "Pseudo-connectedness certificate: " << witness->certificate
            << "\n  island support: " << witness->island_support.ToString()
            << "\n";

  PascalStats stats;
  Polynomial via_svc =
      FgmcViaSvcLemma41(*query, *witness, db, direct_svc, &stats);
  BruteForceFgmc direct_fgmc;
  Polynomial direct = direct_fgmc.CountBySize(*query, db);

  std::cout << "\nFGMC recovered from " << stats.oracle_calls
            << " SVC oracle calls (largest constructed instance: "
            << stats.largest_instance_total << " facts):\n";
  std::cout << "  via SVC: " << via_svc.ToString() << "\n";
  std::cout << "  direct:  " << direct.ToString() << "\n";
  std::cout << (via_svc == direct
                    ? "\nMATCH — Shapley value computation is a matter of "
                      "counting.\n"
                    : "\n** MISMATCH **\n");
  return 0;
}
