// The Section 6.4 example: Shapley values of *constants* rather than facts.
//
// Schema: Publication(authorID, paperID), Keyword(paperID, keywordStr).
// Query q* = ∃x,y Publication(x,y) ∧ Keyword(y,'Shapley') — "is there a
// Shapley-related paper?". Treating author constants as the players ranks
// authors by their expertise on the topic; fact-level Shapley values would
// split an author's contribution across their papers.

#include <algorithm>
#include <iostream>
#include <vector>

#include "shapley/engines/constants.h"
#include "shapley/gen/generators.h"
#include "shapley/query/query_parser.h"
#include "shapley/reductions/lemmas.h"

int main() {
  using namespace shapley;

  auto schema = Schema::Create();
  Database db = DblpDatabase(schema, /*authors=*/6, /*papers=*/10,
                             /*shapley_fraction=*/0.4, /*seed=*/2024);
  CqPtr q_star = ParseCq(schema, "Publication(x, y), Keyword(y, $Shapley)");

  std::cout << "q* = " << q_star->ToString() << "\n";
  std::cout << "Database (" << db.size() << " facts): " << db.ToString()
            << "\n\n";

  // Players: author constants. Everything else exogenous.
  ConstantPartition partition;
  for (Constant c : db.Constants()) {
    if (c.name().rfind("author", 0) == 0) {
      partition.endogenous.insert(c);
    } else {
      partition.exogenous.insert(c);
    }
  }

  auto values = AllSvcConstBruteForce(*q_star, db, partition);
  std::vector<std::pair<Constant, BigRational>> ranked(values.begin(),
                                                       values.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::cout << "Author expertise on 'Shapley' (constant Shapley values):\n";
  for (const auto& [author, value] : ranked) {
    std::cout << "  " << author.name() << " = " << value.ToString() << "  (~"
              << value.ToDouble() << ")\n";
  }

  // Proposition 6.3 in action: the same values recovered through the
  // counting problem FGMCconst and back through an SVCconst oracle.
  SvcConstOracle oracle = [&q_star](const Database& d,
                                    const ConstantPartition& p, Constant c) {
    return SvcConstBruteForce(*q_star, d, p, c);
  };
  Polynomial counts = FgmcConstViaSvcConstProp63(*q_star, db, partition, oracle);
  std::cout << "\nFGMCconst counts recovered via the SVCconst oracle "
            << "(Proposition 6.3): " << counts.ToString() << "\n";
  Polynomial direct = FgmcConstBySize(*q_star, db, partition);
  std::cout << "Direct FGMCconst counts:                              "
            << direct.ToString() << "\n";
  std::cout << (counts == direct ? "MATCH — the reduction is exact.\n"
                                 : "** MISMATCH **\n");
  return 0;
}
