// A small command-line tool over the library: classify a query, evaluate
// it, count generalized supports, compute Shapley values — locally or over
// the network front — and serve the whole stack on a TCP port.
//
// Usage:
//   example_cli classify  '<ucq>'
//   example_cli engines
//   example_cli eval      '<ucq>' '<db>'
//   example_cli count     '<ucq>' '<db>'
//   example_cli values    '<ucq>' '<db>' [--threads N] [--engine E] [--json]
//   example_cli max       '<ucq>' '<db>' [--threads N] [--engine E] [--json]
//   example_cli topk      '<ucq>' '<db>' [K] [--threads N] [--engine E]
//   example_cli serve     [--host H] [--port P] [--threads N]
//                         [--max-connections C]
//   example_cli route     --backends H1:P1,H2:P2,... [--host H] [--port P]
//   example_cli call HOST:PORT values|max|topk|classify '<ucq>' '<db>' [K]
//   example_cli stats HOST:PORT
//   example_cli scrape HOST:PORT
//   example_cli trace HOST:PORT ['<query>' '<database>']
//   example_cli top HOST:PORT
//
// Database syntax: "R(a,b) S(b,c) | T(d)" — facts after '|' are exogenous.
// Query syntax:    "R(x,y), S(y,z) | T(x)" — '|' separates disjuncts,
//                  '!' negates an atom, u..z-initial identifiers are
//                  variables ('?v' forces a variable, '$c' a constant).
//
// values/max/topk go through the ShapleyService serving layer: --threads N
// sizes the service pool (default 1 = deterministic serial), and --engine
// picks the engine from the registry ('brute', 'lifted', 'ddnnf',
// 'permutations', 'sampling') or 'auto' (default): dichotomy routing by
// the classifier. --approx opts the request into Monte Carlo permutation
// sampling when no exact engine admits the instance; --epsilon/--delta set
// the (ε, δ) contract, --strategy picks the stopping rule and --seed makes
// the run reproducible.
//
// --json prints the response in the CANONICAL WIRE FORMAT (net/codec.h) —
// the same JSON the HTTP server sends, so scripts parse one format whether
// they shell out to the CLI or curl the service.
//
// --trace opts the request into hierarchical span tracing (obs/trace.h):
// the diagnostics print the span TREE — one line per span, indented by
// depth, wall-ms and attributes on each — and --json carries it as the
// wire's nested "trace" block.
//
// stats pretty-prints GET /v1/stats of a running server or router; scrape
// dumps its GET /metrics Prometheus exposition verbatim; trace sends one
// traced probe request (a tiny canned instance unless a query/database
// pair follows) and pretty-prints the returned span tree — against a
// router this shows the full cluster-wide tree, hop spans and all; top
// renders the always-on debug deck (GET /v1/debug/hot + /v1/debug/flight)
// like `top`: the hot-key and query-class tables first, then the most
// recent flight digests newest-first — against a router the hot tables
// are the MERGED fleet view. All four go through the client library (one
// keep-alive connection) and exit non-zero on transport failure or a
// failed answer — curl-free smoke probes for scripts and humans alike.
//
// serve starts the network front (net/server.h) over a ShapleyService and
// prints "listening on HOST:PORT"; SIGINT/SIGTERM drain in-flight requests
// and exit 0. route starts the shard router (cluster/router.h) in front of
// a comma-separated fleet of running serve processes — same wire surface,
// same "listening on HOST:PORT" line, same signals. call sends one request
// to a running server (or router: they speak the same protocol) through
// the client library (net/client.h) and prints the response exactly like
// the local commands do — same flags, same output, plus the round-trip.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "shapley/analysis/classifier.h"
#include "shapley/cluster/router.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/net/client.h"
#include "shapley/net/codec.h"
#include "shapley/net/server.h"
#include "shapley/obs/trace.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

int Usage() {
  std::cerr
      << "usage: example_cli classify '<query>'\n"
      << "       example_cli engines\n"
      << "       example_cli eval|count '<query>' '<database>'\n"
      << "       example_cli values|max '<query>' '<database>'\n"
      << "       example_cli topk '<query>' '<database>' [K]\n"
      << "       example_cli serve [--host H] [--port P] [--threads N] "
         "[--max-connections C]\n"
      << "       example_cli route --backends H1:P1,H2:P2,... "
         "[--host H] [--port P]\n"
      << "       example_cli call HOST:PORT values|max|topk|classify "
         "'<query>' '<database>' [K]\n"
      << "       example_cli stats HOST:PORT\n"
      << "       example_cli scrape HOST:PORT\n"
      << "       example_cli trace HOST:PORT ['<query>' '<database>']\n"
      << "       example_cli top HOST:PORT\n"
      << "                   [--threads N]\n"
      << "                   [--engine "
         "auto|brute|lifted|ddnnf|permutations|sampling]\n"
      << "                   [--approx] [--epsilon E] [--delta D] "
         "[--seed S]\n"
      << "                   [--strategy hoeffding|bernstein|stratified]\n"
      << "                   [--trace] [--json]\n"
      << "e.g.:  example_cli values 'R(x), S(x,y)' 'R(a) S(a,b) | S(a,c)' "
         "--threads 4\n";
  return 2;
}

/// One span per line, two spaces of indent per tree level, wall-ms first
/// so the eye can scan the time column, attributes trailing:
///   backend  12.41ms
///     decode  0.03ms
///     engine  11.90ms  engine=via-fgmc(lifted) cache_hits=0
///       compile  4.51ms  oracle=lifted
void PrintSpanTree(std::ostream& os, const shapley::obs::TraceSpan& span,
                   int depth) {
  os << std::string(static_cast<size_t>(depth) * 2, ' ') << span.name
     << "  " << span.ms << "ms";
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    os << (i == 0 ? "  " : " ") << span.attrs[i].first << "="
       << span.attrs[i].second;
  }
  os << "\n";
  for (const auto& child : span.children) {
    PrintSpanTree(os, child, depth + 1);
  }
}

void PrintTrace(std::ostream& os, const shapley::obs::RequestTrace& trace) {
  os << "trace:";
  if (trace.context.valid()) os << " id=" << trace.context.TraceIdHex();
  os << " total=" << trace.TotalMs() << "ms\n";
  PrintSpanTree(os, trace.root, 1);
}

void PrintResponseDiagnostics(const shapley::SvcResponse& response) {
  std::cerr << "verdict: " << shapley::ToString(response.verdict) << "\n"
            << "exec: engine=" << response.engine
            << (response.routed_by_classifier ? " (classifier-routed)"
                                              : " (override)")
            << " queue_ms=" << response.stats.queue_ms
            << " exec_ms=" << response.stats.exec_ms << "\n";
  if (response.approx.has_value()) {
    std::cerr << "approx: " << response.approx->ToString() << "\n";
  }
  if (response.trace.has_value()) {
    PrintTrace(std::cerr, *response.trace);
  }
}

/// `stats` output: the /v1/stats JSON flattened into indented "key = value"
/// lines (sections are the response's own top-level objects).
void PrintStatsJson(const shapley::net::Json& json, int indent) {
  const auto* members = json.IfObject();
  if (members == nullptr) {
    std::cout << json.Dump() << "\n";
    return;
  }
  for (const auto& [key, value] : *members) {
    std::cout << std::string(static_cast<size_t>(indent) * 2, ' ');
    if (value.is_object()) {
      std::cout << key << ":\n";
      PrintStatsJson(value, indent + 1);
    } else {
      std::cout << key << " = " << value.Dump() << "\n";
    }
  }
}

/// One hot-hitter table of the `top` view: the sketch summary is already
/// in canonical order (count desc, key asc), so rows print as received.
void PrintHotTable(const shapley::net::Json& summary, const char* title) {
  using shapley::net::Json;
  uint64_t total = 0;
  uint64_t evictions = 0;
  if (const Json* t = summary.Find("total")) total = t->IfUint64().value_or(0);
  if (const Json* e = summary.Find("evictions")) {
    evictions = e->IfUint64().value_or(0);
  }
  std::cout << title << "  total=" << total << "  evictions=" << evictions
            << "\n";
  const Json* hitters = summary.Find("hitters");
  const Json::Array* rows = hitters != nullptr ? hitters->IfArray() : nullptr;
  if (rows == nullptr || rows->empty()) {
    std::cout << "  (empty)\n";
    return;
  }
  std::cout << "  " << std::setw(10) << "COUNT"
            << "  " << std::setw(8) << "ERR"
            << "  KEY\n";
  for (const Json& row : *rows) {
    uint64_t count = 0;
    uint64_t error = 0;
    std::string key;
    if (const Json* c = row.Find("count")) count = c->IfUint64().value_or(0);
    if (const Json* e = row.Find("error")) error = e->IfUint64().value_or(0);
    if (const Json* k = row.Find("key")) {
      if (const std::string* s = k->IfString()) key = *s;
    }
    if (key.size() > 56) key = key.substr(0, 53) + "...";
    std::cout << "  " << std::setw(10) << count << "  " << std::setw(8)
              << error << "  " << key << "\n";
  }
}

/// `top` output: the debug deck rendered like its namesake — the hot
/// tables first (against a router these are the MERGED fleet view), then
/// the newest flight digests. Both payloads come off the wire verbatim.
void PrintTopView(const std::string& target, const shapley::net::Json& hot,
                  const shapley::net::Json& flight) {
  using shapley::net::Json;
  std::string role = "?";
  if (const Json* r = hot.Find("role")) {
    if (const std::string* s = r->IfString()) role = *s;
  }
  std::cout << "shapley top — " << target << "  role=" << role;
  if (const Json* b = hot.Find("backends")) {
    std::cout << "  backends=" << b->IfUint64().value_or(0);
  }
  if (const Json* up = flight.Find("uptime_ms")) {
    std::cout << "  uptime_ms=" << up->Dump();
  }
  std::cout << "\n\n";

  const Json* sketches = hot.Find("sketches");
  const Json* by_key =
      sketches != nullptr ? sketches->Find("shard_key") : nullptr;
  const Json* by_class =
      sketches != nullptr ? sketches->Find("query_class") : nullptr;
  if (by_key != nullptr) PrintHotTable(*by_key, "hot shard keys");
  std::cout << "\n";
  if (by_class != nullptr) PrintHotTable(*by_class, "hot query classes");
  std::cout << "\n";

  uint64_t recorded = 0;
  uint64_t dropped = 0;
  if (const Json* r = flight.Find("recorded")) {
    recorded = r->IfUint64().value_or(0);
  }
  if (const Json* d = flight.Find("dropped")) {
    dropped = d->IfUint64().value_or(0);
  }
  std::cout << "recent flight  recorded=" << recorded
            << "  dropped=" << dropped << "\n";
  const Json* entries = flight.Find("entries");
  const Json::Array* rows = entries != nullptr ? entries->IfArray() : nullptr;
  if (rows == nullptr || rows->empty()) {
    std::cout << "  (empty)\n";
    return;
  }
  std::cout << "  " << std::setw(8) << "SEQ"
            << "  " << std::setw(4) << "ST"
            << "  " << std::setw(10) << "LAT_US"
            << "  " << std::setw(8) << "SAMPLES"
            << "  " << std::setw(6) << "HITS"
            << "  " << std::setw(12) << "ENGINE"
            << "  " << std::setw(10) << "MODE"
            << "  TARGET\n";
  constexpr size_t kMaxRows = 15;  // Like top: the screenful that matters.
  size_t printed = 0;
  for (auto it = rows->rbegin(); it != rows->rend() && printed < kMaxRows;
       ++it, ++printed) {
    const Json& row = *it;
    auto u64 = [&row](const char* name) -> uint64_t {
      const Json* member = row.Find(name);
      return member != nullptr ? member->IfUint64().value_or(0) : 0;
    };
    auto str = [&row](const char* name) -> std::string {
      const Json* member = row.Find(name);
      const std::string* s = member != nullptr ? member->IfString() : nullptr;
      return s != nullptr ? *s : std::string();
    };
    std::cout << "  " << std::setw(8) << u64("seq") << "  " << std::setw(4)
              << u64("status") << "  " << std::setw(10) << u64("latency_us")
              << "  " << std::setw(8) << u64("samples") << "  " << std::setw(6)
              << u64("cache_hits") << "  " << std::setw(12) << str("engine")
              << "  " << std::setw(10) << str("mode") << "  " << str("target")
              << "\n";
  }
}

/// " ± 0.05 (95% conf)" after an estimated value; empty for exact
/// answers. Uses the FACT's certified half-width when the response
/// carries per-fact widths (they differ on mixed-polarity instances and
/// under adaptive retirement), the request-wide maximum otherwise.
std::string ApproxSuffix(const shapley::SvcResponse& response,
                         const shapley::PartitionedDatabase& db,
                         const shapley::Fact& fact) {
  if (!response.approx.has_value()) return "";
  double half_width = response.approx->half_width;
  const auto& endo = db.endogenous().facts();
  const auto& per_fact = response.approx->fact_half_widths;
  for (size_t i = 0; i < endo.size() && i < per_fact.size(); ++i) {
    if (endo[i] == fact) {
      half_width = per_fact[i];
      break;
    }
  }
  std::ostringstream os;
  os << "  ± " << half_width << " (" << 100.0 * response.approx->confidence
     << "% conf)";
  return os.str();
}

/// THE response printer — local and networked commands share it, and its
/// --json branch IS the wire format (net/codec's EncodeResponse), so the
/// CLI never grows a second serialization.
int PrintResponse(const shapley::SvcResponse& response,
                  const std::shared_ptr<shapley::Schema>& schema,
                  const shapley::PartitionedDatabase& db, bool as_json) {
  if (as_json) {
    std::cout << shapley::net::EncodeResponse(response, *schema).Dump()
              << "\n";
    return response.ok() ? 0 : 1;
  }
  if (!response.ok()) {
    std::cerr << "verdict: " << ToString(response.verdict) << "\n"
              << "error: " << response.error->ToString() << " (status "
              << shapley::net::HttpStatusFor(response.error->code) << ")\n";
    return 1;
  }
  if (response.mode == shapley::SvcMode::kClassifyOnly) {
    std::cout << ToString(response.verdict) << "\n";
    return 0;
  }
  if (!response.values.empty() || response.mode ==
                                      shapley::SvcMode::kAllValues) {
    for (const auto& [fact, value] : response.values) {
      std::cout << fact.ToString(*schema) << " = " << value.ToString()
                << "  (~" << value.ToDouble() << ")"
                << ApproxSuffix(response, db, fact) << "\n";
    }
  }
  for (const auto& [fact, value] : response.ranked) {
    std::cout << fact.ToString(*schema) << " = " << value.ToString()
              << ApproxSuffix(response, db, fact) << "\n";
  }
  PrintResponseDiagnostics(response);
  return 0;
}

std::sig_atomic_t volatile g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

int RunServe(const std::string& host, uint16_t port, size_t threads,
             size_t max_connections) {
  shapley::ServiceOptions options;
  options.threads = threads;
  shapley::ShapleyService service(options);
  shapley::net::ServerOptions server_options;
  server_options.host = host;
  server_options.port = port;
  if (max_connections > 0) server_options.max_connections = max_connections;
  shapley::net::HttpServer server(&service, server_options);
  server.Start();
  // The parseable line scripts (and scripts/check.sh) wait for.
  std::cout << "listening on " << server.host() << ":" << server.port()
            << std::endl;

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "draining..." << std::endl;
  server.Stop();        // Finishes in-flight requests, then closes.
  service.Shutdown();
  std::cerr << "served " << server.requests_served() << " requests over "
            << server.connections_accepted() << " connections; bye"
            << std::endl;
  return 0;
}

int RunRoute(const std::string& host, uint16_t port,
             const std::string& backends_csv) {
  std::vector<std::string> backends;
  std::string spec;
  std::istringstream specs(backends_csv);
  while (std::getline(specs, spec, ',')) {
    if (!spec.empty()) backends.push_back(spec);
  }
  if (backends.empty()) {
    std::cerr << "error: route needs --backends H1:P1,H2:P2,...\n";
    return Usage();
  }
  shapley::cluster::RouterOptions options;
  options.server.host = host;
  options.server.port = port;
  shapley::cluster::ShardRouter router(backends, options);
  router.Start();
  // The parseable line scripts (and scripts/check.sh) wait for.
  std::cout << "listening on " << router.host() << ":" << router.port()
            << std::endl;
  std::cerr << "routing over " << router.num_backends() << " backends"
            << std::endl;

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "draining..." << std::endl;
  router.Stop();
  std::cerr << "bye" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapley;

  // Split flags from positional arguments.
  std::vector<std::string> args;
  size_t threads = 1;
  std::string engine_name = "auto";
  std::string host = "127.0.0.1";
  std::string backends_csv;
  long port = 0;
  size_t max_connections = 0;  // 0 = server default.
  bool allow_approx = false;
  bool as_json = false;
  bool with_trace = false;
  ApproxParams approx;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      // Clamp to [1, 64]: negative/garbage falls back to serial, and an
      // oversized request must not exhaust the machine's thread limit.
      const long requested = std::atol(argv[++i]);
      threads = requested < 1 ? 1 : std::min<long>(requested, 64);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--backends" && i + 1 < argc) {
      backends_csv = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atol(argv[++i]);
      if (port < 0 || port > 65535) {
        std::cerr << "error: --port must be in [0, 65535]\n";
        return Usage();
      }
    } else if (arg == "--max-connections" && i + 1 < argc) {
      const long requested = std::atol(argv[++i]);
      // 0 keeps the server default; the event loop makes large values
      // cheap (one fd per connection, not one thread).
      max_connections = requested < 0 ? 0 : static_cast<size_t>(requested);
    } else if (arg == "--approx") {
      allow_approx = true;
    } else if (arg == "--trace") {
      with_trace = true;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--epsilon" && i + 1 < argc) {
      approx.epsilon = std::atof(argv[++i]);
    } else if (arg == "--delta" && i + 1 < argc) {
      approx.delta = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      approx.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--strategy" && i + 1 < argc) {
      const std::string name = argv[++i];
      const auto strategy = shapley::ParseApproxStrategy(name);
      if (!strategy.has_value()) {
        std::cerr << "error: unknown --strategy '" << name
                  << "' (known: hoeffding bernstein stratified)\n";
        return Usage();
      }
      approx.strategy = *strategy;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return Usage();
  std::string command = args[0];

  try {
    if (command == "serve") {
      return RunServe(host, static_cast<uint16_t>(port), threads,
                      max_connections);
    }
    if (command == "route") {
      return RunRoute(host, static_cast<uint16_t>(port), backends_csv);
    }

    if (command == "stats" || command == "scrape" || command == "trace" ||
        command == "top") {
      if (args.size() < 2) return Usage();
      const size_t colon = args[1].rfind(':');
      const long target_port = colon == std::string::npos
                                   ? 0
                                   : std::atol(args[1].c_str() + colon + 1);
      if (colon == std::string::npos || target_port <= 0 ||
          target_port > 65535) {
        std::cerr << "error: " << command << " target must be HOST:PORT\n";
        return Usage();
      }
      net::ShapleyClient client(args[1].substr(0, colon),
                                static_cast<uint16_t>(target_port));
      if (command == "trace") {
        // One-shot traced probe: a tiny canned instance (overridable with
        // trailing '<query>' '<database>' arguments) sent with tracing on;
        // the answer's span tree prints to stdout. Transport failures
        // throw (caught below → exit 1), like stats/scrape.
        auto probe_schema = Schema::Create();
        const std::string query_text =
            args.size() > 2 ? args[2] : "R(x), S(x,y)";
        const std::string db_text =
            args.size() > 3 ? args[3] : "R(a) R(b) S(a,c) | S(b,c)";
        UcqPtr probe_parsed = ParseUcq(probe_schema, query_text);
        SvcRequest probe;
        probe.query = probe_parsed->disjuncts().size() == 1
                          ? QueryPtr(probe_parsed->disjuncts()[0])
                          : QueryPtr(probe_parsed);
        probe.db = ParsePartitionedDatabase(probe_schema, db_text);
        probe.mode = SvcMode::kAllValues;
        probe.trace = true;
        const SvcResponse probed = client.Compute(probe);
        if (!probed.ok()) {
          std::cerr << "error: probe failed: " << probed.error->ToString()
                    << "\n";
          return 1;
        }
        if (!probed.trace.has_value()) {
          std::cerr << "error: response carried no trace block\n";
          return 1;
        }
        PrintTrace(std::cout, *probed.trace);
        return 0;
      }
      if (command == "top") {
        // Two GETs off the always-on debug deck; both must answer 200 —
        // transport failures throw (caught below → exit 1).
        int hot_status = 0;
        const std::string hot_body =
            client.RawGet("/v1/debug/hot", &hot_status);
        if (hot_status != 200) {
          std::cerr << "error: GET /v1/debug/hot answered " << hot_status
                    << "\n";
          return 1;
        }
        int flight_status = 0;
        const std::string flight_body =
            client.RawGet("/v1/debug/flight", &flight_status);
        if (flight_status != 200) {
          std::cerr << "error: GET /v1/debug/flight answered "
                    << flight_status << "\n";
          return 1;
        }
        const auto hot = net::Json::Parse(hot_body);
        const auto flight = net::Json::Parse(flight_body);
        if (!hot.has_value() || !flight.has_value()) {
          std::cerr << "error: debug endpoint returned unparsable JSON\n";
          return 1;
        }
        PrintTopView(args[1], *hot, *flight);
        return 0;
      }
      // Transport failures throw (caught below → exit 1); a reachable
      // server answering anything but 200 is also a failure.
      int status = 0;
      const char* target = command == "scrape" ? "/metrics" : "/v1/stats";
      const std::string body = client.RawGet(target, &status);
      if (status != 200) {
        std::cerr << "error: GET " << target << " answered " << status
                  << "\n";
        return 1;
      }
      if (command == "scrape") {
        std::cout << body;  // Prometheus text is already line-oriented.
        return 0;
      }
      const auto parsed_stats = net::Json::Parse(body);
      if (!parsed_stats.has_value()) {
        std::cerr << "error: " << target << " returned unparsable JSON\n";
        return 1;
      }
      PrintStatsJson(*parsed_stats, 0);
      return 0;
    }

    // `call HOST:PORT subcmd ...` reshapes into the local arg layout with
    // the connection target on the side — one request-building path.
    std::string call_target;
    if (command == "call") {
      if (args.size() < 3) return Usage();
      call_target = args[1];
      command = args[2];
      args.erase(args.begin() + 1, args.begin() + 3);
      const size_t colon = call_target.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "error: call target must be HOST:PORT\n";
        return Usage();
      }
      host = call_target.substr(0, colon);
      port = std::atol(call_target.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        std::cerr << "error: bad port in '" << call_target << "'\n";
        return Usage();
      }
    }

    if (command == "engines") {
      // The registry is the single source of engine dispatch — no ad-hoc
      // string switch to fall out of sync with.
      EngineRegistry registry = EngineRegistry::Default();
      std::cout << "auto: dichotomy routing (lifted when the classifier "
                   "proves FP via the hierarchical sjf-CQ island, guarded "
                   "brute force otherwise)\n";
      for (const std::string& name : registry.Names()) {
        const EngineRegistry::Entry* entry = registry.Find(name);
        std::cout << name << ": " << entry->description;
        if (entry->caps.max_endogenous !=
            std::numeric_limits<size_t>::max()) {
          std::cout << " [|Dn| <= " << entry->caps.max_endogenous << "]";
        }
        if (entry->caps.approximate) {
          std::cout << " [" << entry->caps.error_model << "]";
        }
        std::cout << "\n";
      }
      return 0;
    }

    if (args.size() < 2) return Usage();
    auto schema = Schema::Create();
    UcqPtr parsed = ParseUcq(schema, args[1]);
    QueryPtr query = parsed->disjuncts().size() == 1
                         ? QueryPtr(parsed->disjuncts()[0])
                         : QueryPtr(parsed);

    if (command == "classify" && call_target.empty()) {
      std::cout << ToString(ClassifySvcComplexity(*query)) << "\n";
      return 0;
    }
    if (args.size() < 3 && command != "classify") return Usage();
    PartitionedDatabase db =
        args.size() >= 3 ? ParsePartitionedDatabase(schema, args[2])
                         : PartitionedDatabase(schema);

    if (command == "eval") {
      bool full = query->Evaluate(db.AllFacts());
      bool exo = query->Evaluate(db.exogenous());
      std::cout << "D |= q:  " << (full ? "yes" : "no") << "\n"
                << "Dx |= q: " << (exo ? "yes" : "no") << "\n";
      return 0;
    }
    if (command == "count") {
      BruteForceFgmc fgmc;
      Polynomial counts = fgmc.CountBySize(*query, db);
      std::cout << "FGMC by size: " << counts.ToString() << "\n"
                << "GMC total:    " << counts.SumOfCoefficients() << "\n";
      return 0;
    }
    if (command == "values" || command == "max" || command == "topk" ||
        command == "classify") {
      SvcRequest request;
      request.query = query;
      request.db = db;
      if (engine_name != "auto") request.engine = engine_name;
      request.allow_approx = allow_approx;
      request.approx = approx;
      request.trace = with_trace;
      if (command == "values") {
        request.mode = SvcMode::kAllValues;
      } else if (command == "max") {
        request.mode = SvcMode::kMaxValue;
      } else if (command == "classify") {
        request.mode = SvcMode::kClassifyOnly;
      } else {
        request.mode = SvcMode::kTopK;
        request.top_k = 3;
        if (args.size() > 3) {
          // Reject non-numeric or non-positive K: a typo must not look
          // like a successful empty answer.
          char* end = nullptr;
          const unsigned long k = std::strtoul(args[3].c_str(), &end, 10);
          if (end == args[3].c_str() || *end != '\0' || k == 0) {
            std::cerr << "error: K must be a positive integer, got '"
                      << args[3] << "'\n";
            return Usage();
          }
          request.top_k = static_cast<size_t>(k);
        }
      }

      SvcResponse response;
      if (!call_target.empty()) {
        net::ShapleyClient client(host, static_cast<uint16_t>(port));
        response = client.Compute(request);
      } else {
        ServiceOptions options;
        options.threads = threads;
        ShapleyService service(options);
        response = service.Compute(std::move(request));
      }
      return PrintResponse(response, schema, db, as_json);
    }
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
