// A small command-line tool over the library: classify a query, evaluate
// it, count generalized supports, or compute Shapley values, for ad-hoc
// databases and queries given as arguments.
//
// Usage:
//   example_cli classify  '<ucq>'
//   example_cli eval      '<ucq>' '<db>'
//   example_cli count     '<ucq>' '<db>'
//   example_cli values    '<ucq>' '<db>' [--threads N] [--engine E]
//   example_cli max       '<ucq>' '<db>' [--threads N] [--engine E]
//
// Database syntax: "R(a,b) S(b,c) | T(d)" — facts after '|' are exogenous.
// Query syntax:    "R(x,y), S(y,z) | T(x)" — '|' separates disjuncts,
//                  '!' negates an atom, u..z-initial identifiers are
//                  variables ('?v' forces a variable, '$c' a constant).
//
// values/max run through the exec batch runtime: --threads N fans the
// per-fact work across N pool threads (default 1 = serial), and --engine
// picks the SVC engine: 'brute' (default; any query class), 'lifted'
// (hierarchical sjf-CQ only) or 'ddnnf' (monotone queries). Execution
// stats go to stderr.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "shapley/analysis/classifier.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/exec/batch_runner.h"
#include "shapley/query/query_parser.h"

namespace {

int Usage() {
  std::cerr
      << "usage: example_cli classify '<query>'\n"
      << "       example_cli eval|count '<query>' '<database>'\n"
      << "       example_cli values|max '<query>' '<database>'\n"
      << "                   [--threads N] [--engine brute|lifted|ddnnf]\n"
      << "e.g.:  example_cli values 'R(x,y), S(y)' 'R(a,b) R(c,b) | S(b)' "
         "--threads 4\n";
  return 2;
}

std::shared_ptr<shapley::SvcEngine> MakeEngine(const std::string& name) {
  using namespace shapley;
  if (name == "brute") return std::make_shared<BruteForceSvc>();
  if (name == "lifted") {
    return std::make_shared<SvcViaFgmc>(std::make_shared<LiftedFgmc>());
  }
  if (name == "ddnnf") {
    return std::make_shared<SvcViaFgmc>(std::make_shared<LineageFgmc>());
  }
  throw std::invalid_argument("unknown --engine '" + name +
                              "' (expected brute, lifted or ddnnf)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapley;

  // Split flags from positional arguments.
  std::vector<std::string> args;
  size_t threads = 1;
  std::string engine_name = "brute";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      // Clamp to [1, 64]: negative/garbage falls back to serial, and an
      // oversized request must not exhaust the machine's thread limit.
      const long requested = std::atol(argv[++i]);
      threads = requested < 1 ? 1 : std::min<long>(requested, 64);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  if (args.size() < 2) return Usage();
  const std::string command = args[0];

  try {
    auto schema = Schema::Create();
    UcqPtr parsed = ParseUcq(schema, args[1]);
    QueryPtr query = parsed->disjuncts().size() == 1
                         ? QueryPtr(parsed->disjuncts()[0])
                         : QueryPtr(parsed);

    if (command == "classify") {
      std::cout << ToString(ClassifySvcComplexity(*query)) << "\n";
      return 0;
    }
    if (args.size() < 3) return Usage();
    PartitionedDatabase db = ParsePartitionedDatabase(schema, args[2]);

    if (command == "eval") {
      bool full = query->Evaluate(db.AllFacts());
      bool exo = query->Evaluate(db.exogenous());
      std::cout << "D |= q:  " << (full ? "yes" : "no") << "\n"
                << "Dx |= q: " << (exo ? "yes" : "no") << "\n";
      return 0;
    }
    if (command == "count") {
      BruteForceFgmc fgmc;
      Polynomial counts = fgmc.CountBySize(*query, db);
      std::cout << "FGMC by size: " << counts.ToString() << "\n"
                << "GMC total:    " << counts.SumOfCoefficients() << "\n";
      return 0;
    }
    if (command == "values" || command == "max") {
      BatchOptions options;
      options.threads = threads;
      BatchSvcRunner runner(MakeEngine(engine_name), options);
      std::vector<BatchInstance> batch{{query, db}};
      if (command == "values") {
        auto results = runner.AllValues(batch);
        for (const auto& [fact, value] : results[0]) {
          std::cout << fact.ToString(*schema) << " = " << value.ToString()
                    << "  (~" << value.ToDouble() << ")\n";
        }
      } else {
        auto [fact, value] = runner.MaxValues(batch)[0];
        std::cout << fact.ToString(*schema) << " = " << value.ToString()
                  << "\n";
      }
      std::cerr << "exec: engine=" << runner.engine().name() << " "
                << runner.last_stats().ToString() << "\n";
      return 0;
    }
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
