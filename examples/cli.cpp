// A small command-line tool over the library: classify a query, evaluate
// it, count generalized supports, or compute Shapley values, for ad-hoc
// databases and queries given as arguments.
//
// Usage:
//   example_cli classify  '<ucq>'
//   example_cli eval      '<ucq>' '<db>'
//   example_cli count     '<ucq>' '<db>'
//   example_cli values    '<ucq>' '<db>'
//   example_cli max       '<ucq>' '<db>'
//
// Database syntax: "R(a,b) S(b,c) | T(d)" — facts after '|' are exogenous.
// Query syntax:    "R(x,y), S(y,z) | T(x)" — '|' separates disjuncts,
//                  '!' negates an atom, u..z-initial identifiers are
//                  variables ('?v' forces a variable, '$c' a constant).

#include <iostream>
#include <string>

#include "shapley/analysis/classifier.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/query/query_parser.h"

namespace {

int Usage() {
  std::cerr
      << "usage: example_cli classify '<query>'\n"
      << "       example_cli eval|count|values|max '<query>' '<database>'\n"
      << "e.g.:  example_cli values 'R(x,y), S(y)' 'R(a,b) R(c,b) | S(b)'\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapley;
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  try {
    auto schema = Schema::Create();
    UcqPtr parsed = ParseUcq(schema, argv[2]);
    QueryPtr query = parsed->disjuncts().size() == 1
                         ? QueryPtr(parsed->disjuncts()[0])
                         : QueryPtr(parsed);

    if (command == "classify") {
      std::cout << ToString(ClassifySvcComplexity(*query)) << "\n";
      return 0;
    }
    if (argc < 4) return Usage();
    PartitionedDatabase db = ParsePartitionedDatabase(schema, argv[3]);

    if (command == "eval") {
      bool full = query->Evaluate(db.AllFacts());
      bool exo = query->Evaluate(db.exogenous());
      std::cout << "D |= q:  " << (full ? "yes" : "no") << "\n"
                << "Dx |= q: " << (exo ? "yes" : "no") << "\n";
      return 0;
    }
    if (command == "count") {
      BruteForceFgmc fgmc;
      Polynomial counts = fgmc.CountBySize(*query, db);
      std::cout << "FGMC by size: " << counts.ToString() << "\n"
                << "GMC total:    " << counts.SumOfCoefficients() << "\n";
      return 0;
    }
    if (command == "values") {
      BruteForceSvc svc;
      for (const auto& [fact, value] : svc.AllValues(*query, db)) {
        std::cout << fact.ToString(*schema) << " = " << value.ToString()
                  << "  (~" << value.ToDouble() << ")\n";
      }
      return 0;
    }
    if (command == "max") {
      BruteForceSvc svc;
      auto [fact, value] = svc.MaxValue(*query, db);
      std::cout << fact.ToString(*schema) << " = " << value.ToString() << "\n";
      return 0;
    }
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
