// A small command-line tool over the library: classify a query, evaluate
// it, count generalized supports, or compute Shapley values, for ad-hoc
// databases and queries given as arguments.
//
// Usage:
//   example_cli classify  '<ucq>'
//   example_cli engines
//   example_cli eval      '<ucq>' '<db>'
//   example_cli count     '<ucq>' '<db>'
//   example_cli values    '<ucq>' '<db>' [--threads N] [--engine E]
//   example_cli max       '<ucq>' '<db>' [--threads N] [--engine E]
//   example_cli topk      '<ucq>' '<db>' [K] [--threads N] [--engine E]
//
// Database syntax: "R(a,b) S(b,c) | T(d)" — facts after '|' are exogenous.
// Query syntax:    "R(x,y), S(y,z) | T(x)" — '|' separates disjuncts,
//                  '!' negates an atom, u..z-initial identifiers are
//                  variables ('?v' forces a variable, '$c' a constant).
//
// values/max/topk go through the ShapleyService serving layer: --threads N
// sizes the service pool (default 1 = deterministic serial), and --engine
// picks the engine from the registry ('brute', 'lifted', 'ddnnf',
// 'permutations', 'sampling') or 'auto' (default): dichotomy routing by
// the classifier — the lifted polynomial engine on the tractable
// hierarchical sjf-CQ side, guarded brute force otherwise. --approx opts
// the request into Monte Carlo permutation sampling when no exact engine
// admits the instance; --epsilon/--delta set the (ε, δ) contract,
// --strategy picks the sampling/stopping rule (hoeffding: fixed count;
// bernstein: empirical-Bernstein sequential stopping; stratified:
// antithetic position strata + sequential stopping — the adaptive two
// stop early on low-variance facts and never draw more than the
// Hoeffding count) and --seed makes the run reproducible. Estimates
// print with their half-width and confidence. The verdict, the engine
// that served the request and execution stats go to stderr; structured
// SvcErrors are reported instead of stack traces.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "shapley/analysis/classifier.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/query/query_parser.h"
#include "shapley/service/shapley_service.h"

namespace {

int Usage() {
  std::cerr
      << "usage: example_cli classify '<query>'\n"
      << "       example_cli engines\n"
      << "       example_cli eval|count '<query>' '<database>'\n"
      << "       example_cli values|max '<query>' '<database>'\n"
      << "       example_cli topk '<query>' '<database>' [K]\n"
      << "                   [--threads N]\n"
      << "                   [--engine "
         "auto|brute|lifted|ddnnf|permutations|sampling]\n"
      << "                   [--approx] [--epsilon E] [--delta D] "
         "[--seed S]\n"
      << "                   [--strategy hoeffding|bernstein|stratified]\n"
      << "e.g.:  example_cli values 'R(x), S(x,y)' 'R(a) S(a,b) | S(a,c)' "
         "--threads 4\n";
  return 2;
}

void PrintResponseDiagnostics(const shapley::SvcResponse& response) {
  std::cerr << "verdict: " << shapley::ToString(response.verdict) << "\n"
            << "exec: engine=" << response.engine
            << (response.routed_by_classifier ? " (classifier-routed)"
                                              : " (override)")
            << " queue_ms=" << response.stats.queue_ms
            << " exec_ms=" << response.stats.exec_ms << "\n";
  if (response.approx.has_value()) {
    std::cerr << "approx: " << response.approx->ToString() << "\n";
  }
}

/// " ± 0.05 (95% conf)" after an estimated value; empty for exact
/// answers. Uses the FACT's certified half-width when the response
/// carries per-fact widths (they differ on mixed-polarity instances and
/// under adaptive retirement), the request-wide maximum otherwise.
std::string ApproxSuffix(const shapley::SvcResponse& response,
                         const shapley::PartitionedDatabase& db,
                         const shapley::Fact& fact) {
  if (!response.approx.has_value()) return "";
  double half_width = response.approx->half_width;
  const auto& endo = db.endogenous().facts();
  const auto& per_fact = response.approx->fact_half_widths;
  for (size_t i = 0; i < endo.size() && i < per_fact.size(); ++i) {
    if (endo[i] == fact) {
      half_width = per_fact[i];
      break;
    }
  }
  std::ostringstream os;
  os << "  ± " << half_width << " (" << 100.0 * response.approx->confidence
     << "% conf)";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shapley;

  // Split flags from positional arguments.
  std::vector<std::string> args;
  size_t threads = 1;
  std::string engine_name = "auto";
  bool allow_approx = false;
  ApproxParams approx;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      // Clamp to [1, 64]: negative/garbage falls back to serial, and an
      // oversized request must not exhaust the machine's thread limit.
      const long requested = std::atol(argv[++i]);
      threads = requested < 1 ? 1 : std::min<long>(requested, 64);
    } else if (arg == "--engine" && i + 1 < argc) {
      engine_name = argv[++i];
    } else if (arg == "--approx") {
      allow_approx = true;
    } else if (arg == "--epsilon" && i + 1 < argc) {
      approx.epsilon = std::atof(argv[++i]);
    } else if (arg == "--delta" && i + 1 < argc) {
      approx.delta = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      approx.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--strategy" && i + 1 < argc) {
      const std::string name = argv[++i];
      const auto strategy = shapley::ParseApproxStrategy(name);
      if (!strategy.has_value()) {
        std::cerr << "error: unknown --strategy '" << name
                  << "' (known: hoeffding bernstein stratified)\n";
        return Usage();
      }
      approx.strategy = *strategy;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return Usage();
  const std::string command = args[0];

  try {
    if (command == "engines") {
      // The registry is the single source of engine dispatch — no ad-hoc
      // string switch to fall out of sync with.
      EngineRegistry registry = EngineRegistry::Default();
      std::cout << "auto: dichotomy routing (lifted when the classifier "
                   "proves FP via the hierarchical sjf-CQ island, guarded "
                   "brute force otherwise)\n";
      for (const std::string& name : registry.Names()) {
        const EngineRegistry::Entry* entry = registry.Find(name);
        std::cout << name << ": " << entry->description;
        if (entry->caps.max_endogenous !=
            std::numeric_limits<size_t>::max()) {
          std::cout << " [|Dn| <= " << entry->caps.max_endogenous << "]";
        }
        if (entry->caps.approximate) {
          std::cout << " [" << entry->caps.error_model << "]";
        }
        std::cout << "\n";
      }
      return 0;
    }

    if (args.size() < 2) return Usage();
    auto schema = Schema::Create();
    UcqPtr parsed = ParseUcq(schema, args[1]);
    QueryPtr query = parsed->disjuncts().size() == 1
                         ? QueryPtr(parsed->disjuncts()[0])
                         : QueryPtr(parsed);

    if (command == "classify") {
      std::cout << ToString(ClassifySvcComplexity(*query)) << "\n";
      return 0;
    }
    if (args.size() < 3) return Usage();
    PartitionedDatabase db = ParsePartitionedDatabase(schema, args[2]);

    if (command == "eval") {
      bool full = query->Evaluate(db.AllFacts());
      bool exo = query->Evaluate(db.exogenous());
      std::cout << "D |= q:  " << (full ? "yes" : "no") << "\n"
                << "Dx |= q: " << (exo ? "yes" : "no") << "\n";
      return 0;
    }
    if (command == "count") {
      BruteForceFgmc fgmc;
      Polynomial counts = fgmc.CountBySize(*query, db);
      std::cout << "FGMC by size: " << counts.ToString() << "\n"
                << "GMC total:    " << counts.SumOfCoefficients() << "\n";
      return 0;
    }
    if (command == "values" || command == "max" || command == "topk") {
      ServiceOptions options;
      options.threads = threads;
      ShapleyService service(options);

      SvcRequest request;
      request.query = query;
      request.db = db;
      if (engine_name != "auto") request.engine = engine_name;
      request.allow_approx = allow_approx;
      request.approx = approx;
      if (command == "values") {
        request.mode = SvcMode::kAllValues;
      } else if (command == "max") {
        request.mode = SvcMode::kMaxValue;
      } else {
        request.mode = SvcMode::kTopK;
        request.top_k = 3;
        if (args.size() > 3) {
          // Reject non-numeric or non-positive K: a typo must not look
          // like a successful empty answer.
          char* end = nullptr;
          const unsigned long k = std::strtoul(args[3].c_str(), &end, 10);
          if (end == args[3].c_str() || *end != '\0' || k == 0) {
            std::cerr << "error: K must be a positive integer, got '"
                      << args[3] << "'\n";
            return Usage();
          }
          request.top_k = static_cast<size_t>(k);
        }
      }

      SvcResponse response = service.Compute(std::move(request));
      if (!response.ok()) {
        std::cerr << "verdict: " << ToString(response.verdict) << "\n"
                  << "error: " << response.error->ToString() << "\n";
        return 1;
      }
      if (command == "values") {
        for (const auto& [fact, value] : response.values) {
          std::cout << fact.ToString(*schema) << " = " << value.ToString()
                    << "  (~" << value.ToDouble() << ")"
                    << ApproxSuffix(response, db, fact) << "\n";
        }
      } else {
        for (const auto& [fact, value] : response.ranked) {
          std::cout << fact.ToString(*schema) << " = " << value.ToString()
                    << ApproxSuffix(response, db, fact) << "\n";
        }
      }
      PrintResponseDiagnostics(response);
      return 0;
    }
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
