// Quickstart: compute the Shapley value of every fact of a small database
// for a conjunctive query, three ways (brute force, via counting, lifted),
// and print the ranked contributions.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart

#include <iostream>

#include "shapley/analysis/classifier.h"
#include "shapley/data/parser.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/query/query_parser.h"

int main() {
  using namespace shapley;

  // A schema and a partitioned database: facts before '|' are endogenous
  // (the players), facts after it exogenous (assumed present).
  auto schema = Schema::Create();
  PartitionedDatabase db = ParsePartitionedDatabase(schema,
      "Employs(acme, ann)   Employs(acme, bob) "
      "Leads(ann, proj1)    Leads(bob, proj2)  "
      "| Active(proj1)");

  // Boolean CQ: does some employee of acme lead an active project?
  // (lowercase u,v,w,x,y,z-initial identifiers are variables).
  CqPtr query = ParseCq(schema,
      "Employs(acme, x), Leads(x, y), Active(y)");

  std::cout << "Query:    " << query->ToString() << "\n";
  std::cout << "Database: " << db.ToString() << "\n";
  std::cout << "Verdict:  " << ToString(ClassifySvcComplexity(*query)) << "\n\n";

  // Engine 1: exhaustive subset formula (Equation 2 of the paper).
  BruteForceSvc brute;
  // Engine 2: via the counting problem FGMC (Claim A.1) with a
  // knowledge-compilation counting back end.
  SvcViaFgmc via_counting(std::make_shared<LineageFgmc>());

  std::cout << "Shapley values of the endogenous facts:\n";
  for (const auto& [fact, value] : brute.AllValues(*query, db)) {
    BigRational check = via_counting.Value(*query, db, fact);
    std::cout << "  " << fact.ToString(*schema) << " = " << value.ToString()
              << "  (~" << value.ToDouble() << ")"
              << (check == value ? "" : "  ** ENGINE MISMATCH **") << "\n";
  }

  auto [top_fact, top_value] = brute.MaxValue(*query, db);
  std::cout << "\nTop contributor: " << top_fact.ToString(*schema) << " with "
            << top_value.ToString() << "\n";
  return 0;
}
