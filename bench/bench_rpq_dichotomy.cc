// E6 — the RPQ dichotomy (Corollary 4.3), classification plus scaling.
//
// Table 1: classification of RPQ families by maximum word length — FP iff
// no word of length >= 3 (and the FGMC≡SVC equivalence kicks in at length
// >= 2 via Lemma B.1 + Lemma 4.1).
// Table 2: runtime shape — bounded (word <= 2) RPQs are counted through
// their UCQ expansion + knowledge compilation in polynomial time; the hard
// family is exponential under brute force.

#include <iostream>

#include "bench_util.h"
#include "shapley/analysis/classifier.h"
#include "shapley/engines/fgmc.h"
#include "shapley/engines/svc.h"
#include "shapley/gen/generators.h"
#include "shapley/query/path_query.h"

int main() {
  using namespace shapley;
  using namespace shapley::bench;

  Banner("E6 / Corollary 4.3 — RPQ dichotomy by word length");

  {
    Table table({"language", "max word", "verdict", "FGMC≡SVC"},
                {22, 12, 12, 10});
    table.PrintHeader();
    struct Row {
      const char* regex;
      const char* max_word;
    };
    for (const Row& row : {Row{"A", "1"}, Row{"A | B C", "2"},
                           Row{"A B C", "3"}, Row{"A* B", "unbounded"},
                           Row{"(A|B)(A|B)", "2"}, Row{"A A A A", "4"}}) {
      auto q = RegularPathQuery::Create(Schema::Create(),
                                        Regex::Parse(row.regex),
                                        Constant::Named("s"),
                                        Constant::Named("t"));
      DichotomyVerdict v = ClassifySvcComplexity(*q);
      table.PrintRow(row.regex, row.max_word, ToString(v.tractability),
                     v.fgmc_svc_equivalent ? "yes" : "-");
    }
  }

  Banner("E6b — runtime shape: tractable vs hard RPQ on growing graphs");
  {
    Table table({"family", "edges", "engine", "GMC", "ms"},
                {22, 8, 18, 22, 12});
    table.PrintHeader();

    // Tractable family: L = A|B (max word 1) on growing random graphs,
    // counted through knowledge compilation of the tiny lineage.
    for (size_t nodes : {4, 6, 8, 10}) {
      auto schema = Schema::Create();
      Database graph = RandomGraph(schema, {"A", "B"}, nodes, 0.5, nodes);
      auto q = RegularPathQuery::Create(schema, Regex::Parse("A | B"),
                                        Constant::Named("v0"),
                                        Constant::Named("v1"));
      PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
      LineageFgmc engine;
      Timer timer;
      BigInt gmc = engine.Gmc(*q, db);
      table.PrintRow("L = A|B (FP)", db.NumEndogenous(), "lineage-ddnnf",
                     gmc.ToString(), timer.ElapsedMs());
    }

    // Hard family: L = AAA on a layered gadget, brute force (2^n).
    for (size_t width : {2, 3, 4}) {
      auto schema = Schema::Create();
      RelationId a = schema->AddRelation("A", 2);
      Database graph(schema);
      Constant s = Constant::Named("s"), t = Constant::Named("t");
      for (size_t i = 0; i < width; ++i) {
        Constant u = Constant::Named("u" + std::to_string(i));
        Constant w = Constant::Named("w" + std::to_string(i));
        graph.Insert(Fact(a, {s, u}));
        for (size_t j = 0; j < width; ++j) {
          graph.Insert(Fact(a, {u, Constant::Named("w" + std::to_string(j))}));
        }
        graph.Insert(Fact(a, {w, t}));
      }
      auto q = RegularPathQuery::Create(schema, Regex::Parse("A A A"), s, t);
      PartitionedDatabase db = PartitionedDatabase::AllEndogenous(graph);
      BruteForceFgmc engine;
      Timer timer;
      BigInt gmc = engine.Gmc(*q, db);
      table.PrintRow("L = AAA (#P-hard)", db.NumEndogenous(), "brute-force",
                     gmc.ToString(), timer.ElapsedMs());
    }
  }

  std::cout << "\nShape check vs the paper: the FP/#P-hard frontier sits "
               "exactly at word length 3\n(Corollary 4.3); the tractable "
               "side scales, the hard side doubles per edge.\n";
  return 0;
}
